//! Workspace root crate of the P# FAST'16 reproduction.
//!
//! This crate only hosts the runnable examples (`examples/`) and the
//! cross-crate integration tests (`tests/`); the implementation lives in the
//! workspace member crates, re-exported here for convenience:
//!
//! * [`psharp`] — the systematic testing runtime (the paper's contribution).
//! * [`replsim`] — the §2 example replication system.
//! * [`vnext`] — the Azure Storage vNext extent-management case study (§3).
//! * [`chaintable`] — the Live Table Migration case study (§4).
//! * [`fabric`] — the Azure Service Fabric case study (§5).

pub use chaintable;
pub use fabric;
pub use psharp;
pub use replsim;
pub use vnext;
