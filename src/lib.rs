//! Workspace root crate of the P# FAST'16 reproduction.
//!
//! This crate only hosts the runnable examples (`examples/`) and the
//! cross-crate integration tests (`tests/`); the implementation lives in the
//! workspace member crates, re-exported here for convenience:
//!
//! * [`psharp`] — the systematic testing runtime (the paper's contribution).
//! * [`replsim`] — the §2 example replication system.
//! * [`vnext`] — the Azure Storage vNext extent-management case study (§3).
//! * [`chaintable`] — the Live Table Migration case study (§4).
//! * [`fabric`] — the Azure Service Fabric case study (§5).

pub use chaintable;
pub use fabric;
pub use psharp;
pub use replsim;
pub use vnext;

/// Debug-workflow options shared by the case-study examples: every example
/// accepts `--shrink` (delta-debug a found bug's schedule down to a minimal
/// replayable counterexample), `--trace-mode full|ring:N|decisions` (bound
/// how much of the annotated schedule each execution retains) and
/// `--faults crash=N,restart=N,drop=N,dup=N` (override the scenario's fault
/// budget for scheduler-controlled fault injection).
pub mod cli {
    use psharp::engine::BugReport;
    use psharp::prelude::*;

    /// Parsed `--shrink` / `--trace-mode` / `--faults` options.
    #[derive(Debug, Clone, Copy, Default)]
    pub struct DebugOptions {
        /// Delta-debug found bugs down to minimal counterexamples.
        pub shrink: bool,
        /// How much of the annotated schedule each execution retains
        /// (`None` keeps the engine's default/auto selection).
        pub trace_mode: Option<TraceMode>,
        /// Fault budget override (`None` keeps the scenario's own budget).
        pub faults: Option<FaultPlan>,
    }

    impl DebugOptions {
        /// Parses the debug flags out of `std::env::args`, returning the
        /// options and the remaining (positional) arguments.
        ///
        /// # Panics
        ///
        /// Panics on a malformed `--trace-mode` or `--faults` value,
        /// mirroring the fail-fast CLI style of the bench binaries.
        pub fn from_args() -> (Self, Vec<String>) {
            let mut options = DebugOptions::default();
            let mut rest = Vec::new();
            let mut argv = std::env::args().skip(1);
            while let Some(arg) = argv.next() {
                match arg.as_str() {
                    "--shrink" => options.shrink = true,
                    "--trace-mode" => {
                        let name = argv.next().expect("--trace-mode requires a mode");
                        options.trace_mode = Some(
                            TraceMode::parse(&name)
                                .unwrap_or_else(|| panic!("unknown trace mode {name:?}")),
                        );
                    }
                    "--faults" => {
                        let spec = argv.next().expect("--faults requires a plan");
                        options.faults = Some(
                            FaultPlan::parse(&spec)
                                .unwrap_or_else(|| panic!("unknown fault plan {spec:?}")),
                        );
                    }
                    _ => rest.push(arg),
                }
            }
            (options, rest)
        }

        /// Applies the options to a test configuration.
        pub fn apply(&self, config: TestConfig) -> TestConfig {
            let mut config = config.with_shrink(self.shrink);
            if let Some(trace_mode) = self.trace_mode {
                config = config.with_trace_mode(trace_mode);
            }
            if let Some(faults) = self.faults {
                config = config.with_faults(faults);
            }
            config
        }

        /// The fault plan to run a scenario with: the `--faults` override
        /// when given, the scenario's own `default` otherwise.
        pub fn faults_or(&self, default: FaultPlan) -> FaultPlan {
            self.faults.unwrap_or(default)
        }
    }

    /// Prints the shrink outcome attached to a bug report (no-op when the
    /// run was not configured with `--shrink`): the reduction summary plus
    /// the tail of the minimized, replay-verified schedule.
    pub fn describe_shrink(report: &BugReport) {
        let Some(shrink) = &report.shrink else {
            return;
        };
        println!("shrink: {}", shrink.summary());
        let rendered = shrink.minimized.render_schedule();
        let lines: Vec<&str> = rendered.lines().collect();
        let tail = lines.len().saturating_sub(12);
        if tail > 0 {
            println!("minimized schedule (last 12 of {} steps):", lines.len());
        } else {
            println!("minimized schedule:");
        }
        for line in &lines[tail..] {
            println!("{line}");
        }
    }
}
