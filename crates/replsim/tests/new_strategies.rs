//! The two strategies added to the portfolio in PR 3 — delay-bounding and
//! probabilistic random — each find the replication example's seeded safety
//! bug on their own, and a portfolio run over this harness reports a
//! worker-count-independent result.

use psharp::prelude::*;
use replsim::{build_harness, portfolio_hunt, ReplConfig};

fn buggy_config() -> ReplConfig {
    ReplConfig::with_duplicate_counting_bug()
}

fn engine(kind: SchedulerKind) -> TestEngine {
    TestEngine::new(
        TestConfig::new()
            .with_iterations(2_000)
            .with_max_steps(2_000)
            .with_seed(7)
            .with_scheduler(kind),
    )
}

#[test]
fn delay_bounding_finds_the_duplicate_counting_bug() {
    // The duplicate-counting interleaving needs several adversarial
    // preemptions, so it sits beyond a 2-delay budget on this harness; five
    // delays reach it within a handful of executions.
    let config = buggy_config();
    let report = engine(SchedulerKind::DelayBounding { delays: 5 }).run(move |rt| {
        build_harness(rt, &config);
    });
    let bug = report.bug.expect("delay-bounding finds the safety bug");
    assert_eq!(bug.bug.kind, BugKind::SafetyViolation);
    assert_eq!(report.scheduler, "delay");
}

#[test]
fn probabilistic_random_finds_the_duplicate_counting_bug() {
    let config = buggy_config();
    let report = engine(SchedulerKind::ProbabilisticRandom { switch_percent: 10 }).run(move |rt| {
        build_harness(rt, &config);
    });
    let bug = report
        .bug
        .expect("probabilistic random finds the safety bug");
    assert_eq!(bug.bug.kind, BugKind::SafetyViolation);
    assert_eq!(report.scheduler, "prob");
}

#[test]
fn portfolio_hunt_reports_the_same_bug_at_any_worker_count() {
    let config = buggy_config();
    let base = TestConfig::new()
        .with_iterations(1_000)
        .with_max_steps(2_000)
        .with_seed(7)
        .with_default_portfolio();
    let reference = portfolio_hunt(&config, base.clone().with_workers(1));
    let reference_bug = reference.bug.expect("portfolio finds the safety bug");
    for workers in [2usize, 4] {
        let report = portfolio_hunt(&config, base.clone().with_workers(workers));
        let bug = report.bug.expect("portfolio finds the safety bug");
        assert_eq!(bug.iteration, reference_bug.iteration, "{workers} workers");
        assert_eq!(bug.trace, reference_bug.trace, "{workers} workers");
        assert_eq!(report.scheduler, reference.scheduler, "{workers} workers");
    }
}
