//! Regression tests for the liveness fair-grace mitigation (the documented
//! PR 3 caveat): starvation-prone strategies (PCT, delay-bounding, the
//! probabilistic walk) must not flag liveness violations on the *fixed*
//! system at tight step bounds — those verdicts were bounded-horizon
//! artifacts of scheduler starvation, not system bugs — while genuine
//! liveness bugs keep being detected and keep replaying.

use psharp::prelude::*;
use replsim::{build_harness, ReplConfig};

/// A tight per-execution bound: small enough that an unfair prefix can
/// easily leave the ack outstanding at the bound, which is exactly the
/// false-positive regime this suite pins down.
const TIGHT_MAX_STEPS: usize = 600;

fn hunt_fixed(scheduler: SchedulerKind) -> TestReport {
    let engine = TestEngine::new(
        TestConfig::new()
            .with_iterations(200)
            .with_max_steps(TIGHT_MAX_STEPS)
            .with_seed(99)
            .with_scheduler(scheduler),
    );
    engine.run(|rt| {
        build_harness(rt, &ReplConfig::default());
    })
}

#[test]
fn fixed_system_is_clean_under_pct_at_tight_bounds() {
    let report = hunt_fixed(SchedulerKind::Pct { change_points: 2 });
    assert!(
        report.bug.is_none(),
        "spurious violation under pct: {:?}",
        report.bug.map(|b| b.bug)
    );
}

#[test]
fn fixed_system_is_clean_under_delay_bounding_at_tight_bounds() {
    let report = hunt_fixed(SchedulerKind::DelayBounding { delays: 2 });
    assert!(
        report.bug.is_none(),
        "spurious violation under delay-bounding: {:?}",
        report.bug.map(|b| b.bug)
    );
}

#[test]
fn fixed_system_is_clean_under_probabilistic_walk_at_tight_bounds() {
    let report = hunt_fixed(SchedulerKind::ProbabilisticRandom { switch_percent: 10 });
    assert!(
        report.bug.is_none(),
        "spurious violation under the probabilistic walk: {:?}",
        report.bug.map(|b| b.bug)
    );
}

/// The grace period must not suppress genuine liveness bugs: the seeded
/// missing-reset bug (the second request is never acknowledged, ever) stays
/// hot through any grace window, so a starvation-prone strategy still
/// reports it — and the reported trace still replays to the same bug even
/// though the grace steps lie beyond the replay bound.
#[test]
fn genuine_liveness_bug_survives_the_grace_period_and_replays() {
    let engine = TestEngine::new(
        TestConfig::new()
            .with_iterations(200)
            .with_max_steps(TIGHT_MAX_STEPS)
            .with_seed(7)
            .with_scheduler(SchedulerKind::ProbabilisticRandom { switch_percent: 10 }),
    );
    let build = |rt: &mut Runtime| {
        build_harness(rt, &ReplConfig::with_missing_reset_bug());
    };
    let report = engine.run(build);
    let bug_report = report.bug.expect("the genuine liveness bug must be found");
    assert_eq!(bug_report.bug.kind, BugKind::LivenessViolation);
    // The verdict is captured at the step bound, so replay (which stops at
    // the same bound) reproduces the identical bug.
    assert_eq!(bug_report.bug.step, TIGHT_MAX_STEPS);
    // The grace window is observation-only: the reported trace (and the
    // paper's #NDC) must be rolled back to the bound, not include the
    // thousands of extra grace steps.
    assert_eq!(bug_report.trace.total_step_count(), TIGHT_MAX_STEPS);
    assert_eq!(bug_report.ndc, bug_report.trace.decision_count());
    assert!(
        bug_report.trace.steps().all(|s| s.step < TIGHT_MAX_STEPS),
        "no grace-window step may leak into the reported schedule"
    );
    let replayed = engine
        .replay(&bug_report.trace, build)
        .expect("replay reproduces the liveness violation");
    assert_eq!(replayed.kind, bug_report.bug.kind);
    assert_eq!(replayed.message, bug_report.bug.message);
}
