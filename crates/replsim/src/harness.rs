//! The P# test harness for the replication example (Figure 2 of the paper).
//!
//! The harness wires together the real server (the system-under-test), the
//! modeled client, the modeled storage nodes, one modeled timer per storage
//! node, and the safety and liveness monitors.

use psharp::prelude::*;
use psharp::timer::Timer;

use crate::client::Client;
use crate::events::Timeout;
use crate::monitors::{AckLivenessMonitor, ReplicaSafetyMonitor};
use crate::server::{Server, ServerBugs, ServerInit};
use crate::storage_node::StorageNode;

/// Re-export of the bug flags under the name used by the experiment index.
pub type ReplBugs = ServerBugs;

/// Configuration of the replication-example harness.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplConfig {
    /// Number of storage nodes (the paper uses 3).
    pub storage_nodes: usize,
    /// Replica target after which the server acknowledges (the paper uses 3).
    pub replica_target: usize,
    /// Number of client requests issued by the modeled client.
    pub client_requests: usize,
    /// Upper bound on ticks per modeled timer; `None` keeps timers running
    /// forever so executions only end at the step bound (needed for liveness
    /// checking).
    pub timer_max_ticks: Option<usize>,
    /// Seeded bugs in the server.
    pub bugs: ReplBugs,
}

impl Default for ReplConfig {
    fn default() -> Self {
        ReplConfig {
            storage_nodes: 3,
            replica_target: 3,
            client_requests: 2,
            // Unbounded timers keep the system from quiescing, so liveness is
            // always judged against the step bound, as in the paper.
            timer_max_ticks: None,
            bugs: ReplBugs::default(),
        }
    }
}

impl ReplConfig {
    /// Configuration with the first (safety) bug re-introduced.
    pub fn with_duplicate_counting_bug() -> Self {
        ReplConfig {
            bugs: ReplBugs {
                count_duplicate_replicas: true,
                ..ReplBugs::default()
            },
            ..ReplConfig::default()
        }
    }

    /// Configuration with the second (liveness) bug re-introduced.
    pub fn with_missing_reset_bug() -> Self {
        ReplConfig {
            bugs: ReplBugs {
                count_duplicate_replicas: false,
                no_counter_reset: true,
                ..ReplBugs::default()
            },
            ..ReplConfig::default()
        }
    }

    /// Configuration with the third, *fault-induced* bug re-introduced: the
    /// server never retransmits to lagging storage nodes, so a single
    /// dropped `ReplReq` on the lossy storage-node channel
    /// (`--faults drop=1`) leaves a request unacknowledged forever. Run it
    /// with [`ReplConfig::fault_plan`]; without message loss the bug is
    /// unreachable.
    pub fn with_lost_replication_bug() -> Self {
        ReplConfig {
            bugs: ReplBugs {
                no_retransmit_on_lag: true,
                ..ReplBugs::default()
            },
            ..ReplConfig::default()
        }
    }

    /// The fault budget this harness is designed around: the storage-node
    /// channels are lossy, and the fixed server tolerates any bounded amount
    /// of loss and duplication through timer-driven resync — two drops and
    /// one duplication give the scheduler room without drowning the run in
    /// faults.
    pub fn fault_plan(&self) -> FaultPlan {
        FaultPlan::new().with_drops(2).with_duplicates(1)
    }
}

/// Ids of the machines created by [`build_harness`], for tests that want to
/// inspect machine state after a run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplHarness {
    /// The server (system-under-test).
    pub server: MachineId,
    /// The modeled client.
    pub client: MachineId,
    /// The modeled storage nodes.
    pub storage_nodes: Vec<MachineId>,
    /// The modeled timers, one per storage node.
    pub timers: Vec<MachineId>,
}

/// Builds the full test harness into `rt` and returns the machine ids.
pub fn build_harness(rt: &mut Runtime, config: &ReplConfig) -> ReplHarness {
    rt.add_monitor(ReplicaSafetyMonitor::new(config.replica_target));
    rt.add_monitor(AckLivenessMonitor::new());

    let server = rt.create_machine(Server::new(config.replica_target, config.bugs));
    let client = rt.create_machine(Client::new(server, config.client_requests));

    let mut storage_nodes = Vec::with_capacity(config.storage_nodes);
    let mut timers = Vec::with_capacity(config.storage_nodes);
    for _ in 0..config.storage_nodes {
        let node = rt.create_machine(StorageNode::new(server));
        // The network into a storage node is lossy: under a fault budget the
        // scheduler may drop queued messages and duplicate replicable ones
        // (the server sends `ReplReq` via `Event::replicable`). The fixed
        // server recovers through timer-driven resync and retransmission.
        rt.mark_lossy(node);
        let mut timer = Timer::with_event(node, || Event::new(Timeout));
        if let Some(max_ticks) = config.timer_max_ticks {
            timer = timer.with_max_ticks(max_ticks);
        }
        let timer = rt.create_machine(timer);
        storage_nodes.push(node);
        timers.push(timer);
    }

    // Replicable: the wiring event must not block the post-setup snapshot
    // that prefix-sharing runs fork from (the server is not lossy, so fault
    // injection can never duplicate it).
    rt.send(
        server,
        Event::replicable(ServerInit {
            client,
            nodes: storage_nodes.clone(),
        }),
    );

    ReplHarness {
        server,
        client,
        storage_nodes,
        timers,
    }
}

/// Hunts for bugs in this harness with a parallel (optionally portfolio)
/// run: the iteration space of `test` is sharded over
/// [`TestConfig::workers`] threads, each execution keeping the seed it would
/// have had serially.
pub fn portfolio_hunt(config: &ReplConfig, test: TestConfig) -> TestReport {
    let config = *config;
    ParallelTestEngine::new(test).run(move |rt| {
        build_harness(rt, &config);
    })
}

/// Model statistics of this harness, for the Table 1 reproduction.
///
/// Machines: server wrapper, client, 3 storage nodes, 3 timers = 8 (with the
/// default configuration). State transitions and action handlers are counted
/// over the machine implementations of this crate.
pub fn model_stats() -> ModelStats {
    let config = ReplConfig::default();
    let machines = 2 + 2 * config.storage_nodes;
    // Handlers: Server {ServerInit, ClientReq, Sync}, StorageNode {ReplReq,
    // Timeout}, Client {start, Ack}, Timer {loop}; monitors: safety {3},
    // liveness {2}.
    let action_handlers = 3 + 2 + 2 + 1 + 3 + 2;
    // Logical state transitions: client awaiting<->idle, liveness hot<->cold,
    // safety per-request reset, server counting->acked.
    let state_transitions = 2 + 2 + 1 + 1;
    ModelStats::new("Example replication system (SS2)")
        .with_bugs(2)
        .with_model(machines, state_transitions, action_handlers)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::Server;
    use psharp::runtime::{Runtime, RuntimeConfig};
    use psharp::scheduler::RandomScheduler;

    fn new_runtime(seed: u64, max_steps: usize) -> Runtime {
        Runtime::new(
            Box::new(RandomScheduler::new(seed)),
            RuntimeConfig {
                max_steps,
                ..RuntimeConfig::default()
            },
            seed,
        )
    }

    #[test]
    fn harness_creates_expected_machines() {
        let mut rt = new_runtime(1, 2_000);
        let harness = build_harness(&mut rt, &ReplConfig::default());
        assert_eq!(harness.storage_nodes.len(), 3);
        assert_eq!(harness.timers.len(), 3);
        assert_eq!(rt.machine_count(), 8);
    }

    #[test]
    fn correct_system_completes_some_executions_without_bug() {
        // A single execution of the fixed system must never flag a violation.
        for seed in 0..20 {
            let mut rt = new_runtime(seed, 4_000);
            build_harness(&mut rt, &ReplConfig::default());
            let outcome = rt.run();
            assert!(
                !matches!(outcome, ExecutionOutcome::BugFound(_)),
                "fixed system flagged a bug with seed {seed}: {outcome:?}"
            );
        }
    }

    #[test]
    fn duplicate_counting_bug_is_found_by_the_engine() {
        let engine = TestEngine::new(
            TestConfig::new()
                .with_iterations(2_000)
                .with_max_steps(2_000)
                .with_seed(7),
        );
        let config = ReplConfig::with_duplicate_counting_bug();
        let report = engine.run(move |rt| {
            build_harness(rt, &config);
        });
        let bug = report.bug.expect("safety bug should be found");
        assert_eq!(bug.bug.kind, BugKind::SafetyViolation);
        assert_eq!(bug.bug.source.as_deref(), Some("ReplicaSafetyMonitor"));
    }

    #[test]
    fn fixed_system_stays_clean_on_a_lossy_network() {
        // The fixed server tolerates dropped and duplicated replication
        // requests: timer-driven resync retransmits until every node caught
        // up, so no liveness (or safety) verdict may fire under the fault
        // budget.
        let config = ReplConfig::default();
        let engine = TestEngine::new(
            TestConfig::new()
                .with_iterations(300)
                .with_max_steps(2_500)
                .with_seed(5)
                .with_faults(config.fault_plan()),
        );
        let report = engine.run(move |rt| {
            build_harness(rt, &config);
        });
        assert!(
            !report.found_bug(),
            "fixed replsim flagged a bug under message loss: {:?}",
            report.bug.map(|b| b.bug)
        );
    }

    #[test]
    fn lost_replication_bug_is_found_via_injected_message_loss() {
        let config = ReplConfig::with_lost_replication_bug();
        let engine = TestEngine::new(
            TestConfig::new()
                .with_iterations(600)
                .with_max_steps(2_500)
                .with_seed(21)
                .with_faults(config.fault_plan()),
        );
        let report = engine.run(move |rt| {
            build_harness(rt, &config);
        });
        let bug = report.bug.expect("lost-replication bug should be found");
        assert_eq!(bug.bug.kind, BugKind::LivenessViolation);
        assert_eq!(bug.bug.source.as_deref(), Some("AckLivenessMonitor"));
        assert!(
            bug.trace.fault_decision_count() >= 1,
            "the bug needs an injected drop in its decision stream"
        );
    }

    #[test]
    fn lost_replication_bug_is_unreachable_without_message_loss() {
        // On a reliable network the missing retransmission is dead code:
        // every node receives the original request.
        let config = ReplConfig::with_lost_replication_bug();
        let engine = TestEngine::new(
            TestConfig::new()
                .with_iterations(300)
                .with_max_steps(2_500)
                .with_seed(21),
        );
        let report = engine.run(move |rt| {
            build_harness(rt, &config);
        });
        assert!(!report.found_bug());
    }

    #[test]
    fn missing_reset_bug_is_found_as_liveness_violation() {
        let engine = TestEngine::new(
            TestConfig::new()
                .with_iterations(200)
                .with_max_steps(3_000)
                .with_seed(11),
        );
        let config = ReplConfig::with_missing_reset_bug();
        let report = engine.run(move |rt| {
            build_harness(rt, &config);
        });
        let bug = report.bug.expect("liveness bug should be found");
        assert_eq!(bug.bug.kind, BugKind::LivenessViolation);
        assert_eq!(bug.bug.source.as_deref(), Some("AckLivenessMonitor"));
    }

    #[test]
    fn client_eventually_gets_all_acks_in_fixed_system() {
        let mut found_complete = false;
        for seed in 0..30 {
            let mut rt = new_runtime(seed, 5_000);
            let harness = build_harness(
                &mut rt,
                &ReplConfig {
                    client_requests: 1,
                    ..ReplConfig::default()
                },
            );
            let outcome = rt.run();
            assert!(
                !matches!(outcome, ExecutionOutcome::BugFound(_)),
                "unexpected violation: {outcome:?}"
            );
            let server = rt
                .machine_ref::<Server>(harness.server)
                .expect("server exists");
            // Periodic sync reports keep re-certifying replicas after the
            // acknowledgement, so the server may ack the same (single)
            // request more than once; completion means at least one ack.
            if server.acks_sent() >= 1 {
                found_complete = true;
                break;
            }
        }
        assert!(
            found_complete,
            "at least one schedule should complete the replication"
        );
    }

    #[test]
    fn model_stats_report_the_harness_size() {
        let stats = model_stats();
        assert_eq!(stats.machines, 8);
        assert_eq!(stats.bugs_found, 2);
        assert!(stats.action_handlers > 0);
    }
}
