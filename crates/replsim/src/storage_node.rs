//! Modeled storage nodes.
//!
//! A storage node stores replicated values in memory (rather than on disk,
//! which would be inefficient during testing) and periodically reports its
//! storage log to the server when its modeled timer fires.

use psharp::prelude::*;

use crate::events::{NotifyReplica, ReplReq, Sync, Timeout};
use crate::monitors::ReplicaSafetyMonitor;

/// A modeled storage node (SN).
#[derive(Clone)]
pub struct StorageNode {
    server: MachineId,
    log: Vec<u64>,
}

impl StorageNode {
    /// Creates a storage node that reports to `server`.
    pub fn new(server: MachineId) -> Self {
        StorageNode {
            server,
            log: Vec::new(),
        }
    }

    /// The node's storage log (exposed for tests).
    pub fn log(&self) -> &[u64] {
        &self.log
    }

    fn store(&mut self, ctx: &mut Context<'_>, data: u64) {
        if self.log.last() != Some(&data) {
            self.log.push(data);
        }
        let node = ctx.id();
        ctx.notify_monitor::<ReplicaSafetyMonitor>(Event::new(NotifyReplica { node, data }));
    }
}

impl Machine for StorageNode {
    fn handle(&mut self, ctx: &mut Context<'_>, event: Event) {
        if let Some(req) = event.downcast_ref::<ReplReq>() {
            self.store(ctx, req.data);
        } else if event.is::<Timeout>() || event.is::<TimerTick>() {
            let node = ctx.id();
            ctx.send(
                self.server,
                Event::new(Sync {
                    node,
                    log: self.log.clone(),
                }),
            );
        }
    }

    fn name(&self) -> &str {
        "StorageNode"
    }

    psharp::impl_machine_snapshot!();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::ClientReq;
    use crate::server::{Server, ServerBugs};
    use psharp::runtime::{Runtime, RuntimeConfig};
    use psharp::scheduler::RoundRobinScheduler;

    struct Sink;
    impl Machine for Sink {
        fn handle(&mut self, _ctx: &mut Context<'_>, _event: Event) {}
    }

    #[test]
    fn storage_node_deduplicates_consecutive_values() {
        let mut rt = Runtime::new(
            Box::new(RoundRobinScheduler::new()),
            RuntimeConfig::default(),
            0,
        );
        let server = rt.create_machine(Sink);
        let node = rt.create_machine(StorageNode::new(server));
        rt.send(node, Event::new(ReplReq { data: 4 }));
        rt.send(node, Event::new(ReplReq { data: 4 }));
        rt.send(node, Event::new(ReplReq { data: 5 }));
        rt.run();
        let sn = rt.machine_ref::<StorageNode>(node).expect("node exists");
        assert_eq!(sn.log(), &[4, 5]);
    }

    #[test]
    fn timeout_sends_sync_with_current_log() {
        let mut rt = Runtime::new(
            Box::new(RoundRobinScheduler::new()),
            RuntimeConfig::default(),
            0,
        );
        let client = rt.create_machine(Sink);
        // Wire a real server so we can observe that the sync is counted.
        let server_placeholder = rt.create_machine(Sink);
        let node = rt.create_machine(StorageNode::new(server_placeholder));
        let _ = client;
        rt.send(node, Event::new(ReplReq { data: 9 }));
        rt.send(node, Event::new(Timeout));
        rt.run();
        let sn = rt.machine_ref::<StorageNode>(node).expect("node exists");
        assert_eq!(sn.log(), &[9]);
    }

    #[test]
    fn end_to_end_replication_with_round_robin_completes() {
        // One client request, three nodes, fixed server, timeouts injected
        // manually: the server must acknowledge exactly once.
        let mut rt = Runtime::new(
            Box::new(RoundRobinScheduler::new()),
            RuntimeConfig::default(),
            0,
        );
        let server = rt.create_machine(Server::new(3, ServerBugs::default()));
        let client = rt.create_machine(Sink);
        let nodes: Vec<MachineId> = (0..3)
            .map(|_| rt.create_machine(StorageNode::new(server)))
            .collect();
        rt.send(
            server,
            Event::new(crate::server::ServerInit {
                client,
                nodes: nodes.clone(),
            }),
        );
        rt.send(server, Event::new(ClientReq { data: 11 }));
        rt.run();
        // Deliver a timeout to each node so they sync, then run again.
        for &node in &nodes {
            rt.send(node, Event::new(Timeout));
        }
        rt.run();
        let server_ref = rt.machine_ref::<Server>(server).expect("server exists");
        assert_eq!(server_ref.acks_sent(), 1);
    }
}
