//! Events exchanged in the replication example, and the notifications sent to
//! its monitors.

use psharp::prelude::MachineId;

/// Client request asking the server to replicate `data`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClientReq {
    /// The value to replicate.
    pub data: u64,
}

/// Acknowledgement from the server to the client that the current request has
/// been replicated to the target number of storage nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Ack;

/// Replication request from the server to a storage node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplReq {
    /// The value to store.
    pub data: u64,
}

/// Periodic synchronization message from a storage node to the server,
/// carrying the node's full storage log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Sync {
    /// The storage node sending the report.
    pub node: MachineId,
    /// The node's storage log, oldest value first.
    pub log: Vec<u64>,
}

/// Timeout delivered to a storage node by its modeled timer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Timeout;

/// Monitor notification: the server accepted a new client request for `data`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NotifyClientReq {
    /// The value the client asked to replicate.
    pub data: u64,
}

/// Monitor notification: storage node `node` now holds `data`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NotifyReplica {
    /// The storage node that stored the value.
    pub node: MachineId,
    /// The stored value.
    pub data: u64,
}

/// Monitor notification: the server acknowledged the current client request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NotifyAck;

#[cfg(test)]
mod tests {
    use super::*;
    use psharp::prelude::Event;

    #[test]
    fn events_have_short_names() {
        assert_eq!(Event::new(ClientReq { data: 1 }).name(), "ClientReq");
        assert_eq!(Event::new(Ack).name(), "Ack");
        assert_eq!(
            Event::new(Sync {
                node: MachineId::from_raw(0),
                log: vec![]
            })
            .name(),
            "Sync"
        );
    }

    #[test]
    fn sync_carries_log() {
        let sync = Sync {
            node: MachineId::from_raw(2),
            log: vec![1, 2, 3],
        };
        let event = Event::new(sync.clone());
        assert_eq!(event.downcast_ref::<Sync>(), Some(&sync));
    }
}
