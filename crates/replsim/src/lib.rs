//! The running example of §2 of the paper: a simple distributed storage
//! system that replicates data sent by a client.
//!
//! The system consists of a client, a server and a configurable number of
//! storage nodes (SNs). The client sends the server a [`events::ClientReq`]
//! with data to replicate and waits for an acknowledgement. The server
//! broadcasts [`events::ReplReq`] to all SNs. Each SN has a timer; on a
//! timeout it sends a [`events::Sync`] with its storage log to the server,
//! which checks whether the SN is up to date and counts replicas. When the
//! replica target is reached the server acknowledges the client.
//!
//! Two bugs from the paper can be re-introduced via [`ReplBugs`]:
//!
//! * **duplicate replica counting** (safety): the server counts every
//!   up-to-date sync, even from an SN that is already counted, so an `Ack`
//!   can be issued when fewer than three distinct replicas exist;
//! * **missing counter reset** (liveness): the server never resets its
//!   replica counter after acknowledging, so the *next* client request is
//!   never acknowledged and the client blocks forever.
//!
//! The harness ([`harness::build_harness`]) wires the system to a
//! [`monitors::ReplicaSafetyMonitor`] and a [`monitors::AckLivenessMonitor`],
//! exactly mirroring Figure 2 of the paper.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod events;
pub mod harness;
pub mod monitors;
pub mod server;
pub mod storage_node;

pub use harness::{build_harness, model_stats, portfolio_hunt, ReplBugs, ReplConfig};
