//! The server: the "real component" under test in the running example.
//!
//! The server is deliberately written in the buggy-or-fixed style of Figure 1
//! of the paper: the two bugs described in §2.2 can be re-introduced
//! individually through [`ServerBugs`].

use std::collections::HashSet;

use psharp::prelude::*;

use crate::events::{Ack, ClientReq, NotifyAck, NotifyClientReq, ReplReq, Sync};
use crate::monitors::{AckLivenessMonitor, ReplicaSafetyMonitor};

/// Which of the server's seeded bugs are active.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerBugs {
    /// Bug 1 (safety): count every up-to-date sync towards the replica
    /// target, even if the syncing storage node was already counted.
    pub count_duplicate_replicas: bool,
    /// Bug 2 (liveness): do not reset the replica counter when a replication
    /// round completes (neither after sending an `Ack` nor when the next
    /// request begins), so later requests are never acknowledged.
    pub no_counter_reset: bool,
    /// Bug 3 (liveness, *fault-induced*): do not re-send the replication
    /// request when a periodic sync shows a storage node lagging behind.
    /// Invisible on a reliable network — the original `ReplReq` always
    /// arrives eventually — but a single dropped message on the lossy
    /// storage-node channel (`Decision::DropMessage`) leaves that node
    /// permanently stale and the request unacknowledged forever.
    pub no_retransmit_on_lag: bool,
}

/// Wiring information delivered to the server before the first request.
///
/// The harness creates the server first (so that the client and storage
/// nodes can be constructed with its id) and then sends this event; mailbox
/// FIFO ordering guarantees it is handled before any client request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServerInit {
    /// The client to acknowledge.
    pub client: MachineId,
    /// The storage nodes to replicate to.
    pub nodes: Vec<MachineId>,
}

/// The replication server.
#[derive(Clone)]
pub struct Server {
    client: Option<MachineId>,
    nodes: Vec<MachineId>,
    replica_target: usize,
    bugs: ServerBugs,
    /// The data of the current in-flight client request.
    data: Option<u64>,
    /// Replica counter, as in the paper's pseudocode.
    replica_count: usize,
    /// Set of unique up-to-date replicas (used by the fixed version).
    replicas: HashSet<MachineId>,
    /// Total acknowledgements issued (exposed for tests).
    acks_sent: usize,
}

impl Server {
    /// Creates a server that acknowledges after `replica_target` replicas.
    ///
    /// The client and storage-node ids arrive later in a [`ServerInit`]
    /// event.
    pub fn new(replica_target: usize, bugs: ServerBugs) -> Self {
        Server {
            client: None,
            nodes: Vec::new(),
            replica_target,
            bugs,
            data: None,
            replica_count: 0,
            replicas: HashSet::new(),
            acks_sent: 0,
        }
    }

    /// Number of acknowledgements the server has issued.
    pub fn acks_sent(&self) -> usize {
        self.acks_sent
    }

    /// Current replica counter value (exposed for tests).
    pub fn replica_count(&self) -> usize {
        self.replica_count
    }

    fn is_up_to_date(&self, log: &[u64]) -> bool {
        match self.data {
            Some(data) => log.last() == Some(&data),
            None => false,
        }
    }

    fn handle_client_req(&mut self, ctx: &mut Context<'_>, req: &ClientReq) {
        self.data = Some(req.data);
        if !self.bugs.no_counter_reset {
            // A new request starts a new replication round: replica tracking
            // from the previous round must not leak into it.
            self.replica_count = 0;
            self.replicas.clear();
        }
        ctx.notify_monitor::<ReplicaSafetyMonitor>(Event::new(NotifyClientReq { data: req.data }));
        ctx.notify_monitor::<AckLivenessMonitor>(Event::new(NotifyClientReq { data: req.data }));
        for &node in &self.nodes.clone() {
            // Replicable: the lossy storage-node channel may drop *or*
            // duplicate replication requests under a fault budget.
            ctx.send(node, Event::replicable(ReplReq { data: req.data }));
        }
    }

    fn handle_sync(&mut self, ctx: &mut Context<'_>, sync: &Sync) {
        let Some(data) = self.data else {
            // No request in flight; nothing to do with the report.
            return;
        };
        if !self.is_up_to_date(&sync.log) {
            if !self.bugs.no_retransmit_on_lag {
                // Retransmission is what makes replication loss-tolerant:
                // a lagging node is simply asked again. The seeded bug skips
                // it, which only matters once the network actually loses a
                // message. Replication requests are replicable events, so a
                // lossy channel can also duplicate them.
                ctx.send(sync.node, Event::replicable(ReplReq { data }));
            }
            return;
        }
        let counted = if self.bugs.count_duplicate_replicas {
            // Buggy: every up-to-date sync increments the counter.
            self.replica_count += 1;
            true
        } else if self.replicas.insert(sync.node) {
            self.replica_count += 1;
            true
        } else {
            false
        };
        // As in the paper's pseudocode, the acknowledgement check happens
        // right after an increment ("if (this.NumReplicas == 3) send Ack").
        if counted && self.replica_count == self.replica_target {
            self.acks_sent += 1;
            if let Some(client) = self.client {
                ctx.send(client, Event::new(Ack));
            }
            ctx.notify_monitor::<ReplicaSafetyMonitor>(Event::new(NotifyAck));
            ctx.notify_monitor::<AckLivenessMonitor>(Event::new(NotifyAck));
            if !self.bugs.no_counter_reset {
                self.replica_count = 0;
                self.replicas.clear();
            }
        }
    }
}

impl Machine for Server {
    fn handle(&mut self, ctx: &mut Context<'_>, event: Event) {
        if let Some(init) = event.downcast_ref::<ServerInit>() {
            self.client = Some(init.client);
            self.nodes = init.nodes.clone();
        } else if let Some(req) = event.downcast_ref::<ClientReq>() {
            self.handle_client_req(ctx, req);
        } else if let Some(sync) = event.downcast_ref::<Sync>() {
            self.handle_sync(ctx, sync);
        }
    }

    fn name(&self) -> &str {
        "Server"
    }

    psharp::impl_machine_snapshot!();
}

#[cfg(test)]
mod tests {
    use super::*;
    use psharp::runtime::{Runtime, RuntimeConfig};
    use psharp::scheduler::RandomScheduler;

    fn sync(node: u64, log: Vec<u64>) -> Sync {
        Sync {
            node: MachineId::from_raw(node),
            log,
        }
    }

    /// Drives a server directly (with sink client and storage-node machines)
    /// by injecting events from the harness side, so the counting logic can
    /// be unit tested without the full harness.
    fn run_server_with_nodes(bugs: ServerBugs, syncs: Vec<Sync>) -> (usize, usize) {
        let mut rt = Runtime::new(
            Box::new(RandomScheduler::new(1)),
            RuntimeConfig::default(),
            1,
        );
        struct Sink;
        impl Machine for Sink {
            fn handle(&mut self, _ctx: &mut Context<'_>, _event: Event) {}
        }
        let server_id = rt.create_machine(Server::new(3, bugs));
        let client = rt.create_machine(Sink);
        let n0 = rt.create_machine(Sink);
        let n1 = rt.create_machine(Sink);
        let n2 = rt.create_machine(Sink);
        rt.send(
            server_id,
            Event::new(ServerInit {
                client,
                nodes: vec![n0, n1, n2],
            }),
        );
        rt.send(server_id, Event::new(ClientReq { data: 7 }));
        for sync in syncs {
            rt.send(server_id, Event::new(sync));
        }
        rt.run();
        let server = rt.machine_ref::<Server>(server_id).expect("server exists");
        (server.acks_sent(), server.replica_count())
    }

    #[test]
    fn fixed_server_counts_unique_replicas_only() {
        let (acks, count) = run_server_with_nodes(
            ServerBugs::default(),
            vec![
                sync(2, vec![7]),
                sync(2, vec![7]),
                sync(2, vec![7]),
                sync(3, vec![7]),
            ],
        );
        assert_eq!(acks, 0, "two unique replicas must not be acknowledged");
        assert_eq!(count, 2);
    }

    #[test]
    fn buggy_server_acks_after_duplicate_syncs() {
        let (acks, _) = run_server_with_nodes(
            ServerBugs {
                count_duplicate_replicas: true,
                no_counter_reset: false,
                ..ServerBugs::default()
            },
            vec![sync(2, vec![7]), sync(2, vec![7]), sync(2, vec![7])],
        );
        assert_eq!(acks, 1, "three duplicate syncs reach the target when buggy");
    }

    #[test]
    fn fixed_server_acknowledges_three_unique_replicas() {
        let (acks, count) = run_server_with_nodes(
            ServerBugs::default(),
            vec![sync(2, vec![7]), sync(3, vec![7]), sync(4, vec![7])],
        );
        assert_eq!(acks, 1);
        assert_eq!(count, 0, "the fixed server resets its counter after an ack");
    }

    #[test]
    fn buggy_no_reset_server_keeps_counter_after_ack() {
        let (acks, count) = run_server_with_nodes(
            ServerBugs {
                count_duplicate_replicas: false,
                no_counter_reset: true,
                ..ServerBugs::default()
            },
            vec![sync(2, vec![7]), sync(3, vec![7]), sync(4, vec![7])],
        );
        assert_eq!(acks, 1);
        assert_eq!(count, 3, "the buggy server never resets the counter");
    }

    #[test]
    fn out_of_date_sync_triggers_re_replication_not_counting() {
        let (acks, count) = run_server_with_nodes(
            ServerBugs::default(),
            vec![sync(2, vec![]), sync(2, vec![3]), sync(3, vec![7])],
        );
        assert_eq!(acks, 0);
        assert_eq!(count, 1, "only the up-to-date node counts");
    }

    #[test]
    fn sync_before_any_request_is_ignored() {
        let mut rt = Runtime::new(
            Box::new(RandomScheduler::new(1)),
            RuntimeConfig::default(),
            1,
        );
        let server_id = rt.create_machine(Server::new(3, ServerBugs::default()));
        rt.send(server_id, Event::new(sync(0, vec![1])));
        rt.run();
        let server = rt.machine_ref::<Server>(server_id).expect("server exists");
        assert_eq!(server.replica_count(), 0);
        assert_eq!(server.acks_sent(), 0);
    }
}
