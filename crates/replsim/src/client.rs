//! The modeled client that drives the system towards interesting behaviors.
//!
//! The client repeatedly sends a nondeterministically generated request to
//! the server and waits for an acknowledgement before sending the next one —
//! the P# environment-modeling pattern of §2.3.

use psharp::prelude::*;

use crate::events::{Ack, ClientReq};

/// The modeled client.
#[derive(Clone)]
pub struct Client {
    server: MachineId,
    remaining_requests: usize,
    awaiting_ack: bool,
    acks_received: usize,
    next_sequence: u64,
}

impl Client {
    /// Creates a client that will issue `requests` requests to `server`.
    pub fn new(server: MachineId, requests: usize) -> Self {
        Client {
            server,
            remaining_requests: requests,
            awaiting_ack: false,
            acks_received: 0,
            next_sequence: 0,
        }
    }

    /// Number of acknowledgements received so far (exposed for tests).
    pub fn acks_received(&self) -> usize {
        self.acks_received
    }

    /// Whether the client is still waiting for an acknowledgement.
    pub fn awaiting_ack(&self) -> bool {
        self.awaiting_ack
    }

    fn send_next_request(&mut self, ctx: &mut Context<'_>) {
        if self.remaining_requests == 0 {
            ctx.halt();
            return;
        }
        self.remaining_requests -= 1;
        // Nondeterministically generated payload, controlled by the runtime.
        // The sequence prefix keeps payloads of distinct requests distinct so
        // the replica-tracking specification is unambiguous.
        let data = self.next_sequence * 1_000 + ctx.random_index(100) as u64 + 1;
        self.next_sequence += 1;
        self.awaiting_ack = true;
        ctx.send(self.server, Event::new(ClientReq { data }));
    }
}

impl Machine for Client {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        self.send_next_request(ctx);
    }

    fn handle(&mut self, ctx: &mut Context<'_>, event: Event) {
        if event.is::<Ack>() && self.awaiting_ack {
            self.awaiting_ack = false;
            self.acks_received += 1;
            self.send_next_request(ctx);
        }
    }

    fn name(&self) -> &str {
        "Client"
    }

    psharp::impl_machine_snapshot!();
}

#[cfg(test)]
mod tests {
    use super::*;
    use psharp::runtime::{ExecutionOutcome, Runtime, RuntimeConfig};
    use psharp::scheduler::RoundRobinScheduler;

    /// A stand-in server that acknowledges every request immediately.
    struct EchoServer;
    impl Machine for EchoServer {
        fn handle(&mut self, ctx: &mut Context<'_>, event: Event) {
            if event.is::<ClientReq>() {
                // The client is always machine #1 in these tests.
                ctx.send(MachineId::from_raw(1), Event::new(Ack));
            }
        }
    }

    #[test]
    fn client_sends_all_requests_when_acknowledged() {
        let mut rt = Runtime::new(
            Box::new(RoundRobinScheduler::new()),
            RuntimeConfig::default(),
            0,
        );
        let server = rt.create_machine(EchoServer);
        let client = rt.create_machine(Client::new(server, 3));
        assert_eq!(rt.run(), ExecutionOutcome::Quiescent);
        let client_ref = rt.machine_ref::<Client>(client).expect("client exists");
        assert_eq!(client_ref.acks_received(), 3);
        assert!(!client_ref.awaiting_ack());
        assert!(rt.is_halted(client));
    }

    #[test]
    fn client_without_ack_stays_waiting() {
        struct SilentServer;
        impl Machine for SilentServer {
            fn handle(&mut self, _ctx: &mut Context<'_>, _event: Event) {}
        }
        let mut rt = Runtime::new(
            Box::new(RoundRobinScheduler::new()),
            RuntimeConfig::default(),
            0,
        );
        let server = rt.create_machine(SilentServer);
        let client = rt.create_machine(Client::new(server, 2));
        assert_eq!(rt.run(), ExecutionOutcome::Quiescent);
        let client_ref = rt.machine_ref::<Client>(client).expect("client exists");
        assert_eq!(client_ref.acks_received(), 0);
        assert!(client_ref.awaiting_ack());
    }

    #[test]
    fn zero_request_client_halts_immediately() {
        struct SilentServer;
        impl Machine for SilentServer {
            fn handle(&mut self, _ctx: &mut Context<'_>, _event: Event) {}
        }
        let mut rt = Runtime::new(
            Box::new(RoundRobinScheduler::new()),
            RuntimeConfig::default(),
            0,
        );
        let server = rt.create_machine(SilentServer);
        let client = rt.create_machine(Client::new(server, 0));
        rt.run();
        assert!(rt.is_halted(client));
    }
}
