//! The safety and liveness specifications of the replication example (§2.4
//! and §2.5 of the paper).

use std::collections::HashSet;

use psharp::prelude::*;

use crate::events::{NotifyAck, NotifyClientReq, NotifyReplica};

/// Safety monitor: an `Ack` must never be issued while fewer than the target
/// number of distinct storage nodes hold the latest data.
#[derive(Clone)]
pub struct ReplicaSafetyMonitor {
    replica_target: usize,
    current_data: Option<u64>,
    replicas: HashSet<MachineId>,
    acks_observed: usize,
}

impl ReplicaSafetyMonitor {
    /// Creates the monitor for a system with the given replica target.
    pub fn new(replica_target: usize) -> Self {
        ReplicaSafetyMonitor {
            replica_target,
            current_data: None,
            replicas: HashSet::new(),
            acks_observed: 0,
        }
    }

    /// Number of acknowledgements observed (exposed for tests).
    pub fn acks_observed(&self) -> usize {
        self.acks_observed
    }

    /// Number of distinct replicas currently holding the latest data.
    pub fn replica_count(&self) -> usize {
        self.replicas.len()
    }
}

impl Monitor for ReplicaSafetyMonitor {
    fn observe(&mut self, ctx: &mut MonitorContext<'_>, event: &Event) {
        if let Some(req) = event.downcast_ref::<NotifyClientReq>() {
            self.current_data = Some(req.data);
            self.replicas.clear();
        } else if let Some(replica) = event.downcast_ref::<NotifyReplica>() {
            if Some(replica.data) == self.current_data {
                self.replicas.insert(replica.node);
            }
        } else if event.is::<NotifyAck>() {
            self.acks_observed += 1;
            ctx.assert(
                self.replicas.len() >= self.replica_target,
                format!(
                    "ack issued with only {} of {} required replicas holding the latest data",
                    self.replicas.len(),
                    self.replica_target
                ),
            );
        }
    }

    fn name(&self) -> &str {
        "ReplicaSafetyMonitor"
    }

    fn clone_state(&self) -> Option<Box<dyn Monitor>> {
        Some(Box::new(self.clone()))
    }
}

/// Liveness monitor: every accepted client request must eventually be
/// acknowledged.
#[derive(Debug, Default, Clone)]
pub struct AckLivenessMonitor {
    waiting_for_ack: bool,
    requests_observed: usize,
    acks_observed: usize,
}

impl AckLivenessMonitor {
    /// Creates the monitor in the cold state.
    pub fn new() -> Self {
        AckLivenessMonitor::default()
    }

    /// Number of client requests observed (exposed for tests).
    pub fn requests_observed(&self) -> usize {
        self.requests_observed
    }

    /// Number of acknowledgements observed (exposed for tests).
    pub fn acks_observed(&self) -> usize {
        self.acks_observed
    }
}

impl Monitor for AckLivenessMonitor {
    fn observe(&mut self, _ctx: &mut MonitorContext<'_>, event: &Event) {
        if event.is::<NotifyClientReq>() {
            self.waiting_for_ack = true;
            self.requests_observed += 1;
        } else if event.is::<NotifyAck>() {
            self.waiting_for_ack = false;
            self.acks_observed += 1;
        }
    }

    fn temperature(&self) -> Temperature {
        if self.waiting_for_ack {
            Temperature::Hot
        } else {
            Temperature::Cold
        }
    }

    fn hot_message(&self) -> String {
        format!(
            "a client request was never acknowledged ({} requests, {} acks)",
            self.requests_observed, self.acks_observed
        )
    }

    fn name(&self) -> &str {
        "AckLivenessMonitor"
    }

    fn clone_state(&self) -> Option<Box<dyn Monitor>> {
        Some(Box::new(self.clone()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psharp::monitor::MonitorContext;

    fn observe(monitor: &mut dyn Monitor, event: Event) -> Option<Bug> {
        let mut bug = None;
        let mut ctx = MonitorContext::new_for_tests(&mut bug);
        monitor.observe(&mut ctx, &event);
        bug
    }

    #[test]
    fn safety_monitor_accepts_ack_with_enough_replicas() {
        let mut monitor = ReplicaSafetyMonitor::new(2);
        assert!(observe(&mut monitor, Event::new(NotifyClientReq { data: 5 })).is_none());
        for node in [1, 2] {
            assert!(observe(
                &mut monitor,
                Event::new(NotifyReplica {
                    node: MachineId::from_raw(node),
                    data: 5
                })
            )
            .is_none());
        }
        assert!(observe(&mut monitor, Event::new(NotifyAck)).is_none());
        assert_eq!(monitor.acks_observed(), 1);
    }

    #[test]
    fn safety_monitor_flags_premature_ack() {
        let mut monitor = ReplicaSafetyMonitor::new(3);
        observe(&mut monitor, Event::new(NotifyClientReq { data: 5 }));
        observe(
            &mut monitor,
            Event::new(NotifyReplica {
                node: MachineId::from_raw(1),
                data: 5,
            }),
        );
        let bug = observe(&mut monitor, Event::new(NotifyAck)).expect("premature ack");
        assert_eq!(bug.kind, BugKind::SafetyViolation);
    }

    #[test]
    fn safety_monitor_ignores_stale_replica_notifications() {
        let mut monitor = ReplicaSafetyMonitor::new(1);
        observe(&mut monitor, Event::new(NotifyClientReq { data: 9 }));
        observe(
            &mut monitor,
            Event::new(NotifyReplica {
                node: MachineId::from_raw(1),
                data: 8,
            }),
        );
        assert_eq!(monitor.replica_count(), 0);
        let bug = observe(&mut monitor, Event::new(NotifyAck)).expect("no valid replica");
        assert_eq!(bug.kind, BugKind::SafetyViolation);
    }

    #[test]
    fn new_request_resets_replica_tracking() {
        let mut monitor = ReplicaSafetyMonitor::new(1);
        observe(&mut monitor, Event::new(NotifyClientReq { data: 1 }));
        observe(
            &mut monitor,
            Event::new(NotifyReplica {
                node: MachineId::from_raw(1),
                data: 1,
            }),
        );
        assert_eq!(monitor.replica_count(), 1);
        observe(&mut monitor, Event::new(NotifyClientReq { data: 2 }));
        assert_eq!(monitor.replica_count(), 0);
    }

    #[test]
    fn liveness_monitor_heats_and_cools() {
        let mut monitor = AckLivenessMonitor::new();
        assert_eq!(monitor.temperature(), Temperature::Cold);
        observe(&mut monitor, Event::new(NotifyClientReq { data: 1 }));
        assert_eq!(monitor.temperature(), Temperature::Hot);
        observe(&mut monitor, Event::new(NotifyAck));
        assert_eq!(monitor.temperature(), Temperature::Cold);
        assert!(monitor.hot_message().contains("never acknowledged"));
    }
}
