//! The thin P# wrapper around the real Extent Manager (Figure 5 of the
//! paper) and the modeled network engine (Figure 7).

use psharp::prelude::*;

use crate::events::{EnToManager, ManagerTick, ManagerToEn};
use crate::extent_manager::{ExtentManager, ExtentManagerConfig, SharedNetworkEngine};
use crate::types::ExtentId;

/// Wiring event telling the wrapper which machine is the testing driver.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SetDriver(pub MachineId);

/// Wraps the real [`ExtentManager`] so it can be driven by the systematic
/// testing runtime:
///
/// * messages from ENs (relayed by the driver) are delivered to
///   [`ExtentManager::process_message`], so the real code runs unmodified;
/// * the manager's internal timer is disabled and its expiration / repair
///   loops are driven by a modeled timer tick ([`ManagerTick`]), with the
///   choice of loop left to a controlled nondeterministic decision;
/// * outbound messages are intercepted by the modeled
///   [`SharedNetworkEngine`] and relayed to the testing driver, which
///   dispatches them to the modeled ENs.
pub struct ExtentManagerMachine {
    manager: ExtentManager,
    outbox: SharedNetworkEngine,
    driver: Option<MachineId>,
}

impl ExtentManagerMachine {
    /// Creates the wrapper, instantiating the real manager with the modeled
    /// network engine installed and its internal timer disabled.
    pub fn new(config: ExtentManagerConfig, managed_extents: Vec<ExtentId>) -> Self {
        let outbox = SharedNetworkEngine::new();
        let mut manager = ExtentManager::new(config, Box::new(outbox.clone()));
        manager.disable_timer();
        for extent in managed_extents {
            manager.register_extent(extent);
        }
        ExtentManagerMachine {
            manager,
            outbox,
            driver: None,
        }
    }

    /// Read access to the wrapped real manager (for tests and examples).
    pub fn manager(&self) -> &ExtentManager {
        &self.manager
    }

    /// Forwards everything the real manager put on the wire to the driver.
    fn drain_outbox(&mut self, ctx: &mut Context<'_>) {
        let outbound = self.outbox.drain();
        if outbound.is_empty() {
            return;
        }
        let driver = self
            .driver
            .expect("SetDriver must be delivered before manager output");
        for (target, message) in outbound {
            ctx.send(driver, Event::new(ManagerToEn { target, message }));
        }
    }
}

impl Machine for ExtentManagerMachine {
    fn handle(&mut self, ctx: &mut Context<'_>, event: Event) {
        if let Some(SetDriver(driver)) = event.downcast_ref::<SetDriver>() {
            self.driver = Some(*driver);
        } else if let Some(relay) = event.downcast_ref::<EnToManager>() {
            self.manager.process_message(relay.message.clone());
            self.drain_outbox(ctx);
        } else if event.is::<ManagerTick>() {
            // The modeled timer replaces both internal loops; which loop runs
            // at this tick is a controlled nondeterministic choice, so the
            // scheduler can explore expiration racing ahead of (or behind)
            // repair.
            if ctx.random_bool() {
                self.manager.run_expiration_loop();
            } else {
                self.manager.run_repair_loop();
            }
            self.drain_outbox(ctx);
        }
    }

    fn name(&self) -> &str {
        "ExtentManagerMachine"
    }

    fn clone_state(&self) -> Option<Box<dyn Machine>> {
        // The outbox is shared with the wrapped manager through an `Rc`
        // handle: fork it so the clone's wire state is fully private.
        let outbox = self.outbox.fork();
        Some(Box::new(ExtentManagerMachine {
            manager: self.manager.clone_with_network(Box::new(outbox.clone())),
            outbox,
            driver: self.driver,
        }))
    }

    fn clone_state_into(&self, target: &mut Box<dyn Machine>) -> bool {
        let outbox = self.outbox.fork();
        let manager = self.manager.clone_with_network(Box::new(outbox.clone()));
        match psharp::monitor::AsAny::as_any_mut(&mut **target).downcast_mut::<Self>() {
            Some(recycled) => {
                recycled.manager = manager;
                recycled.outbox = outbox;
                recycled.driver = self.driver;
            }
            None => {
                *target = Box::new(ExtentManagerMachine {
                    manager,
                    outbox,
                    driver: self.driver,
                });
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{EnId, EnMessage, ExtMgrMessage};
    use psharp::runtime::{Runtime, RuntimeConfig};
    use psharp::scheduler::RoundRobinScheduler;

    /// Sink machine standing in for the testing driver.
    #[derive(Default)]
    struct DriverStub {
        received: Vec<(EnId, ExtMgrMessage)>,
    }
    impl Machine for DriverStub {
        fn handle(&mut self, _ctx: &mut Context<'_>, event: Event) {
            if let Some(out) = event.downcast_ref::<ManagerToEn>() {
                self.received.push((out.target, out.message));
            }
        }
    }

    #[test]
    fn wrapper_relays_repair_requests_to_the_driver() {
        let mut rt = Runtime::new(
            Box::new(RoundRobinScheduler::new()),
            RuntimeConfig::default(),
            0,
        );
        let wrapper = rt.create_machine(ExtentManagerMachine::new(
            ExtentManagerConfig::default(),
            vec![ExtentId(1)],
        ));
        let driver = rt.create_machine(DriverStub::default());
        rt.send(wrapper, Event::new(SetDriver(driver)));
        // Two live ENs, only one replica of extent 1: the repair loop must
        // emit a request, which the wrapper relays to the driver.
        for en in 1..=2 {
            rt.send(
                wrapper,
                Event::new(EnToManager {
                    message: EnMessage::Heartbeat { en: EnId(en) },
                }),
            );
        }
        rt.send(
            wrapper,
            Event::new(EnToManager {
                message: EnMessage::SyncReport {
                    en: EnId(1),
                    extents: vec![ExtentId(1)],
                },
            }),
        );
        // Round-robin's nondeterministic booleans alternate, so two ticks run
        // both the expiration and the repair loop.
        rt.send(wrapper, Event::new(ManagerTick));
        rt.send(wrapper, Event::new(ManagerTick));
        rt.run();
        let stub = rt.machine_ref::<DriverStub>(driver).expect("driver stub");
        assert_eq!(stub.received.len(), 1);
        let (target, message) = stub.received[0];
        assert_eq!(target, EnId(2));
        assert!(matches!(
            message,
            ExtMgrMessage::RepairRequest {
                extent: ExtentId(1),
                source: EnId(1)
            }
        ));
    }

    #[test]
    fn wrapper_disables_the_internal_timer() {
        let wrapper = ExtentManagerMachine::new(ExtentManagerConfig::default(), vec![ExtentId(7)]);
        assert!(!wrapper.manager().internal_timer_enabled());
        assert_eq!(wrapper.manager().extent_center().extent_count(), 1);
    }
}
