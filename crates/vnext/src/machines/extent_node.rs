//! The modeled Extent Node (Figure 8 of the paper).
//!
//! The model omits most of a real EN and keeps only the logic the test needs:
//! periodic heartbeats and sync reports (driven by a modeled timer), repairing
//! an extent from a replica on another EN, and failure handling. It re-uses
//! the real [`EnExtentStore`] bookkeeping component.

use psharp::prelude::*;

use crate::en_store::EnExtentStore;
use crate::events::{
    EnCrashed, EnTick, EnToManager, ExtentCopyRequest, ExtentCopyResponse, NotifyEnFailed,
    NotifyReplicaAdded, RepairRequest,
};
use crate::monitor::RepairMonitor;
use crate::types::{EnId, EnMessage};

/// A modeled Extent Node.
#[derive(Clone)]
pub struct ExtentNodeMachine {
    en_id: EnId,
    manager: MachineId,
    store: EnExtentStore,
    /// Where the crash hook reports this EN's failure (the testing driver),
    /// so a replacement can be launched. `None` in unit tests that exercise
    /// an EN in isolation.
    supervisor: Option<MachineId>,
    heartbeats_sent: usize,
    syncs_sent: usize,
}

impl ExtentNodeMachine {
    /// Creates an EN with the given initial extent placement. Heartbeats and
    /// sync reports are sent directly to the Extent Manager wrapper machine
    /// `manager`, as in Figure 8 of the paper.
    pub fn new(en_id: EnId, manager: MachineId, store: EnExtentStore) -> Self {
        ExtentNodeMachine {
            en_id,
            manager,
            store,
            supervisor: None,
            heartbeats_sent: 0,
            syncs_sent: 0,
        }
    }

    /// Registers the machine that supervises this EN: when the core
    /// scheduler injects a crash fault, the crash hook reports the failure
    /// there (the testing driver, which launches a replacement EN).
    pub fn with_supervisor(mut self, supervisor: MachineId) -> Self {
        self.supervisor = Some(supervisor);
        self
    }

    /// The EN's cluster identifier.
    pub fn en_id(&self) -> EnId {
        self.en_id
    }

    /// The EN's extent bookkeeping (exposed for tests).
    pub fn store(&self) -> &EnExtentStore {
        &self.store
    }

    /// Heartbeats sent so far (exposed for tests).
    pub fn heartbeats_sent(&self) -> usize {
        self.heartbeats_sent
    }

    /// Sync reports sent so far (exposed for tests).
    pub fn syncs_sent(&self) -> usize {
        self.syncs_sent
    }

    fn send_heartbeat(&mut self, ctx: &mut Context<'_>) {
        self.heartbeats_sent += 1;
        ctx.send(
            self.manager,
            Event::new(EnToManager {
                message: EnMessage::Heartbeat { en: self.en_id },
            }),
        );
    }

    fn send_sync_report(&mut self, ctx: &mut Context<'_>) {
        self.syncs_sent += 1;
        ctx.send(
            self.manager,
            Event::new(EnToManager {
                message: EnMessage::SyncReport {
                    en: self.en_id,
                    extents: self.store.sync_report(),
                },
            }),
        );
    }
}

impl Machine for ExtentNodeMachine {
    fn handle(&mut self, ctx: &mut Context<'_>, event: Event) {
        if event.is::<EnTick>() || event.is::<TimerTick>() {
            // Heartbeats are frequent, sync reports less so; which one this
            // tick produces is a controlled nondeterministic choice so the
            // scheduler can starve either.
            if ctx.random_bool() {
                self.send_heartbeat(ctx);
            } else {
                self.send_sync_report(ctx);
            }
        } else if let Some(repair) = event.downcast_ref::<RepairRequest>() {
            // Extent repair: ask the named source replica for a copy.
            let me = ctx.id();
            if !self.store.contains(repair.extent) {
                ctx.send(
                    repair.source_machine,
                    Event::new(ExtentCopyRequest {
                        extent: repair.extent,
                        requester: me,
                    }),
                );
            }
        } else if let Some(copy_req) = event.downcast_ref::<ExtentCopyRequest>() {
            ctx.send(
                copy_req.requester,
                Event::new(ExtentCopyResponse {
                    extent: copy_req.extent,
                    success: self.store.contains(copy_req.extent),
                }),
            );
        } else if let Some(copy_resp) = event.downcast_ref::<ExtentCopyResponse>() {
            if copy_resp.success && self.store.add(copy_resp.extent) {
                ctx.notify_monitor::<RepairMonitor>(Event::new(NotifyReplicaAdded {
                    en: self.en_id,
                    extent: copy_resp.extent,
                }));
            }
        }
    }

    fn on_crash(&mut self, ctx: &mut Context<'_>) {
        // The crash is injected by the core scheduler
        // (`Decision::CrashMachine`) under the test's fault budget; this
        // hook models the environment noticing it: the liveness monitor
        // learns the replicas are gone, and the supervising driver launches
        // a replacement EN.
        ctx.notify_monitor::<RepairMonitor>(Event::new(NotifyEnFailed { en: self.en_id }));
        if let Some(supervisor) = self.supervisor {
            ctx.send(supervisor, Event::new(EnCrashed { en: self.en_id }));
        }
    }

    fn name(&self) -> &str {
        "ExtentNodeMachine"
    }

    psharp::impl_machine_snapshot!();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::ExtentId;
    use psharp::runtime::{Runtime, RuntimeConfig};
    use psharp::scheduler::RoundRobinScheduler;

    #[derive(Default)]
    struct DriverStub {
        heartbeats: usize,
        syncs: usize,
    }
    impl Machine for DriverStub {
        fn handle(&mut self, _ctx: &mut Context<'_>, event: Event) {
            if let Some(relay) = event.downcast_ref::<EnToManager>() {
                match relay.message {
                    EnMessage::Heartbeat { .. } => self.heartbeats += 1,
                    EnMessage::SyncReport { .. } => self.syncs += 1,
                }
            }
        }
    }

    fn new_runtime() -> Runtime {
        Runtime::new(
            Box::new(RoundRobinScheduler::new()),
            RuntimeConfig::default(),
            0,
        )
    }

    #[test]
    fn ticks_produce_heartbeats_and_sync_reports() {
        let mut rt = new_runtime();
        let driver = rt.create_machine(DriverStub::default());
        let en = rt.create_machine(ExtentNodeMachine::new(
            EnId(1),
            driver,
            EnExtentStore::new(),
        ));
        for _ in 0..4 {
            rt.send(en, Event::new(EnTick));
        }
        rt.run();
        let stub = rt.machine_ref::<DriverStub>(driver).expect("driver");
        // Round-robin alternates the nondeterministic boolean, so the four
        // ticks split evenly.
        assert_eq!(stub.heartbeats, 2);
        assert_eq!(stub.syncs, 2);
    }

    #[test]
    fn repair_flow_copies_extent_from_source() {
        let mut rt = new_runtime();
        let driver = rt.create_machine(DriverStub::default());
        let source = rt.create_machine(ExtentNodeMachine::new(
            EnId(1),
            driver,
            EnExtentStore::with_extents([ExtentId(9)]),
        ));
        let target = rt.create_machine(ExtentNodeMachine::new(
            EnId(2),
            driver,
            EnExtentStore::new(),
        ));
        rt.send(
            target,
            Event::new(RepairRequest {
                extent: ExtentId(9),
                source_machine: source,
            }),
        );
        rt.run();
        let target_ref = rt
            .machine_ref::<ExtentNodeMachine>(target)
            .expect("target EN");
        assert!(target_ref.store().contains(ExtentId(9)));
    }

    #[test]
    fn repair_request_for_already_stored_extent_is_ignored() {
        let mut rt = new_runtime();
        let driver = rt.create_machine(DriverStub::default());
        let source = rt.create_machine(ExtentNodeMachine::new(
            EnId(1),
            driver,
            EnExtentStore::with_extents([ExtentId(9)]),
        ));
        let target = rt.create_machine(ExtentNodeMachine::new(
            EnId(2),
            driver,
            EnExtentStore::with_extents([ExtentId(9)]),
        ));
        rt.send(
            target,
            Event::new(RepairRequest {
                extent: ExtentId(9),
                source_machine: source,
            }),
        );
        rt.run();
        // Two steps: target start + repair request; no copy round-trip.
        let source_ref = rt
            .machine_ref::<ExtentNodeMachine>(source)
            .expect("source EN");
        assert_eq!(source_ref.store().len(), 1);
    }

    #[test]
    fn copy_from_source_without_replica_fails_gracefully() {
        let mut rt = new_runtime();
        let driver = rt.create_machine(DriverStub::default());
        let source = rt.create_machine(ExtentNodeMachine::new(
            EnId(1),
            driver,
            EnExtentStore::new(),
        ));
        let target = rt.create_machine(ExtentNodeMachine::new(
            EnId(2),
            driver,
            EnExtentStore::new(),
        ));
        rt.send(
            target,
            Event::new(RepairRequest {
                extent: ExtentId(5),
                source_machine: source,
            }),
        );
        rt.run();
        let target_ref = rt
            .machine_ref::<ExtentNodeMachine>(target)
            .expect("target EN");
        assert!(!target_ref.store().contains(ExtentId(5)));
    }

    #[test]
    fn injected_crash_silences_the_en_and_notifies_the_supervisor() {
        use psharp::prelude::{FaultPlan, SchedulerKind};

        /// Supervisor stub recording crash notices.
        #[derive(Default)]
        struct SupervisorStub {
            crashed: Vec<EnId>,
        }
        impl Machine for SupervisorStub {
            fn handle(&mut self, _ctx: &mut Context<'_>, event: Event) {
                if let Some(notice) = event.downcast_ref::<EnCrashed>() {
                    self.crashed.push(notice.en);
                }
            }
        }

        for seed in 0..20 {
            let mut rt = Runtime::new(
                SchedulerKind::Random.build(seed, 400),
                RuntimeConfig {
                    max_steps: 400,
                    faults: FaultPlan::new().with_crashes(1),
                    ..RuntimeConfig::default()
                },
                seed,
            );
            let driver = rt.create_machine(DriverStub::default());
            let supervisor = rt.create_machine(SupervisorStub::default());
            let en = rt.create_machine(
                ExtentNodeMachine::new(EnId(1), driver, EnExtentStore::new())
                    .with_supervisor(supervisor),
            );
            rt.mark_crashable(en);
            for _ in 0..40 {
                rt.send(en, Event::new(EnTick));
            }
            rt.run();
            if !rt.is_crashed(en) {
                continue;
            }
            let stub = rt.machine_ref::<DriverStub>(driver).expect("driver");
            assert!(
                stub.heartbeats + stub.syncs < 40,
                "the crash must cut the tick backlog short"
            );
            let sup = rt
                .machine_ref::<SupervisorStub>(supervisor)
                .expect("supervisor");
            assert_eq!(sup.crashed, vec![EnId(1)], "the crash hook reported");
            return;
        }
        panic!("no seed in 0..20 fired the crash fault");
    }
}
