//! The P# test harness machines for the vNext case study (Figure 4 of the
//! paper): the wrapper around the real Extent Manager, the modeled Extent
//! Nodes, and the testing driver that relays messages and injects failures.
//! Timers are the generic modeled [`psharp::timer::Timer`] machines.

pub mod driver;
pub mod extent_node;
pub mod manager;

pub use driver::TestingDriver;
pub use extent_node::ExtentNodeMachine;
pub use manager::ExtentManagerMachine;
