//! The `TestingDriver` machine (Figure 10 of the paper).
//!
//! The driver plays two roles:
//!
//! * **dispatching intercepted manager output** — repair requests captured by
//!   the modeled network engine name ENs by their cluster id; the driver
//!   translates them to the corresponding EN machines;
//! * **failure injection** — it nondeterministically chooses an EN, fails it,
//!   and launches a replacement EN (the paper's second testing scenario).

use std::collections::BTreeMap;

use psharp::prelude::*;
use psharp::timer::Timer;

use crate::en_store::EnExtentStore;
use crate::events::{DriverTick, EnTick, FailureEvent, ManagerToEn, RepairRequest};
use crate::machines::extent_node::ExtentNodeMachine;
use crate::types::{EnId, ExtMgrMessage};

/// Wiring event delivered to the driver before the run starts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DriverInit {
    /// The EN machines in the initial cluster.
    pub ens: Vec<(EnId, MachineId)>,
}

/// The testing driver machine.
pub struct TestingDriver {
    manager: MachineId,
    ens: BTreeMap<EnId, MachineId>,
    next_en_id: u64,
    inject_failure: bool,
    failure_injected: bool,
    relayed_to_ens: usize,
}

impl TestingDriver {
    /// Creates a driver that dispatches intercepted output of `manager` and,
    /// when `inject_failure` is set, fails one EN and launches a replacement.
    pub fn new(manager: MachineId, inject_failure: bool) -> Self {
        TestingDriver {
            manager,
            ens: BTreeMap::new(),
            next_en_id: 0,
            inject_failure,
            failure_injected: false,
            relayed_to_ens: 0,
        }
    }

    /// Whether the failure has already been injected (exposed for tests).
    pub fn failure_injected(&self) -> bool {
        self.failure_injected
    }

    /// Number of manager → EN messages dispatched (exposed for tests).
    pub fn relayed_to_ens(&self) -> usize {
        self.relayed_to_ens
    }

    fn inject_node_failure(&mut self, ctx: &mut Context<'_>) {
        let candidates: Vec<(EnId, MachineId)> = self.ens.iter().map(|(&k, &v)| (k, v)).collect();
        if candidates.is_empty() {
            return;
        }
        // Nondeterministically choose which EN fails.
        let victim = *ctx.choose(&candidates);
        self.failure_injected = true;
        ctx.send(victim.1, Event::new(FailureEvent));

        // Launch a replacement EN with an empty store, plus its modeled timer.
        let new_en_id = EnId(self.next_en_id);
        self.next_en_id += 1;
        let new_en = ctx.create(ExtentNodeMachine::new(
            new_en_id,
            self.manager,
            EnExtentStore::new(),
        ));
        ctx.create(Timer::with_event(new_en, || Event::new(EnTick)));
        self.ens.insert(new_en_id, new_en);
    }
}

impl Machine for TestingDriver {
    fn handle(&mut self, ctx: &mut Context<'_>, event: Event) {
        if let Some(init) = event.downcast_ref::<DriverInit>() {
            for &(en_id, machine) in &init.ens {
                self.ens.insert(en_id, machine);
                self.next_en_id = self.next_en_id.max(en_id.0 + 1);
            }
        } else if let Some(outbound) = event.downcast_ref::<ManagerToEn>() {
            self.relayed_to_ens += 1;
            let ExtMgrMessage::RepairRequest { extent, source } = outbound.message;
            let (Some(&target_machine), Some(&source_machine)) =
                (self.ens.get(&outbound.target), self.ens.get(&source))
            else {
                // The manager addressed an EN the harness never created (it
                // can only happen after the manager's view diverged from the
                // cluster); the message is dropped like a network would.
                return;
            };
            ctx.send(
                target_machine,
                Event::new(RepairRequest {
                    extent,
                    source_machine,
                }),
            );
        } else if event.is::<DriverTick>() || event.is::<TimerTick>() {
            // Failure injection happens at a nondeterministically chosen tick.
            if self.inject_failure && !self.failure_injected && ctx.random_bool() {
                self.inject_node_failure(ctx);
            }
        }
    }

    fn name(&self) -> &str {
        "TestingDriver"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::ExtentId;
    use psharp::runtime::{Runtime, RuntimeConfig};
    use psharp::scheduler::{RandomScheduler, RoundRobinScheduler};

    /// Sink standing in for the Extent Manager wrapper machine.
    #[derive(Default)]
    struct ManagerStub;
    impl Machine for ManagerStub {
        fn handle(&mut self, _ctx: &mut Context<'_>, _event: Event) {}
    }

    fn new_runtime(max_steps: usize) -> Runtime {
        Runtime::new(
            Box::new(RoundRobinScheduler::new()),
            RuntimeConfig {
                max_steps,
                ..RuntimeConfig::default()
            },
            0,
        )
    }

    #[test]
    fn driver_translates_repair_requests_to_en_machines() {
        let mut rt = new_runtime(1_000);
        let manager = rt.create_machine(ManagerStub);
        let driver = rt.create_machine(TestingDriver::new(manager, false));
        let source = rt.create_machine(ExtentNodeMachine::new(
            EnId(0),
            manager,
            EnExtentStore::with_extents([ExtentId(1)]),
        ));
        let target = rt.create_machine(ExtentNodeMachine::new(
            EnId(1),
            manager,
            EnExtentStore::new(),
        ));
        rt.send(
            driver,
            Event::new(DriverInit {
                ens: vec![(EnId(0), source), (EnId(1), target)],
            }),
        );
        rt.send(
            driver,
            Event::new(ManagerToEn {
                target: EnId(1),
                message: ExtMgrMessage::RepairRequest {
                    extent: ExtentId(1),
                    source: EnId(0),
                },
            }),
        );
        rt.run();
        let target_ref = rt.machine_ref::<ExtentNodeMachine>(target).unwrap();
        assert!(target_ref.store().contains(ExtentId(1)));
    }

    #[test]
    fn repair_request_for_unknown_en_is_dropped() {
        let mut rt = new_runtime(1_000);
        let manager = rt.create_machine(ManagerStub);
        let driver = rt.create_machine(TestingDriver::new(manager, false));
        rt.send(
            driver,
            Event::new(ManagerToEn {
                target: EnId(9),
                message: ExtMgrMessage::RepairRequest {
                    extent: ExtentId(1),
                    source: EnId(8),
                },
            }),
        );
        let outcome = rt.run();
        assert!(
            !matches!(outcome, ExecutionOutcome::BugFound(_)),
            "unexpected violation: {outcome:?}"
        );
        assert_eq!(
            rt.machine_ref::<TestingDriver>(driver)
                .unwrap()
                .relayed_to_ens(),
            1
        );
    }

    #[test]
    fn driver_eventually_injects_exactly_one_failure() {
        let mut rt = Runtime::new(
            Box::new(RandomScheduler::new(5)),
            RuntimeConfig {
                max_steps: 400,
                ..RuntimeConfig::default()
            },
            5,
        );
        let manager = rt.create_machine(ManagerStub);
        let driver = rt.create_machine(TestingDriver::new(manager, true));
        let en = rt.create_machine(ExtentNodeMachine::new(
            EnId(0),
            manager,
            EnExtentStore::new(),
        ));
        rt.send(
            driver,
            Event::new(DriverInit {
                ens: vec![(EnId(0), en)],
            }),
        );
        for _ in 0..32 {
            rt.send(driver, Event::new(DriverTick));
        }
        rt.run();
        let driver_ref = rt.machine_ref::<TestingDriver>(driver).unwrap();
        assert!(driver_ref.failure_injected());
        assert!(rt.is_halted(en));
        // A replacement EN and its timer were created.
        assert_eq!(rt.machine_count(), 5);
    }

    #[test]
    fn driver_without_failure_injection_never_fails_nodes() {
        let mut rt = new_runtime(1_000);
        let manager = rt.create_machine(ManagerStub);
        let driver = rt.create_machine(TestingDriver::new(manager, false));
        let en = rt.create_machine(ExtentNodeMachine::new(
            EnId(0),
            manager,
            EnExtentStore::new(),
        ));
        rt.send(
            driver,
            Event::new(DriverInit {
                ens: vec![(EnId(0), en)],
            }),
        );
        for _ in 0..8 {
            rt.send(driver, Event::new(DriverTick));
        }
        rt.run();
        assert!(!rt
            .machine_ref::<TestingDriver>(driver)
            .unwrap()
            .failure_injected());
        assert!(!rt.is_halted(en));
    }
}
