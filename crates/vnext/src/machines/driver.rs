//! The `TestingDriver` machine (Figure 10 of the paper).
//!
//! The driver plays two roles:
//!
//! * **dispatching intercepted manager output** — repair requests captured by
//!   the modeled network engine name ENs by their cluster id; the driver
//!   translates them to the corresponding EN machines;
//! * **reacting to EN crashes** — EN failures themselves are injected by the
//!   core scheduler (`Decision::CrashMachine`, under the test's fault
//!   budget); the crashed EN's hook reports [`EnCrashed`] here, and the
//!   driver launches a replacement EN with an empty store (the
//!   cluster-operator half of the paper's fail-and-repair scenario).

use std::collections::BTreeMap;

use psharp::prelude::*;
use psharp::timer::Timer;

use crate::en_store::EnExtentStore;
use crate::events::{EnCrashed, EnTick, ManagerToEn, RepairRequest};
use crate::machines::extent_node::ExtentNodeMachine;
use crate::types::{EnId, ExtMgrMessage};

/// Wiring event delivered to the driver before the run starts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DriverInit {
    /// The EN machines in the initial cluster.
    pub ens: Vec<(EnId, MachineId)>,
}

/// The testing driver machine.
#[derive(Clone)]
pub struct TestingDriver {
    manager: MachineId,
    ens: BTreeMap<EnId, MachineId>,
    next_en_id: u64,
    replacements_launched: usize,
    relayed_to_ens: usize,
}

impl TestingDriver {
    /// Creates a driver that dispatches intercepted output of `manager` and
    /// launches replacement ENs when crashed ENs report in.
    pub fn new(manager: MachineId) -> Self {
        TestingDriver {
            manager,
            ens: BTreeMap::new(),
            next_en_id: 0,
            replacements_launched: 0,
            relayed_to_ens: 0,
        }
    }

    /// Number of replacement ENs launched after crashes (exposed for tests).
    pub fn replacements_launched(&self) -> usize {
        self.replacements_launched
    }

    /// Number of manager → EN messages dispatched (exposed for tests).
    pub fn relayed_to_ens(&self) -> usize {
        self.relayed_to_ens
    }

    fn handle_en_crash(&mut self, ctx: &mut Context<'_>, crashed: EnId) {
        self.ens.remove(&crashed);
        self.replacements_launched += 1;
        // Launch a replacement EN with an empty store, plus its modeled
        // timer. The replacement is supervised by this driver and is as
        // crashable as the node it replaces (the fault budget bounds how
        // many crashes can actually happen).
        let new_en_id = EnId(self.next_en_id);
        self.next_en_id += 1;
        let me = ctx.id();
        let new_en = ctx.create(
            ExtentNodeMachine::new(new_en_id, self.manager, EnExtentStore::new())
                .with_supervisor(me),
        );
        ctx.mark_crashable(new_en);
        ctx.create(Timer::with_event(new_en, || Event::new(EnTick)));
        self.ens.insert(new_en_id, new_en);
    }
}

impl Machine for TestingDriver {
    fn handle(&mut self, ctx: &mut Context<'_>, event: Event) {
        if let Some(init) = event.downcast_ref::<DriverInit>() {
            for &(en_id, machine) in &init.ens {
                self.ens.insert(en_id, machine);
                self.next_en_id = self.next_en_id.max(en_id.0 + 1);
            }
        } else if let Some(outbound) = event.downcast_ref::<ManagerToEn>() {
            self.relayed_to_ens += 1;
            let ExtMgrMessage::RepairRequest { extent, source } = outbound.message;
            let (Some(&target_machine), Some(&source_machine)) =
                (self.ens.get(&outbound.target), self.ens.get(&source))
            else {
                // The manager addressed an EN the harness never created (it
                // can only happen after the manager's view diverged from the
                // cluster); the message is dropped like a network would.
                return;
            };
            ctx.send(
                target_machine,
                Event::new(RepairRequest {
                    extent,
                    source_machine,
                }),
            );
        } else if let Some(crashed) = event.downcast_ref::<EnCrashed>() {
            self.handle_en_crash(ctx, crashed.en);
        }
    }

    fn name(&self) -> &str {
        "TestingDriver"
    }

    psharp::impl_machine_snapshot!();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::ExtentId;
    use psharp::runtime::{Runtime, RuntimeConfig};
    use psharp::scheduler::{RandomScheduler, RoundRobinScheduler};

    /// Sink standing in for the Extent Manager wrapper machine.
    #[derive(Default)]
    struct ManagerStub;
    impl Machine for ManagerStub {
        fn handle(&mut self, _ctx: &mut Context<'_>, _event: Event) {}
    }

    fn new_runtime(max_steps: usize) -> Runtime {
        Runtime::new(
            Box::new(RoundRobinScheduler::new()),
            RuntimeConfig {
                max_steps,
                ..RuntimeConfig::default()
            },
            0,
        )
    }

    #[test]
    fn driver_translates_repair_requests_to_en_machines() {
        let mut rt = new_runtime(1_000);
        let manager = rt.create_machine(ManagerStub);
        let driver = rt.create_machine(TestingDriver::new(manager));
        let source = rt.create_machine(ExtentNodeMachine::new(
            EnId(0),
            manager,
            EnExtentStore::with_extents([ExtentId(1)]),
        ));
        let target = rt.create_machine(ExtentNodeMachine::new(
            EnId(1),
            manager,
            EnExtentStore::new(),
        ));
        rt.send(
            driver,
            Event::new(DriverInit {
                ens: vec![(EnId(0), source), (EnId(1), target)],
            }),
        );
        rt.send(
            driver,
            Event::new(ManagerToEn {
                target: EnId(1),
                message: ExtMgrMessage::RepairRequest {
                    extent: ExtentId(1),
                    source: EnId(0),
                },
            }),
        );
        rt.run();
        let target_ref = rt.machine_ref::<ExtentNodeMachine>(target).unwrap();
        assert!(target_ref.store().contains(ExtentId(1)));
    }

    #[test]
    fn repair_request_for_unknown_en_is_dropped() {
        let mut rt = new_runtime(1_000);
        let manager = rt.create_machine(ManagerStub);
        let driver = rt.create_machine(TestingDriver::new(manager));
        rt.send(
            driver,
            Event::new(ManagerToEn {
                target: EnId(9),
                message: ExtMgrMessage::RepairRequest {
                    extent: ExtentId(1),
                    source: EnId(8),
                },
            }),
        );
        let outcome = rt.run();
        assert!(
            !matches!(outcome, ExecutionOutcome::BugFound(_)),
            "unexpected violation: {outcome:?}"
        );
        assert_eq!(
            rt.machine_ref::<TestingDriver>(driver)
                .unwrap()
                .relayed_to_ens(),
            1
        );
    }

    #[test]
    fn driver_launches_a_replacement_after_an_injected_crash() {
        use psharp::prelude::FaultPlan;
        for seed in 0..20 {
            let mut rt = Runtime::new(
                Box::new(RandomScheduler::new(seed)),
                RuntimeConfig {
                    max_steps: 400,
                    faults: FaultPlan::new().with_crashes(1),
                    ..RuntimeConfig::default()
                },
                seed,
            );
            let manager = rt.create_machine(ManagerStub);
            let driver = rt.create_machine(TestingDriver::new(manager));
            let en = rt.create_machine(
                ExtentNodeMachine::new(EnId(0), manager, EnExtentStore::new())
                    .with_supervisor(driver),
            );
            rt.mark_crashable(en);
            rt.send(
                driver,
                Event::new(DriverInit {
                    ens: vec![(EnId(0), en)],
                }),
            );
            // Keep the execution alive so the fault gate gets probe
            // opportunities.
            for _ in 0..64 {
                rt.send(en, Event::new(crate::events::EnTick));
            }
            rt.run();
            if !rt.is_crashed(en) {
                continue;
            }
            let driver_ref = rt.machine_ref::<TestingDriver>(driver).unwrap();
            assert_eq!(driver_ref.replacements_launched(), 1);
            // A replacement EN and its timer were created.
            assert_eq!(rt.machine_count(), 5);
            return;
        }
        panic!("no seed in 0..20 fired the crash fault");
    }

    #[test]
    fn without_a_fault_budget_no_en_ever_crashes() {
        let mut rt = new_runtime(1_000);
        let manager = rt.create_machine(ManagerStub);
        let driver = rt.create_machine(TestingDriver::new(manager));
        let en = rt.create_machine(
            ExtentNodeMachine::new(EnId(0), manager, EnExtentStore::new()).with_supervisor(driver),
        );
        rt.mark_crashable(en);
        rt.send(
            driver,
            Event::new(DriverInit {
                ens: vec![(EnId(0), en)],
            }),
        );
        for _ in 0..8 {
            rt.send(en, Event::new(crate::events::EnTick));
        }
        rt.run();
        assert!(!rt.is_crashed(en));
        assert_eq!(
            rt.machine_ref::<TestingDriver>(driver)
                .unwrap()
                .replacements_launched(),
            0
        );
    }
}
