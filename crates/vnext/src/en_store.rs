//! Extent bookkeeping on the Extent Node side.
//!
//! This is the "real vNext component" that the paper's modeled EN re-uses
//! ("the P# test harness leverages components of the real vNext system
//! whenever it is appropriate"): the store tracks which extents an EN holds
//! and produces the periodic sync report.

use std::collections::BTreeSet;

use crate::types::ExtentId;

/// The set of extents stored on one Extent Node.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EnExtentStore {
    extents: BTreeSet<ExtentId>,
}

impl EnExtentStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        EnExtentStore::default()
    }

    /// Creates a store pre-populated with `extents` (initial placement).
    pub fn with_extents(extents: impl IntoIterator<Item = ExtentId>) -> Self {
        EnExtentStore {
            extents: extents.into_iter().collect(),
        }
    }

    /// Adds an extent replica (e.g. after a successful copy). Returns `true`
    /// when the extent was not already stored.
    pub fn add(&mut self, extent: ExtentId) -> bool {
        self.extents.insert(extent)
    }

    /// Removes an extent replica. Returns `true` when it was present.
    pub fn remove(&mut self, extent: ExtentId) -> bool {
        self.extents.remove(&extent)
    }

    /// Returns `true` when the EN holds a replica of `extent`.
    pub fn contains(&self, extent: ExtentId) -> bool {
        self.extents.contains(&extent)
    }

    /// Produces the content of a sync report: every extent stored on the EN.
    pub fn sync_report(&self) -> Vec<ExtentId> {
        self.extents.iter().copied().collect()
    }

    /// Number of extents stored.
    pub fn len(&self) -> usize {
        self.extents.len()
    }

    /// Returns `true` when the EN stores no extents.
    pub fn is_empty(&self) -> bool {
        self.extents.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_remove_contains() {
        let mut store = EnExtentStore::new();
        assert!(store.is_empty());
        assert!(store.add(ExtentId(1)));
        assert!(
            !store.add(ExtentId(1)),
            "double add reports already present"
        );
        assert!(store.contains(ExtentId(1)));
        assert!(store.remove(ExtentId(1)));
        assert!(!store.remove(ExtentId(1)));
        assert!(store.is_empty());
    }

    #[test]
    fn sync_report_lists_all_extents_in_order() {
        let store = EnExtentStore::with_extents([ExtentId(3), ExtentId(1), ExtentId(2)]);
        assert_eq!(
            store.sync_report(),
            vec![ExtentId(1), ExtentId(2), ExtentId(3)]
        );
        assert_eq!(store.len(), 3);
    }
}
