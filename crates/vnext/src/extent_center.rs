//! The Extent Manager's two core data structures (Figure 6 of the paper):
//! the [`ExtentCenter`], mapping extents to the ENs believed to hold them,
//! and the [`ExtentNodeMap`], mapping ENs to their latest heartbeat time.

use std::collections::{BTreeMap, BTreeSet};

use crate::types::{EnId, ExtentId};

/// Maps every managed extent to the set of ENs believed to host a replica.
///
/// Updated from periodic EN sync reports, which carry the ground truth of a
/// single EN, and pruned when ENs are expired.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ExtentCenter {
    locations: BTreeMap<ExtentId, BTreeSet<EnId>>,
}

impl ExtentCenter {
    /// Creates an empty extent center.
    pub fn new() -> Self {
        ExtentCenter::default()
    }

    /// Registers an extent with no known replicas (used when the ExtMgr is
    /// told it manages an extent before any sync report arrives).
    pub fn register_extent(&mut self, extent: ExtentId) {
        self.locations.entry(extent).or_default();
    }

    /// Applies a sync report from `en`: `extents` is the complete list of
    /// extents stored on that EN, so the EN is added as a replica of each
    /// listed extent and removed from every extent it no longer reports.
    pub fn apply_sync_report(&mut self, en: EnId, extents: &[ExtentId]) {
        let reported: BTreeSet<ExtentId> = extents.iter().copied().collect();
        for extent in &reported {
            self.locations.entry(*extent).or_default().insert(en);
        }
        for (extent, replicas) in &mut self.locations {
            if !reported.contains(extent) {
                replicas.remove(&en);
            }
        }
    }

    /// Removes `en` from every extent's replica set (used when an EN is
    /// expired).
    pub fn remove_en(&mut self, en: EnId) {
        for replicas in self.locations.values_mut() {
            replicas.remove(&en);
        }
    }

    /// The ENs currently believed to hold a replica of `extent`.
    pub fn replicas(&self, extent: ExtentId) -> Vec<EnId> {
        self.locations
            .get(&extent)
            .map(|s| s.iter().copied().collect())
            .unwrap_or_default()
    }

    /// Number of replicas currently believed to exist for `extent`.
    pub fn replica_count(&self, extent: ExtentId) -> usize {
        self.locations.get(&extent).map(BTreeSet::len).unwrap_or(0)
    }

    /// Iterates over all managed extents and their replica sets.
    pub fn iter(&self) -> impl Iterator<Item = (ExtentId, &BTreeSet<EnId>)> {
        self.locations.iter().map(|(k, v)| (*k, v))
    }

    /// Number of managed extents.
    pub fn extent_count(&self) -> usize {
        self.locations.len()
    }
}

/// Maps every live EN to the logical time of its latest heartbeat.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ExtentNodeMap {
    heartbeats: BTreeMap<EnId, u64>,
}

impl ExtentNodeMap {
    /// Creates an empty node map.
    pub fn new() -> Self {
        ExtentNodeMap::default()
    }

    /// Records a heartbeat from `en` at logical time `now`. Unknown ENs are
    /// added (this is how newly launched ENs join).
    pub fn record_heartbeat(&mut self, en: EnId, now: u64) {
        self.heartbeats.insert(en, now);
    }

    /// Returns `true` when `en` is currently considered live.
    pub fn contains(&self, en: EnId) -> bool {
        self.heartbeats.contains_key(&en)
    }

    /// Removes and returns every EN whose last heartbeat is older than
    /// `expiry` ticks before `now`.
    pub fn expire(&mut self, now: u64, expiry: u64) -> Vec<EnId> {
        let expired: Vec<EnId> = self
            .heartbeats
            .iter()
            .filter(|(_, &last)| now.saturating_sub(last) > expiry)
            .map(|(&en, _)| en)
            .collect();
        for en in &expired {
            self.heartbeats.remove(en);
        }
        expired
    }

    /// The ENs currently considered live.
    pub fn live_ens(&self) -> Vec<EnId> {
        self.heartbeats.keys().copied().collect()
    }

    /// Number of live ENs.
    pub fn len(&self) -> usize {
        self.heartbeats.len()
    }

    /// Returns `true` when no EN is known.
    pub fn is_empty(&self) -> bool {
        self.heartbeats.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sync_report_adds_and_removes_replicas() {
        let mut center = ExtentCenter::new();
        center.apply_sync_report(EnId(1), &[ExtentId(10), ExtentId(11)]);
        assert_eq!(center.replica_count(ExtentId(10)), 1);
        assert_eq!(center.replica_count(ExtentId(11)), 1);
        // The next report no longer lists extent 11: the EN must be removed
        // from it.
        center.apply_sync_report(EnId(1), &[ExtentId(10)]);
        assert_eq!(center.replica_count(ExtentId(10)), 1);
        assert_eq!(center.replica_count(ExtentId(11)), 0);
    }

    #[test]
    fn sync_reports_from_multiple_ens_accumulate() {
        let mut center = ExtentCenter::new();
        center.apply_sync_report(EnId(1), &[ExtentId(5)]);
        center.apply_sync_report(EnId(2), &[ExtentId(5)]);
        center.apply_sync_report(EnId(3), &[ExtentId(5)]);
        assert_eq!(center.replica_count(ExtentId(5)), 3);
        assert_eq!(
            center.replicas(ExtentId(5)),
            vec![EnId(1), EnId(2), EnId(3)]
        );
    }

    #[test]
    fn remove_en_prunes_all_extents() {
        let mut center = ExtentCenter::new();
        center.apply_sync_report(EnId(1), &[ExtentId(1), ExtentId(2)]);
        center.apply_sync_report(EnId(2), &[ExtentId(1)]);
        center.remove_en(EnId(1));
        assert_eq!(center.replica_count(ExtentId(1)), 1);
        assert_eq!(center.replica_count(ExtentId(2)), 0);
    }

    #[test]
    fn register_extent_starts_with_zero_replicas() {
        let mut center = ExtentCenter::new();
        center.register_extent(ExtentId(9));
        assert_eq!(center.replica_count(ExtentId(9)), 0);
        assert_eq!(center.extent_count(), 1);
    }

    #[test]
    fn node_map_expires_only_stale_ens() {
        let mut map = ExtentNodeMap::new();
        map.record_heartbeat(EnId(1), 0);
        map.record_heartbeat(EnId(2), 5);
        let expired = map.expire(8, 3);
        assert_eq!(expired, vec![EnId(1)]);
        assert!(!map.contains(EnId(1)));
        assert!(map.contains(EnId(2)));
    }

    #[test]
    fn node_map_heartbeat_refresh_prevents_expiry() {
        let mut map = ExtentNodeMap::new();
        map.record_heartbeat(EnId(1), 0);
        map.record_heartbeat(EnId(1), 9);
        assert!(map.expire(10, 3).is_empty());
        assert_eq!(map.len(), 1);
    }

    #[test]
    fn new_en_joins_via_heartbeat() {
        let mut map = ExtentNodeMap::new();
        assert!(map.is_empty());
        map.record_heartbeat(EnId(7), 42);
        assert_eq!(map.live_ens(), vec![EnId(7)]);
    }
}
