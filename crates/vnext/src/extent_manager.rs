//! The Extent Manager: the real vNext component under test.
//!
//! The manager keeps the [`ExtentCenter`] (extent → replica locations) and
//! the [`ExtentNodeMap`] (EN → last heartbeat) up to date from EN messages,
//! and runs two periodic loops:
//!
//! * the **EN expiration loop** removes ENs that have been missing heartbeats
//!   for an extended period and deletes their extent records;
//! * the **extent repair loop** examines all extents, identifies the ones
//!   with missing replicas and sends repair requests to live ENs through the
//!   [`NetworkEngine`].
//!
//! In production both loops are driven by an internal timer; the test harness
//! calls [`ExtentManager::disable_timer`] and drives them from a modeled P#
//! timer instead (the paper's footnote 3).

use crate::extent_center::{ExtentCenter, ExtentNodeMap};
use crate::types::{EnId, EnMessage, ExtMgrMessage, ExtentId};

/// The network interface used by the Extent Manager to talk to ENs
/// (the vNext `NetworkEngine` of Figure 7).
///
/// The production implementation writes to sockets; the test harness
/// overrides it with a modeled engine that relays messages through the
/// systematic-testing runtime. Engines are `Send + Sync` because the manager
/// (and the harness machine that wraps it) is carried inside runtime
/// snapshots, which the parallel engines share across worker threads.
pub trait NetworkEngine: Send + Sync {
    /// Sends `message` to the EN `target`.
    fn send_message(&mut self, target: EnId, message: ExtMgrMessage);
}

/// A network engine that drops every message; stands in for the production
/// socket-based engine in unit tests of the manager's bookkeeping.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullNetworkEngine;

impl NetworkEngine for NullNetworkEngine {
    fn send_message(&mut self, _target: EnId, _message: ExtMgrMessage) {}
}

/// A network engine that records every outbound message, used by unit tests
/// and by the modeled engine of the harness.
#[derive(Debug, Default)]
pub struct RecordingNetworkEngine {
    sent: Vec<(EnId, ExtMgrMessage)>,
}

impl RecordingNetworkEngine {
    /// Creates an engine with an empty outbox.
    pub fn new() -> Self {
        RecordingNetworkEngine::default()
    }

    /// Removes and returns every message sent since the last drain.
    pub fn drain(&mut self) -> Vec<(EnId, ExtMgrMessage)> {
        std::mem::take(&mut self.sent)
    }

    /// Number of undrained messages.
    pub fn pending(&self) -> usize {
        self.sent.len()
    }
}

impl NetworkEngine for RecordingNetworkEngine {
    fn send_message(&mut self, target: EnId, message: ExtMgrMessage) {
        self.sent.push((target, message));
    }
}

/// A network engine whose outbox is shared between the Extent Manager and
/// the harness machine that wraps it.
///
/// The wrapper keeps one clone and installs the other into the manager; after
/// every call into the real code it drains the outbox and relays the
/// intercepted messages through the systematic-testing runtime. This mirrors
/// the paper's `ModelNetEngine` (Figure 7) without modifying the manager.
#[derive(Debug, Clone, Default)]
pub struct SharedNetworkEngine {
    sent: std::sync::Arc<std::sync::Mutex<Vec<(EnId, ExtMgrMessage)>>>,
}

impl SharedNetworkEngine {
    /// Creates an engine with an empty shared outbox.
    pub fn new() -> Self {
        SharedNetworkEngine::default()
    }

    /// Removes and returns every message sent since the last drain.
    pub fn drain(&self) -> Vec<(EnId, ExtMgrMessage)> {
        std::mem::take(&mut *self.sent.lock().expect("outbox lock"))
    }

    /// Number of undrained messages.
    pub fn pending(&self) -> usize {
        self.sent.lock().expect("outbox lock").len()
    }

    /// Deep-copies the engine: unlike `clone` (which shares the outbox
    /// handle), the fork gets its own outbox holding a copy of the undrained
    /// messages, so snapshot clones never share wire state.
    pub fn fork(&self) -> SharedNetworkEngine {
        SharedNetworkEngine {
            sent: std::sync::Arc::new(std::sync::Mutex::new(
                self.sent.lock().expect("outbox lock").clone(),
            )),
        }
    }
}

impl NetworkEngine for SharedNetworkEngine {
    fn send_message(&mut self, target: EnId, message: ExtMgrMessage) {
        self.sent
            .lock()
            .expect("outbox lock")
            .push((target, message));
    }
}

/// Seeded defects that can be re-introduced into the Extent Manager.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExtentManagerBugs {
    /// The §3.6 liveness bug: accept a sync report from an EN that is *not*
    /// in the [`ExtentNodeMap`] (for example because the expiration loop
    /// already removed it). The stale report re-adds the EN's extents to the
    /// [`ExtentCenter`], the replica count looks healthy again, and the
    /// repair loop never schedules the repair — even though the real replica
    /// is gone.
    pub accept_sync_from_expired_en: bool,
}

/// Configuration of an Extent Manager instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExtentManagerConfig {
    /// Desired number of replicas per extent.
    pub replica_target: usize,
    /// An EN is expired after this many expiration-loop ticks without a
    /// heartbeat.
    pub heartbeat_expiry: u64,
    /// Seeded defects.
    pub bugs: ExtentManagerBugs,
}

impl Default for ExtentManagerConfig {
    fn default() -> Self {
        ExtentManagerConfig {
            replica_target: 3,
            heartbeat_expiry: 2,
            bugs: ExtentManagerBugs::default(),
        }
    }
}

/// The Extent Manager (Figure 6 of the paper).
pub struct ExtentManager {
    config: ExtentManagerConfig,
    extent_center: ExtentCenter,
    extent_node_map: ExtentNodeMap,
    net: Box<dyn NetworkEngine>,
    /// Logical clock advanced by the expiration loop.
    clock: u64,
    /// Whether the production-internal timer is active. The test harness
    /// disables it and drives the loops from a modeled timer.
    internal_timer_enabled: bool,
    repair_requests_sent: usize,
}

impl ExtentManager {
    /// Creates a manager that talks to ENs through `net`.
    pub fn new(config: ExtentManagerConfig, net: Box<dyn NetworkEngine>) -> Self {
        ExtentManager {
            config,
            extent_center: ExtentCenter::new(),
            extent_node_map: ExtentNodeMap::new(),
            net,
            clock: 0,
            internal_timer_enabled: true,
            repair_requests_sent: 0,
        }
    }

    /// Replaces the network engine (the harness swaps in the modeled one).
    pub fn set_network_engine(&mut self, net: Box<dyn NetworkEngine>) {
        self.net = net;
    }

    /// Clones the manager's bookkeeping state, installing `net` as the
    /// clone's network engine (the `Box<dyn NetworkEngine>` itself cannot be
    /// cloned). Used by the snapshot path of the wrapper machine.
    pub fn clone_with_network(&self, net: Box<dyn NetworkEngine>) -> ExtentManager {
        ExtentManager {
            config: self.config,
            extent_center: self.extent_center.clone(),
            extent_node_map: self.extent_node_map.clone(),
            net,
            clock: self.clock,
            internal_timer_enabled: self.internal_timer_enabled,
            repair_requests_sent: self.repair_requests_sent,
        }
    }

    /// Disables the production-internal timer so that the expiration and
    /// repair loops are only driven externally (by the test harness).
    pub fn disable_timer(&mut self) {
        self.internal_timer_enabled = false;
    }

    /// Returns `true` when the internal timer is still enabled.
    pub fn internal_timer_enabled(&self) -> bool {
        self.internal_timer_enabled
    }

    /// Declares that this manager is responsible for `extent` (initial
    /// placement metadata, before any sync report).
    pub fn register_extent(&mut self, extent: ExtentId) {
        self.extent_center.register_extent(extent);
    }

    /// Processes one message from an EN.
    pub fn process_message(&mut self, message: EnMessage) {
        match message {
            EnMessage::Heartbeat { en } => {
                self.extent_node_map.record_heartbeat(en, self.clock);
            }
            EnMessage::SyncReport { en, extents } => {
                let known = self.extent_node_map.contains(en);
                if known || self.config.bugs.accept_sync_from_expired_en {
                    // BUG (when `accept_sync_from_expired_en` is set): a sync
                    // report from an EN that was already expired re-populates
                    // the extent center, masking the lost replicas.
                    self.extent_center.apply_sync_report(en, &extents);
                }
            }
        }
    }

    /// Runs one iteration of the EN expiration loop: advances the logical
    /// clock, removes ENs whose heartbeats are stale and deletes their extent
    /// records. Returns the expired ENs.
    pub fn run_expiration_loop(&mut self) -> Vec<EnId> {
        self.clock += 1;
        let expired = self
            .extent_node_map
            .expire(self.clock, self.config.heartbeat_expiry);
        for &en in &expired {
            self.extent_center.remove_en(en);
        }
        expired
    }

    /// Runs one iteration of the extent repair loop: for every extent with
    /// missing replicas, sends a repair request to a live EN that does not
    /// yet hold it, naming a current replica as the copy source. Returns the
    /// number of repair requests sent.
    pub fn run_repair_loop(&mut self) -> usize {
        let live = self.extent_node_map.live_ens();
        let mut requests: Vec<(EnId, ExtMgrMessage)> = Vec::new();
        for (extent, replicas) in self.extent_center.iter() {
            if replicas.len() >= self.config.replica_target || replicas.is_empty() {
                // Healthy, or unrepairable (no surviving replica to copy from).
                continue;
            }
            let source = *replicas.iter().next().expect("non-empty replica set");
            let missing = self.config.replica_target - replicas.len();
            let targets: Vec<EnId> = live
                .iter()
                .copied()
                .filter(|en| !replicas.contains(en))
                .take(missing)
                .collect();
            for target in targets {
                requests.push((target, ExtMgrMessage::RepairRequest { extent, source }));
            }
        }
        let count = requests.len();
        for (target, message) in requests {
            self.net.send_message(target, message);
        }
        self.repair_requests_sent += count;
        count
    }

    /// The extent → replica locations view (exposed for tests and the
    /// harness).
    pub fn extent_center(&self) -> &ExtentCenter {
        &self.extent_center
    }

    /// The EN liveness view (exposed for tests and the harness).
    pub fn extent_node_map(&self) -> &ExtentNodeMap {
        &self.extent_node_map
    }

    /// Total repair requests sent since creation.
    pub fn repair_requests_sent(&self) -> usize {
        self.repair_requests_sent
    }

    /// The manager's configuration.
    pub fn config(&self) -> &ExtentManagerConfig {
        &self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Arc, Mutex};

    /// A network engine whose outbox is shared with the test.
    #[derive(Clone, Default)]
    struct SharedEngine {
        sent: Arc<Mutex<Vec<(EnId, ExtMgrMessage)>>>,
    }

    impl NetworkEngine for SharedEngine {
        fn send_message(&mut self, target: EnId, message: ExtMgrMessage) {
            self.sent.lock().unwrap().push((target, message));
        }
    }

    fn manager_with_engine(bugs: ExtentManagerBugs) -> (ExtentManager, SharedEngine) {
        let engine = SharedEngine::default();
        let mgr = ExtentManager::new(
            ExtentManagerConfig {
                replica_target: 3,
                heartbeat_expiry: 2,
                bugs,
            },
            Box::new(engine.clone()),
        );
        (mgr, engine)
    }

    fn heartbeat(mgr: &mut ExtentManager, en: u64) {
        mgr.process_message(EnMessage::Heartbeat { en: EnId(en) });
    }

    fn sync(mgr: &mut ExtentManager, en: u64, extents: &[u64]) {
        mgr.process_message(EnMessage::SyncReport {
            en: EnId(en),
            extents: extents.iter().map(|&e| ExtentId(e)).collect(),
        });
    }

    #[test]
    fn heartbeats_register_ens() {
        let (mut mgr, _) = manager_with_engine(ExtentManagerBugs::default());
        heartbeat(&mut mgr, 1);
        heartbeat(&mut mgr, 2);
        assert_eq!(mgr.extent_node_map().len(), 2);
    }

    #[test]
    fn expiration_removes_silent_ens_and_their_extents() {
        let (mut mgr, _) = manager_with_engine(ExtentManagerBugs::default());
        heartbeat(&mut mgr, 1);
        sync(&mut mgr, 1, &[10]);
        assert_eq!(mgr.extent_center().replica_count(ExtentId(10)), 1);
        // heartbeat_expiry is 2: after three expiration ticks without a
        // heartbeat the EN is expired.
        assert!(mgr.run_expiration_loop().is_empty());
        assert!(mgr.run_expiration_loop().is_empty());
        assert_eq!(mgr.run_expiration_loop(), vec![EnId(1)]);
        assert_eq!(mgr.extent_node_map().len(), 0);
        assert_eq!(mgr.extent_center().replica_count(ExtentId(10)), 0);
    }

    #[test]
    fn fixed_manager_ignores_sync_from_expired_en() {
        let (mut mgr, _) = manager_with_engine(ExtentManagerBugs::default());
        heartbeat(&mut mgr, 1);
        sync(&mut mgr, 1, &[10]);
        for _ in 0..3 {
            mgr.run_expiration_loop();
        }
        assert_eq!(mgr.extent_center().replica_count(ExtentId(10)), 0);
        // A stale sync report from the expired EN must not resurrect it.
        sync(&mut mgr, 1, &[10]);
        assert_eq!(mgr.extent_center().replica_count(ExtentId(10)), 0);
    }

    #[test]
    fn buggy_manager_resurrects_expired_replicas() {
        let (mut mgr, _) = manager_with_engine(ExtentManagerBugs {
            accept_sync_from_expired_en: true,
        });
        heartbeat(&mut mgr, 1);
        sync(&mut mgr, 1, &[10]);
        for _ in 0..3 {
            mgr.run_expiration_loop();
        }
        assert_eq!(mgr.extent_center().replica_count(ExtentId(10)), 0);
        sync(&mut mgr, 1, &[10]);
        // The paper's bug: the replica count looks healthy even though the EN
        // is gone, so the repair loop will never repair the extent.
        assert_eq!(mgr.extent_center().replica_count(ExtentId(10)), 1);
    }

    #[test]
    fn repair_loop_targets_live_ens_missing_the_extent() {
        let (mut mgr, engine) = manager_with_engine(ExtentManagerBugs::default());
        for en in 1..=4 {
            heartbeat(&mut mgr, en);
        }
        sync(&mut mgr, 1, &[10]);
        sync(&mut mgr, 2, &[10]);
        // Extent 10 has 2 of 3 replicas: one repair request must go to a live
        // EN that does not hold it (3 or 4).
        let sent = mgr.run_repair_loop();
        assert_eq!(sent, 1);
        let outbox = engine.sent.lock().unwrap();
        let (target, message) = outbox[0];
        assert!(target == EnId(3) || target == EnId(4));
        match message {
            ExtMgrMessage::RepairRequest { extent, source } => {
                assert_eq!(extent, ExtentId(10));
                assert!(source == EnId(1) || source == EnId(2));
            }
        }
    }

    #[test]
    fn repair_loop_skips_healthy_and_unrepairable_extents() {
        let (mut mgr, engine) = manager_with_engine(ExtentManagerBugs::default());
        for en in 1..=3 {
            heartbeat(&mut mgr, en);
        }
        // Healthy extent: three replicas.
        for en in 1..=3 {
            sync(&mut mgr, en, &[20]);
        }
        // Unrepairable extent: registered but zero replicas.
        mgr.register_extent(ExtentId(30));
        assert_eq!(mgr.run_repair_loop(), 0);
        assert!(engine.sent.lock().unwrap().is_empty());
    }

    #[test]
    fn repair_loop_requests_every_missing_replica() {
        let (mut mgr, _) = manager_with_engine(ExtentManagerBugs::default());
        for en in 1..=4 {
            heartbeat(&mut mgr, en);
        }
        sync(&mut mgr, 1, &[10]);
        // Two replicas missing and three candidate targets: two requests.
        assert_eq!(mgr.run_repair_loop(), 2);
        assert_eq!(mgr.repair_requests_sent(), 2);
    }

    #[test]
    fn disable_timer_flag_is_tracked() {
        let (mut mgr, _) = manager_with_engine(ExtentManagerBugs::default());
        assert!(mgr.internal_timer_enabled());
        mgr.disable_timer();
        assert!(!mgr.internal_timer_enabled());
    }

    #[test]
    fn recording_engine_drains_messages() {
        let mut engine = RecordingNetworkEngine::new();
        engine.send_message(
            EnId(1),
            ExtMgrMessage::RepairRequest {
                extent: ExtentId(1),
                source: EnId(2),
            },
        );
        assert_eq!(engine.pending(), 1);
        assert_eq!(engine.drain().len(), 1);
        assert_eq!(engine.pending(), 0);
    }

    #[test]
    fn shared_engine_outbox_is_visible_through_clones() {
        let handle = SharedNetworkEngine::new();
        let mut mgr = ExtentManager::new(ExtentManagerConfig::default(), Box::new(handle.clone()));
        heartbeat(&mut mgr, 1);
        heartbeat(&mut mgr, 2);
        sync(&mut mgr, 1, &[10]);
        mgr.run_repair_loop();
        assert_eq!(handle.pending(), 1);
        let drained = handle.drain();
        assert_eq!(drained.len(), 1);
        assert_eq!(handle.pending(), 0);
    }

    #[test]
    fn heartbeat_after_expiry_re_registers_en() {
        let (mut mgr, _) = manager_with_engine(ExtentManagerBugs::default());
        heartbeat(&mut mgr, 1);
        for _ in 0..3 {
            mgr.run_expiration_loop();
        }
        assert!(!mgr.extent_node_map().contains(EnId(1)));
        heartbeat(&mut mgr, 1);
        assert!(mgr.extent_node_map().contains(EnId(1)));
    }
}
