//! Events exchanged inside the vNext test harness.
//!
//! EN → ExtMgr messages ([`EnToManager`]) are sent directly to the wrapper
//! machine, as in Figure 8 of the paper; intercepted ExtMgr → EN messages
//! ([`ManagerToEn`]) go through the
//! [`TestingDriver`](crate::machines::driver::TestingDriver), which plays the
//! role of the modeled network engine's dispatch path. The §3.6 liveness bug
//! arises when the controlled timers starve an EN of heartbeat ticks long
//! enough for the expiration loop to remove it while one of its sync reports
//! is still queued behind those expiration ticks.

use psharp::prelude::MachineId;

use crate::types::{EnMessage, ExtMgrMessage, ExtentId};

/// An EN → ExtMgr message (heartbeat or sync report).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EnToManager {
    /// The payload produced by the EN.
    pub message: EnMessage,
}

/// An ExtMgr → EN message intercepted by the modeled network engine and
/// relayed through the driver.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ManagerToEn {
    /// The EN the manager addressed.
    pub target: crate::types::EnId,
    /// The payload produced by the manager.
    pub message: ExtMgrMessage,
}

/// Tick that drives the Extent Manager's expiration and repair loops
/// (replacing its disabled internal timer).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ManagerTick;

/// Tick that drives an EN's periodic heartbeat / sync-report behaviour.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EnTick;

/// Supervision signal from a crashed EN to the testing driver: the core
/// scheduler injected a crash fault (`Decision::CrashMachine`) into the EN,
/// and the driver reacts by launching a replacement EN — the cluster-operator
/// half of the paper's fail-and-repair scenario.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EnCrashed {
    /// The cluster id of the crashed EN.
    pub en: crate::types::EnId,
}

/// Repair request delivered to an EN: copy `extent` from the EN hosted by
/// `source_machine`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RepairRequest {
    /// The extent to repair.
    pub extent: ExtentId,
    /// The machine hosting a replica to copy from.
    pub source_machine: MachineId,
}

/// Request to copy `extent` from the receiving EN back to `requester`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExtentCopyRequest {
    /// The extent to copy.
    pub extent: ExtentId,
    /// The machine of the EN asking for the copy.
    pub requester: MachineId,
}

/// Response to an [`ExtentCopyRequest`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExtentCopyResponse {
    /// The extent that was requested.
    pub extent: ExtentId,
    /// Whether the source still held a replica and the copy succeeded.
    pub success: bool,
}

/// Monitor notification: a (real) replica of `extent` now exists on `en`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NotifyReplicaAdded {
    /// The EN holding the new replica.
    pub en: crate::types::EnId,
    /// The extent.
    pub extent: ExtentId,
}

/// Monitor notification: the EN `en` has failed, all its replicas are lost.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NotifyEnFailed {
    /// The failed EN.
    pub en: crate::types::EnId,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::EnId;
    use psharp::prelude::Event;

    #[test]
    fn events_have_short_names() {
        assert_eq!(
            Event::new(EnToManager {
                message: EnMessage::Heartbeat { en: EnId(1) }
            })
            .name(),
            "EnToManager"
        );
        assert_eq!(Event::new(ManagerTick).name(), "ManagerTick");
        assert_eq!(Event::new(EnCrashed { en: EnId(2) }).name(), "EnCrashed");
    }

    #[test]
    fn repair_request_payload_round_trips() {
        let event = Event::new(RepairRequest {
            extent: ExtentId(4),
            source_machine: MachineId::from_raw(9),
        });
        let req = event.downcast_ref::<RepairRequest>().expect("payload");
        assert_eq!(req.extent, ExtentId(4));
        assert_eq!(req.source_machine, MachineId::from_raw(9));
    }
}
