//! Azure Storage vNext extent management (§3 of the paper), rebuilt in Rust.
//!
//! vNext stores data in *extents*, replicated over multiple *Extent Nodes*
//! (ENs). Extents are partitioned across lightweight *Extent Managers*
//! (ExtMgrs). An ExtMgr learns about EN health from periodic heartbeats and
//! about extent placement from periodic sync reports; an internal expiration
//! loop removes ENs that stopped sending heartbeats, and an internal repair
//! loop schedules re-replication of extents that lost replicas.
//!
//! The crate is split the same way the paper splits the case study:
//!
//! * "real" vNext code — [`extent_manager::ExtentManager`] and its data
//!   structures ([`extent_center::ExtentCenter`],
//!   [`extent_center::ExtentNodeMap`], [`en_store::EnExtentStore`]) plus the
//!   [`extent_manager::NetworkEngine`] interface;
//! * the P# test harness — the wrapper machine, modeled ENs, modeled timers,
//!   the testing driver that injects nondeterministic failures, and the
//!   [`monitor::RepairMonitor`] liveness specification ([`harness`]).
//!
//! The seeded bug from §3.6 — an ExtMgr that accepts a sync report from an
//! EN it already expired, silently "resurrecting" lost replicas so the repair
//! loop never runs — is re-introduced with
//! [`extent_manager::ExtentManagerBugs::accept_sync_from_expired_en`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod en_store;
pub mod events;
pub mod extent_center;
pub mod extent_manager;
pub mod harness;
pub mod machines;
pub mod monitor;
pub mod types;

pub use harness::{
    build_harness, model_stats, portfolio_hunt, Scenario, VnextConfig, VnextHarness,
};
