//! Identifiers and message types shared between the Extent Manager and the
//! Extent Nodes.

use std::fmt;

/// Identifier of an extent (a multi-gigabyte replicated data container).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ExtentId(pub u64);

impl fmt::Display for ExtentId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "extent-{}", self.0)
    }
}

/// Identifier of an Extent Node, assigned by the cluster (not a machine id).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EnId(pub u64);

impl fmt::Display for EnId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "en-{}", self.0)
    }
}

/// Messages sent by Extent Nodes to the Extent Manager.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EnMessage {
    /// Frequent keep-alive; missing heartbeats cause the EN to be expired.
    Heartbeat {
        /// The reporting EN.
        en: EnId,
    },
    /// Less frequent full report of every extent stored on the EN. Its
    /// purpose is to replace the ExtMgr's possibly out-of-date view of the EN
    /// with the ground truth.
    SyncReport {
        /// The reporting EN.
        en: EnId,
        /// Every extent currently stored on the EN.
        extents: Vec<ExtentId>,
    },
}

impl EnMessage {
    /// The EN that sent this message.
    pub fn sender(&self) -> EnId {
        match self {
            EnMessage::Heartbeat { en } => *en,
            EnMessage::SyncReport { en, .. } => *en,
        }
    }
}

/// Messages sent by the Extent Manager to Extent Nodes (through its network
/// engine).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExtMgrMessage {
    /// Ask `target` (the message recipient) to repair `extent` by copying it
    /// from `source`, an EN believed to hold a replica.
    RepairRequest {
        /// The extent missing replicas.
        extent: ExtentId,
        /// An EN that holds a replica to copy from.
        source: EnId,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats_are_readable() {
        assert_eq!(ExtentId(3).to_string(), "extent-3");
        assert_eq!(EnId(7).to_string(), "en-7");
    }

    #[test]
    fn en_message_sender_is_extracted() {
        assert_eq!(EnMessage::Heartbeat { en: EnId(1) }.sender(), EnId(1));
        assert_eq!(
            EnMessage::SyncReport {
                en: EnId(2),
                extents: vec![ExtentId(0)]
            }
            .sender(),
            EnId(2)
        );
    }

    #[test]
    fn ids_are_ordered_and_hashable() {
        use std::collections::BTreeSet;
        let set: BTreeSet<EnId> = [EnId(3), EnId(1), EnId(2)].into_iter().collect();
        assert_eq!(set.into_iter().next(), Some(EnId(1)));
    }
}
