//! The `RepairMonitor` liveness specification (§3.5 of the paper).
//!
//! The monitor tracks, per extent, which ENs *really* hold a replica: it is
//! told about initial placement and completed repairs via
//! [`NotifyReplicaAdded`] and about failures via [`NotifyEnFailed`]. Whenever
//! any extent has fewer real replicas than the target, the monitor is in the
//! hot *repairing* state; once every extent is back at the target it returns
//! to the cold *repaired* state. An execution that ends while the monitor is
//! still hot is a liveness violation: some extent was never repaired.

use std::collections::{BTreeMap, BTreeSet};

use psharp::prelude::*;

use crate::events::{NotifyEnFailed, NotifyReplicaAdded};
use crate::types::{EnId, ExtentId};

/// Liveness monitor checking that lost extent replicas are eventually
/// repaired.
#[derive(Debug, Clone)]
pub struct RepairMonitor {
    replica_target: usize,
    replicas: BTreeMap<ExtentId, BTreeSet<EnId>>,
    failures_observed: usize,
    repairs_observed: usize,
}

impl RepairMonitor {
    /// Creates a monitor for the given replica target.
    pub fn new(replica_target: usize) -> Self {
        RepairMonitor {
            replica_target,
            replicas: BTreeMap::new(),
            failures_observed: 0,
            repairs_observed: 0,
        }
    }

    /// Number of EN failures observed.
    pub fn failures_observed(&self) -> usize {
        self.failures_observed
    }

    /// Number of replica-added notifications observed.
    pub fn repairs_observed(&self) -> usize {
        self.repairs_observed
    }

    /// Real replica count of `extent`.
    pub fn replica_count(&self, extent: ExtentId) -> usize {
        self.replicas.get(&extent).map(BTreeSet::len).unwrap_or(0)
    }

    fn under_replicated(&self) -> Option<(ExtentId, usize)> {
        self.replicas
            .iter()
            .find(|(_, ens)| ens.len() < self.replica_target)
            .map(|(extent, ens)| (*extent, ens.len()))
    }
}

impl Monitor for RepairMonitor {
    fn observe(&mut self, _ctx: &mut MonitorContext<'_>, event: &Event) {
        if let Some(added) = event.downcast_ref::<NotifyReplicaAdded>() {
            self.repairs_observed += 1;
            self.replicas
                .entry(added.extent)
                .or_default()
                .insert(added.en);
        } else if let Some(failed) = event.downcast_ref::<NotifyEnFailed>() {
            self.failures_observed += 1;
            for ens in self.replicas.values_mut() {
                ens.remove(&failed.en);
            }
        }
    }

    fn temperature(&self) -> Temperature {
        if self.under_replicated().is_some() {
            Temperature::Hot
        } else {
            Temperature::Cold
        }
    }

    fn hot_message(&self) -> String {
        match self.under_replicated() {
            Some((extent, count)) => format!(
                "{extent} still has {count} of {} replicas: a lost replica was never repaired",
                self.replica_target
            ),
            None => "repair monitor is hot".to_string(),
        }
    }

    fn name(&self) -> &str {
        "RepairMonitor"
    }

    fn clone_state(&self) -> Option<Box<dyn Monitor>> {
        Some(Box::new(self.clone()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn observe(monitor: &mut RepairMonitor, event: Event) {
        let mut bug = None;
        let mut ctx = MonitorContext::new_for_tests(&mut bug);
        monitor.observe(&mut ctx, &event);
        assert!(bug.is_none(), "the repair monitor never flags safety bugs");
    }

    fn replica(monitor: &mut RepairMonitor, en: u64, extent: u64) {
        observe(
            monitor,
            Event::new(NotifyReplicaAdded {
                en: EnId(en),
                extent: ExtentId(extent),
            }),
        );
    }

    #[test]
    fn monitor_is_hot_until_target_reached() {
        let mut monitor = RepairMonitor::new(3);
        assert_eq!(monitor.temperature(), Temperature::Cold, "no extents yet");
        replica(&mut monitor, 1, 10);
        assert_eq!(monitor.temperature(), Temperature::Hot);
        replica(&mut monitor, 2, 10);
        replica(&mut monitor, 3, 10);
        assert_eq!(monitor.temperature(), Temperature::Cold);
    }

    #[test]
    fn failure_reheats_the_monitor_until_repair() {
        let mut monitor = RepairMonitor::new(3);
        for en in 1..=3 {
            replica(&mut monitor, en, 10);
        }
        observe(&mut monitor, Event::new(NotifyEnFailed { en: EnId(2) }));
        assert_eq!(monitor.temperature(), Temperature::Hot);
        assert_eq!(monitor.replica_count(ExtentId(10)), 2);
        replica(&mut monitor, 4, 10);
        assert_eq!(monitor.temperature(), Temperature::Cold);
        assert!(monitor.hot_message().contains("repair"));
    }

    #[test]
    fn failure_of_unknown_en_is_harmless() {
        let mut monitor = RepairMonitor::new(2);
        replica(&mut monitor, 1, 5);
        replica(&mut monitor, 2, 5);
        observe(&mut monitor, Event::new(NotifyEnFailed { en: EnId(99) }));
        assert_eq!(monitor.temperature(), Temperature::Cold);
        assert_eq!(monitor.failures_observed(), 1);
    }

    #[test]
    fn hot_message_names_the_under_replicated_extent() {
        let mut monitor = RepairMonitor::new(3);
        replica(&mut monitor, 1, 7);
        assert!(monitor.hot_message().contains("extent-7"));
        assert!(monitor.hot_message().contains("1 of 3"));
    }
}
