//! The vNext test harness: configuration, the two testing scenarios of §3.4,
//! and the builder that wires the real Extent Manager to its modeled
//! environment.

use psharp::prelude::*;
use psharp::timer::Timer;

use crate::en_store::EnExtentStore;
use crate::events::{EnTick, ManagerTick, NotifyReplicaAdded};
use crate::extent_manager::{ExtentManagerBugs, ExtentManagerConfig};
use crate::machines::driver::{DriverInit, TestingDriver};
use crate::machines::extent_node::ExtentNodeMachine;
use crate::machines::manager::{ExtentManagerMachine, SetDriver};
use crate::monitor::RepairMonitor;
use crate::types::{EnId, ExtentId};

/// The two testing scenarios the paper's TestingDriver drives (§3.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scenario {
    /// Scenario 1: a single extent starts with one replica; the harness waits
    /// for the Extent Manager to replicate it to the target count.
    Replicate,
    /// Scenario 2: the extent starts fully replicated; the ENs are marked
    /// *crashable*, so under a crash budget ([`VnextConfig::fault_plan`] /
    /// `TestConfig::with_faults`) the core scheduler decides which EN fails
    /// and when; the driver launches a replacement and the harness waits for
    /// the lost replica to be repaired.
    FailAndRepair,
}

/// Configuration of the vNext harness.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VnextConfig {
    /// Which testing scenario to drive.
    pub scenario: Scenario,
    /// Number of Extent Nodes in the initial cluster.
    pub extent_nodes: usize,
    /// Number of extents managed by the Extent Manager.
    pub extents: usize,
    /// Desired replicas per extent.
    pub replica_target: usize,
    /// Expiration threshold of the EN expiration loop, in expiration ticks.
    pub heartbeat_expiry: u64,
    /// Seeded Extent Manager defects.
    pub bugs: ExtentManagerBugs,
}

impl Default for VnextConfig {
    fn default() -> Self {
        VnextConfig {
            scenario: Scenario::FailAndRepair,
            extent_nodes: 3,
            extents: 1,
            replica_target: 3,
            heartbeat_expiry: 2,
            bugs: ExtentManagerBugs::default(),
        }
    }
}

impl VnextConfig {
    /// The fail-and-repair scenario with the §3.6 liveness bug re-introduced.
    pub fn with_liveness_bug() -> Self {
        VnextConfig {
            bugs: ExtentManagerBugs {
                accept_sync_from_expired_en: true,
            },
            ..VnextConfig::default()
        }
    }

    /// Scenario 1 (replicate a single fresh extent) with the fixed manager.
    pub fn replicate_scenario() -> Self {
        VnextConfig {
            scenario: Scenario::Replicate,
            ..VnextConfig::default()
        }
    }

    /// The fault budget this scenario is designed around: one EN crash for
    /// the fail-and-repair scenario (the cluster repairs a single lost
    /// replica; more crashes could legitimately defeat repair), none for the
    /// replicate scenario (its single replica holder must survive).
    pub fn fault_plan(&self) -> FaultPlan {
        match self.scenario {
            Scenario::FailAndRepair => FaultPlan::new().with_crashes(1),
            Scenario::Replicate => FaultPlan::none(),
        }
    }
}

/// Ids of the machines created by [`build_harness`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VnextHarness {
    /// The wrapper around the real Extent Manager.
    pub manager: MachineId,
    /// The testing driver.
    pub driver: MachineId,
    /// The initial Extent Nodes (cluster id and machine id).
    pub extent_nodes: Vec<(EnId, MachineId)>,
    /// All modeled timer machines.
    pub timers: Vec<MachineId>,
}

/// Builds the full vNext harness into `rt` and returns the machine ids.
pub fn build_harness(rt: &mut Runtime, config: &VnextConfig) -> VnextHarness {
    rt.add_monitor(RepairMonitor::new(config.replica_target));

    let extents: Vec<ExtentId> = (0..config.extents as u64).map(ExtentId).collect();
    let manager = rt.create_machine(ExtentManagerMachine::new(
        ExtentManagerConfig {
            replica_target: config.replica_target,
            heartbeat_expiry: config.heartbeat_expiry,
            bugs: config.bugs,
        },
        extents.clone(),
    ));
    let driver = rt.create_machine(TestingDriver::new(manager));
    // Replicable wiring events: they must not block the post-setup snapshot
    // that prefix-sharing runs fork from (neither target is lossy, so fault
    // injection can never duplicate them).
    rt.send(manager, Event::replicable(SetDriver(driver)));
    // In the fail-and-repair scenario the initial ENs are crash candidates:
    // the core scheduler decides which one fails (and when) within the
    // test's fault budget, replacing the driver's old bespoke injection.
    let crashable_ens = config.scenario == Scenario::FailAndRepair;

    let mut extent_nodes = Vec::with_capacity(config.extent_nodes);
    let mut timers = Vec::new();
    for index in 0..config.extent_nodes {
        let en_id = EnId(index as u64);
        let store = match config.scenario {
            // Scenario 1: only the first EN starts with the extents.
            Scenario::Replicate if index == 0 => EnExtentStore::with_extents(extents.clone()),
            Scenario::Replicate => EnExtentStore::new(),
            // Scenario 2: every initial EN holds every extent.
            Scenario::FailAndRepair => EnExtentStore::with_extents(extents.clone()),
        };
        // Tell the liveness monitor about the initial, real placement.
        for &extent in extents.iter().filter(|&&e| store.contains(e)) {
            rt.notify_monitor::<RepairMonitor>(Event::new(NotifyReplicaAdded {
                en: en_id,
                extent,
            }));
        }
        let en = rt
            .create_machine(ExtentNodeMachine::new(en_id, manager, store).with_supervisor(driver));
        if crashable_ens {
            rt.mark_crashable(en);
        }
        timers.push(rt.create_machine(Timer::with_event(en, || Event::new(EnTick))));
        extent_nodes.push((en_id, en));
    }

    rt.send(
        driver,
        Event::replicable(DriverInit {
            ens: extent_nodes.clone(),
        }),
    );
    timers.push(rt.create_machine(Timer::with_event(manager, || Event::new(ManagerTick))));

    VnextHarness {
        manager,
        driver,
        extent_nodes,
        timers,
    }
}

/// Hunts for bugs in this harness with a parallel (optionally portfolio)
/// run: the iteration space of `test` is sharded over
/// [`TestConfig::workers`] threads, each execution keeping the seed it would
/// have had serially.
pub fn portfolio_hunt(config: &VnextConfig, test: TestConfig) -> TestReport {
    let config = *config;
    ParallelTestEngine::new(test).run(move |rt| {
        build_harness(rt, &config);
    })
}

/// Model statistics of this harness, for the Table 1 reproduction.
pub fn model_stats() -> ModelStats {
    let config = VnextConfig::default();
    // Wrapper + driver + ENs + one timer per EN + manager timer (failure
    // injection moved into the core runtime — no driver tick machinery).
    let machines = 2 + 2 * config.extent_nodes + 1;
    // Action handlers: wrapper {SetDriver, EnToManager, ManagerTick}, EN
    // {tick, RepairRequest, CopyRequest, CopyResponse, on_crash}, driver
    // {Init, ManagerToEn, EnCrashed}, timer {loop}, monitor
    // {ReplicaAdded, EnFailed}.
    let action_handlers = 3 + 5 + 3 + 1 + 2;
    // State transitions: monitor repaired<->repairing, EN live->crashed,
    // driver replacement launch, manager loop choice (expire|repair).
    let state_transitions = 2 + 1 + 1 + 2;
    ModelStats::new("vNext Extent Manager")
        .with_bugs(1)
        .with_model(machines, state_transitions, action_handlers)
}

#[cfg(test)]
mod tests {
    use super::*;
    use psharp::runtime::{Runtime, RuntimeConfig};
    use psharp::scheduler::RandomScheduler;

    fn new_runtime(seed: u64, max_steps: usize) -> Runtime {
        Runtime::new(
            Box::new(RandomScheduler::new(seed)),
            RuntimeConfig {
                max_steps,
                ..RuntimeConfig::default()
            },
            seed,
        )
    }

    #[test]
    fn harness_creates_expected_machines() {
        let mut rt = new_runtime(1, 100);
        let harness = build_harness(&mut rt, &VnextConfig::default());
        assert_eq!(harness.extent_nodes.len(), 3);
        assert_eq!(harness.timers.len(), 4);
        assert_eq!(rt.machine_count(), 9);
    }

    #[test]
    fn monitor_starts_cold_in_fail_and_repair_scenario() {
        let mut rt = new_runtime(1, 100);
        build_harness(&mut rt, &VnextConfig::default());
        let monitor = rt.monitor_ref::<RepairMonitor>().expect("registered");
        assert_eq!(monitor.replica_count(ExtentId(0)), 3);
    }

    #[test]
    fn monitor_starts_hot_in_replicate_scenario() {
        let mut rt = new_runtime(1, 100);
        build_harness(&mut rt, &VnextConfig::replicate_scenario());
        let monitor = rt.monitor_ref::<RepairMonitor>().expect("registered");
        assert_eq!(monitor.replica_count(ExtentId(0)), 1);
    }

    #[test]
    fn fixed_manager_repairs_after_injected_crash() {
        // The fixed system must not violate the liveness property even when
        // the scheduler crashes an EN: the driver launches a replacement and
        // the manager repairs the lost replica before the bound.
        let config = VnextConfig::default();
        let mut crashes_observed = 0;
        for seed in 0..10 {
            let mut rt = Runtime::new(
                Box::new(RandomScheduler::new(seed)),
                RuntimeConfig {
                    max_steps: 4_000,
                    faults: config.fault_plan(),
                    ..RuntimeConfig::default()
                },
                seed,
            );
            build_harness(&mut rt, &config);
            let outcome = rt.run();
            assert!(
                !matches!(outcome, ExecutionOutcome::BugFound(_)),
                "fixed vNext flagged a bug with seed {seed}: {outcome:?}"
            );
            crashes_observed += rt.trace().fault_decision_count();
        }
        assert!(
            crashes_observed > 0,
            "at least one seed must actually crash an EN"
        );
    }

    #[test]
    fn fixed_manager_completes_replication_scenario() {
        for seed in 0..10 {
            let mut rt = new_runtime(seed, 4_000);
            build_harness(&mut rt, &VnextConfig::replicate_scenario());
            let outcome = rt.run();
            assert!(
                !matches!(outcome, ExecutionOutcome::BugFound(_)),
                "replication scenario flagged a bug with seed {seed}: {outcome:?}"
            );
        }
    }

    #[test]
    fn seeded_liveness_bug_is_found_by_the_engine() {
        let config = VnextConfig::with_liveness_bug();
        let engine = TestEngine::new(
            TestConfig::new()
                .with_iterations(500)
                .with_max_steps(3_000)
                .with_seed(3)
                .with_faults(config.fault_plan()),
        );
        let report = engine.run(move |rt| {
            build_harness(rt, &config);
        });
        let bug = report.bug.expect("the ExtentNodeLivenessViolation bug");
        assert_eq!(bug.bug.kind, BugKind::LivenessViolation);
        assert_eq!(bug.bug.source.as_deref(), Some("RepairMonitor"));
    }

    #[test]
    fn model_stats_report_the_harness_size() {
        let stats = model_stats();
        assert_eq!(stats.machines, 9);
        assert_eq!(stats.bugs_found, 1);
        assert!(stats.action_handlers >= 14);
    }
}
