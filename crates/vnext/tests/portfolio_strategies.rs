//! Portfolio coverage of the vNext liveness bug with the PR 3 strategy set:
//! the default portfolio (now including delay-bounding and probabilistic
//! random) hunts the seeded bug deterministically at any worker count, and
//! the probabilistic-random strategy finds the liveness violation on its own.

use psharp::prelude::*;
use vnext::{build_harness, portfolio_hunt, VnextConfig};

#[test]
fn probabilistic_random_finds_the_liveness_bug() {
    let config = VnextConfig::with_liveness_bug();
    let engine = TestEngine::new(
        TestConfig::new()
            .with_iterations(500)
            .with_max_steps(3_000)
            .with_seed(5)
            .with_faults(config.fault_plan())
            .with_scheduler(SchedulerKind::ProbabilisticRandom { switch_percent: 10 }),
    );
    let report = engine.run(move |rt| {
        build_harness(rt, &config);
    });
    let bug = report.bug.expect("probabilistic random finds the bug");
    assert_eq!(bug.bug.kind, BugKind::LivenessViolation);
    assert_eq!(report.scheduler, "prob");
}

#[test]
fn portfolio_hunt_is_deterministic_across_worker_counts() {
    let config = VnextConfig::with_liveness_bug();
    let base = TestConfig::new()
        .with_iterations(300)
        .with_max_steps(3_000)
        .with_seed(5)
        .with_faults(config.fault_plan())
        .with_default_portfolio();
    let serial = portfolio_hunt(&config, base.clone().with_workers(1));
    let expected = serial.bug.expect("portfolio finds the liveness bug");
    let parallel = portfolio_hunt(&config, base.with_workers(4));
    let found = parallel.bug.expect("portfolio finds the liveness bug");
    assert_eq!(found.iteration, expected.iteration);
    assert_eq!(found.trace, expected.trace);
    assert_eq!(parallel.scheduler, serial.scheduler);
}
