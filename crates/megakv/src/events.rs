//! Events of the mega-scale sharded key-value system.
//!
//! Every event is `Clone` and sent via [`Event::replicable`] so executions
//! stay snapshotable: the prefix-sharing engine can fork a run at any point
//! (`Runtime::snapshot` requires every queued payload to be copyable).
//!
//! [`Event::replicable`]: psharp::prelude::Event::replicable

use psharp::prelude::MachineId;

/// A client operation against the keyspace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KvOp {
    /// Write `val` under `key`.
    Put {
        /// Target key.
        key: u64,
        /// Value to store.
        val: u64,
    },
    /// Read the current value under `key`.
    Get {
        /// Target key.
        key: u64,
    },
}

impl KvOp {
    /// The key this operation addresses.
    pub fn key(&self) -> u64 {
        match *self {
            KvOp::Put { key, .. } | KvOp::Get { key } => key,
        }
    }
}

/// A client request, routed by the router and served by a shard primary.
///
/// The same payload travels client → router → primary; `attempt` counts
/// resends (retry ticks and NACK-driven retries), which the router's
/// (optionally buggy) retry fast path keys on.
#[derive(Debug, Clone, Copy)]
pub struct KvRequest {
    /// The operation.
    pub op: KvOp,
    /// Where to send the reply.
    pub client: MachineId,
    /// Client-local sequence number identifying the operation instance.
    pub seq: u64,
    /// 0 for the original send, incremented on every retry.
    pub attempt: u32,
}

/// Positive reply to a [`KvOp::Put`].
#[derive(Debug, Clone, Copy)]
pub struct PutAck {
    /// Sequence number of the acknowledged operation.
    pub seq: u64,
    /// The written key.
    pub key: u64,
}

/// Reply to a [`KvOp::Get`].
#[derive(Debug, Clone, Copy)]
pub struct GetReply {
    /// Sequence number of the answered operation.
    pub seq: u64,
    /// The requested key.
    pub key: u64,
    /// The stored value, or `None` when the key is absent.
    pub value: Option<u64>,
}

/// Negative reply: the receiving shard does not (or no longer does) own the
/// requested key. The client retries through the router.
#[derive(Debug, Clone, Copy)]
pub struct Nack {
    /// Sequence number of the rejected operation.
    pub seq: u64,
}

/// Client-internal retry timer, modeled as a replicable self-send: the
/// scheduler interleaves it freely with the reply, so both the
/// timeout-then-retry and the prompt-reply orderings are explored.
#[derive(Debug, Clone, Copy)]
pub struct RetryTick {
    /// Sequence number of the operation the tick was armed for; stale ticks
    /// (the operation already completed) are ignored.
    pub seq: u64,
}

/// Primary → backup replication of one write.
#[derive(Debug, Clone, Copy)]
pub struct Replicate {
    /// Written key.
    pub key: u64,
    /// Written value.
    pub val: u64,
    /// Write sequence number; backups apply last-writer-wins by `seq`, so
    /// duplicated or reordered replication is idempotent.
    pub seq: u64,
}

/// Controller → backup: take over as primary for the shard's range.
#[derive(Debug, Clone, Copy)]
pub struct Promote;

/// Failure-detector signal sent by a primary's crash hook to the controller.
#[derive(Debug, Clone, Copy)]
pub struct PrimaryDown {
    /// Index of the shard whose primary went down.
    pub shard: usize,
}

/// Controller → primary: hand the key range `[start, end)` over to `to`
/// (the upper half of a split, or the whole range for a rebalance).
#[derive(Debug, Clone, Copy)]
pub struct Handover {
    /// First key of the handed-over range.
    pub start: u64,
    /// One past the last key of the handed-over range.
    pub end: u64,
    /// The replica taking over the range.
    pub to: MachineId,
}

/// Old primary → new primary: the state snapshot of a handed-over range.
#[derive(Debug, Clone)]
pub struct InstallRange {
    /// `(key, val, seq)` triples of the transferred entries.
    pub entries: Vec<(u64, u64, u64)>,
}

/// Old primary → controller: the range snapshot has been sent to `to`; the
/// controller may now repoint the routing table.
#[derive(Debug, Clone, Copy)]
pub struct HandoverDone {
    /// First key of the handed-over range.
    pub start: u64,
    /// One past the last key of the handed-over range.
    pub end: u64,
    /// The replica that received the snapshot.
    pub to: MachineId,
}

/// Controller → old primary: the routing table has been repointed; stop
/// serving the handed-over range. The correct primary shrinks its range
/// already when handling [`Handover`] and ignores this; the seeded
/// rebalance bug shrinks only here, silently dropping every write it
/// accepted in between.
#[derive(Debug, Clone, Copy)]
pub struct HandoverFinalize {
    /// First key of the range being finalized away.
    pub at: u64,
}

/// Controller → router: the range `[start, end)` is now served by `primary`.
#[derive(Debug, Clone, Copy)]
pub struct RouteUpdate {
    /// First key of the updated range.
    pub start: u64,
    /// One past the last key of the updated range.
    pub end: u64,
    /// The primary now serving the range.
    pub primary: MachineId,
}

/// Monitor notification: a client began a put/get pair.
#[derive(Debug, Clone, Copy)]
pub struct ReqIssued;

/// Monitor notification: a client completed a put/get pair.
#[derive(Debug, Clone, Copy)]
pub struct ReqCompleted;

/// Monitor notification: a put was acknowledged to the client.
#[derive(Debug, Clone, Copy)]
pub struct WriteAcked {
    /// Acknowledged key.
    pub key: u64,
    /// Acknowledged value.
    pub val: u64,
}

/// Monitor notification: a get reply was observed by the client.
#[derive(Debug, Clone, Copy)]
pub struct ReadObserved {
    /// Read key.
    pub key: u64,
    /// Returned value (`None` = key reported absent).
    pub value: Option<u64>,
}
