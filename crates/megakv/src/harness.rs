//! The P# test harness of the sharded key-value case study.
//!
//! The harness wires the controller, every shard replica, the router and
//! the modeled clients, registers the read-your-writes safety monitor and
//! the request-progress liveness monitor, and exposes one configuration
//! constructor per seeded bug plus a [`MegaKvConfig::scale`] constructor
//! used by the scaling benchmark and the allocation-budget tests.

use psharp::prelude::*;

use crate::client::Client;
use crate::controller::{Controller, ControllerBugs, ControllerInit, ShardInfo};
use crate::monitors::{ProgressMonitor, ReadYourWritesMonitor};
use crate::replica::{Replica, ReplicaBugs};
use crate::router::Router;
use crate::SHARD_WIDTH;

/// Seeded-bug switches of the case study (all off = the fixed system).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MegaKvBugs {
    /// Router retry fast path keyed by a truncated 8-bit shard hint
    /// (safety; structurally unreachable below 257 shards).
    pub retry_cache_truncation: bool,
    /// Controller points a split-off range at the old primary (liveness).
    pub split_routes_to_old_primary: bool,
    /// Old primary keeps acknowledging writes during a handover (safety).
    pub rebalance_keeps_accepting: bool,
    /// Primary acknowledges before replicating, batching replication
    /// (safety, requires an injected crash).
    pub ack_before_replicate: bool,
}

/// Configuration of the sharded key-value harness.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MegaKvConfig {
    /// Number of initial shards (each `SHARD_WIDTH` keys wide).
    pub shards: usize,
    /// Give every shard a backup replica (doubles the replica count).
    pub backups: bool,
    /// Number of modeled clients.
    pub clients: usize,
    /// Put/get pairs issued per client.
    pub pairs_per_client: usize,
    /// Split shard 0's upper half onto a new primary during the run.
    pub do_split: bool,
    /// Rebalance shard 0's (remaining) range onto a new primary.
    pub do_rebalance: bool,
    /// Shard whose primary is marked crashable (requires `backups`).
    pub crashable_shard: Option<usize>,
    /// Out-of-range requests fail an assertion instead of NACKing. Only
    /// set by the shard-aliasing configuration, where no split, rebalance
    /// or crash exists and a misroute can only come from the seeded bug.
    pub assert_on_misroute: bool,
    /// Base keys of the clients' hot set; client `i` uses each base offset
    /// by `8 * i`, so hot keys are disjoint across clients (single-writer
    /// keys keep the read-your-writes monitor exact).
    pub hot_key_bases: Vec<u64>,
    /// Seeded bugs.
    pub bugs: MegaKvBugs,
}

impl Default for MegaKvConfig {
    fn default() -> Self {
        MegaKvConfig {
            shards: 8,
            backups: true,
            clients: 2,
            pairs_per_client: 2,
            do_split: true,
            do_rebalance: true,
            crashable_shard: Some(1),
            assert_on_misroute: false,
            // Shard 0's lower half, shard 0's upper (post-split) half, and
            // shard 1 — the keyspace slices every reconfiguration and the
            // crashable primary touch.
            hot_key_bases: vec![1, SHARD_WIDTH / 2 + 1, SHARD_WIDTH + 1],
            bugs: MegaKvBugs::default(),
        }
    }
}

impl MegaKvConfig {
    /// The scale-gated router bug: a retried request routed through the
    /// truncated 8-bit cache hint can land on the wrong primary — but only
    /// with more than 256 shards (shards 2 and 258 alias here).
    pub fn with_shard_aliasing_bug() -> Self {
        MegaKvConfig {
            shards: 260,
            backups: false,
            clients: 2,
            pairs_per_client: 2,
            do_split: false,
            do_rebalance: false,
            crashable_shard: None,
            assert_on_misroute: true,
            hot_key_bases: vec![2 * SHARD_WIDTH + 1, 258 * SHARD_WIDTH + 1],
            bugs: MegaKvBugs {
                retry_cache_truncation: true,
                ..MegaKvBugs::default()
            },
        }
    }

    /// The split bug: the new range is routed to the old, shrunk primary;
    /// every request for a split-off key NACKs forever (liveness).
    pub fn with_split_bug() -> Self {
        MegaKvConfig {
            shards: 2,
            backups: false,
            clients: 1,
            pairs_per_client: 2,
            do_split: true,
            do_rebalance: false,
            crashable_shard: None,
            assert_on_misroute: false,
            // Only upper-half keys: every operation targets the range the
            // buggy controller forgets to repoint.
            hot_key_bases: vec![SHARD_WIDTH / 2 + 1],
            bugs: MegaKvBugs {
                split_routes_to_old_primary: true,
                ..MegaKvBugs::default()
            },
        }
    }

    /// The rebalance bug: the old primary keeps acknowledging writes after
    /// snapshotting its range; those writes vanish with the handover
    /// (safety).
    pub fn with_rebalance_bug() -> Self {
        MegaKvConfig {
            shards: 2,
            backups: false,
            clients: 1,
            pairs_per_client: 3,
            do_split: false,
            do_rebalance: true,
            crashable_shard: None,
            assert_on_misroute: false,
            hot_key_bases: vec![1],
            bugs: MegaKvBugs {
                rebalance_keeps_accepting: true,
                ..MegaKvBugs::default()
            },
        }
    }

    /// The fault-induced promotion bug: the primary fast-acks writes and
    /// batches replication; an injected crash ([`MegaKvConfig::fault_plan`])
    /// loses the batch, and the promoted backup misses acknowledged writes
    /// (safety). Unreachable without the crash.
    pub fn with_promote_lost_write_bug() -> Self {
        MegaKvConfig {
            shards: 2,
            backups: true,
            clients: 1,
            pairs_per_client: 2,
            do_split: false,
            do_rebalance: false,
            crashable_shard: Some(0),
            assert_on_misroute: false,
            hot_key_bases: vec![1],
            bugs: MegaKvBugs {
                ack_before_replicate: true,
                ..MegaKvBugs::default()
            },
        }
    }

    /// A mega-scale configuration with exactly `total_machines` machines
    /// (controller + router + 2 clients + single-replica shards): a few hot
    /// shards serve the whole workload while thousands of cold replicas
    /// stay idle after their start step — the shape the O(active)
    /// scheduling core is benchmarked on.
    ///
    /// # Panics
    ///
    /// Panics when `total_machines < 5` (controller, router, two clients
    /// and at least one shard are always created).
    pub fn scale(total_machines: usize, pairs_per_client: usize) -> Self {
        let clients = 2;
        assert!(
            total_machines >= clients + 3,
            "scale config needs at least {} machines",
            clients + 3
        );
        MegaKvConfig {
            shards: total_machines - clients - 2,
            backups: false,
            clients,
            pairs_per_client,
            do_split: false,
            do_rebalance: false,
            crashable_shard: None,
            assert_on_misroute: false,
            hot_key_bases: vec![1, SHARD_WIDTH + 1],
            bugs: MegaKvBugs::default(),
        }
    }

    /// The fault budget the fault-induced configurations are designed
    /// around: one crash, which the fixed replicate-then-ack primary
    /// tolerates through promotion and client retry.
    pub fn fault_plan(&self) -> FaultPlan {
        FaultPlan::new().with_crashes(1)
    }

    /// The number of machines [`build_harness`] creates up front.
    pub fn initial_machines(&self) -> usize {
        let replicas_per_shard = if self.backups { 2 } else { 1 };
        1 + self.shards * replicas_per_shard + 1 + self.clients
    }

    /// Whether the controller participates in this run (reconfigurations or
    /// failure handling); inert controllers are not sent an init event, so
    /// pure-scale runs stay allocation-free after recycling.
    fn controller_is_active(&self) -> bool {
        self.do_split || self.do_rebalance || self.crashable_shard.is_some()
    }
}

/// Ids of the machines created by [`build_harness`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MegaKvHarness {
    /// The cluster controller.
    pub controller: MachineId,
    /// The routing front-end.
    pub router: MachineId,
    /// Initial shard primaries, in shard order.
    pub primaries: Vec<MachineId>,
    /// Initial shard backups (`None` when the config runs without them).
    pub backups: Vec<Option<MachineId>>,
    /// The modeled clients.
    pub clients: Vec<MachineId>,
}

/// Builds the full harness into `rt` and returns the machine ids.
pub fn build_harness(rt: &mut Runtime, config: &MegaKvConfig) -> MegaKvHarness {
    rt.add_monitor(ReadYourWritesMonitor::new());
    rt.add_monitor(ProgressMonitor::new());

    let replica_bugs = ReplicaBugs {
        keep_accepting_during_handover: config.bugs.rebalance_keeps_accepting,
        ack_before_replicate: config.bugs.ack_before_replicate,
    };
    let controller_bugs = ControllerBugs {
        split_routes_to_old_primary: config.bugs.split_routes_to_old_primary,
    };
    let controller = rt.create_machine(Controller::new(
        replica_bugs,
        config.assert_on_misroute,
        controller_bugs,
    ));

    let mut primaries = Vec::with_capacity(config.shards);
    let mut backups = Vec::with_capacity(config.shards);
    let mut shard_infos = Vec::with_capacity(config.shards);
    let mut table = Vec::with_capacity(config.shards);
    for shard in 0..config.shards {
        let start = shard as u64 * SHARD_WIDTH;
        let end = start + SHARD_WIDTH;
        let backup = config
            .backups
            .then(|| rt.create_machine(Replica::backup(controller, shard, start, end)));
        let primary = rt.create_machine(Replica::primary(
            controller,
            shard,
            start,
            end,
            backup.into_iter().collect(),
            config.assert_on_misroute,
            replica_bugs,
        ));
        if config.crashable_shard == Some(shard) {
            rt.mark_crashable(primary);
        }
        primaries.push(primary);
        backups.push(backup);
        shard_infos.push(ShardInfo {
            start,
            end,
            primary,
            backup,
        });
        table.push((start, end, primary));
    }

    let router = rt.create_machine(Router::new(table, config.bugs.retry_cache_truncation));
    // The router tolerates message loss and duplication by design: clients
    // re-drive lost requests via retry ticks and replicas apply writes
    // idempotently (last-writer-wins by sequence number). Marking it lossy
    // lets `--faults drop=N,dup=N` budgets exercise that tolerance — and
    // gives fault-injection shrink tests surplus, deletable faults.
    rt.mark_lossy(router);

    let mut clients = Vec::with_capacity(config.clients);
    for index in 0..config.clients {
        let hot_keys: Vec<u64> = config
            .hot_key_bases
            .iter()
            .map(|base| base + 8 * index as u64)
            .collect();
        clients.push(rt.create_machine(Client::new(router, hot_keys, config.pairs_per_client)));
    }

    if config.controller_is_active() {
        // Replicable: the wiring event must not block post-setup snapshots
        // (prefix-sharing forks). FIFO delivery guarantees the init is
        // handled before any failure-detector signal.
        rt.send(
            controller,
            Event::replicable(ControllerInit {
                router,
                shards: shard_infos,
                do_split: config.do_split,
                do_rebalance: config.do_rebalance,
            }),
        );
    }

    MegaKvHarness {
        controller,
        router,
        primaries,
        backups,
        clients,
    }
}

/// Hunts for bugs in this harness with a parallel (optionally portfolio)
/// run; iteration seeds match a serial run regardless of worker count.
pub fn portfolio_hunt(config: &MegaKvConfig, test: TestConfig) -> TestReport {
    let config = config.clone();
    ParallelTestEngine::new(test).run(move |rt| {
        build_harness(rt, &config);
    })
}

/// Model statistics of this harness, for the Table 1 reproduction.
pub fn model_stats() -> ModelStats {
    let config = MegaKvConfig::default();
    // Controller + 8 shards x (primary + backup) + router + 2 clients,
    // plus the split and rebalance targets created mid-run.
    let machines = config.initial_machines() + 2;
    // Handlers: Replica {KvRequest, Replicate, Promote, Handover,
    // HandoverFinalize, InstallRange}, Router {KvRequest, RouteUpdate},
    // Controller {ControllerInit, HandoverDone, PrimaryDown},
    // Client {start, PutAck, GetReply, Nack, RetryTick};
    // monitors: read-your-writes {2}, progress {2}.
    let action_handlers = 6 + 2 + 3 + 5 + 2 + 2;
    // Logical transitions: client put->get->next pair, controller
    // idle->splitting->rebalancing->idle, backup->primary promotion,
    // replica serving->handed-over, monitor hot<->cold.
    let state_transitions = 3 + 3 + 1 + 1 + 2;
    ModelStats::new("Mega-scale sharded KV store")
        .with_bugs(4)
        .with_model(machines, state_transitions, action_handlers)
}

#[cfg(test)]
mod tests {
    use super::*;
    use psharp::runtime::{Runtime, RuntimeConfig};
    use psharp::scheduler::RandomScheduler;

    fn new_runtime(seed: u64, max_steps: usize) -> Runtime {
        Runtime::new(
            Box::new(RandomScheduler::new(seed)),
            RuntimeConfig {
                max_steps,
                ..RuntimeConfig::default()
            },
            seed,
        )
    }

    #[test]
    fn harness_creates_expected_machines() {
        let mut rt = new_runtime(1, 2_000);
        let config = MegaKvConfig::default();
        let harness = build_harness(&mut rt, &config);
        assert_eq!(harness.primaries.len(), 8);
        assert_eq!(harness.clients.len(), 2);
        assert!(harness.backups.iter().all(Option::is_some));
        assert_eq!(rt.machine_count(), config.initial_machines());
        assert_eq!(config.initial_machines(), 20);
    }

    #[test]
    fn scale_config_hits_the_requested_machine_count() {
        let mut rt = new_runtime(1, 10);
        let config = MegaKvConfig::scale(4_096, 0);
        build_harness(&mut rt, &config);
        assert_eq!(rt.machine_count(), 4_096);
    }

    #[test]
    fn fixed_system_completes_without_bug() {
        // The fixed system — including its split and rebalance storms —
        // must never flag a violation on a reliable network.
        for seed in 0..20 {
            let mut rt = new_runtime(seed, 4_000);
            build_harness(&mut rt, &MegaKvConfig::default());
            let outcome = rt.run();
            assert!(
                !matches!(outcome, ExecutionOutcome::BugFound(_)),
                "fixed megakv flagged a bug with seed {seed}: {outcome:?}"
            );
        }
    }

    #[test]
    fn fixed_system_stays_clean_under_a_crash_fault() {
        // One injected crash of shard 1's primary is tolerated: the
        // replicate-then-ack discipline means the promoted backup holds
        // every acknowledged write, and client retries re-drive requests
        // that died with the primary.
        let config = MegaKvConfig::default();
        let engine = TestEngine::new(
            TestConfig::new()
                .with_iterations(300)
                .with_max_steps(4_000)
                .with_seed(3)
                .with_faults(config.fault_plan()),
        );
        let report = engine.run(move |rt| {
            build_harness(rt, &config);
        });
        assert!(
            !report.found_bug(),
            "fixed megakv flagged a bug under a crash fault: {:?}",
            report.bug.map(|b| b.bug)
        );
    }

    #[test]
    fn shard_aliasing_bug_is_found_at_260_shards() {
        let config = MegaKvConfig::with_shard_aliasing_bug();
        let engine = TestEngine::new(
            TestConfig::new()
                .with_iterations(300)
                .with_max_steps(6_000)
                .with_seed(9),
        );
        let report = engine.run(move |rt| {
            build_harness(rt, &config);
        });
        let bug = report.bug.expect("aliasing bug should be found");
        assert_eq!(bug.bug.kind, BugKind::SafetyViolation);
        assert!(
            bug.bug.message.contains("routed to shard"),
            "unexpected violation: {}",
            bug.bug.message
        );
    }

    #[test]
    fn shard_aliasing_bug_is_structurally_unreachable_below_257_shards() {
        // Same buggy fast path, same workload shape, but 256 shards: the
        // 8-bit hint is exact, so a cache hit always forwards to the
        // correct primary and no schedule can misroute.
        let config = MegaKvConfig {
            shards: 256,
            hot_key_bases: vec![2 * SHARD_WIDTH + 1, 250 * SHARD_WIDTH + 1],
            ..MegaKvConfig::with_shard_aliasing_bug()
        };
        let engine = TestEngine::new(
            TestConfig::new()
                .with_iterations(150)
                .with_max_steps(6_000)
                .with_seed(9),
        );
        let report = engine.run(move |rt| {
            build_harness(rt, &config);
        });
        assert!(
            !report.found_bug(),
            "aliasing fired below the truncation threshold: {:?}",
            report.bug.map(|b| b.bug)
        );
    }

    #[test]
    fn split_bug_is_found_as_liveness_violation() {
        let config = MegaKvConfig::with_split_bug();
        let engine = TestEngine::new(
            TestConfig::new()
                .with_iterations(300)
                .with_max_steps(1_500)
                .with_seed(17),
        );
        let report = engine.run(move |rt| {
            build_harness(rt, &config);
        });
        let bug = report.bug.expect("split bug should be found");
        assert_eq!(bug.bug.kind, BugKind::LivenessViolation);
        assert_eq!(bug.bug.source.as_deref(), Some("ProgressMonitor"));
    }

    #[test]
    fn rebalance_bug_is_found_as_lost_write() {
        let config = MegaKvConfig::with_rebalance_bug();
        let engine = TestEngine::new(
            TestConfig::new()
                .with_iterations(500)
                .with_max_steps(2_000)
                .with_seed(23),
        );
        let report = engine.run(move |rt| {
            build_harness(rt, &config);
        });
        let bug = report.bug.expect("rebalance bug should be found");
        assert_eq!(bug.bug.kind, BugKind::SafetyViolation);
        assert_eq!(bug.bug.source.as_deref(), Some("ReadYourWritesMonitor"));
    }

    #[test]
    fn promote_bug_is_found_via_injected_crash() {
        let config = MegaKvConfig::with_promote_lost_write_bug();
        let engine = TestEngine::new(
            TestConfig::new()
                .with_iterations(600)
                .with_max_steps(2_500)
                .with_seed(31)
                .with_faults(config.fault_plan()),
        );
        let report = engine.run(move |rt| {
            build_harness(rt, &config);
        });
        let bug = report.bug.expect("promotion bug should be found");
        assert_eq!(bug.bug.kind, BugKind::SafetyViolation);
        assert_eq!(bug.bug.source.as_deref(), Some("ReadYourWritesMonitor"));
        assert!(
            bug.trace.fault_decision_count() >= 1,
            "the bug needs an injected crash in its decision stream"
        );
    }

    #[test]
    fn promote_bug_is_unreachable_without_the_crash() {
        // Without the crash the unflushed batch never matters: the primary
        // serves every read from its own store.
        let config = MegaKvConfig::with_promote_lost_write_bug();
        let engine = TestEngine::new(
            TestConfig::new()
                .with_iterations(300)
                .with_max_steps(2_500)
                .with_seed(31),
        );
        let report = engine.run(move |rt| {
            build_harness(rt, &config);
        });
        assert!(!report.found_bug());
    }

    #[test]
    fn model_stats_report_the_harness_size() {
        let stats = model_stats();
        assert_eq!(stats.machines, 22);
        assert_eq!(stats.bugs_found, 4);
        assert!(stats.action_handlers > 0);
    }
}
