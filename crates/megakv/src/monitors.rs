//! Safety and liveness specifications of the sharded key-value store.

use std::collections::HashMap;

use psharp::prelude::*;

use crate::events::{ReadObserved, ReqCompleted, ReqIssued, WriteAcked};

/// Safety monitor: a read of a key must return the latest acknowledged
/// write of that key (clients use disjoint hot keys, so every key has a
/// single writer and the expectation is exact).
#[derive(Debug, Default, Clone)]
pub struct ReadYourWritesMonitor {
    acked: HashMap<u64, u64>,
    reads_observed: usize,
}

impl ReadYourWritesMonitor {
    /// Creates the monitor with no writes observed.
    pub fn new() -> Self {
        ReadYourWritesMonitor::default()
    }

    /// Number of reads observed (exposed for tests).
    pub fn reads_observed(&self) -> usize {
        self.reads_observed
    }
}

impl Monitor for ReadYourWritesMonitor {
    fn observe(&mut self, ctx: &mut MonitorContext<'_>, event: &Event) {
        if let Some(write) = event.downcast_ref::<WriteAcked>() {
            self.acked.insert(write.key, write.val);
        } else if let Some(read) = event.downcast_ref::<ReadObserved>() {
            self.reads_observed += 1;
            if let Some(&expected) = self.acked.get(&read.key) {
                ctx.assert(
                    read.value == Some(expected),
                    format!(
                        "acknowledged write lost: read of key {} returned {:?}, expected {}",
                        read.key, read.value, expected
                    ),
                );
            }
        }
    }

    fn name(&self) -> &str {
        "ReadYourWritesMonitor"
    }

    fn clone_state(&self) -> Option<Box<dyn Monitor>> {
        Some(Box::new(self.clone()))
    }
}

/// Liveness monitor: every issued put/get pair eventually completes.
#[derive(Debug, Default, Clone)]
pub struct ProgressMonitor {
    outstanding: usize,
    issued: usize,
    completed: usize,
}

impl ProgressMonitor {
    /// Creates the monitor in the cold state.
    pub fn new() -> Self {
        ProgressMonitor::default()
    }

    /// Number of pairs completed (exposed for tests).
    pub fn completed(&self) -> usize {
        self.completed
    }
}

impl Monitor for ProgressMonitor {
    fn observe(&mut self, _ctx: &mut MonitorContext<'_>, event: &Event) {
        if event.is::<ReqIssued>() {
            self.outstanding += 1;
            self.issued += 1;
        } else if event.is::<ReqCompleted>() {
            self.outstanding = self.outstanding.saturating_sub(1);
            self.completed += 1;
        }
    }

    fn temperature(&self) -> Temperature {
        if self.outstanding > 0 {
            Temperature::Hot
        } else {
            Temperature::Cold
        }
    }

    fn hot_message(&self) -> String {
        format!(
            "a client request never completed ({} issued, {} completed)",
            self.issued, self.completed
        )
    }

    fn name(&self) -> &str {
        "ProgressMonitor"
    }

    fn clone_state(&self) -> Option<Box<dyn Monitor>> {
        Some(Box::new(self.clone()))
    }
}
