//! The request router: the single front-end mapping keys to shard primaries.
//!
//! The router holds the authoritative routing table (sorted, non-overlapping
//! key ranges) and forwards every [`KvRequest`] to the owning primary.
//! The controller repoints ranges with [`RouteUpdate`]s after splits,
//! rebalances and promotions.
//!
//! The **shard-aliasing** seeded bug lives here: a retry fast path that
//! caches the last routed primary under an 8-bit shard hint
//! (`key / SHARD_WIDTH` truncated to `u8`). With 256 shards or fewer the
//! hint is exact and the cache can only ever hit the correct primary; from
//! 257 shards up two shards alias to the same hint, and a retried request
//! can be forwarded to a primary that does not own its key. The bug is
//! structurally unreachable below 257 shards — it only exists at scale.

use psharp::prelude::*;

use crate::events::{KvRequest, Nack, RouteUpdate};
use crate::SHARD_WIDTH;

/// One routing-table entry: keys in `[start, end)` go to `primary`.
#[derive(Debug, Clone, Copy)]
struct Route {
    start: u64,
    end: u64,
    primary: MachineId,
}

/// The routing front-end machine.
#[derive(Clone)]
pub struct Router {
    /// Sorted, non-overlapping ranges covering the keyspace.
    table: Vec<Route>,
    /// Retry fast-path cache: the last full lookup, keyed by the truncated
    /// 8-bit shard hint. Only consulted when `retry_cache_truncation` is on.
    cache: Option<(u8, MachineId)>,
    retry_cache_truncation: bool,
}

impl Router {
    /// Creates the router over `shards` initial `(start, end, primary)`
    /// ranges (must be sorted and non-overlapping).
    pub fn new(shards: Vec<(u64, u64, MachineId)>, retry_cache_truncation: bool) -> Self {
        Router {
            table: shards
                .into_iter()
                .map(|(start, end, primary)| Route {
                    start,
                    end,
                    primary,
                })
                .collect(),
            cache: None,
            retry_cache_truncation,
        }
    }

    /// Number of routing-table entries (exposed for tests).
    pub fn route_count(&self) -> usize {
        self.table.len()
    }

    /// The 8-bit shard hint of the buggy retry fast path. Exact for up to
    /// 256 initial shards; aliasing beyond that.
    fn hint(key: u64) -> u8 {
        (key / SHARD_WIDTH) as u8
    }

    /// Full routing-table lookup.
    fn lookup(&self, key: u64) -> Option<MachineId> {
        let at = self.table.partition_point(|route| route.start <= key);
        let route = self.table.get(at.checked_sub(1)?)?;
        (key < route.end).then_some(route.primary)
    }

    fn route(&mut self, ctx: &mut Context<'_>, req: KvRequest) {
        let key = req.op.key();
        if req.attempt > 0 && self.retry_cache_truncation {
            // Retry fast path: skip the table walk when the cached hint
            // matches. The hint is the shard index truncated to 8 bits, so
            // beyond 256 shards two shards collide and the retry lands on a
            // primary that does not own the key.
            if let Some((hint, primary)) = self.cache {
                if hint == Self::hint(key) {
                    ctx.send(primary, Event::replicable(req));
                    return;
                }
            }
        }
        match self.lookup(key) {
            Some(primary) => {
                self.cache = Some((Self::hint(key), primary));
                ctx.send(primary, Event::replicable(req));
            }
            None => ctx.send(req.client, Event::replicable(Nack { seq: req.seq })),
        }
    }

    fn update(&mut self, update: RouteUpdate) {
        // A route update repoints an exact existing range (promotion,
        // rebalance) or registers the tail split off an existing range.
        self.cache = None;
        let at = self
            .table
            .partition_point(|route| route.start <= update.start);
        let Some(index) = at.checked_sub(1) else {
            return;
        };
        let route = &mut self.table[index];
        if route.start == update.start {
            route.end = update.end;
            route.primary = update.primary;
        } else if update.start < route.end {
            route.end = update.start;
            self.table.insert(
                index + 1,
                Route {
                    start: update.start,
                    end: update.end,
                    primary: update.primary,
                },
            );
        }
    }
}

impl Machine for Router {
    fn handle(&mut self, ctx: &mut Context<'_>, event: Event) {
        if let Some(&req) = event.downcast_ref::<KvRequest>() {
            self.route(ctx, req);
        } else if let Some(&update) = event.downcast_ref::<RouteUpdate>() {
            self.update(update);
        }
    }

    fn name(&self) -> &str {
        "KvRouter"
    }

    psharp::impl_machine_snapshot!();
}
