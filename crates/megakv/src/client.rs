//! Modeled clients: request floods over a small hot-key set, with retry
//! ticks and NACK-driven resends.
//!
//! Each client works through a configured number of put/get pairs: write a
//! nondeterministically chosen hot key, and after the acknowledgement read
//! it back, reporting both to the read-your-writes safety monitor. Every
//! outstanding operation has a retry tick in flight (a replicable
//! self-send), so the scheduler can fire the "timeout" before the reply —
//! producing the spurious retries the router's fast path keys on — and a
//! client whose request died with a crashed primary keeps retrying until
//! the promoted backup serves it. NACKs retry immediately, which under a
//! misrouted table turns into the cascading retry floods the liveness
//! monitor judges at the step bound.
//!
//! Clients use disjoint hot keys, so each key has a single writer and a
//! read observing anything but the last acknowledged write is a genuine
//! safety violation.

use psharp::prelude::*;

use crate::events::{
    GetReply, KvOp, KvRequest, Nack, PutAck, ReadObserved, ReqCompleted, ReqIssued, RetryTick,
    WriteAcked,
};
use crate::monitors::{ProgressMonitor, ReadYourWritesMonitor};

/// The operation a client is currently waiting on.
#[derive(Debug, Clone, Copy)]
struct Pending {
    op: KvOp,
    attempt: u32,
}

/// A modeled client issuing put/get pairs against hot keys.
#[derive(Clone)]
pub struct Client {
    router: MachineId,
    hot_keys: Vec<u64>,
    pairs_left: usize,
    seq: u64,
    pending: Option<Pending>,
}

impl Client {
    /// Creates a client that will run `pairs` put/get pairs over `hot_keys`.
    pub fn new(router: MachineId, hot_keys: Vec<u64>, pairs: usize) -> Self {
        Client {
            router,
            hot_keys,
            pairs_left: pairs,
            seq: 0,
            pending: None,
        }
    }

    /// Put/get pairs still to run (exposed for tests; 0 = workload done).
    pub fn pairs_left(&self) -> usize {
        self.pairs_left
    }

    fn issue(&mut self, ctx: &mut Context<'_>, op: KvOp) {
        self.seq += 1;
        self.pending = Some(Pending { op, attempt: 0 });
        self.send_request(ctx, op, 0);
        ctx.send_to_self(Event::replicable(RetryTick { seq: self.seq }));
    }

    fn send_request(&self, ctx: &mut Context<'_>, op: KvOp, attempt: u32) {
        let req = KvRequest {
            op,
            client: ctx.id(),
            seq: self.seq,
            attempt,
        };
        ctx.send(self.router, Event::replicable(req));
    }

    fn retry(&mut self, ctx: &mut Context<'_>) {
        let Some(pending) = self.pending.as_mut() else {
            return;
        };
        pending.attempt += 1;
        let (op, attempt) = (pending.op, pending.attempt);
        self.send_request(ctx, op, attempt);
    }

    fn begin_pair(&mut self, ctx: &mut Context<'_>) {
        ctx.notify_monitor::<ProgressMonitor>(Event::replicable(ReqIssued));
        let key = *ctx.choose(&self.hot_keys);
        // Values are derived from the (strictly increasing) sequence number,
        // so every write to a key carries a distinct value.
        let val = self.seq + 1;
        self.issue(ctx, KvOp::Put { key, val });
    }
}

impl Machine for Client {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        if self.pairs_left > 0 && !self.hot_keys.is_empty() {
            self.begin_pair(ctx);
        }
    }

    fn handle(&mut self, ctx: &mut Context<'_>, event: Event) {
        if let Some(&ack) = event.downcast_ref::<PutAck>() {
            if ack.seq != self.seq {
                return; // stale ack of a retried, already-completed put
            }
            if let Some(Pending {
                op: KvOp::Put { key, val },
                ..
            }) = self.pending
            {
                ctx.notify_monitor::<ReadYourWritesMonitor>(Event::replicable(WriteAcked {
                    key,
                    val,
                }));
                self.issue(ctx, KvOp::Get { key });
            }
        } else if let Some(&reply) = event.downcast_ref::<GetReply>() {
            if reply.seq != self.seq
                || !matches!(
                    self.pending,
                    Some(Pending {
                        op: KvOp::Get { .. },
                        ..
                    })
                )
            {
                return;
            }
            ctx.notify_monitor::<ReadYourWritesMonitor>(Event::replicable(ReadObserved {
                key: reply.key,
                value: reply.value,
            }));
            ctx.notify_monitor::<ProgressMonitor>(Event::replicable(ReqCompleted));
            self.pending = None;
            self.pairs_left -= 1;
            if self.pairs_left > 0 {
                self.begin_pair(ctx);
            }
        } else if let Some(&nack) = event.downcast_ref::<Nack>() {
            if nack.seq == self.seq && self.pending.is_some() {
                self.retry(ctx);
            }
        } else if let Some(&tick) = event.downcast_ref::<RetryTick>() {
            if tick.seq == self.seq && self.pending.is_some() {
                self.retry(ctx);
                // Re-arm: the client keeps retrying until the operation
                // completes, so a request lost with a crashed primary is
                // eventually re-driven into the promoted backup.
                ctx.send_to_self(Event::replicable(RetryTick { seq: self.seq }));
            }
        }
    }

    fn name(&self) -> &str {
        "KvClient"
    }

    psharp::impl_machine_snapshot!();
}
