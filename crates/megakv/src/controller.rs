//! The cluster controller: shard splits, rebalancing and failure handling.
//!
//! The controller owns the cluster metadata (which replica is primary for
//! which range, and who its backup is). It drives two reconfiguration
//! storms against shard 0 — a split of the range's upper half onto a newly
//! created primary, then a rebalance of the remainder onto another new
//! primary — and reacts to [`PrimaryDown`] failure-detector signals by
//! promoting the shard's backup and repointing the router.
//!
//! The **split-forgotten-primary** seeded bug lives here: the buggy
//! controller registers the freshly split-off range in the routing table
//! but points it at the *old* primary, which has already shrunk and NACKs
//! every request for the range — the client retries forever and the
//! progress monitor stays hot.

use psharp::prelude::*;

use crate::events::{Handover, HandoverDone, HandoverFinalize, PrimaryDown, Promote, RouteUpdate};
use crate::replica::{Replica, ReplicaBugs};

/// Cluster metadata for one shard, as known to the controller.
#[derive(Debug, Clone, Copy)]
pub struct ShardInfo {
    /// First key of the shard's range.
    pub start: u64,
    /// One past the last key of the shard's range.
    pub end: u64,
    /// The serving primary.
    pub primary: MachineId,
    /// The shard's backup, if the configuration runs with replication.
    pub backup: Option<MachineId>,
}

/// Wiring event sent by the harness once all initial machines exist.
#[derive(Debug, Clone)]
pub struct ControllerInit {
    /// The routing front-end.
    pub router: MachineId,
    /// Initial metadata of every shard, in shard-index order.
    pub shards: Vec<ShardInfo>,
    /// Split shard 0's upper half onto a new primary.
    pub do_split: bool,
    /// Rebalance shard 0's (remaining) range onto a new primary.
    pub do_rebalance: bool,
}

/// Which reconfiguration the controller is currently waiting on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Idle,
    Splitting,
    Rebalancing,
}

/// Seeded-bug switches of the [`Controller`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ControllerBugs {
    /// After a split, point the new range's route at the old primary.
    pub split_routes_to_old_primary: bool,
}

/// The cluster-controller machine.
#[derive(Clone)]
pub struct Controller {
    router: Option<MachineId>,
    shards: Vec<ShardInfo>,
    do_rebalance: bool,
    phase: Phase,
    /// The old primary of the in-flight handover (receives the finalize).
    handing_over_from: Option<MachineId>,
    /// Bug flags handed to replicas the controller creates at runtime.
    replica_bugs: ReplicaBugs,
    assert_on_misroute: bool,
    bugs: ControllerBugs,
    reconfigurations_done: usize,
}

impl Controller {
    /// Creates the controller; it stays inert until [`ControllerInit`].
    pub fn new(replica_bugs: ReplicaBugs, assert_on_misroute: bool, bugs: ControllerBugs) -> Self {
        Controller {
            router: None,
            shards: Vec::new(),
            do_rebalance: false,
            phase: Phase::Idle,
            handing_over_from: None,
            replica_bugs,
            assert_on_misroute,
            bugs,
            reconfigurations_done: 0,
        }
    }

    /// Number of completed reconfigurations (exposed for tests).
    pub fn reconfigurations_done(&self) -> usize {
        self.reconfigurations_done
    }

    /// Creates a fresh primary (no backup) and starts handing `[start, end)`
    /// of shard 0 over to it.
    fn start_handover(&mut self, ctx: &mut Context<'_>, start: u64, end: u64, phase: Phase) {
        let shard_index = self.shards.len();
        let new_primary = ctx.create(Replica::primary(
            ctx.id(),
            shard_index,
            start,
            end,
            Vec::new(),
            self.assert_on_misroute,
            self.replica_bugs,
        ));
        self.shards.push(ShardInfo {
            start,
            end,
            primary: new_primary,
            backup: None,
        });
        let old_primary = self.shards[0].primary;
        self.handing_over_from = Some(old_primary);
        self.phase = phase;
        ctx.send(
            old_primary,
            Event::replicable(Handover {
                start,
                end,
                to: new_primary,
            }),
        );
    }

    fn handle_init(&mut self, ctx: &mut Context<'_>, init: &ControllerInit) {
        self.router = Some(init.router);
        self.shards = init.shards.clone();
        self.do_rebalance = init.do_rebalance;
        if init.do_split {
            let shard0 = self.shards[0];
            let mid = shard0.start + (shard0.end - shard0.start) / 2;
            self.start_handover(ctx, mid, shard0.end, Phase::Splitting);
        } else if init.do_rebalance {
            let shard0 = self.shards[0];
            self.do_rebalance = false;
            self.start_handover(ctx, shard0.start, shard0.end, Phase::Rebalancing);
        }
    }

    fn handle_handover_done(&mut self, ctx: &mut Context<'_>, done: HandoverDone) {
        let Some(router) = self.router else {
            return;
        };
        let Some(old_primary) = self.handing_over_from.take() else {
            return;
        };
        let new_primary = if self.phase == Phase::Splitting && self.bugs.split_routes_to_old_primary
        {
            // The forgotten-primary bug: the split-off range is registered,
            // but at the shrunk old primary, which NACKs everything in it.
            old_primary
        } else {
            done.to
        };
        ctx.send(
            router,
            Event::replicable(RouteUpdate {
                start: done.start,
                end: done.end,
                primary: new_primary,
            }),
        );
        ctx.send(
            old_primary,
            Event::replicable(HandoverFinalize { at: done.start }),
        );
        // Shard 0's authoritative range shrinks to what was not handed over.
        self.shards[0].end = done.start;
        self.reconfigurations_done += 1;
        let was_splitting = self.phase == Phase::Splitting;
        self.phase = Phase::Idle;
        if was_splitting && self.do_rebalance {
            let shard0 = self.shards[0];
            self.do_rebalance = false;
            self.start_handover(ctx, shard0.start, shard0.end, Phase::Rebalancing);
        }
    }

    fn handle_primary_down(&mut self, ctx: &mut Context<'_>, down: PrimaryDown) {
        let Some(router) = self.router else {
            return;
        };
        let Some(info) = self.shards.get_mut(down.shard) else {
            return;
        };
        let Some(backup) = info.backup.take() else {
            return;
        };
        info.primary = backup;
        ctx.send(backup, Event::replicable(Promote));
        ctx.send(
            router,
            Event::replicable(RouteUpdate {
                start: info.start,
                end: info.end,
                primary: backup,
            }),
        );
    }
}

impl Machine for Controller {
    fn handle(&mut self, ctx: &mut Context<'_>, event: Event) {
        if let Some(init) = event.downcast_ref::<ControllerInit>() {
            let init = init.clone();
            self.handle_init(ctx, &init);
        } else if let Some(&done) = event.downcast_ref::<HandoverDone>() {
            self.handle_handover_done(ctx, done);
        } else if let Some(&down) = event.downcast_ref::<PrimaryDown>() {
            self.handle_primary_down(ctx, down);
        }
    }

    fn name(&self) -> &str {
        "KvController"
    }

    psharp::impl_machine_snapshot!();
}
