//! # megakv — a mega-scale sharded key-value case study
//!
//! The fifth case study of this reproduction: a sharded key-value front-end
//! sized like the paper's production targets — one router, N shards (each a
//! primary and optionally a backup), and thousands of machines in total —
//! driven by simulated client request floods over a small hot-key set, with
//! shard splits, rebalancing storms and cascading retry floods.
//!
//! The crate exists for two reasons:
//!
//! 1. **Exercising the O(active) scheduling core.** Almost all of the
//!    keyspace is cold: thousands of shard replicas never receive a message
//!    after startup. With the incrementally maintained enabled index and
//!    lazy mailboxes, per-step cost is a function of the handful of *active*
//!    machines, so a 10⁴-machine harness explores schedules at nearly the
//!    same rate as a 10²-machine one (see the `megakv` benchmark group).
//! 2. **Bugs reachable only at scale.** The seeded router bug
//!    ([`router::Router`]) keys its retry fast path on an 8-bit shard hint:
//!    with ≤256 shards the hint is exact and the bug is structurally
//!    unreachable; at 257+ shards two shards alias and a retried request is
//!    forwarded to a primary that does not own its key.
//!
//! Four bugs are seeded behind [`MegaKvConfig`] switches:
//!
//! * **shard aliasing** (safety, scale-gated) — the truncated retry-cache
//!   hint above;
//! * **split forgotten primary** (liveness) — after a shard split the
//!   controller points the new range at the *old*, already-shrunk primary,
//!   which NACKs every request for it; the client retries forever;
//! * **rebalance lost write** (safety) — during a handover the old primary
//!   keeps acknowledging writes after sending its range snapshot; the
//!   in-window writes never reach the new primary;
//! * **promotion lost write** (safety, fault-induced) — the primary
//!   acknowledges before replicating, batching the replication; a crash
//!   (`--faults crash=1`) loses the batch and the promoted backup serves
//!   reads that miss acknowledged writes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod controller;
pub mod events;
pub mod harness;
pub mod monitors;
pub mod replica;
pub mod router;

pub use harness::{build_harness, model_stats, portfolio_hunt, MegaKvBugs, MegaKvConfig};

/// Width of every initial shard's key range: shard `s` owns
/// `[s * SHARD_WIDTH, (s + 1) * SHARD_WIDTH)`.
pub const SHARD_WIDTH: u64 = 1024;
