//! Shard replicas: the primaries (and backups) serving slices of the
//! keyspace.
//!
//! A replica owns a contiguous key range `[start, end)`. Primaries serve
//! [`KvRequest`]s forwarded by the router, replicate writes to their backups
//! and acknowledge the client; backups only apply [`Replicate`]s until a
//! [`Promote`] turns them into the primary. Writes carry the client's
//! sequence number and are applied last-writer-wins, so duplicated retries
//! are idempotent.
//!
//! Two of the case study's seeded bugs live here:
//!
//! * **`keep_accepting_during_handover`** — on a [`Handover`] the replica
//!   sends the range snapshot but keeps serving (and acknowledging) writes
//!   for the handed-over range until the controller's [`HandoverFinalize`];
//!   every write accepted in that window is silently dropped with the range.
//!   The correct replica stops owning the range atomically with the
//!   snapshot.
//! * **`ack_before_replicate`** — the primary acknowledges writes
//!   immediately and batches replication, flushing only every
//!   [`Replica::FLUSH_THRESHOLD`] writes; a crash with a non-empty batch
//!   loses acknowledged writes, which the promoted backup then cannot serve.
//!   The correct primary sends the replication before acknowledging, so the
//!   write survives in the backup's mailbox even if the primary dies next.

use std::collections::HashMap;

use psharp::prelude::*;

use crate::events::{
    GetReply, Handover, HandoverDone, HandoverFinalize, InstallRange, KvOp, KvRequest, Nack,
    PrimaryDown, Promote, PutAck, Replicate,
};

/// Seeded-bug switches of a [`Replica`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReplicaBugs {
    /// Keep serving a handed-over range until [`HandoverFinalize`] (the
    /// rebalance lost-write bug).
    pub keep_accepting_during_handover: bool,
    /// Acknowledge writes before replicating them, flushing replication in
    /// batches (the promotion lost-write bug).
    pub ack_before_replicate: bool,
}

/// One shard replica (primary or backup).
#[derive(Clone)]
pub struct Replica {
    controller: MachineId,
    shard: usize,
    start: u64,
    end: u64,
    backup: bool,
    backups: Vec<MachineId>,
    store: HashMap<u64, (u64, u64)>,
    unflushed: Vec<Replicate>,
    pending_shrink: Option<u64>,
    /// Out-of-range requests fail an assertion instead of NACKing. Only the
    /// shard-aliasing configuration sets this: there, with no splits or
    /// crashes, the only way a request can arrive at the wrong shard is the
    /// router's truncated retry cache.
    assert_on_misroute: bool,
    bugs: ReplicaBugs,
}

impl Replica {
    /// Batch size of the buggy deferred-replication path.
    pub const FLUSH_THRESHOLD: usize = 8;

    /// Creates a primary for `[start, end)` replicating to `backups`.
    pub fn primary(
        controller: MachineId,
        shard: usize,
        start: u64,
        end: u64,
        backups: Vec<MachineId>,
        assert_on_misroute: bool,
        bugs: ReplicaBugs,
    ) -> Self {
        Replica {
            controller,
            shard,
            start,
            end,
            backup: false,
            backups,
            store: HashMap::new(),
            unflushed: Vec::new(),
            pending_shrink: None,
            assert_on_misroute,
            bugs,
        }
    }

    /// Creates a backup for `[start, end)`; it applies replicated writes and
    /// serves nothing until promoted.
    pub fn backup(controller: MachineId, shard: usize, start: u64, end: u64) -> Self {
        Replica {
            controller,
            shard,
            start,
            end,
            backup: true,
            backups: Vec::new(),
            store: HashMap::new(),
            unflushed: Vec::new(),
            pending_shrink: None,
            assert_on_misroute: false,
            bugs: ReplicaBugs::default(),
        }
    }

    /// The replica's current key range (exposed for tests).
    pub fn range(&self) -> (u64, u64) {
        (self.start, self.end)
    }

    /// Number of keys currently stored (exposed for tests).
    pub fn stored_keys(&self) -> usize {
        self.store.len()
    }

    fn owns(&self, key: u64) -> bool {
        self.start <= key && key < self.end
    }

    fn apply(&mut self, key: u64, val: u64, seq: u64) {
        let entry = self.store.entry(key).or_insert((val, seq));
        if seq >= entry.1 {
            *entry = (val, seq);
        }
    }

    fn handle_request(&mut self, ctx: &mut Context<'_>, req: KvRequest) {
        let key = req.op.key();
        if self.backup || !self.owns(key) {
            if self.assert_on_misroute {
                ctx.assert(
                    false,
                    format!(
                        "key {key} routed to shard {} which owns [{}, {})",
                        self.shard, self.start, self.end
                    ),
                );
            } else {
                ctx.send(req.client, Event::replicable(Nack { seq: req.seq }));
            }
            return;
        }
        match req.op {
            KvOp::Put { key, val } => {
                self.apply(key, val, req.seq);
                let replicate = Replicate {
                    key,
                    val,
                    seq: req.seq,
                };
                if self.bugs.ack_before_replicate {
                    // Fast-ack: reply first, batch the replication. The
                    // batch is volatile — a crash takes it down with the
                    // machine.
                    ctx.send(req.client, Event::replicable(PutAck { seq: req.seq, key }));
                    self.unflushed.push(replicate);
                    if self.unflushed.len() >= Self::FLUSH_THRESHOLD {
                        for pending in std::mem::take(&mut self.unflushed) {
                            for &b in &self.backups {
                                ctx.send(b, Event::replicable(pending));
                            }
                        }
                    }
                } else {
                    // Replicate-then-ack: once the ack is out, the write
                    // already sits in every backup's mailbox and survives a
                    // primary crash.
                    for &b in &self.backups {
                        ctx.send(b, Event::replicable(replicate));
                    }
                    ctx.send(req.client, Event::replicable(PutAck { seq: req.seq, key }));
                }
            }
            KvOp::Get { key } => {
                ctx.send(
                    req.client,
                    Event::replicable(GetReply {
                        seq: req.seq,
                        key,
                        value: self.store.get(&key).map(|&(val, _)| val),
                    }),
                );
            }
        }
    }

    fn handle_handover(&mut self, ctx: &mut Context<'_>, handover: Handover) {
        let entries: Vec<(u64, u64, u64)> = self
            .store
            .iter()
            .filter(|(&key, _)| handover.start <= key && key < handover.end)
            .map(|(&key, &(val, seq))| (key, val, seq))
            .collect();
        ctx.send(handover.to, Event::replicable(InstallRange { entries }));
        ctx.send(
            self.controller,
            Event::replicable(HandoverDone {
                start: handover.start,
                end: handover.end,
                to: handover.to,
            }),
        );
        if self.bugs.keep_accepting_during_handover {
            // Keep serving the range until the controller finalizes; writes
            // accepted in that window never reach the new primary.
            self.pending_shrink = Some(handover.start);
        } else {
            // Stop owning the range atomically with the snapshot; in-window
            // requests NACK and the client retries into the new primary.
            self.shrink_to(handover.start);
        }
    }

    fn shrink_to(&mut self, at: u64) {
        self.end = at;
        let (start, end) = (self.start, self.end);
        self.store.retain(|&key, _| start <= key && key < end);
    }
}

impl Machine for Replica {
    fn handle(&mut self, ctx: &mut Context<'_>, event: Event) {
        if let Some(&req) = event.downcast_ref::<KvRequest>() {
            self.handle_request(ctx, req);
        } else if let Some(&rep) = event.downcast_ref::<Replicate>() {
            self.apply(rep.key, rep.val, rep.seq);
        } else if event.is::<Promote>() {
            self.backup = false;
        } else if let Some(&handover) = event.downcast_ref::<Handover>() {
            self.handle_handover(ctx, handover);
        } else if let Some(&finalize) = event.downcast_ref::<HandoverFinalize>() {
            if self.pending_shrink == Some(finalize.at) {
                self.pending_shrink = None;
                self.shrink_to(finalize.at);
            }
        } else if let Some(install) = event.downcast_ref::<InstallRange>() {
            let entries = install.entries.clone();
            for (key, val, seq) in entries {
                self.apply(key, val, seq);
            }
        }
    }

    fn on_crash(&mut self, ctx: &mut Context<'_>) {
        // The environment's failure detector: the controller learns about
        // the dead primary and promotes its backup.
        if !self.backup {
            ctx.send(
                self.controller,
                Event::replicable(PrimaryDown { shard: self.shard }),
            );
        }
    }

    fn name(&self) -> &str {
        if self.backup {
            "KvBackup"
        } else {
            "KvPrimary"
        }
    }

    psharp::impl_machine_snapshot!();
}
