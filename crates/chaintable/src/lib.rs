//! Live Table Migration (§4 of the paper), rebuilt in Rust.
//!
//! *MigratingTable* transparently migrates a key-value data set between two
//! Azure-table-like backend tables (the *old* and the *new* table) while an
//! application keeps accessing the data through a chain-table interface. A
//! background migrator job moves the data; every logical read and write is
//! implemented by a sequence of backend operations chosen by a custom
//! protocol that must preserve the chain-table specification — as if all the
//! operations were performed on a single virtual table.
//!
//! The crate contains:
//!
//! * [`table`] — the chain-table specification (`IChainTable` in the paper)
//!   and the in-memory reference implementation used for both backends;
//! * [`migrate`] — the migration protocol: phases, write translation, read
//!   merging, tombstones, the migrator's primitives, and the eleven
//!   re-introducible defects of Table 2 ([`migrate::ChainBugs`]);
//! * [`spec`] — the reference model and comparison rules the safety monitor
//!   uses to check spec compliance;
//! * [`machines`] and [`harness`] — the P#-style test environment: a Tables
//!   machine serializing the backends, Service machines issuing controlled
//!   random workloads, the Migrator machine, and the [`machines::SpecMonitor`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod harness;
pub mod machines;
pub mod migrate;
pub mod spec;
pub mod table;

pub use harness::{
    build_harness, model_stats, named_bugs, portfolio_hunt, ChainConfig, ChainHarness,
};
pub use migrate::{ChainBugs, Phase};
