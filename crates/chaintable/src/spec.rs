//! The specification side of the MigratingTable harness: a reference model of
//! the virtual table plus the comparison rules used by the safety monitor.
//!
//! The paper's harness mirrors every logical operation onto a reference table
//! at its linearization point and compares outputs. Here:
//!
//! * **writes** are compared exactly: the model computes the outcome the
//!   chain-table specification prescribes (success and whether an ETag is
//!   returned, or which error) and flags any divergence; successful writes
//!   are then applied to the model using the system's returned ETag, so later
//!   conditional writes can be judged;
//! * **queries** are checked with a *stable-rows* rule: any key whose
//!   virtual-table value did not change between the query's start and its
//!   completion must be reported exactly once with exactly the model's value
//!   (and keys that are stably absent must not be reported at all). Keys
//!   written concurrently with the query are exempt. This is weaker than full
//!   linearizability but catches every missed-row, shadowing, tombstone and
//!   resurrection defect seeded in this case study (see DESIGN.md).

use std::collections::BTreeMap;

use crate::table::{ETag, ETagMatch, Filter, OpResult, Row, TableError, TableOperation};

/// The outcome the specification prescribes for a write.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExpectedOutcome {
    /// The write must succeed; `returns_etag` is `false` for deletes.
    Success {
        /// Whether the result must carry a new ETag.
        returns_etag: bool,
    },
    /// The write must fail with [`TableError::AlreadyExists`].
    AlreadyExists,
    /// The write must fail with [`TableError::NotFound`].
    NotFound,
    /// The write must fail with [`TableError::ConditionFailed`].
    ConditionFailed,
}

/// Per-key snapshot of write versions, used to decide stability of a key over
/// a query's lifetime.
pub type VersionSnapshot = BTreeMap<String, u64>;

#[derive(Debug, Clone, PartialEq, Eq)]
struct ModelRow {
    row: Row,
    etag: Option<ETag>,
}

/// The reference model of the virtual table.
#[derive(Debug, Clone, Default)]
pub struct SpecModel {
    rows: BTreeMap<String, ModelRow>,
    versions: BTreeMap<String, u64>,
}

impl SpecModel {
    /// Creates an empty model.
    pub fn new() -> Self {
        SpecModel::default()
    }

    /// Seeds the model with a pre-existing row (initial data loaded into the
    /// backends before the test starts).
    pub fn seed(&mut self, row: Row, etag: ETag) {
        self.rows.insert(
            row.key.clone(),
            ModelRow {
                row,
                etag: Some(etag),
            },
        );
    }

    /// Number of rows currently present in the model.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Returns `true` when the model holds no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The model's current value for `key`.
    pub fn row(&self, key: &str) -> Option<&Row> {
        self.rows.get(key).map(|m| &m.row)
    }

    /// A snapshot of the per-key write versions, taken when a query starts.
    pub fn version_snapshot(&self) -> VersionSnapshot {
        self.versions.clone()
    }

    fn version(&self, key: &str) -> u64 {
        self.versions.get(key).copied().unwrap_or(0)
    }

    fn bump(&mut self, key: &str) {
        *self.versions.entry(key.to_string()).or_insert(0) += 1;
    }

    fn check_condition(&self, key: &str, condition: ETagMatch) -> Option<ExpectedOutcome> {
        match self.rows.get(key) {
            None => Some(ExpectedOutcome::NotFound),
            Some(stored) => match condition {
                ETagMatch::Any => None,
                ETagMatch::Exact(expected) if Some(expected) == stored.etag => None,
                ETagMatch::Exact(_) => Some(ExpectedOutcome::ConditionFailed),
            },
        }
    }

    /// Computes the outcome the specification prescribes for `op`.
    pub fn expected_outcome(&self, op: &TableOperation) -> ExpectedOutcome {
        match op {
            TableOperation::Insert(row) => {
                if self.rows.contains_key(&row.key) {
                    ExpectedOutcome::AlreadyExists
                } else {
                    ExpectedOutcome::Success { returns_etag: true }
                }
            }
            TableOperation::Replace(row, condition) | TableOperation::Merge(row, condition) => self
                .check_condition(&row.key, *condition)
                .unwrap_or(ExpectedOutcome::Success { returns_etag: true }),
            TableOperation::InsertOrReplace(_) => ExpectedOutcome::Success { returns_etag: true },
            TableOperation::Delete(key, condition) => self
                .check_condition(key, *condition)
                .unwrap_or(ExpectedOutcome::Success {
                    returns_etag: false,
                }),
        }
    }

    fn apply_success(&mut self, op: &TableOperation, result: &OpResult) {
        match op {
            TableOperation::Insert(row)
            | TableOperation::Replace(row, _)
            | TableOperation::InsertOrReplace(row) => {
                self.rows.insert(
                    row.key.clone(),
                    ModelRow {
                        row: row.clone(),
                        etag: result.etag,
                    },
                );
                self.bump(&row.key);
            }
            TableOperation::Merge(row, _) => {
                let entry = self
                    .rows
                    .entry(row.key.clone())
                    .or_insert_with(|| ModelRow {
                        row: Row::empty(row.key.clone()),
                        etag: result.etag,
                    });
                for (name, value) in &row.properties {
                    entry.row.properties.insert(name.clone(), value.clone());
                }
                entry.etag = result.etag;
                self.bump(&row.key);
            }
            TableOperation::Delete(key, _) => {
                self.rows.remove(key);
                self.bump(key);
            }
        }
    }

    /// Records the actual outcome of a write at its linearization point.
    ///
    /// Returns a violation message when the actual outcome diverges from the
    /// specification; otherwise updates the model and returns `None`.
    pub fn record_write(
        &mut self,
        op: &TableOperation,
        actual: &Result<OpResult, TableError>,
    ) -> Option<String> {
        let expected = self.expected_outcome(op);
        match (&expected, actual) {
            (ExpectedOutcome::Success { returns_etag }, Ok(result)) => {
                if result.etag.is_some() != *returns_etag {
                    return Some(format!(
                        "write {op:?} returned etag presence {:?}, specification requires {}",
                        result.etag.is_some(),
                        returns_etag
                    ));
                }
                self.apply_success(op, result);
                None
            }
            (ExpectedOutcome::Success { .. }, Err(TableError::ConditionFailed(_))) => {
                // Allowed: migration may refresh a row's stored version (the
                // copy re-writes the row in the new table), so an optimistic
                // concurrency check against an older ETag may spuriously fail.
                // Spurious conflicts are safe — the client retries — whereas
                // the dangerous direction (a write that must fail but
                // succeeds) is still flagged below.
                None
            }
            (ExpectedOutcome::Success { .. }, Err(err)) => Some(format!(
                "write {op:?} must succeed per the specification but failed with {err}"
            )),
            (ExpectedOutcome::AlreadyExists, Err(TableError::AlreadyExists(_)))
            | (ExpectedOutcome::NotFound, Err(TableError::NotFound(_)))
            | (ExpectedOutcome::ConditionFailed, Err(TableError::ConditionFailed(_))) => None,
            (expected, actual) => Some(format!(
                "write {op:?} diverged: specification expects {expected:?}, system returned {actual:?}"
            )),
        }
    }

    /// Checks a completed query against the stable-rows rule.
    ///
    /// `started` is the version snapshot taken when the query began and
    /// `results` the rows the query returned (virtual-table rows, already
    /// merged by the client).
    pub fn check_query(
        &self,
        started: &VersionSnapshot,
        filter: &Filter,
        results: &[Row],
    ) -> Option<String> {
        let stable = |key: &str| started.get(key).copied().unwrap_or(0) == self.version(key);

        // 1. Every returned row with a stable key must match the model.
        for returned in results {
            if !stable(&returned.key) {
                continue;
            }
            match self.rows.get(&returned.key) {
                None => {
                    return Some(format!(
                        "query returned row {:?} although the key is stably deleted",
                        returned.key
                    ));
                }
                Some(model) => {
                    if model.row.properties != returned.properties {
                        return Some(format!(
                            "query returned stale contents for stable key {:?}: got {:?}, expected {:?}",
                            returned.key, returned.properties, model.row.properties
                        ));
                    }
                    if !filter.matches(&model.row) {
                        return Some(format!(
                            "query returned key {:?} although its stable value does not match the filter",
                            returned.key
                        ));
                    }
                }
            }
        }

        // 2. Every stable, filter-matching model row must be returned.
        for (key, model) in &self.rows {
            if stable(key) && filter.matches(&model.row) {
                let found = results.iter().filter(|r| &r.key == key).count();
                if found == 0 {
                    return Some(format!(
                        "query missed stable row {key:?} that matches the filter"
                    ));
                }
                if found > 1 {
                    return Some(format!("query returned stable row {key:?} {found} times"));
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::Value;

    fn row(key: &str, v: i64) -> Row {
        Row::with_int(key, "v", v)
    }

    fn ok(key: &str, etag: Option<u64>) -> Result<OpResult, TableError> {
        Ok(OpResult {
            key: key.to_string(),
            etag: etag.map(ETag),
        })
    }

    #[test]
    fn successful_insert_updates_the_model() {
        let mut model = SpecModel::new();
        let op = TableOperation::Insert(row("a", 1));
        assert!(model.record_write(&op, &ok("a", Some(1))).is_none());
        assert_eq!(model.row("a"), Some(&row("a", 1)));
        assert_eq!(model.len(), 1);
    }

    #[test]
    fn insert_that_should_conflict_is_flagged() {
        let mut model = SpecModel::new();
        model.record_write(&TableOperation::Insert(row("a", 1)), &ok("a", Some(1)));
        let violation = model.record_write(&TableOperation::Insert(row("a", 2)), &ok("a", Some(2)));
        assert!(violation.is_some());
    }

    #[test]
    fn delete_must_not_return_an_etag() {
        let mut model = SpecModel::new();
        model.record_write(&TableOperation::Insert(row("a", 1)), &ok("a", Some(1)));
        let violation = model.record_write(
            &TableOperation::Delete("a".to_string(), ETagMatch::Any),
            &ok("a", Some(7)),
        );
        assert!(violation.unwrap().contains("etag"));
    }

    #[test]
    fn conditional_write_is_judged_against_the_recorded_etag() {
        let mut model = SpecModel::new();
        model.record_write(&TableOperation::Insert(row("a", 1)), &ok("a", Some(5)));
        // Correct rejection of a stale etag matches the specification.
        let stale = TableOperation::Replace(row("a", 2), ETagMatch::Exact(ETag(4)));
        assert!(model
            .record_write(&stale, &Err(TableError::ConditionFailed("a".into())))
            .is_none());
        // A system that applies the stale write diverges.
        assert!(model.record_write(&stale, &ok("a", Some(6))).is_some());
    }

    #[test]
    fn expected_outcomes_cover_all_cases() {
        let mut model = SpecModel::new();
        assert_eq!(
            model.expected_outcome(&TableOperation::Delete("a".into(), ETagMatch::Any)),
            ExpectedOutcome::NotFound
        );
        model.record_write(&TableOperation::Insert(row("a", 1)), &ok("a", Some(3)));
        assert_eq!(
            model.expected_outcome(&TableOperation::Insert(row("a", 1))),
            ExpectedOutcome::AlreadyExists
        );
        assert_eq!(
            model.expected_outcome(&TableOperation::Replace(
                row("a", 2),
                ETagMatch::Exact(ETag(3))
            )),
            ExpectedOutcome::Success { returns_etag: true }
        );
        assert_eq!(
            model.expected_outcome(&TableOperation::Replace(
                row("a", 2),
                ETagMatch::Exact(ETag(9))
            )),
            ExpectedOutcome::ConditionFailed
        );
        assert_eq!(
            model.expected_outcome(&TableOperation::Delete("a".into(), ETagMatch::Any)),
            ExpectedOutcome::Success {
                returns_etag: false
            }
        );
    }

    #[test]
    fn stable_row_must_be_returned_exactly_once_with_model_value() {
        let mut model = SpecModel::new();
        model.record_write(&TableOperation::Insert(row("a", 1)), &ok("a", Some(1)));
        let snapshot = model.version_snapshot();
        assert!(model
            .check_query(&snapshot, &Filter::All, &[row("a", 1)])
            .is_none());
        assert!(model
            .check_query(&snapshot, &Filter::All, &[])
            .unwrap()
            .contains("missed"));
        assert!(model
            .check_query(&snapshot, &Filter::All, &[row("a", 2)])
            .unwrap()
            .contains("stale"));
        assert!(model
            .check_query(&snapshot, &Filter::All, &[row("a", 1), row("a", 1)])
            .unwrap()
            .contains("times"));
    }

    #[test]
    fn unstable_keys_are_exempt_from_query_checks() {
        let mut model = SpecModel::new();
        model.record_write(&TableOperation::Insert(row("a", 1)), &ok("a", Some(1)));
        let snapshot = model.version_snapshot();
        // A write lands while the query is in flight.
        model.record_write(
            &TableOperation::Replace(row("a", 9), ETagMatch::Any),
            &ok("a", Some(2)),
        );
        // The query may return the old value, the new value, or even miss the
        // key entirely without being flagged.
        assert!(model
            .check_query(&snapshot, &Filter::All, &[row("a", 1)])
            .is_none());
        assert!(model
            .check_query(&snapshot, &Filter::All, &[row("a", 9)])
            .is_none());
        assert!(model.check_query(&snapshot, &Filter::All, &[]).is_none());
    }

    #[test]
    fn stably_deleted_keys_must_not_reappear() {
        let mut model = SpecModel::new();
        model.record_write(&TableOperation::Insert(row("a", 1)), &ok("a", Some(1)));
        model.record_write(
            &TableOperation::Delete("a".to_string(), ETagMatch::Any),
            &ok("a", None),
        );
        let snapshot = model.version_snapshot();
        assert!(model
            .check_query(&snapshot, &Filter::All, &[row("a", 1)])
            .unwrap()
            .contains("stably deleted"));
    }

    #[test]
    fn filter_restricts_which_stable_rows_are_required() {
        let mut model = SpecModel::new();
        model.record_write(&TableOperation::Insert(row("a", 1)), &ok("a", Some(1)));
        model.record_write(&TableOperation::Insert(row("b", 2)), &ok("b", Some(2)));
        let snapshot = model.version_snapshot();
        let filter = Filter::PropertyEquals {
            name: "v".to_string(),
            value: Value::Int(2),
        };
        assert!(model
            .check_query(&snapshot, &filter, &[row("b", 2)])
            .is_none());
        // Returning a stable row that does not match the filter is an error.
        assert!(model
            .check_query(&snapshot, &filter, &[row("a", 1), row("b", 2)])
            .is_some());
    }

    #[test]
    fn seeded_rows_participate_in_checks() {
        let mut model = SpecModel::new();
        model.seed(row("a", 1), ETag(1));
        let snapshot = model.version_snapshot();
        assert!(model
            .check_query(&snapshot, &Filter::All, &[])
            .unwrap()
            .contains("missed"));
        assert!(!model.is_empty());
    }
}
