//! The chain-table specification and its in-memory reference implementation.
//!
//! `IChainTable` in the paper is an Azure-table-like interface: rows are
//! keyed by a string key, carry a property bag, and are versioned with ETags;
//! writes are conditional on ETags and can be batched atomically; reads are
//! either atomic snapshots or streamed row-by-row with weaker consistency.
//! The same in-memory implementation is used for the backend tables and for
//! the reference table, exactly as in the paper ("this reference
//! implementation was reused for the BTs").

use std::collections::BTreeMap;
use std::fmt;

/// A property value stored in a row.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Value {
    /// An integer property.
    Int(i64),
    /// A string property.
    Str(String),
    /// A boolean property.
    Bool(bool),
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(v) => write!(f, "{v}"),
            Value::Str(v) => write!(f, "{v:?}"),
            Value::Bool(v) => write!(f, "{v}"),
        }
    }
}

/// Version tag assigned by a table to every stored row revision.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ETag(pub u64);

/// Precondition on the stored row's [`ETag`] for conditional operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ETagMatch {
    /// `*`: apply regardless of the stored version.
    Any,
    /// Apply only when the stored version equals the given tag.
    Exact(ETag),
}

/// A row: a key plus a property bag. The stored ETag is managed by the table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Row {
    /// The row key (unique within a table).
    pub key: String,
    /// The row's properties.
    pub properties: BTreeMap<String, Value>,
}

impl Row {
    /// Creates a row with a single integer property `v`, the common shape in
    /// the tests and workloads.
    pub fn with_int(key: impl Into<String>, name: impl Into<String>, v: i64) -> Self {
        let mut properties = BTreeMap::new();
        properties.insert(name.into(), Value::Int(v));
        Row {
            key: key.into(),
            properties,
        }
    }

    /// Creates a row with an empty property bag.
    pub fn empty(key: impl Into<String>) -> Self {
        Row {
            key: key.into(),
            properties: BTreeMap::new(),
        }
    }

    /// Returns a copy with one property added or replaced.
    pub fn with_property(mut self, name: impl Into<String>, value: Value) -> Self {
        self.properties.insert(name.into(), value);
        self
    }
}

/// A stored row as returned by queries: the row plus its current ETag.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoredRow {
    /// The row contents.
    pub row: Row,
    /// The row's current version.
    pub etag: ETag,
}

/// A single table operation, applied atomically (possibly within a batch).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TableOperation {
    /// Insert a new row; fails if the key already exists.
    Insert(Row),
    /// Replace an existing row; fails if missing or the ETag mismatches.
    Replace(Row, ETagMatch),
    /// Merge properties into an existing row; fails if missing or mismatched.
    Merge(Row, ETagMatch),
    /// Insert the row or replace whatever is stored, unconditionally.
    InsertOrReplace(Row),
    /// Delete a row; fails if missing or the ETag mismatches.
    Delete(String, ETagMatch),
}

impl TableOperation {
    /// The key this operation addresses.
    pub fn key(&self) -> &str {
        match self {
            TableOperation::Insert(row)
            | TableOperation::Replace(row, _)
            | TableOperation::Merge(row, _)
            | TableOperation::InsertOrReplace(row) => &row.key,
            TableOperation::Delete(key, _) => key,
        }
    }
}

/// Result of one successful operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpResult {
    /// The key the operation addressed.
    pub key: String,
    /// The new ETag of the row, or `None` for deletes.
    pub etag: Option<ETag>,
}

/// Errors returned by chain tables.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TableError {
    /// Insert of a key that already exists.
    AlreadyExists(String),
    /// Conditional operation on a missing key.
    NotFound(String),
    /// ETag precondition failed.
    ConditionFailed(String),
}

impl fmt::Display for TableError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TableError::AlreadyExists(k) => write!(f, "row {k:?} already exists"),
            TableError::NotFound(k) => write!(f, "row {k:?} was not found"),
            TableError::ConditionFailed(k) => write!(f, "etag precondition failed for row {k:?}"),
        }
    }
}

impl std::error::Error for TableError {}

/// Row filter used by queries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Filter {
    /// Match every row.
    All,
    /// Match rows whose key lies in `[from, to]` (inclusive).
    KeyRange {
        /// Lower bound (inclusive).
        from: String,
        /// Upper bound (inclusive).
        to: String,
    },
    /// Match rows whose property `name` equals `value`.
    PropertyEquals {
        /// The property name.
        name: String,
        /// The value to compare against.
        value: Value,
    },
}

impl Filter {
    /// Returns `true` when `row` satisfies the filter.
    pub fn matches(&self, row: &Row) -> bool {
        match self {
            Filter::All => true,
            Filter::KeyRange { from, to } => {
                row.key.as_str() >= from.as_str() && row.key.as_str() <= to.as_str()
            }
            Filter::PropertyEquals { name, value } => row.properties.get(name) == Some(value),
        }
    }
}

/// The chain-table interface (the paper's `IChainTable`).
pub trait ChainTable {
    /// Executes `ops` atomically: either every operation succeeds, or the
    /// first failing operation's error is returned and nothing is applied.
    ///
    /// # Errors
    ///
    /// Returns the error of the first failing operation.
    fn execute_batch(&mut self, ops: &[TableOperation]) -> Result<Vec<OpResult>, TableError>;

    /// Returns a point-in-time snapshot of every row matching `filter`,
    /// sorted by key.
    fn query_atomic(&self, filter: &Filter) -> Vec<StoredRow>;

    /// Returns the first row (by key order) with key `>= start` that matches
    /// `filter`, if any. Streaming reads are built from repeated calls with
    /// an advancing cursor, so each returned row may reflect the table state
    /// at a different time — the weak consistency the specification allows.
    fn query_first_at_or_after(&self, start: &str, filter: &Filter) -> Option<StoredRow>;
}

/// Convenience helpers shared by every [`ChainTable`].
pub trait ChainTableExt: ChainTable {
    /// Executes a single operation (a one-element batch).
    ///
    /// # Errors
    ///
    /// Returns the operation's error.
    fn execute(&mut self, op: TableOperation) -> Result<OpResult, TableError> {
        let mut results = self.execute_batch(std::slice::from_ref(&op))?;
        Ok(results.remove(0))
    }

    /// Reads one row by key.
    fn read(&self, key: &str) -> Option<StoredRow> {
        self.query_first_at_or_after(key, &Filter::All)
            .filter(|stored| stored.row.key == key)
    }
}

impl<T: ChainTable + ?Sized> ChainTableExt for T {}

/// The in-memory reference implementation of [`ChainTable`].
#[derive(Debug, Clone, Default)]
pub struct InMemoryTable {
    rows: BTreeMap<String, (Row, ETag)>,
    next_etag: u64,
}

impl InMemoryTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        InMemoryTable::default()
    }

    /// Creates an empty table whose ETags start above `base`.
    ///
    /// Useful when several tables coexist and their ETags must never collide
    /// (real table services hand out globally unique version tags).
    pub fn with_etag_base(base: u64) -> Self {
        InMemoryTable {
            rows: BTreeMap::new(),
            next_etag: base,
        }
    }

    /// Number of stored rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Returns `true` when the table stores no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    fn allocate_etag(&mut self) -> ETag {
        self.next_etag += 1;
        ETag(self.next_etag)
    }

    fn check(&self, key: &str, condition: ETagMatch) -> Result<(), TableError> {
        match self.rows.get(key) {
            None => Err(TableError::NotFound(key.to_string())),
            Some((_, stored_etag)) => match condition {
                ETagMatch::Any => Ok(()),
                ETagMatch::Exact(expected) if expected == *stored_etag => Ok(()),
                ETagMatch::Exact(_) => Err(TableError::ConditionFailed(key.to_string())),
            },
        }
    }

    fn validate(&self, op: &TableOperation) -> Result<(), TableError> {
        match op {
            TableOperation::Insert(row) => {
                if self.rows.contains_key(&row.key) {
                    Err(TableError::AlreadyExists(row.key.clone()))
                } else {
                    Ok(())
                }
            }
            TableOperation::Replace(row, condition) | TableOperation::Merge(row, condition) => {
                self.check(&row.key, *condition)
            }
            TableOperation::InsertOrReplace(_) => Ok(()),
            TableOperation::Delete(key, condition) => self.check(key, *condition),
        }
    }

    fn apply(&mut self, op: &TableOperation) -> OpResult {
        match op {
            TableOperation::Insert(row) | TableOperation::InsertOrReplace(row) => {
                let etag = self.allocate_etag();
                self.rows.insert(row.key.clone(), (row.clone(), etag));
                OpResult {
                    key: row.key.clone(),
                    etag: Some(etag),
                }
            }
            TableOperation::Replace(row, _) => {
                let etag = self.allocate_etag();
                self.rows.insert(row.key.clone(), (row.clone(), etag));
                OpResult {
                    key: row.key.clone(),
                    etag: Some(etag),
                }
            }
            TableOperation::Merge(row, _) => {
                let etag = self.allocate_etag();
                let entry = self
                    .rows
                    .get_mut(&row.key)
                    .expect("validated: row exists for merge");
                for (name, value) in &row.properties {
                    entry.0.properties.insert(name.clone(), value.clone());
                }
                entry.1 = etag;
                OpResult {
                    key: row.key.clone(),
                    etag: Some(etag),
                }
            }
            TableOperation::Delete(key, _) => {
                self.rows.remove(key);
                OpResult {
                    key: key.clone(),
                    etag: None,
                }
            }
        }
    }
}

impl ChainTable for InMemoryTable {
    fn execute_batch(&mut self, ops: &[TableOperation]) -> Result<Vec<OpResult>, TableError> {
        // Validate everything against the pre-state first so a failing batch
        // leaves the table untouched (atomicity). Later operations in the
        // batch may target keys earlier operations created; re-validate
        // incrementally against a scratch copy to handle that correctly.
        let mut scratch = self.clone();
        let mut results = Vec::with_capacity(ops.len());
        for op in ops {
            scratch.validate(op)?;
            results.push(scratch.apply(op));
        }
        *self = scratch;
        Ok(results)
    }

    fn query_atomic(&self, filter: &Filter) -> Vec<StoredRow> {
        self.rows
            .values()
            .filter(|(row, _)| filter.matches(row))
            .map(|(row, etag)| StoredRow {
                row: row.clone(),
                etag: *etag,
            })
            .collect()
    }

    fn query_first_at_or_after(&self, start: &str, filter: &Filter) -> Option<StoredRow> {
        self.rows
            .range(start.to_string()..)
            .find(|(_, (row, _))| filter.matches(row))
            .map(|(_, (row, etag))| StoredRow {
                row: row.clone(),
                etag: *etag,
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(key: &str, v: i64) -> Row {
        Row::with_int(key, "v", v)
    }

    #[test]
    fn insert_then_read_round_trips() {
        let mut t = InMemoryTable::new();
        let result = t.execute(TableOperation::Insert(row("a", 1))).unwrap();
        assert_eq!(result.key, "a");
        let stored = t.read("a").expect("row exists");
        assert_eq!(stored.row, row("a", 1));
        assert_eq!(Some(stored.etag), result.etag);
    }

    #[test]
    fn insert_duplicate_fails() {
        let mut t = InMemoryTable::new();
        t.execute(TableOperation::Insert(row("a", 1))).unwrap();
        assert_eq!(
            t.execute(TableOperation::Insert(row("a", 2))),
            Err(TableError::AlreadyExists("a".to_string()))
        );
    }

    #[test]
    fn replace_requires_matching_etag() {
        let mut t = InMemoryTable::new();
        let first = t.execute(TableOperation::Insert(row("a", 1))).unwrap();
        let stale = first.etag.unwrap();
        t.execute(TableOperation::Replace(
            row("a", 2),
            ETagMatch::Exact(stale),
        ))
        .unwrap();
        // Replaying with the now-stale etag must fail.
        assert_eq!(
            t.execute(TableOperation::Replace(
                row("a", 3),
                ETagMatch::Exact(stale)
            )),
            Err(TableError::ConditionFailed("a".to_string()))
        );
        assert_eq!(t.read("a").unwrap().row, row("a", 2));
    }

    #[test]
    fn replace_missing_row_fails() {
        let mut t = InMemoryTable::new();
        assert_eq!(
            t.execute(TableOperation::Replace(row("a", 1), ETagMatch::Any)),
            Err(TableError::NotFound("a".to_string()))
        );
    }

    #[test]
    fn merge_updates_only_named_properties() {
        let mut t = InMemoryTable::new();
        t.execute(TableOperation::Insert(
            Row::with_int("a", "x", 1).with_property("y", Value::Int(2)),
        ))
        .unwrap();
        t.execute(TableOperation::Merge(
            Row::with_int("a", "y", 9),
            ETagMatch::Any,
        ))
        .unwrap();
        let stored = t.read("a").unwrap();
        assert_eq!(stored.row.properties.get("x"), Some(&Value::Int(1)));
        assert_eq!(stored.row.properties.get("y"), Some(&Value::Int(9)));
    }

    #[test]
    fn delete_with_wrong_etag_fails_and_keeps_row() {
        let mut t = InMemoryTable::new();
        t.execute(TableOperation::Insert(row("a", 1))).unwrap();
        assert_eq!(
            t.execute(TableOperation::Delete(
                "a".to_string(),
                ETagMatch::Exact(ETag(999))
            )),
            Err(TableError::ConditionFailed("a".to_string()))
        );
        assert!(t.read("a").is_some());
        t.execute(TableOperation::Delete("a".to_string(), ETagMatch::Any))
            .unwrap();
        assert!(t.read("a").is_none());
    }

    #[test]
    fn batch_is_atomic_on_failure() {
        let mut t = InMemoryTable::new();
        t.execute(TableOperation::Insert(row("a", 1))).unwrap();
        let batch = [
            TableOperation::InsertOrReplace(row("b", 2)),
            TableOperation::Insert(row("a", 3)), // fails: already exists
        ];
        assert!(t.execute_batch(&batch).is_err());
        assert!(t.read("b").is_none(), "the first op must be rolled back");
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn batch_later_ops_see_earlier_ops() {
        let mut t = InMemoryTable::new();
        let batch = [
            TableOperation::Insert(row("a", 1)),
            TableOperation::Replace(row("a", 2), ETagMatch::Any),
        ];
        let results = t.execute_batch(&batch).unwrap();
        assert_eq!(results.len(), 2);
        assert_eq!(t.read("a").unwrap().row, row("a", 2));
    }

    #[test]
    fn query_atomic_is_sorted_and_filtered() {
        let mut t = InMemoryTable::new();
        for (k, v) in [("c", 3), ("a", 1), ("b", 2)] {
            t.execute(TableOperation::Insert(row(k, v))).unwrap();
        }
        let all = t.query_atomic(&Filter::All);
        let keys: Vec<&str> = all.iter().map(|s| s.row.key.as_str()).collect();
        assert_eq!(keys, vec!["a", "b", "c"]);

        let range = t.query_atomic(&Filter::KeyRange {
            from: "a".to_string(),
            to: "b".to_string(),
        });
        assert_eq!(range.len(), 2);

        let by_value = t.query_atomic(&Filter::PropertyEquals {
            name: "v".to_string(),
            value: Value::Int(3),
        });
        assert_eq!(by_value.len(), 1);
        assert_eq!(by_value[0].row.key, "c");
    }

    #[test]
    fn query_first_at_or_after_respects_cursor_and_filter() {
        let mut t = InMemoryTable::new();
        for (k, v) in [("a", 1), ("b", 2), ("c", 1)] {
            t.execute(TableOperation::Insert(row(k, v))).unwrap();
        }
        assert_eq!(
            t.query_first_at_or_after("b", &Filter::All)
                .unwrap()
                .row
                .key,
            "b"
        );
        let filter = Filter::PropertyEquals {
            name: "v".to_string(),
            value: Value::Int(1),
        };
        assert_eq!(
            t.query_first_at_or_after("b", &filter).unwrap().row.key,
            "c"
        );
        assert!(t.query_first_at_or_after("d", &Filter::All).is_none());
    }

    #[test]
    fn etags_are_unique_and_increasing() {
        let mut t = InMemoryTable::new();
        let a = t.execute(TableOperation::Insert(row("a", 1))).unwrap();
        let b = t
            .execute(TableOperation::InsertOrReplace(row("a", 2)))
            .unwrap();
        assert!(b.etag.unwrap() > a.etag.unwrap());
    }
}
