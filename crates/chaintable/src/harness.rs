//! The MigratingTable test harness: configuration, the eleven named bugs of
//! Table 2, and the builder that wires services, migrator, tables and the
//! spec-compliance monitor together (Figure 12 of the paper).

use psharp::prelude::*;

use crate::machines::{MigratorMachine, ServiceMachine, SpecMonitor, TablesMachine};
use crate::migrate::{ChainBugs, MigratingStore};
use crate::spec::SpecModel;
use crate::table::{ChainTableExt, Row, TableOperation};

/// Configuration of the MigratingTable harness.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChainConfig {
    /// Number of service machines issuing logical operations concurrently.
    pub services: usize,
    /// Logical operations issued by each service.
    pub ops_per_service: usize,
    /// Size of the key space the workload draws keys from.
    pub key_space: usize,
    /// Number of rows pre-loaded into the old table before the run.
    pub initial_rows: usize,
    /// Whether the migrator deletes old-table rows after copying them (the
    /// feature whose addition caused `QueryStreamedBackUpNewStream`).
    pub delete_after_copy: bool,
    /// Whether the new table starts with copies of some rows (a previously
    /// interrupted migration), needed to trigger
    /// `EnsurePartitionSwitchedFromPopulated`.
    pub prepopulate_new: bool,
    /// The seeded defects.
    pub bugs: ChainBugs,
}

impl Default for ChainConfig {
    fn default() -> Self {
        ChainConfig {
            services: 2,
            ops_per_service: 4,
            key_space: 4,
            initial_rows: 3,
            delete_after_copy: true,
            prepopulate_new: false,
            bugs: ChainBugs::none(),
        }
    }
}

impl ChainConfig {
    /// The fixed system (no seeded defects).
    pub fn fixed() -> Self {
        ChainConfig::default()
    }

    /// The *fault-induced* `MigratorRestartSkipsStep` defect: after a
    /// crash-restart the migrator assumes its in-flight plan step completed
    /// and skips it. Run it with [`ChainConfig::fault_plan`] (one crash, one
    /// restart of the migrator); without faults the bug is unreachable.
    pub fn with_restart_bug() -> Self {
        let mut config = ChainConfig::default();
        config.bugs.restart_skips_in_flight_step = true;
        config
    }

    /// The fault budget this harness is designed around: the migrator is the
    /// crash-restartable component, and one crash plus one restart exercise
    /// its recovery path (the fixed migrator redoes its interrupted step;
    /// re-running passes is idempotent).
    pub fn fault_plan(&self) -> FaultPlan {
        FaultPlan::new().with_crashes(1).with_restarts(1)
    }

    /// Builds the configuration for one of the named Table 2 bugs.
    ///
    /// Returns `None` when the identifier is unknown; see [`named_bugs`] for
    /// the full list.
    pub fn for_named_bug(name: &str) -> Option<Self> {
        named_bugs()
            .into_iter()
            .find(|(bug_name, _)| *bug_name == name)
            .map(|(_, config)| config)
    }
}

/// The eleven re-introducible MigratingTable bugs of Table 2, by the paper's
/// identifiers, with the harness configuration that exposes each.
pub fn named_bugs() -> Vec<(&'static str, ChainConfig)> {
    let base = ChainConfig::default();
    let with = |f: fn(&mut ChainBugs), adjust: fn(&mut ChainConfig)| {
        let mut config = base;
        f(&mut config.bugs);
        adjust(&mut config);
        config
    };
    vec![
        (
            "QueryAtomicFilterShadowing",
            with(|b| b.query_atomic_filter_shadowing = true, |_| {}),
        ),
        (
            "QueryStreamedLock",
            with(|b| b.query_streamed_lock = true, |_| {}),
        ),
        (
            "QueryStreamedBackUpNewStream",
            with(|b| b.query_streamed_back_up_new_stream = true, |_| {}),
        ),
        (
            "DeleteNoLeaveTombstonesEtag",
            with(|b| b.delete_no_leave_tombstones_etag = true, |_| {}),
        ),
        (
            "DeletePrimaryKey",
            with(|b| b.delete_primary_key = true, |_| {}),
        ),
        (
            "EnsurePartitionSwitchedFromPopulated",
            with(
                |b| b.ensure_partition_switched_from_populated = true,
                |c| c.prepopulate_new = true,
            ),
        ),
        (
            "TombstoneOutputETag",
            with(|b| b.tombstone_output_etag = true, |_| {}),
        ),
        (
            "QueryStreamedFilterShadowing",
            with(|b| b.query_streamed_filter_shadowing = true, |_| {}),
        ),
        (
            "MigrateSkipPreferOld",
            with(|b| b.migrate_skip_prefer_old = true, |_| {}),
        ),
        (
            "MigrateSkipUseNewWithTombstones",
            with(|b| b.migrate_skip_use_new_with_tombstones = true, |_| {}),
        ),
        (
            "InsertBehindMigrator",
            with(|b| b.insert_behind_migrator = true, |_| {}),
        ),
    ]
}

/// Ids of the machines created by [`build_harness`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChainHarness {
    /// The Tables machine (owns both backends and the reference checks feed).
    pub tables: MachineId,
    /// The migrator machine.
    pub migrator: MachineId,
    /// The service machines.
    pub services: Vec<MachineId>,
}

/// Builds the full MigratingTable harness into `rt` and returns the machine
/// ids.
pub fn build_harness(rt: &mut Runtime, config: &ChainConfig) -> ChainHarness {
    // Pre-load the old table (and optionally the new table) with initial
    // rows, seeding the reference model with the same data.
    let mut store = MigratingStore::new(config.bugs);
    let mut model = SpecModel::new();
    for index in 0..config.initial_rows {
        let key = format!("k{}", index % config.key_space.max(1));
        let row = Row::with_int(key.clone(), "v", index as i64);
        if let Ok(result) = store.old.execute(TableOperation::Insert(row.clone())) {
            model.seed(row.clone(), result.etag.expect("insert returns an etag"));
            if config.prepopulate_new && index % 2 == 0 {
                // A previously interrupted migration already copied some rows.
                store
                    .new
                    .execute(TableOperation::Insert(row))
                    .expect("prepopulated copy");
            }
        }
    }

    rt.add_monitor(SpecMonitor::new(model));
    let tables = rt.create_machine(TablesMachine::new(store));
    let migrator = rt.create_machine(MigratorMachine::new(
        tables,
        config.bugs,
        config.delete_after_copy,
    ));
    // The migrator is the crash-restartable component of this case study:
    // under a fault budget the scheduler may kill it mid-plan and restart it,
    // exercising the recovery path (and the seeded
    // `restart_skips_in_flight_step` defect).
    rt.mark_restartable(migrator);
    let services = (0..config.services)
        .map(|_| {
            rt.create_machine(ServiceMachine::new(
                tables,
                config.bugs,
                config.ops_per_service,
                config.key_space,
            ))
        })
        .collect();

    ChainHarness {
        tables,
        migrator,
        services,
    }
}

/// Hunts for bugs in this harness with a parallel (optionally portfolio)
/// run: the iteration space of `test` is sharded over
/// [`TestConfig::workers`] threads, each execution keeping the seed it would
/// have had serially.
pub fn portfolio_hunt(config: &ChainConfig, test: TestConfig) -> TestReport {
    let config = *config;
    ParallelTestEngine::new(test).run(move |rt| {
        build_harness(rt, &config);
    })
}

/// Model statistics of this harness, for the Table 1 reproduction.
pub fn model_stats() -> ModelStats {
    let config = ChainConfig::default();
    // Tables + migrator + services.
    let machines = 2 + config.services;
    // Action handlers: tables {write, read-atomic, read-next, migrator-step},
    // service {write-response, atomic-new, atomic-old, stream-new,
    // stream-old, stream-recheck}, migrator {response}, monitor {write,
    // query-start, query-result}.
    let action_handlers = 4 + 6 + 1 + 3;
    // State transitions: service op-state machine (idle -> write/atomic/
    // stream and back), migrator phase plan (6 steps).
    let state_transitions = 7 + 6;
    ModelStats::new("MigratingTable").with_bugs(11).with_model(
        machines,
        state_transitions,
        action_handlers,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machines::MigratorMachine;
    use psharp::runtime::{ExecutionOutcome, Runtime, RuntimeConfig};
    use psharp::scheduler::RandomScheduler;

    fn new_runtime(seed: u64) -> Runtime {
        Runtime::new(
            Box::new(RandomScheduler::new(seed)),
            RuntimeConfig {
                max_steps: 10_000,
                ..RuntimeConfig::default()
            },
            seed,
        )
    }

    #[test]
    fn harness_creates_expected_machines() {
        let mut rt = new_runtime(1);
        let harness = build_harness(&mut rt, &ChainConfig::default());
        assert_eq!(harness.services.len(), 2);
        assert_eq!(rt.machine_count(), 4);
    }

    #[test]
    fn fixed_system_runs_clean_and_completes_migration() {
        for seed in 0..25 {
            let mut rt = new_runtime(seed);
            let harness = build_harness(&mut rt, &ChainConfig::fixed());
            let outcome = rt.run();
            assert!(
                rt.bug().is_none(),
                "fixed MigratingTable flagged a bug with seed {seed}: {:?}",
                rt.bug()
            );
            assert_eq!(outcome, ExecutionOutcome::Quiescent);
            let migrator = rt
                .machine_ref::<MigratorMachine>(harness.migrator)
                .expect("migrator exists");
            assert!(migrator.finished(), "the migration plan must complete");
        }
    }

    #[test]
    fn fixed_system_without_delete_after_copy_is_also_clean() {
        let config = ChainConfig {
            delete_after_copy: false,
            ..ChainConfig::fixed()
        };
        for seed in 0..10 {
            let mut rt = new_runtime(seed);
            build_harness(&mut rt, &config);
            let outcome = rt.run();
            assert!(
                !matches!(outcome, ExecutionOutcome::BugFound(_)),
                "seed {seed}: {outcome:?}"
            );
        }
    }

    #[test]
    fn all_named_bugs_have_distinct_configurations() {
        let bugs = named_bugs();
        assert_eq!(bugs.len(), 11);
        for (name, config) in &bugs {
            assert_ne!(
                config.bugs,
                ChainBugs::none(),
                "bug {name} must set at least one flag"
            );
        }
        assert!(ChainConfig::for_named_bug("DeletePrimaryKey").is_some());
        assert!(ChainConfig::for_named_bug("NotABug").is_none());
    }

    fn engine_finds(name: &str, iterations: u64, seed: u64) -> bool {
        let config = ChainConfig::for_named_bug(name).expect("known bug");
        let engine = TestEngine::new(
            TestConfig::new()
                .with_iterations(iterations)
                .with_max_steps(10_000)
                .with_seed(seed),
        );
        let report = engine.run(move |rt| {
            build_harness(rt, &config);
        });
        report.found_bug()
    }

    #[test]
    fn delete_primary_key_bug_is_found() {
        assert!(engine_finds("DeletePrimaryKey", 300, 11));
    }

    #[test]
    fn fixed_system_survives_migrator_crash_restart() {
        // Under a crash+restart budget the fixed migrator redoes its
        // interrupted step; no schedule may diverge from the reference
        // model. Restarts must actually occur across the run for the test
        // to mean anything.
        let config = ChainConfig::fixed();
        let engine = TestEngine::new(
            TestConfig::new()
                .with_iterations(300)
                .with_max_steps(10_000)
                .with_seed(23)
                .with_faults(config.fault_plan()),
        );
        let report = engine.run(|rt| {
            build_harness(rt, &config);
        });
        assert!(
            !report.found_bug(),
            "fixed MigratingTable flagged a bug under crash-restart faults: {:?}",
            report.bug.map(|b| b.bug)
        );
        // Separately verify that crash+restart is actually reachable.
        let mut restarts = 0;
        for seed in 0..40 {
            let mut rt = psharp::runtime::Runtime::new(
                SchedulerKind::Random.build(seed, 10_000),
                psharp::runtime::RuntimeConfig {
                    max_steps: 10_000,
                    faults: config.fault_plan(),
                    ..psharp::runtime::RuntimeConfig::default()
                },
                seed,
            );
            let harness = build_harness(&mut rt, &config);
            rt.run();
            let migrator = rt
                .machine_ref::<MigratorMachine>(harness.migrator)
                .expect("migrator exists");
            restarts += migrator.restarts();
        }
        assert!(restarts > 0, "no seed ever crash-restarted the migrator");
    }

    #[test]
    fn restart_bug_is_found_via_injected_crash_restart() {
        let config = ChainConfig::with_restart_bug();
        let engine = TestEngine::new(
            TestConfig::new()
                .with_iterations(2_000)
                .with_max_steps(10_000)
                .with_seed(29)
                .with_faults(config.fault_plan()),
        );
        let report = engine.run(move |rt| {
            build_harness(rt, &config);
        });
        let bug = report.bug.expect("restart bug should be found");
        assert_eq!(bug.bug.kind, BugKind::SafetyViolation);
        assert!(
            bug.trace.fault_decision_count() >= 2,
            "the bug needs crash + restart in its decision stream"
        );
    }

    #[test]
    fn restart_bug_is_unreachable_without_faults() {
        let config = ChainConfig::with_restart_bug();
        let engine = TestEngine::new(
            TestConfig::new()
                .with_iterations(300)
                .with_max_steps(10_000)
                .with_seed(29),
        );
        let report = engine.run(move |rt| {
            build_harness(rt, &config);
        });
        assert!(!report.found_bug());
    }

    #[test]
    fn tombstone_output_etag_bug_is_found() {
        assert!(engine_finds("TombstoneOutputETag", 300, 13));
    }

    #[test]
    fn query_atomic_filter_shadowing_bug_is_found() {
        assert!(engine_finds("QueryAtomicFilterShadowing", 600, 17));
    }

    #[test]
    fn insert_behind_migrator_bug_is_found() {
        assert!(engine_finds("InsertBehindMigrator", 600, 19));
    }

    #[test]
    fn model_stats_report_the_harness_size() {
        let stats = model_stats();
        assert_eq!(stats.machines, 4);
        assert_eq!(stats.bugs_found, 11);
        assert!(stats.action_handlers >= 10);
    }
}
