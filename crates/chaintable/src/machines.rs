//! The P# test harness machines for the MigratingTable case study
//! (Figure 12 of the paper): the Tables machine that owns and serializes the
//! backend tables, the Service machines that issue random logical operations
//! through the migration protocol, the Migrator machine that moves the data
//! in the background, and the spec-compliance safety monitor.

use std::collections::BTreeMap;

use psharp::prelude::*;

use crate::migrate::{is_tombstone, merge_atomic, Backend, ChainBugs, MigratingStore, Phase};
use crate::spec::{SpecModel, VersionSnapshot};
use crate::table::{ETag, ETagMatch, Filter, OpResult, Row, StoredRow, TableError, TableOperation};

/// Identifier of one logical query, unique within an execution.
pub type QueryId = (u64, u64);

// ---------------------------------------------------------------------------
// Events
// ---------------------------------------------------------------------------

/// A logical virtual-table write, executed atomically by the Tables machine.
#[derive(Debug, Clone)]
pub struct WriteRequest {
    /// The machine to reply to.
    pub from: MachineId,
    /// The logical operation.
    pub op: TableOperation,
}

/// Reply to a [`WriteRequest`].
#[derive(Debug, Clone)]
pub struct WriteResponse {
    /// The outcome of the write.
    pub outcome: Result<OpResult, TableError>,
}

/// A snapshot read of one backend table.
#[derive(Debug, Clone)]
pub struct ReadAtomicRequest {
    /// The machine to reply to.
    pub from: MachineId,
    /// Which backend to read.
    pub backend: Backend,
    /// The filter pushed down to the backend.
    pub filter: Filter,
}

/// Reply to a [`ReadAtomicRequest`].
#[derive(Debug, Clone)]
pub struct ReadAtomicResponse {
    /// The backend that was read.
    pub backend: Backend,
    /// The matching rows.
    pub rows: Vec<StoredRow>,
    /// The migration phase at the time of the read.
    pub phase: Phase,
}

/// A single-row streaming read of one backend table.
#[derive(Debug, Clone)]
pub struct ReadNextRequest {
    /// The machine to reply to.
    pub from: MachineId,
    /// Which backend to read.
    pub backend: Backend,
    /// The stream cursor: the first key (inclusive) still of interest.
    pub start: String,
    /// The filter pushed down to the backend.
    pub filter: Filter,
}

/// Reply to a [`ReadNextRequest`].
#[derive(Debug, Clone)]
pub struct ReadNextResponse {
    /// The backend that was read.
    pub backend: Backend,
    /// The first matching row at or after the cursor, if any.
    pub row: Option<StoredRow>,
    /// The migration phase at the time of the read.
    pub phase: Phase,
}

/// A background-migration step, executed by the Tables machine.
#[derive(Debug, Clone)]
pub struct MigratorRequest {
    /// The machine to reply to.
    pub from: MachineId,
    /// The step to perform.
    pub action: MigratorAction,
    /// The migrator's incarnation epoch (bumped on every crash-restart).
    /// Echoed in the response so a recovered migrator can discard responses
    /// to requests issued by its previous incarnation — without this, a
    /// stale `SetPhase` response arriving after a restart would be
    /// misattributed to the re-issued step.
    pub epoch: u64,
}

/// The migration steps the migrator can ask for.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MigratorAction {
    /// Advance the migration phase.
    SetPhase(Phase),
    /// Advance the migration phase unless the new table already contains
    /// rows (the seeded `EnsurePartitionSwitchedFromPopulated` defect skips
    /// the switch in that case).
    SetPhaseUnlessPopulated(Phase),
    /// Copy the next old-table row at or after `cursor` into the new table.
    CopyNext {
        /// Resume position of the copy pass.
        cursor: String,
        /// Whether the old-table row is deleted after copying.
        delete_after_copy: bool,
    },
    /// Remove one tombstone (and its shadowed old row) from the tables.
    CleanTombstone,
}

/// Reply to a [`MigratorRequest`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MigratorResponse {
    /// For copy steps: the key that was copied, or `None` when the pass is
    /// complete. For cleanup steps: `None` when no tombstones remain.
    pub copied_key: Option<String>,
    /// For cleanup steps: whether a tombstone was removed.
    pub progressed: bool,
    /// The requesting incarnation's epoch, echoed back.
    pub epoch: u64,
}

/// Monitor notification: a logical write executed (its linearization point).
#[derive(Debug, Clone)]
pub struct NotifyWrite {
    /// The logical operation.
    pub op: TableOperation,
    /// The outcome the system produced.
    pub outcome: Result<OpResult, TableError>,
}

/// Monitor notification: a logical query started.
#[derive(Debug, Clone)]
pub struct NotifyQueryStart {
    /// The query's identifier.
    pub qid: QueryId,
}

/// Monitor notification: a logical query completed with these rows.
#[derive(Debug, Clone)]
pub struct NotifyQueryResult {
    /// The query's identifier.
    pub qid: QueryId,
    /// The filter the client asked for.
    pub filter: Filter,
    /// The virtual-table rows the client obtained.
    pub rows: Vec<Row>,
}

// ---------------------------------------------------------------------------
// Tables machine
// ---------------------------------------------------------------------------

/// Owns the backend tables (and the migration phase) and serializes every
/// backend operation, mirroring the paper's Tables machine.
#[derive(Clone)]
pub struct TablesMachine {
    store: MigratingStore,
}

impl TablesMachine {
    /// Creates the machine around a pre-loaded store.
    pub fn new(store: MigratingStore) -> Self {
        TablesMachine { store }
    }

    /// Read access to the store (for tests and examples).
    pub fn store(&self) -> &MigratingStore {
        &self.store
    }
}

impl Machine for TablesMachine {
    fn handle(&mut self, ctx: &mut Context<'_>, event: Event) {
        if let Some(req) = event.downcast_ref::<WriteRequest>() {
            let outcome = self.store.execute_write(&req.op);
            ctx.notify_monitor::<SpecMonitor>(Event::new(NotifyWrite {
                op: req.op.clone(),
                outcome: outcome.clone(),
            }));
            ctx.send(req.from, Event::new(WriteResponse { outcome }));
        } else if let Some(req) = event.downcast_ref::<ReadAtomicRequest>() {
            let rows = self.store.backend_query_atomic(req.backend, &req.filter);
            ctx.send(
                req.from,
                Event::new(ReadAtomicResponse {
                    backend: req.backend,
                    rows,
                    phase: self.store.phase(),
                }),
            );
        } else if let Some(req) = event.downcast_ref::<ReadNextRequest>() {
            let row = self
                .store
                .backend_first_at_or_after(req.backend, &req.start, &req.filter);
            ctx.send(
                req.from,
                Event::new(ReadNextResponse {
                    backend: req.backend,
                    row,
                    phase: self.store.phase(),
                }),
            );
        } else if let Some(req) = event.downcast_ref::<MigratorRequest>() {
            let epoch = req.epoch;
            let response = match &req.action {
                MigratorAction::SetPhase(phase) => {
                    self.store.set_phase(*phase);
                    MigratorResponse {
                        copied_key: None,
                        progressed: true,
                        epoch,
                    }
                }
                MigratorAction::SetPhaseUnlessPopulated(phase) => {
                    let populated = !self.store.new.is_empty();
                    if !populated {
                        self.store.set_phase(*phase);
                    }
                    MigratorResponse {
                        copied_key: None,
                        progressed: !populated,
                        epoch,
                    }
                }
                MigratorAction::CopyNext {
                    cursor,
                    delete_after_copy,
                } => {
                    let copied = self.store.migrator_copy_next(cursor, *delete_after_copy);
                    MigratorResponse {
                        progressed: copied.is_some(),
                        copied_key: copied,
                        epoch,
                    }
                }
                MigratorAction::CleanTombstone => {
                    let progressed = self.store.migrator_clean_tombstone();
                    MigratorResponse {
                        copied_key: None,
                        progressed,
                        epoch,
                    }
                }
            };
            ctx.send(req.from, Event::new(response));
        }
    }

    fn name(&self) -> &str {
        "TablesMachine"
    }

    psharp::impl_machine_snapshot!();
}

// ---------------------------------------------------------------------------
// Spec monitor
// ---------------------------------------------------------------------------

/// Safety monitor comparing the system against the reference model (§4 of the
/// paper: "issued the same operations … to a reference table … and compared
/// the output").
#[derive(Clone, Default)]
pub struct SpecMonitor {
    model: SpecModel,
    open_queries: BTreeMap<QueryId, VersionSnapshot>,
    writes_checked: usize,
    queries_checked: usize,
}

impl SpecMonitor {
    /// Creates a monitor whose model starts with the given pre-seeded rows.
    pub fn new(model: SpecModel) -> Self {
        SpecMonitor {
            model,
            open_queries: BTreeMap::new(),
            writes_checked: 0,
            queries_checked: 0,
        }
    }

    /// Number of writes validated so far (exposed for tests).
    pub fn writes_checked(&self) -> usize {
        self.writes_checked
    }

    /// Number of queries validated so far (exposed for tests).
    pub fn queries_checked(&self) -> usize {
        self.queries_checked
    }

    /// Read access to the reference model (exposed for tests).
    pub fn model(&self) -> &SpecModel {
        &self.model
    }
}

impl Monitor for SpecMonitor {
    fn observe(&mut self, ctx: &mut MonitorContext<'_>, event: &Event) {
        if let Some(write) = event.downcast_ref::<NotifyWrite>() {
            self.writes_checked += 1;
            if let Some(violation) = self.model.record_write(&write.op, &write.outcome) {
                ctx.report_violation(violation);
            }
        } else if let Some(start) = event.downcast_ref::<NotifyQueryStart>() {
            self.open_queries
                .insert(start.qid, self.model.version_snapshot());
        } else if let Some(result) = event.downcast_ref::<NotifyQueryResult>() {
            self.queries_checked += 1;
            if let Some(started) = self.open_queries.remove(&result.qid) {
                if let Some(violation) =
                    self.model
                        .check_query(&started, &result.filter, &result.rows)
                {
                    ctx.report_violation(violation);
                }
            }
        }
    }

    fn name(&self) -> &str {
        "SpecMonitor"
    }

    fn clone_state(&self) -> Option<Box<dyn Monitor>> {
        Some(Box::new(self.clone()))
    }
}

// ---------------------------------------------------------------------------
// Service machine
// ---------------------------------------------------------------------------

/// One in-flight logical operation of a service.
#[derive(Clone)]
enum OpState {
    Idle,
    AwaitingWrite,
    /// Waiting for the old-table snapshot (read first: the migration only
    /// moves rows old → new, so reading the source before the destination
    /// guarantees a row in flight is seen on at least one side).
    AtomicAwaitOld {
        filter: Filter,
        fetch_filter: Filter,
        qid: QueryId,
    },
    /// Waiting for the new-table snapshot.
    AtomicAwaitNew {
        filter: Filter,
        qid: QueryId,
        old_rows: Vec<StoredRow>,
    },
    StreamFetchNew(StreamState),
    StreamFetchOld(StreamState, Option<StoredRow>),
    StreamRecheckNew(StreamState, Option<StoredRow>),
}

#[derive(Clone)]
struct StreamState {
    filter: Filter,
    fetch_filter: Filter,
    qid: QueryId,
    cursor: String,
    collected: Vec<Row>,
    phase_at_start: Option<Phase>,
}

/// A modeled application process: issues a P#-controlled random sequence of
/// logical operations through the migration protocol and reports results to
/// the [`SpecMonitor`].
#[derive(Clone)]
pub struct ServiceMachine {
    tables: MachineId,
    bugs: ChainBugs,
    ops_remaining: usize,
    key_space: usize,
    last_etags: BTreeMap<String, ETag>,
    next_query_seq: u64,
    state: OpState,
    completed_ops: usize,
}

impl ServiceMachine {
    /// Creates a service that will issue `ops` logical operations.
    pub fn new(tables: MachineId, bugs: ChainBugs, ops: usize, key_space: usize) -> Self {
        ServiceMachine {
            tables,
            bugs,
            ops_remaining: ops,
            key_space: key_space.max(1),
            last_etags: BTreeMap::new(),
            next_query_seq: 0,
            state: OpState::Idle,
            completed_ops: 0,
        }
    }

    /// Number of logical operations completed (exposed for tests).
    pub fn completed_ops(&self) -> usize {
        self.completed_ops
    }

    fn random_key(&self, ctx: &mut Context<'_>) -> String {
        format!("k{}", ctx.random_index(self.key_space))
    }

    fn random_row(&self, ctx: &mut Context<'_>) -> Row {
        let key = self.random_key(ctx);
        let value = ctx.random_index(3) as i64;
        Row::with_int(key, "v", value)
    }

    fn random_condition(&self, ctx: &mut Context<'_>, key: &str) -> ETagMatch {
        match self.last_etags.get(key) {
            Some(&etag) if ctx.random_bool() => ETagMatch::Exact(etag),
            _ => ETagMatch::Any,
        }
    }

    fn random_filter(&self, ctx: &mut Context<'_>) -> Filter {
        if ctx.random_bool() {
            Filter::All
        } else {
            Filter::PropertyEquals {
                name: "v".to_string(),
                value: crate::table::Value::Int(ctx.random_index(3) as i64),
            }
        }
    }

    fn next_qid(&mut self, ctx: &Context<'_>) -> QueryId {
        let qid = (ctx.id().raw(), self.next_query_seq);
        self.next_query_seq += 1;
        qid
    }

    fn start_next_op(&mut self, ctx: &mut Context<'_>) {
        if self.ops_remaining == 0 {
            ctx.halt();
            return;
        }
        self.ops_remaining -= 1;
        match ctx.random_index(6) {
            0 => self.start_write(ctx, |this, ctx| {
                TableOperation::Insert(this.random_row(ctx))
            }),
            1 => self.start_write(ctx, |this, ctx| {
                let row = this.random_row(ctx);
                let condition = this.random_condition(ctx, &row.key);
                TableOperation::Replace(row, condition)
            }),
            2 => self.start_write(ctx, |this, ctx| {
                let key = this.random_key(ctx);
                let condition = this.random_condition(ctx, &key);
                TableOperation::Delete(key, condition)
            }),
            3 => self.start_write(ctx, |this, ctx| {
                TableOperation::InsertOrReplace(this.random_row(ctx))
            }),
            4 => self.start_query_atomic(ctx),
            _ => self.start_query_streamed(ctx),
        }
    }

    fn start_write(
        &mut self,
        ctx: &mut Context<'_>,
        make: impl Fn(&Self, &mut Context<'_>) -> TableOperation,
    ) {
        let op = make(self, ctx);
        let from = ctx.id();
        ctx.send(self.tables, Event::new(WriteRequest { from, op }));
        self.state = OpState::AwaitingWrite;
    }

    fn start_query_atomic(&mut self, ctx: &mut Context<'_>) {
        let filter = self.random_filter(ctx);
        let fetch_filter = if self.bugs.query_atomic_filter_shadowing {
            // BUG: the filter is pushed down to both backends, so rows that
            // shadow filtered-out rows are never fetched.
            filter.clone()
        } else {
            Filter::All
        };
        let qid = self.next_qid(ctx);
        ctx.notify_monitor::<SpecMonitor>(Event::new(NotifyQueryStart { qid }));
        let from = ctx.id();
        ctx.send(
            self.tables,
            Event::new(ReadAtomicRequest {
                from,
                backend: Backend::Old,
                filter: fetch_filter.clone(),
            }),
        );
        self.state = OpState::AtomicAwaitOld {
            filter,
            fetch_filter,
            qid,
        };
    }

    fn start_query_streamed(&mut self, ctx: &mut Context<'_>) {
        let filter = self.random_filter(ctx);
        let fetch_filter = if self.bugs.query_streamed_filter_shadowing {
            filter.clone()
        } else {
            Filter::All
        };
        let qid = self.next_qid(ctx);
        ctx.notify_monitor::<SpecMonitor>(Event::new(NotifyQueryStart { qid }));
        let stream = StreamState {
            filter,
            fetch_filter,
            qid,
            cursor: String::new(),
            collected: Vec::new(),
            phase_at_start: None,
        };
        self.send_stream_fetch(ctx, Backend::New, &stream);
        self.state = OpState::StreamFetchNew(stream);
    }

    fn send_stream_fetch(&self, ctx: &mut Context<'_>, backend: Backend, stream: &StreamState) {
        let from = ctx.id();
        ctx.send(
            self.tables,
            Event::new(ReadNextRequest {
                from,
                backend,
                start: stream.cursor.clone(),
                filter: stream.fetch_filter.clone(),
            }),
        );
    }

    fn finish_op(&mut self, ctx: &mut Context<'_>) {
        self.completed_ops += 1;
        self.state = OpState::Idle;
        self.start_next_op(ctx);
    }

    fn complete_query(
        &mut self,
        ctx: &mut Context<'_>,
        qid: QueryId,
        filter: Filter,
        rows: Vec<Row>,
    ) {
        ctx.notify_monitor::<SpecMonitor>(Event::new(NotifyQueryResult { qid, filter, rows }));
        self.finish_op(ctx);
    }

    fn finish_atomic(
        &mut self,
        ctx: &mut Context<'_>,
        filter: Filter,
        qid: QueryId,
        new_rows: Vec<StoredRow>,
        old_rows: Vec<StoredRow>,
        phase: Phase,
    ) {
        let mut merged = merge_atomic(phase, &old_rows, &new_rows);
        if !self.bugs.query_atomic_filter_shadowing {
            // Fixed behaviour: fetch everything, merge, then filter.
            merged.retain(|row| filter.matches(row));
        }
        self.complete_query(ctx, qid, filter, merged);
    }

    /// Decides what the merged stream emits next, advances the cursor and
    /// either continues the stream or completes the query.
    fn finish_stream_step(
        &mut self,
        ctx: &mut Context<'_>,
        mut stream: StreamState,
        new_next: Option<StoredRow>,
        old_next: Option<StoredRow>,
        latest_phase: Phase,
    ) {
        let phase_used = if self.bugs.query_streamed_lock {
            // BUG: keep using the phase observed when the stream started.
            stream.phase_at_start.unwrap_or(latest_phase)
        } else {
            latest_phase
        };
        let old_candidate = old_next.filter(|_| phase_used.reads_old());
        let new_candidate = new_next.filter(|_| phase_used.reads_new());

        let picked: Option<(StoredRow, bool)> = match (old_candidate, new_candidate) {
            (None, None) => None,
            (Some(old), None) => Some((old, false)),
            (None, Some(new)) => Some((new, true)),
            (Some(old), Some(new)) => {
                if old.row.key < new.row.key {
                    Some((old, false))
                } else if new.row.key < old.row.key {
                    Some((new, true))
                } else if phase_used.old_wins() {
                    Some((old, false))
                } else {
                    Some((new, true))
                }
            }
        };

        match picked {
            None => {
                let StreamState {
                    filter,
                    qid,
                    collected,
                    ..
                } = stream;
                self.complete_query(ctx, qid, filter, collected);
            }
            Some((stored, from_new)) => {
                stream.cursor = format!("{}\u{0}", stored.row.key);
                // Tombstones are never emitted; non-matching rows are skipped
                // (the fixed path fetches unfiltered rows and filters here).
                let emit =
                    !(from_new && is_tombstone(&stored.row)) && stream.filter.matches(&stored.row);
                if emit {
                    stream.collected.push(stored.row);
                }
                self.send_stream_fetch(ctx, Backend::New, &stream);
                self.state = OpState::StreamFetchNew(stream);
            }
        }
    }
}

impl Machine for ServiceMachine {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        self.start_next_op(ctx);
    }

    fn handle(&mut self, ctx: &mut Context<'_>, event: Event) {
        let state = std::mem::replace(&mut self.state, OpState::Idle);
        match state {
            OpState::Idle => {
                // Unexpected event while idle (e.g. a stale response after the
                // workload finished); ignore it.
            }
            OpState::AwaitingWrite => {
                if let Some(response) = event.downcast_ref::<WriteResponse>() {
                    if let Ok(result) = &response.outcome {
                        if let Some(etag) = result.etag {
                            self.last_etags.insert(result.key.clone(), etag);
                        } else {
                            self.last_etags.remove(&result.key);
                        }
                    }
                    self.finish_op(ctx);
                } else {
                    self.state = OpState::AwaitingWrite;
                }
            }
            OpState::AtomicAwaitOld {
                filter,
                fetch_filter,
                qid,
            } => {
                if let Some(response) = event.downcast_ref::<ReadAtomicResponse>() {
                    let from = ctx.id();
                    ctx.send(
                        self.tables,
                        Event::new(ReadAtomicRequest {
                            from,
                            backend: Backend::New,
                            filter: fetch_filter.clone(),
                        }),
                    );
                    self.state = OpState::AtomicAwaitNew {
                        filter,
                        qid,
                        old_rows: response.rows.clone(),
                    };
                } else {
                    self.state = OpState::AtomicAwaitOld {
                        filter,
                        fetch_filter,
                        qid,
                    };
                }
            }
            OpState::AtomicAwaitNew {
                filter,
                qid,
                old_rows,
            } => {
                if let Some(response) = event.downcast_ref::<ReadAtomicResponse>() {
                    let new_rows = response.rows.clone();
                    let phase = response.phase;
                    self.finish_atomic(ctx, filter, qid, new_rows, old_rows, phase);
                } else {
                    self.state = OpState::AtomicAwaitNew {
                        filter,
                        qid,
                        old_rows,
                    };
                }
            }
            OpState::StreamFetchNew(mut stream) => {
                if let Some(response) = event.downcast_ref::<ReadNextResponse>() {
                    if stream.phase_at_start.is_none() {
                        stream.phase_at_start = Some(response.phase);
                    }
                    let new_next = response.row.clone();
                    self.send_stream_fetch(ctx, Backend::Old, &stream);
                    self.state = OpState::StreamFetchOld(stream, new_next);
                } else {
                    self.state = OpState::StreamFetchNew(stream);
                }
            }
            OpState::StreamFetchOld(stream, new_next) => {
                if let Some(response) = event.downcast_ref::<ReadNextResponse>() {
                    let old_next = response.row.clone();
                    let phase = response.phase;
                    if self.bugs.query_streamed_back_up_new_stream {
                        // BUG: trust the possibly-stale new-table row fetched
                        // before the old-table read.
                        self.finish_stream_step(ctx, stream, new_next, old_next, phase);
                    } else {
                        // Fixed: re-read the new table ("back up the new
                        // stream") so rows copied in the meantime are seen.
                        self.send_stream_fetch(ctx, Backend::New, &stream);
                        self.state = OpState::StreamRecheckNew(stream, old_next);
                    }
                } else {
                    self.state = OpState::StreamFetchOld(stream, new_next);
                }
            }
            OpState::StreamRecheckNew(stream, old_next) => {
                if let Some(response) = event.downcast_ref::<ReadNextResponse>() {
                    let new_next = response.row.clone();
                    let phase = response.phase;
                    self.finish_stream_step(ctx, stream, new_next, old_next, phase);
                } else {
                    self.state = OpState::StreamRecheckNew(stream, old_next);
                }
            }
        }
    }

    fn name(&self) -> &str {
        "ServiceMachine"
    }

    psharp::impl_machine_snapshot!();
}

// ---------------------------------------------------------------------------
// Migrator machine
// ---------------------------------------------------------------------------

/// One step of the migrator's plan.
#[derive(Debug, Clone, PartialEq, Eq)]
enum MigrationStep {
    SetPhase(Phase),
    SetPhaseUnlessPopulated(Phase),
    CopyPass,
    CleanPass,
}

/// The background migrator job (the paper's Migrator machine).
///
/// The migrator is the crate's crashable/restartable component: the harness
/// marks it `restartable`, so under a fault budget the core scheduler may
/// crash it mid-plan (losing the in-flight `MigratorResponse` with its
/// mailbox) and later restart it. The fixed recovery path re-issues the
/// current plan step from the beginning of its pass — every step is
/// idempotent (phase announcements repeat, copies are insert-if-absent) — so
/// migration completes correctly after any crash. The seeded
/// `restart_skips_in_flight_step` defect recovers optimistically instead.
#[derive(Clone)]
pub struct MigratorMachine {
    tables: MachineId,
    bugs: ChainBugs,
    plan: Vec<MigrationStep>,
    step: usize,
    copy_cursor: String,
    delete_after_copy: bool,
    finished: bool,
    restarts: usize,
    /// Incarnation epoch: bumped on every crash-restart and carried on every
    /// request, so responses addressed to a previous incarnation are ignored.
    epoch: u64,
}

impl MigratorMachine {
    /// Creates a migrator whose plan reflects the seeded bug flags.
    pub fn new(tables: MachineId, bugs: ChainBugs, delete_after_copy: bool) -> Self {
        let plan = if bugs.migrate_skip_prefer_old {
            // BUG: copying (and deleting from the old table) starts while the
            // clients are still in the prefer-old phase, so their deletes do
            // not leave tombstones and can be resurrected by the copy.
            vec![
                MigrationStep::SetPhase(Phase::PreferOld),
                MigrationStep::CopyPass,
                MigrationStep::SetPhase(Phase::UseNewWithTombstones),
                MigrationStep::SetPhase(Phase::UseNewHideTombstones),
                MigrationStep::CleanPass,
                MigrationStep::SetPhase(Phase::UseNew),
            ]
        } else if bugs.migrate_skip_use_new_with_tombstones {
            // BUG: the tombstone phase is skipped; deletes performed before
            // the copy pass reaches their key are resurrected.
            vec![
                MigrationStep::SetPhase(Phase::PreferOld),
                MigrationStep::SetPhase(Phase::UseNewHideTombstones),
                MigrationStep::CopyPass,
                MigrationStep::CleanPass,
                MigrationStep::SetPhase(Phase::UseNew),
            ]
        } else {
            let switch = if bugs.ensure_partition_switched_from_populated {
                MigrationStep::SetPhaseUnlessPopulated(Phase::UseNewWithTombstones)
            } else {
                MigrationStep::SetPhase(Phase::UseNewWithTombstones)
            };
            vec![
                MigrationStep::SetPhase(Phase::PreferOld),
                switch,
                MigrationStep::CopyPass,
                MigrationStep::SetPhase(Phase::UseNewHideTombstones),
                MigrationStep::CleanPass,
                MigrationStep::SetPhase(Phase::UseNew),
            ]
        };
        MigratorMachine {
            tables,
            bugs,
            plan,
            step: 0,
            copy_cursor: String::new(),
            delete_after_copy,
            finished: false,
            restarts: 0,
            epoch: 0,
        }
    }

    /// Whether the migration plan has completed (exposed for tests).
    pub fn finished(&self) -> bool {
        self.finished
    }

    /// Number of times the migrator was crash-restarted (exposed for tests).
    pub fn restarts(&self) -> usize {
        self.restarts
    }

    fn issue_current_step(&mut self, ctx: &mut Context<'_>) {
        let Some(step) = self.plan.get(self.step) else {
            self.finished = true;
            ctx.halt();
            return;
        };
        let action = match step {
            MigrationStep::SetPhase(phase) => MigratorAction::SetPhase(*phase),
            MigrationStep::SetPhaseUnlessPopulated(phase) => {
                MigratorAction::SetPhaseUnlessPopulated(*phase)
            }
            MigrationStep::CopyPass => MigratorAction::CopyNext {
                cursor: self.copy_cursor.clone(),
                delete_after_copy: self.delete_after_copy,
            },
            MigrationStep::CleanPass => MigratorAction::CleanTombstone,
        };
        let from = ctx.id();
        let epoch = self.epoch;
        ctx.send(
            self.tables,
            Event::new(MigratorRequest {
                from,
                action,
                epoch,
            }),
        );
    }
}

impl Machine for MigratorMachine {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        self.issue_current_step(ctx);
    }

    fn handle(&mut self, ctx: &mut Context<'_>, event: Event) {
        let Some(response) = event.downcast_ref::<MigratorResponse>() else {
            return;
        };
        if response.epoch != self.epoch {
            // A response to a request issued before the last crash: the
            // recovered incarnation already re-issued its step, so acting on
            // the stale reply would double-advance the plan.
            return;
        }
        match self.plan.get(self.step) {
            Some(MigrationStep::CopyPass) => {
                if let Some(copied) = &response.copied_key {
                    self.copy_cursor = format!("{copied}\u{0}");
                } else {
                    self.step += 1;
                }
            }
            Some(MigrationStep::CleanPass) if !response.progressed => {
                self.step += 1;
            }
            Some(MigrationStep::CleanPass) => {}
            Some(_) => {
                self.step += 1;
            }
            None => {}
        }
        self.issue_current_step(ctx);
    }

    fn on_restart(&mut self, ctx: &mut Context<'_>) {
        // The crash discarded the migrator's mailbox, so the response to its
        // in-flight request (if any) is lost: the plan step's completion is
        // unknown. Bump the incarnation epoch so any response still in
        // flight from before the crash is discarded on arrival.
        self.restarts += 1;
        self.epoch += 1;
        if self.bugs.restart_skips_in_flight_step {
            // BUG: recover optimistically — assume the in-flight step
            // finished. A copy pass interrupted mid-way is abandoned with
            // rows stranded in the old table.
            self.step += 1;
        } else {
            // Fixed: redo the current step from the beginning of its pass.
            // Every step is idempotent (phase announcements repeat, copies
            // are insert-if-absent), so redoing is always safe.
            self.copy_cursor = String::new();
        }
        self.issue_current_step(ctx);
    }

    fn name(&self) -> &str {
        "MigratorMachine"
    }

    psharp::impl_machine_snapshot!();
}
