//! The Live Table Migration protocol: migration phases, the translation of
//! logical (virtual-table) operations onto the two backend tables, the
//! client-side merge logic for reads, and the migrator's step plan.
//!
//! The protocol migrates a key-value data set from an *old* backend table to
//! a *new* backend table while applications keep reading and writing through
//! the virtual table (VT). Writes are routed per the current migration
//! [`Phase`]; deletes leave *tombstone* rows in the new table while the old
//! table may still hold the row; reads merge both backends, letting new-table
//! rows (and tombstones) shadow old-table rows.
//!
//! Every named bug of Table 2 in the paper is re-introducible through a flag
//! in [`ChainBugs`]; the fixed behaviour is the default.

use std::collections::BTreeMap;

use crate::table::{
    ChainTable, ChainTableExt, ETagMatch, Filter, InMemoryTable, OpResult, Row, StoredRow,
    TableError, TableOperation, Value,
};

/// Property name marking a new-table row as a tombstone for a deleted key.
pub const TOMBSTONE_PROPERTY: &str = "__tombstone";

/// The migration phases, in order.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Phase {
    /// Before migration: everything uses the old table.
    #[default]
    UseOld,
    /// Clients have been told the new table exists; writes still go to the
    /// old table, reads prefer the old table.
    PreferOld,
    /// Writes go to the new table; deletes leave tombstones; reads merge both
    /// backends with the new table winning.
    UseNewWithTombstones,
    /// The migrator has copied the data; reads still merge (and hide
    /// tombstones) until cleanup finishes.
    UseNewHideTombstones,
    /// Migration finished: everything uses the new table.
    UseNew,
}

impl Phase {
    /// Returns `true` when reads should consult the old table in this phase.
    ///
    /// Once the migrator has finished copying and announces
    /// [`Phase::UseNewHideTombstones`], readers stop consulting the old
    /// table; only then may tombstones (and leftover old rows) be cleaned up
    /// without racing against readers.
    pub fn reads_old(self) -> bool {
        matches!(
            self,
            Phase::UseOld | Phase::PreferOld | Phase::UseNewWithTombstones
        )
    }

    /// Returns `true` when reads should consult the new table in this phase.
    pub fn reads_new(self) -> bool {
        !matches!(self, Phase::UseOld)
    }

    /// Returns `true` when an old-table row wins over a new-table row for the
    /// same key (only in [`Phase::PreferOld`]).
    pub fn old_wins(self) -> bool {
        matches!(self, Phase::UseOld | Phase::PreferOld)
    }

    /// Returns `true` when client writes are routed to the new table.
    pub fn writes_new(self) -> bool {
        matches!(
            self,
            Phase::UseNewWithTombstones | Phase::UseNewHideTombstones | Phase::UseNew
        )
    }

    /// Returns `true` when deletes must leave tombstones in the new table.
    ///
    /// Tombstones are only needed while readers still consult the old table
    /// ([`Phase::UseNewWithTombstones`]); once reads are new-table-only a
    /// plain delete suffices, and creating further tombstones would let them
    /// leak past the migrator's cleanup pass into [`Phase::UseNew`].
    pub fn deletes_leave_tombstones(self) -> bool {
        matches!(self, Phase::UseNewWithTombstones)
    }
}

/// The eleven re-introducible defects of the MigratingTable case study
/// (Table 2 of the paper). All flags default to `false` (fixed behaviour).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChainBugs {
    /// `QueryAtomicFilterShadowing`: atomic queries push the filter down to
    /// both backends before merging, so a non-matching new-table row fails to
    /// shadow its matching old-table version.
    pub query_atomic_filter_shadowing: bool,
    /// `QueryStreamedLock`: streamed queries keep using the migration phase
    /// observed when the stream started instead of re-validating it at every
    /// step.
    pub query_streamed_lock: bool,
    /// `QueryStreamedBackUpNewStream`: streamed queries do not re-read the
    /// new table before emitting a row, so a row copied to the new table and
    /// deleted from the old one mid-stream is missed.
    pub query_streamed_back_up_new_stream: bool,
    /// `DeleteNoLeaveTombstonesEtag`: deletes that must leave tombstones drop
    /// the caller's ETag precondition.
    pub delete_no_leave_tombstones_etag: bool,
    /// `DeletePrimaryKey`: the tombstone is written under a mangled key, so
    /// the real row is never hidden.
    pub delete_primary_key: bool,
    /// `EnsurePartitionSwitchedFromPopulated`: the migrator skips announcing
    /// the tombstone phase when the new table is already populated.
    pub ensure_partition_switched_from_populated: bool,
    /// `TombstoneOutputETag`: deletes report the tombstone row's ETag to the
    /// caller instead of no ETag.
    pub tombstone_output_etag: bool,
    /// `QueryStreamedFilterShadowing`: the streamed-query variant of the
    /// filter-shadowing defect.
    pub query_streamed_filter_shadowing: bool,
    /// `MigrateSkipPreferOld` (notional): the migrator starts copying (and
    /// deleting from the old table) while clients are still in the
    /// prefer-old phase, so their tombstone-free deletes can be resurrected.
    pub migrate_skip_prefer_old: bool,
    /// `MigrateSkipUseNewWithTombstones` (notional): the migrator announces
    /// the hide-tombstones phase before copying, so deletes performed before
    /// the copy reaches them are resurrected by the copy.
    pub migrate_skip_use_new_with_tombstones: bool,
    /// `InsertBehindMigrator` (notional): inserts in the tombstone phase are
    /// routed to the old table, behind the migrator's copy cursor, and are
    /// lost.
    pub insert_behind_migrator: bool,
    /// `MigratorRestartSkipsStep` (*fault-induced*): after a crash+restart,
    /// the recovering migrator assumes its in-flight plan step already
    /// completed and resumes at the *next* step. Invisible without faults —
    /// the plan only advances on confirmed responses — but a crash injected
    /// mid-copy-pass (`Decision::CrashMachine` + `RestartMachine`) makes the
    /// buggy migrator skip the rest of the copy: the phase advances to
    /// new-table-only reads while rows are still stranded in the old table,
    /// and queries diverge from the reference model.
    pub restart_skips_in_flight_step: bool,
}

impl ChainBugs {
    /// No bugs: the fixed system.
    pub fn none() -> Self {
        ChainBugs::default()
    }
}

/// Identifies one of the two backend tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// The table the data set is migrating away from.
    Old,
    /// The table the data set is migrating to.
    New,
}

/// Returns `true` when a stored new-table row is a tombstone.
pub fn is_tombstone(row: &Row) -> bool {
    row.properties.get(TOMBSTONE_PROPERTY) == Some(&Value::Bool(true))
}

/// Builds the tombstone row hiding `key`.
pub fn tombstone_row(key: &str) -> Row {
    Row::empty(key).with_property(TOMBSTONE_PROPERTY, Value::Bool(true))
}

/// The authoritative pair of backend tables plus the current migration phase.
///
/// Virtual-table *writes* are executed here atomically (a single logical
/// write maps to one backend batch in the real system as well); *reads* are
/// performed by the clients through the per-backend query primitives so that
/// the systematic scheduler can interleave other work between the backend
/// reads of one logical query.
#[derive(Debug, Clone, Default)]
pub struct MigratingStore {
    /// The old backend table.
    pub old: InMemoryTable,
    /// The new backend table.
    pub new: InMemoryTable,
    phase: Phase,
    bugs: ChainBugs,
}

impl MigratingStore {
    /// Creates an empty store in [`Phase::UseOld`] with the given bug flags.
    ///
    /// The two backends allocate ETags from disjoint ranges, mirroring the
    /// globally unique ETags of the real service, so a version obtained from
    /// one table can never accidentally match a row in the other.
    pub fn new(bugs: ChainBugs) -> Self {
        MigratingStore {
            old: InMemoryTable::with_etag_base(1 << 32),
            new: InMemoryTable::with_etag_base(2 << 32),
            phase: Phase::UseOld,
            bugs,
        }
    }

    /// The current migration phase.
    pub fn phase(&self) -> Phase {
        self.phase
    }

    /// Sets the migration phase (performed by the migrator).
    pub fn set_phase(&mut self, phase: Phase) {
        self.phase = phase;
    }

    /// The bug flags this store was created with.
    pub fn bugs(&self) -> ChainBugs {
        self.bugs
    }

    /// Reads the virtual-table row for `key` under the current phase,
    /// resolving shadowing and tombstones.
    pub fn virtual_read(&self, key: &str) -> Option<StoredRow> {
        let new_row = if self.phase.reads_new() {
            self.new.read(key)
        } else {
            None
        };
        let old_row = if self.phase.reads_old() {
            self.old.read(key)
        } else {
            None
        };
        match (new_row, old_row) {
            (Some(new), Some(old)) => {
                if self.phase.old_wins() {
                    Some(old)
                } else if is_tombstone(&new.row) {
                    None
                } else {
                    Some(new)
                }
            }
            (Some(new), None) => {
                if is_tombstone(&new.row) {
                    None
                } else {
                    Some(new)
                }
            }
            (None, old) => old,
        }
    }

    fn check_condition(&self, key: &str, condition: ETagMatch) -> Result<StoredRow, TableError> {
        match self.virtual_read(key) {
            None => Err(TableError::NotFound(key.to_string())),
            Some(stored) => match condition {
                ETagMatch::Any => Ok(stored),
                ETagMatch::Exact(expected) if expected == stored.etag => Ok(stored),
                ETagMatch::Exact(_) => Err(TableError::ConditionFailed(key.to_string())),
            },
        }
    }

    /// Executes one virtual-table write under the current phase.
    ///
    /// # Errors
    ///
    /// Returns the chain-table error the virtual table semantics prescribe
    /// (or, for seeded defects, whatever the buggy translation produces).
    pub fn execute_write(&mut self, op: &TableOperation) -> Result<OpResult, TableError> {
        if !self.phase.writes_new() {
            // UseOld / PreferOld: the old table is authoritative.
            return self.old.execute(op.clone());
        }
        if self.phase == Phase::UseNew {
            return self.new.execute(op.clone());
        }
        // Tombstone phases: translate onto the new table.
        match op {
            TableOperation::Insert(row) => {
                if self.bugs.insert_behind_migrator {
                    // BUG: the insert goes to the old table; if the migrator's
                    // copy pass has already moved beyond this key the row is
                    // never copied and is lost once reads stop consulting the
                    // old table.
                    return self.old.execute(op.clone());
                }
                if self.virtual_read(&row.key).is_some() {
                    return Err(TableError::AlreadyExists(row.key.clone()));
                }
                self.new
                    .execute(TableOperation::InsertOrReplace(row.clone()))
            }
            TableOperation::Replace(row, condition) => {
                self.check_condition(&row.key, *condition)?;
                self.new
                    .execute(TableOperation::InsertOrReplace(row.clone()))
            }
            TableOperation::Merge(row, condition) => {
                let current = self.check_condition(&row.key, *condition)?;
                let mut merged = current.row.clone();
                for (name, value) in &row.properties {
                    merged.properties.insert(name.clone(), value.clone());
                }
                merged.key = row.key.clone();
                self.new.execute(TableOperation::InsertOrReplace(merged))
            }
            TableOperation::InsertOrReplace(row) => self
                .new
                .execute(TableOperation::InsertOrReplace(row.clone())),
            TableOperation::Delete(key, condition) => {
                if self.bugs.delete_no_leave_tombstones_etag {
                    // BUG: the ETag precondition is dropped; the delete
                    // succeeds even when a concurrent writer bumped the row.
                    if self.virtual_read(key).is_none() {
                        return Err(TableError::NotFound(key.clone()));
                    }
                } else {
                    self.check_condition(key, *condition)?;
                }
                if !self.phase.deletes_leave_tombstones() {
                    // Hide-tombstones phase: readers only consult the new
                    // table, so the row (or a leftover tombstone) is simply
                    // removed from it.
                    self.new
                        .execute(TableOperation::Delete(key.clone(), ETagMatch::Any))
                        .ok();
                    return Ok(OpResult {
                        key: key.clone(),
                        etag: None,
                    });
                }
                let tombstone_key = if self.bugs.delete_primary_key {
                    // BUG: the tombstone is written under a mangled key and
                    // never hides the real row.
                    format!("{key}#deleted")
                } else {
                    key.clone()
                };
                let result = self
                    .new
                    .execute(TableOperation::InsertOrReplace(tombstone_row(
                        &tombstone_key,
                    )))?;
                if self.bugs.tombstone_output_etag {
                    // BUG: the caller sees the tombstone row's ETag instead of
                    // the delete-result contract (no ETag).
                    Ok(OpResult {
                        key: key.clone(),
                        etag: result.etag,
                    })
                } else {
                    Ok(OpResult {
                        key: key.clone(),
                        etag: None,
                    })
                }
            }
        }
    }

    /// One backend query primitive used by clients' streamed reads.
    pub fn backend_first_at_or_after(
        &self,
        backend: Backend,
        start: &str,
        filter: &Filter,
    ) -> Option<StoredRow> {
        match backend {
            Backend::Old => self.old.query_first_at_or_after(start, filter),
            Backend::New => self.new.query_first_at_or_after(start, filter),
        }
    }

    /// One backend snapshot query used by clients' atomic reads.
    pub fn backend_query_atomic(&self, backend: Backend, filter: &Filter) -> Vec<StoredRow> {
        match backend {
            Backend::Old => self.old.query_atomic(filter),
            Backend::New => self.new.query_atomic(filter),
        }
    }

    /// Migrator primitive: copies the first old-table row with key `>= cursor`
    /// into the new table (insert-if-absent) and, when `delete_after_copy` is
    /// set, deletes it from the old table. Returns the copied key, or `None`
    /// when the copy pass is complete.
    pub fn migrator_copy_next(&mut self, cursor: &str, delete_after_copy: bool) -> Option<String> {
        let next = self.old.query_first_at_or_after(cursor, &Filter::All)?;
        let key = next.row.key.clone();
        // Insert-if-absent: an existing new-table row (client write or
        // tombstone) always wins over the stale old copy.
        if self.new.read(&key).is_none() {
            self.new
                .execute(TableOperation::Insert(next.row.clone()))
                .ok();
        }
        if delete_after_copy {
            self.old
                .execute(TableOperation::Delete(key.clone(), ETagMatch::Any))
                .ok();
        }
        Some(key)
    }

    /// Migrator primitive: removes one tombstone row from the new table.
    /// Returns `false` when no tombstones remain.
    pub fn migrator_clean_tombstone(&mut self) -> bool {
        let tombstone = self
            .new
            .query_atomic(&Filter::PropertyEquals {
                name: TOMBSTONE_PROPERTY.to_string(),
                value: Value::Bool(true),
            })
            .into_iter()
            .next();
        match tombstone {
            Some(stored) => {
                let key = stored.row.key;
                self.new
                    .execute(TableOperation::Delete(key.clone(), ETagMatch::Any))
                    .ok();
                // Removing the tombstone would un-shadow a leftover old-table
                // row, so cleanup deletes that row as well.
                self.old
                    .execute(TableOperation::Delete(key, ETagMatch::Any))
                    .ok();
                true
            }
            None => false,
        }
    }

    /// Returns every virtual-table row matching `filter` (the ground truth a
    /// fully synchronized reader would see). Used by tests.
    pub fn virtual_snapshot(&self, filter: &Filter) -> Vec<Row> {
        let mut keys: Vec<String> = self
            .old
            .query_atomic(&Filter::All)
            .into_iter()
            .map(|s| s.row.key)
            .chain(
                self.new
                    .query_atomic(&Filter::All)
                    .into_iter()
                    .map(|s| s.row.key),
            )
            .collect();
        keys.sort();
        keys.dedup();
        keys.into_iter()
            .filter_map(|key| self.virtual_read(&key).map(|s| s.row))
            .filter(|row| filter.matches(row))
            .collect()
    }
}

/// Merges the two backends' snapshot results into virtual-table rows
/// (client-side logic of an atomic query).
///
/// `old_rows` and `new_rows` must be sorted by key (as returned by the
/// backends). Tombstones and shadowed old rows are resolved per `phase`.
pub fn merge_atomic(phase: Phase, old_rows: &[StoredRow], new_rows: &[StoredRow]) -> Vec<Row> {
    let mut by_key: BTreeMap<String, Row> = BTreeMap::new();
    if phase.reads_old() {
        for stored in old_rows {
            by_key.insert(stored.row.key.clone(), stored.row.clone());
        }
    }
    if phase.reads_new() {
        for stored in new_rows {
            let key = stored.row.key.clone();
            if phase.old_wins() && by_key.contains_key(&key) {
                continue;
            }
            if is_tombstone(&stored.row) {
                by_key.remove(&key);
            } else {
                by_key.insert(key, stored.row.clone());
            }
        }
    }
    by_key.into_values().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(key: &str, v: i64) -> Row {
        Row::with_int(key, "v", v)
    }

    fn store_in(phase: Phase, bugs: ChainBugs) -> MigratingStore {
        let mut store = MigratingStore::new(bugs);
        store.set_phase(phase);
        store
    }

    #[test]
    fn phase_predicates_follow_the_protocol() {
        assert!(Phase::UseOld.reads_old() && !Phase::UseOld.reads_new());
        assert!(Phase::PreferOld.reads_old() && Phase::PreferOld.reads_new());
        assert!(Phase::PreferOld.old_wins());
        assert!(Phase::UseNewWithTombstones.writes_new());
        assert!(Phase::UseNewWithTombstones.reads_old());
        assert!(Phase::UseNewWithTombstones.deletes_leave_tombstones());
        assert!(!Phase::UseNewHideTombstones.reads_old());
        assert!(!Phase::UseNewHideTombstones.deletes_leave_tombstones());
        assert!(!Phase::UseNew.reads_old());
        assert!(!Phase::UseNew.deletes_leave_tombstones());
    }

    #[test]
    fn writes_in_early_phases_go_to_the_old_table() {
        let mut store = store_in(Phase::PreferOld, ChainBugs::none());
        store
            .execute_write(&TableOperation::Insert(row("a", 1)))
            .unwrap();
        assert!(store.old.read("a").is_some());
        assert!(store.new.read("a").is_none());
    }

    #[test]
    fn writes_in_tombstone_phase_go_to_the_new_table() {
        let mut store = store_in(Phase::UseNewWithTombstones, ChainBugs::none());
        store
            .execute_write(&TableOperation::Insert(row("a", 1)))
            .unwrap();
        assert!(store.old.read("a").is_none());
        assert!(store.new.read("a").is_some());
    }

    #[test]
    fn delete_in_tombstone_phase_hides_the_old_row() {
        let mut store = store_in(Phase::UseOld, ChainBugs::none());
        store
            .execute_write(&TableOperation::Insert(row("a", 1)))
            .unwrap();
        store.set_phase(Phase::UseNewWithTombstones);
        let result = store
            .execute_write(&TableOperation::Delete("a".to_string(), ETagMatch::Any))
            .unwrap();
        assert_eq!(result.etag, None, "deletes report no etag");
        assert!(store.old.read("a").is_some(), "old copy still present");
        assert!(store.virtual_read("a").is_none(), "but the VT row is gone");
    }

    #[test]
    fn replace_over_old_row_shadows_it_in_new_table() {
        let mut store = store_in(Phase::UseOld, ChainBugs::none());
        store
            .execute_write(&TableOperation::Insert(row("a", 1)))
            .unwrap();
        store.set_phase(Phase::UseNewWithTombstones);
        store
            .execute_write(&TableOperation::Replace(row("a", 2), ETagMatch::Any))
            .unwrap();
        assert_eq!(store.virtual_read("a").unwrap().row, row("a", 2));
        assert_eq!(store.old.read("a").unwrap().row, row("a", 1));
    }

    #[test]
    fn conditional_write_checks_the_virtual_etag() {
        let mut store = store_in(Phase::UseOld, ChainBugs::none());
        let first = store
            .execute_write(&TableOperation::Insert(row("a", 1)))
            .unwrap();
        store.set_phase(Phase::UseNewWithTombstones);
        // Using the etag from the old-table insert is valid until someone
        // writes the row again.
        store
            .execute_write(&TableOperation::Replace(
                row("a", 2),
                ETagMatch::Exact(first.etag.unwrap()),
            ))
            .unwrap();
        // The stale etag must now be rejected.
        let err = store
            .execute_write(&TableOperation::Delete(
                "a".to_string(),
                ETagMatch::Exact(first.etag.unwrap()),
            ))
            .unwrap_err();
        assert_eq!(err, TableError::ConditionFailed("a".to_string()));
    }

    #[test]
    fn buggy_delete_ignores_the_etag_precondition() {
        let mut store = store_in(Phase::UseOld, ChainBugs::none());
        let first = store
            .execute_write(&TableOperation::Insert(row("a", 1)))
            .unwrap();
        let mut store2 = store_in(
            Phase::UseNewWithTombstones,
            ChainBugs {
                delete_no_leave_tombstones_etag: true,
                ..ChainBugs::none()
            },
        );
        store2.old = store.old.clone();
        store2
            .execute_write(&TableOperation::Replace(row("a", 2), ETagMatch::Any))
            .unwrap();
        // The stale etag should be rejected, but the buggy translation
        // deletes anyway.
        let result = store2.execute_write(&TableOperation::Delete(
            "a".to_string(),
            ETagMatch::Exact(first.etag.unwrap()),
        ));
        assert!(result.is_ok());
        assert!(store2.virtual_read("a").is_none());
    }

    #[test]
    fn buggy_delete_primary_key_leaves_the_row_visible() {
        let mut store = store_in(Phase::UseOld, ChainBugs::none());
        store
            .execute_write(&TableOperation::Insert(row("a", 1)))
            .unwrap();
        let mut buggy = store_in(
            Phase::UseNewWithTombstones,
            ChainBugs {
                delete_primary_key: true,
                ..ChainBugs::none()
            },
        );
        buggy.old = store.old.clone();
        buggy
            .execute_write(&TableOperation::Delete("a".to_string(), ETagMatch::Any))
            .unwrap();
        assert!(
            buggy.virtual_read("a").is_some(),
            "the mangled tombstone fails to hide the row"
        );
    }

    #[test]
    fn buggy_tombstone_output_etag_reports_an_etag_for_deletes() {
        let mut buggy = store_in(
            Phase::UseNewWithTombstones,
            ChainBugs {
                tombstone_output_etag: true,
                ..ChainBugs::none()
            },
        );
        buggy
            .execute_write(&TableOperation::Insert(row("a", 1)))
            .unwrap();
        let result = buggy
            .execute_write(&TableOperation::Delete("a".to_string(), ETagMatch::Any))
            .unwrap();
        assert!(result.etag.is_some(), "the defect leaks the tombstone etag");
    }

    #[test]
    fn buggy_insert_behind_migrator_writes_to_the_old_table() {
        let mut buggy = store_in(
            Phase::UseNewWithTombstones,
            ChainBugs {
                insert_behind_migrator: true,
                ..ChainBugs::none()
            },
        );
        buggy
            .execute_write(&TableOperation::Insert(row("z", 1)))
            .unwrap();
        assert!(buggy.old.read("z").is_some());
        assert!(buggy.new.read("z").is_none());
    }

    #[test]
    fn insert_over_tombstone_succeeds() {
        let mut store = store_in(Phase::UseNewWithTombstones, ChainBugs::none());
        store
            .execute_write(&TableOperation::Insert(row("a", 1)))
            .unwrap();
        store
            .execute_write(&TableOperation::Delete("a".to_string(), ETagMatch::Any))
            .unwrap();
        store
            .execute_write(&TableOperation::Insert(row("a", 2)))
            .unwrap();
        assert_eq!(store.virtual_read("a").unwrap().row, row("a", 2));
    }

    #[test]
    fn migrator_copy_preserves_virtual_rows_and_can_delete_old() {
        let mut store = store_in(Phase::UseOld, ChainBugs::none());
        for (k, v) in [("a", 1), ("b", 2)] {
            store
                .execute_write(&TableOperation::Insert(row(k, v)))
                .unwrap();
        }
        store.set_phase(Phase::UseNewWithTombstones);
        let mut cursor = String::new();
        while let Some(copied) = store.migrator_copy_next(&cursor, true) {
            cursor = format!("{copied}\u{0}");
        }
        assert!(store.old.is_empty());
        assert_eq!(store.virtual_read("a").unwrap().row, row("a", 1));
        assert_eq!(store.virtual_read("b").unwrap().row, row("b", 2));
    }

    #[test]
    fn migrator_copy_does_not_resurrect_tombstoned_rows() {
        let mut store = store_in(Phase::UseOld, ChainBugs::none());
        store
            .execute_write(&TableOperation::Insert(row("a", 1)))
            .unwrap();
        store.set_phase(Phase::UseNewWithTombstones);
        store
            .execute_write(&TableOperation::Delete("a".to_string(), ETagMatch::Any))
            .unwrap();
        store.migrator_copy_next("", true);
        assert!(store.virtual_read("a").is_none(), "the tombstone wins");
    }

    #[test]
    fn tombstone_cleanup_removes_all_tombstones() {
        let mut store = store_in(Phase::UseNewWithTombstones, ChainBugs::none());
        store
            .execute_write(&TableOperation::Insert(row("a", 1)))
            .unwrap();
        store
            .execute_write(&TableOperation::Insert(row("b", 2)))
            .unwrap();
        store
            .execute_write(&TableOperation::Delete("a".to_string(), ETagMatch::Any))
            .unwrap();
        assert!(store.migrator_clean_tombstone());
        assert!(!store.migrator_clean_tombstone());
        assert!(store.virtual_read("a").is_none());
        assert!(store.virtual_read("b").is_some());
    }

    #[test]
    fn merge_atomic_resolves_shadowing_and_tombstones() {
        let old = vec![
            StoredRow {
                row: row("a", 1),
                etag: crate::table::ETag(1),
            },
            StoredRow {
                row: row("b", 2),
                etag: crate::table::ETag(2),
            },
        ];
        let new = vec![
            StoredRow {
                row: row("a", 9),
                etag: crate::table::ETag(3),
            },
            StoredRow {
                row: tombstone_row("b"),
                etag: crate::table::ETag(4),
            },
            StoredRow {
                row: row("c", 3),
                etag: crate::table::ETag(5),
            },
        ];
        let merged = merge_atomic(Phase::UseNewWithTombstones, &old, &new);
        assert_eq!(merged, vec![row("a", 9), row("c", 3)]);

        let prefer_old = merge_atomic(Phase::PreferOld, &old, &new);
        assert_eq!(prefer_old, vec![row("a", 1), row("b", 2), row("c", 3)]);

        let old_only = merge_atomic(Phase::UseOld, &old, &new);
        assert_eq!(old_only, vec![row("a", 1), row("b", 2)]);

        let new_only = merge_atomic(Phase::UseNew, &old, &new);
        assert_eq!(new_only, vec![row("a", 9), row("c", 3)]);
    }

    #[test]
    fn virtual_snapshot_matches_merge_of_full_backends() {
        let mut store = store_in(Phase::UseOld, ChainBugs::none());
        for (k, v) in [("a", 1), ("b", 2), ("c", 3)] {
            store
                .execute_write(&TableOperation::Insert(row(k, v)))
                .unwrap();
        }
        store.set_phase(Phase::UseNewWithTombstones);
        store
            .execute_write(&TableOperation::Replace(row("b", 9), ETagMatch::Any))
            .unwrap();
        store
            .execute_write(&TableOperation::Delete("c".to_string(), ETagMatch::Any))
            .unwrap();
        let snapshot = store.virtual_snapshot(&Filter::All);
        assert_eq!(snapshot, vec![row("a", 1), row("b", 9)]);
    }
}
