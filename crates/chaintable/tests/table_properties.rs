//! Property-based tests of the chain-table implementation and the migration
//! protocol's key invariant: migration never changes what the virtual table
//! contains.

use std::collections::BTreeMap;

use proptest::prelude::*;

use chaintable::migrate::{ChainBugs, MigratingStore, Phase};
use chaintable::table::{
    ChainTable, ChainTableExt, ETagMatch, Filter, InMemoryTable, Row, TableOperation,
};

fn arb_key() -> impl Strategy<Value = String> {
    (0u8..6).prop_map(|k| format!("k{k}"))
}

fn arb_row() -> impl Strategy<Value = Row> {
    (arb_key(), 0i64..5).prop_map(|(key, v)| Row::with_int(key, "v", v))
}

fn arb_op() -> impl Strategy<Value = TableOperation> {
    prop_oneof![
        arb_row().prop_map(TableOperation::Insert),
        arb_row().prop_map(|r| TableOperation::Replace(r, ETagMatch::Any)),
        arb_row().prop_map(|r| TableOperation::Merge(r, ETagMatch::Any)),
        arb_row().prop_map(TableOperation::InsertOrReplace),
        arb_key().prop_map(|k| TableOperation::Delete(k, ETagMatch::Any)),
    ]
}

/// A trivial model of a table: key → value of the "v" property.
fn apply_to_model(model: &mut BTreeMap<String, i64>, op: &TableOperation) {
    let value_of = |row: &Row| match row.properties.get("v") {
        Some(chaintable::table::Value::Int(v)) => *v,
        _ => 0,
    };
    match op {
        TableOperation::Insert(row) => {
            model.entry(row.key.clone()).or_insert_with(|| value_of(row));
        }
        TableOperation::Replace(row, _) | TableOperation::Merge(row, _) => {
            if model.contains_key(&row.key) {
                model.insert(row.key.clone(), value_of(row));
            }
        }
        TableOperation::InsertOrReplace(row) => {
            model.insert(row.key.clone(), value_of(row));
        }
        TableOperation::Delete(key, _) => {
            model.remove(key);
        }
    }
}

proptest! {
    /// The in-memory table agrees with a simple map model under arbitrary
    /// unconditional operation sequences.
    #[test]
    fn in_memory_table_matches_map_model(ops in prop::collection::vec(arb_op(), 0..60)) {
        let mut table = InMemoryTable::new();
        let mut model: BTreeMap<String, i64> = BTreeMap::new();
        for op in &ops {
            let _ = table.execute(op.clone());
            apply_to_model(&mut model, op);
        }
        let rows = table.query_atomic(&Filter::All);
        prop_assert_eq!(rows.len(), model.len());
        for stored in rows {
            let expected = model.get(&stored.row.key).copied();
            let actual = match stored.row.properties.get("v") {
                Some(chaintable::table::Value::Int(v)) => Some(*v),
                _ => Some(0),
            };
            prop_assert_eq!(actual, expected);
        }
    }

    /// Query results are always sorted by key and respect the key-range filter.
    #[test]
    fn queries_are_sorted_and_filtered(ops in prop::collection::vec(arb_op(), 0..40), from in 0u8..6, to in 0u8..6) {
        let mut table = InMemoryTable::new();
        for op in &ops {
            let _ = table.execute(op.clone());
        }
        let (from, to) = (from.min(to), from.max(to));
        let filter = Filter::KeyRange { from: format!("k{from}"), to: format!("k{to}") };
        let rows = table.query_atomic(&filter);
        for pair in rows.windows(2) {
            prop_assert!(pair[0].row.key < pair[1].row.key);
        }
        for stored in &rows {
            prop_assert!(filter.matches(&stored.row));
        }
    }

    /// A full (fixed) migration pass never changes the virtual table: whatever
    /// rows were written before the migration are still exactly the rows
    /// visible after it, with the old table drained.
    #[test]
    fn migration_preserves_the_virtual_table(ops in prop::collection::vec(arb_op(), 0..40), delete_after_copy in any::<bool>()) {
        let mut store = MigratingStore::new(ChainBugs::none());
        for op in &ops {
            let _ = store.execute_write(op);
        }
        let before = store.virtual_snapshot(&Filter::All);

        // Run the migrator's plan to completion, phase by phase.
        store.set_phase(Phase::PreferOld);
        store.set_phase(Phase::UseNewWithTombstones);
        let mut cursor = String::new();
        while let Some(copied) = store.migrator_copy_next(&cursor, delete_after_copy) {
            cursor = format!("{copied}\u{0}");
        }
        store.set_phase(Phase::UseNewHideTombstones);
        while store.migrator_clean_tombstone() {}
        store.set_phase(Phase::UseNew);

        let after = store.virtual_snapshot(&Filter::All);
        prop_assert_eq!(before, after);
    }

    /// Conditional writes against the virtual table enforce ETag semantics in
    /// every phase: a stale tag is rejected, the stored row is untouched.
    #[test]
    fn stale_etags_are_rejected_in_every_phase(value in 0i64..5, phase_index in 0usize..5) {
        let phases = [
            Phase::UseOld,
            Phase::PreferOld,
            Phase::UseNewWithTombstones,
            Phase::UseNewHideTombstones,
            Phase::UseNew,
        ];
        let mut store = MigratingStore::new(ChainBugs::none());
        let first = store
            .execute_write(&TableOperation::Insert(Row::with_int("k0", "v", value)))
            .expect("insert succeeds");
        let current = store
            .execute_write(&TableOperation::Replace(
                Row::with_int("k0", "v", value + 1),
                ETagMatch::Any,
            ))
            .expect("replace succeeds");
        store.set_phase(phases[phase_index]);
        if phases[phase_index] == Phase::UseNewWithTombstones {
            // In the merge phase the row may live in either backend (here it
            // still lives in the old table); the stale tag from the very
            // first write must still be rejected.
            let result = store.execute_write(&TableOperation::Replace(
                Row::with_int("k0", "v", 99),
                ETagMatch::Exact(first.etag.expect("insert returned an etag")),
            ));
            prop_assert!(result.is_err());
            let visible = store.virtual_read("k0").expect("row still present");
            prop_assert_eq!(Some(visible.etag), current.etag);
        }
    }
}
