//! Property-style tests of the chain-table implementation and the migration
//! protocol's key invariant: migration never changes what the virtual table
//! contains.
//!
//! Written against the crate's own deterministic [`SplitMix64`] generator
//! instead of `proptest` (the build environment is hermetic); each failing
//! case names the seed that reproduces it.

use std::collections::BTreeMap;

use psharp::rng::SplitMix64;

use chaintable::migrate::{ChainBugs, MigratingStore, Phase};
use chaintable::table::{
    ChainTable, ChainTableExt, ETagMatch, Filter, InMemoryTable, Row, TableOperation,
};

fn gen_key(rng: &mut SplitMix64) -> String {
    format!("k{}", rng.next_below(6))
}

fn gen_row(rng: &mut SplitMix64) -> Row {
    let key = gen_key(rng);
    let v = rng.next_below(5) as i64;
    Row::with_int(key, "v", v)
}

fn gen_op(rng: &mut SplitMix64) -> TableOperation {
    match rng.next_below(5) {
        0 => TableOperation::Insert(gen_row(rng)),
        1 => TableOperation::Replace(gen_row(rng), ETagMatch::Any),
        2 => TableOperation::Merge(gen_row(rng), ETagMatch::Any),
        3 => TableOperation::InsertOrReplace(gen_row(rng)),
        _ => TableOperation::Delete(gen_key(rng), ETagMatch::Any),
    }
}

fn gen_ops(rng: &mut SplitMix64, max: usize) -> Vec<TableOperation> {
    (0..rng.next_below(max.max(1)))
        .map(|_| gen_op(rng))
        .collect()
}

/// A trivial model of a table: key → value of the "v" property.
fn apply_to_model(model: &mut BTreeMap<String, i64>, op: &TableOperation) {
    let value_of = |row: &Row| match row.properties.get("v") {
        Some(chaintable::table::Value::Int(v)) => *v,
        _ => 0,
    };
    match op {
        TableOperation::Insert(row) => {
            model
                .entry(row.key.clone())
                .or_insert_with(|| value_of(row));
        }
        TableOperation::Replace(row, _) | TableOperation::Merge(row, _) => {
            if model.contains_key(&row.key) {
                model.insert(row.key.clone(), value_of(row));
            }
        }
        TableOperation::InsertOrReplace(row) => {
            model.insert(row.key.clone(), value_of(row));
        }
        TableOperation::Delete(key, _) => {
            model.remove(key);
        }
    }
}

/// The in-memory table agrees with a simple map model under arbitrary
/// unconditional operation sequences.
#[test]
fn in_memory_table_matches_map_model() {
    for case in 0..128u64 {
        let mut rng = SplitMix64::new(0x7AB1E ^ case);
        let ops = gen_ops(&mut rng, 60);
        let mut table = InMemoryTable::new();
        let mut model: BTreeMap<String, i64> = BTreeMap::new();
        for op in &ops {
            let _ = table.execute(op.clone());
            apply_to_model(&mut model, op);
        }
        let rows = table.query_atomic(&Filter::All);
        assert_eq!(rows.len(), model.len(), "case {case}");
        for stored in rows {
            let expected = model.get(&stored.row.key).copied();
            let actual = match stored.row.properties.get("v") {
                Some(chaintable::table::Value::Int(v)) => Some(*v),
                _ => Some(0),
            };
            assert_eq!(actual, expected, "case {case}");
        }
    }
}

/// Query results are always sorted by key and respect the key-range filter.
#[test]
fn queries_are_sorted_and_filtered() {
    for case in 0..128u64 {
        let mut rng = SplitMix64::new(0xF117E4 ^ case);
        let ops = gen_ops(&mut rng, 40);
        let mut table = InMemoryTable::new();
        for op in &ops {
            let _ = table.execute(op.clone());
        }
        let a = rng.next_below(6) as u8;
        let b = rng.next_below(6) as u8;
        let (from, to) = (a.min(b), a.max(b));
        let filter = Filter::KeyRange {
            from: format!("k{from}"),
            to: format!("k{to}"),
        };
        let rows = table.query_atomic(&filter);
        for pair in rows.windows(2) {
            assert!(pair[0].row.key < pair[1].row.key, "case {case}");
        }
        for stored in &rows {
            assert!(filter.matches(&stored.row), "case {case}");
        }
    }
}

/// A full (fixed) migration pass never changes the virtual table: whatever
/// rows were written before the migration are still exactly the rows visible
/// after it, with the old table drained.
#[test]
fn migration_preserves_the_virtual_table() {
    for case in 0..128u64 {
        let mut rng = SplitMix64::new(0x416C4 ^ case);
        let ops = gen_ops(&mut rng, 40);
        let delete_after_copy = rng.next_bool();
        let mut store = MigratingStore::new(ChainBugs::none());
        for op in &ops {
            let _ = store.execute_write(op);
        }
        let before = store.virtual_snapshot(&Filter::All);

        // Run the migrator's plan to completion, phase by phase.
        store.set_phase(Phase::PreferOld);
        store.set_phase(Phase::UseNewWithTombstones);
        let mut cursor = String::new();
        while let Some(copied) = store.migrator_copy_next(&cursor, delete_after_copy) {
            cursor = format!("{copied}\u{0}");
        }
        store.set_phase(Phase::UseNewHideTombstones);
        while store.migrator_clean_tombstone() {}
        store.set_phase(Phase::UseNew);

        let after = store.virtual_snapshot(&Filter::All);
        assert_eq!(before, after, "case {case}");
    }
}

/// Conditional writes against the virtual table enforce ETag semantics in
/// every phase: a stale tag is rejected, the stored row is untouched.
#[test]
fn stale_etags_are_rejected_in_every_phase() {
    let phases = [
        Phase::UseOld,
        Phase::PreferOld,
        Phase::UseNewWithTombstones,
        Phase::UseNewHideTombstones,
        Phase::UseNew,
    ];
    for case in 0..64u64 {
        let mut rng = SplitMix64::new(0xE7A6 ^ case);
        let value = rng.next_below(5) as i64;
        let phase = phases[rng.next_below(phases.len())];
        let mut store = MigratingStore::new(ChainBugs::none());
        let first = store
            .execute_write(&TableOperation::Insert(Row::with_int("k0", "v", value)))
            .expect("insert succeeds");
        let current = store
            .execute_write(&TableOperation::Replace(
                Row::with_int("k0", "v", value + 1),
                ETagMatch::Any,
            ))
            .expect("replace succeeds");
        store.set_phase(phase);
        if phase == Phase::UseNewWithTombstones {
            // In the merge phase the row may live in either backend (here it
            // still lives in the old table); the stale tag from the very
            // first write must still be rejected.
            let result = store.execute_write(&TableOperation::Replace(
                Row::with_int("k0", "v", 99),
                ETagMatch::Exact(first.etag.expect("insert returned an etag")),
            ));
            assert!(result.is_err(), "case {case}");
            let visible = store.virtual_read("k0").expect("row still present");
            assert_eq!(Some(visible.etag), current.etag, "case {case}");
        }
    }
}
