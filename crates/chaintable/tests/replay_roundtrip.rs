//! Replay round-trip tests on the MigratingTable harness: a bug found by the
//! random or the PCT scheduler re-reproduces exactly from its recorded trace,
//! and a mutated trace is detected as a divergence.

use psharp::prelude::*;
use psharp::scheduler::ReplayScheduler;
use psharp::trace::{Decision, Trace};

use chaintable::{build_harness, ChainConfig};

fn setup_for(config: ChainConfig) -> impl Fn(&mut Runtime) {
    move |rt: &mut Runtime| {
        build_harness(rt, &config);
    }
}

fn find_bug(scheduler: SchedulerKind, iterations: u64, seed: u64) -> (TestEngine, BugReport) {
    let config = ChainConfig::for_named_bug("DeletePrimaryKey").expect("known bug");
    let engine = TestEngine::new(
        TestConfig::new()
            .with_iterations(iterations)
            .with_max_steps(10_000)
            .with_seed(seed)
            .with_scheduler(scheduler),
    );
    let report = engine.run(setup_for(config));
    let bug = report
        .bug
        .unwrap_or_else(|| panic!("{} must find DeletePrimaryKey", scheduler.label()));
    (engine, bug)
}

fn assert_replay_roundtrip(scheduler: SchedulerKind, iterations: u64, seed: u64) {
    let config = ChainConfig::for_named_bug("DeletePrimaryKey").expect("known bug");
    let (engine, found) = find_bug(scheduler, iterations, seed);

    // The trace survives its JSON round trip and replays to the same bug.
    let json = found.trace.to_json().expect("serialize");
    let restored = Trace::from_json(&json).expect("deserialize");
    assert_eq!(found.trace, restored);

    let replayed = engine
        .replay(&restored, setup_for(config))
        .expect("replay reproduces the bug");
    assert_eq!(replayed.kind, found.bug.kind);
    assert_eq!(replayed.message, found.bug.message);

    // Replaying through a raw runtime reproduces the decision sequence
    // exactly, with no divergence.
    let mut rt = Runtime::new(
        Box::new(ReplayScheduler::from_trace(&restored)),
        RuntimeConfig {
            max_steps: 10_000,
            ..RuntimeConfig::default()
        },
        restored.seed,
    );
    build_harness(&mut rt, &config);
    rt.run();
    assert!(rt.replay_error().is_none(), "{:?}", rt.replay_error());
    assert_eq!(rt.trace().decisions, restored.decisions);
}

#[test]
fn random_scheduler_bug_replays_exactly() {
    assert_replay_roundtrip(SchedulerKind::Random, 500, 11);
}

#[test]
fn pct_scheduler_bug_replays_exactly() {
    assert_replay_roundtrip(SchedulerKind::Pct { change_points: 2 }, 2_000, 13);
}

#[test]
fn mutated_trace_is_detected_as_divergence() {
    let config = ChainConfig::for_named_bug("DeletePrimaryKey").expect("known bug");
    let (_, found) = find_bug(SchedulerKind::Random, 500, 11);

    // Corrupt the first schedule decision so it names a machine that can
    // never be enabled.
    let mut mutated = found.trace.clone();
    let position = mutated
        .decisions
        .iter()
        .position(|d| matches!(d, Decision::Schedule(_)))
        .expect("a schedule decision exists");
    mutated.decisions[position] = Decision::Schedule(MachineId::from_raw(9_999));

    let mut rt = Runtime::new(
        Box::new(ReplayScheduler::from_trace(&mutated)),
        RuntimeConfig {
            max_steps: 10_000,
            ..RuntimeConfig::default()
        },
        mutated.seed,
    );
    build_harness(&mut rt, &config);
    rt.run();
    let error = rt
        .replay_error()
        .expect("the divergence must be reported as a ReplayError");
    assert_eq!(error.decision_index, position + 1);
    assert!(error.message.contains("not enabled"));
}
