//! Portfolio-engine integration test on the MigratingTable harness: an
//! N-worker portfolio run finds the seeded bug, attributes it to a strategy,
//! and reports its executions/second next to the serial engine's (the
//! multiplier shows up on multi-core hosts; run with `--nocapture` to see
//! the log line).

use psharp::prelude::*;

use chaintable::{portfolio_hunt, ChainConfig};

#[test]
fn portfolio_run_finds_the_seeded_bug_and_reports_throughput() {
    let config = ChainConfig::for_named_bug("DeletePrimaryKey").expect("known bug");
    let base = TestConfig::new()
        .with_iterations(2_000)
        .with_max_steps(10_000)
        .with_seed(11);

    let serial = TestEngine::new(base.clone()).run(move |rt| {
        chaintable::build_harness(rt, &config);
    });

    let parallel = portfolio_hunt(&config, base.with_workers(4).with_default_portfolio());

    println!(
        "chaintable DeletePrimaryKey: serial {:.0} exec/s vs portfolio(4 workers) {:.0} exec/s",
        serial.executions_per_second(),
        parallel.executions_per_second()
    );
    println!("{}", parallel.strategy_table());

    assert!(serial.found_bug(), "serial engine finds the seeded bug");
    assert!(
        parallel.found_bug(),
        "portfolio engine finds the seeded bug"
    );
    assert!(parallel.executions_per_second() > 0.0);
    assert_eq!(parallel.workers, 4);
    // The winning strategy is attributed both in the report label and in the
    // per-strategy statistics (rows carry the full description, e.g.
    // "pct(cp=2)" for the "pct" label).
    assert!(parallel
        .per_strategy
        .iter()
        .any(|s| s.scheduler.starts_with(parallel.scheduler) && s.bugs_found > 0));
    // The bug replays from its trace, independent of which worker found it.
    let bug = parallel.bug.expect("found");
    let replayed = TestEngine::new(
        TestConfig::new()
            .with_max_steps(10_000)
            .with_seed(bug.trace.seed),
    )
    .replay(&bug.trace, move |rt| {
        chaintable::build_harness(rt, &config);
    })
    .expect("replay reproduces the portfolio-found bug");
    assert_eq!(replayed.kind, bug.bug.kind);
}

#[test]
fn portfolio_attribution_includes_the_new_strategies_and_is_worker_independent() {
    let config = ChainConfig::for_named_bug("DeletePrimaryKey").expect("known bug");
    let base = TestConfig::new()
        .with_iterations(600)
        .with_max_steps(10_000)
        .with_seed(11)
        .with_default_portfolio();

    let serial = portfolio_hunt(&config, base.clone().with_workers(1));
    let expected = serial.bug.as_ref().expect("portfolio finds the seeded bug");

    for workers in [2usize, 4] {
        let parallel = portfolio_hunt(&config, base.clone().with_workers(workers));
        let found = parallel.bug.expect("portfolio finds the seeded bug");
        assert_eq!(found.iteration, expected.iteration, "{workers} workers");
        assert_eq!(found.trace, expected.trace, "{workers} workers");
        assert_eq!(parallel.scheduler, serial.scheduler, "{workers} workers");
    }

    // The attribution rows cover the full 7-strategy default portfolio in
    // portfolio order, including the delay-bounding and probabilistic-random
    // entries added in PR 3.
    let portfolio = SchedulerKind::default_portfolio();
    assert_eq!(serial.per_strategy.len(), portfolio.len());
    for (row, kind) in serial.per_strategy.iter().zip(&portfolio) {
        assert_eq!(row.scheduler, kind.describe());
    }
    assert!(serial.strategy_table().contains("delay(d=2)"));
    assert!(serial.strategy_table().contains("prob(p=10)"));
}
