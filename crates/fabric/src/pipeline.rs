//! A small CScale-like stream-processing pipeline built from two chained
//! Fabric services communicating via modeled RPCs (§5 of the paper).
//!
//! Stage one receives raw records, aggregates them and forwards derived
//! records to stage two, which maintains a windowed sum. Stage two needs a
//! configuration message before it can process records; the seeded defect
//! ([`crate::cluster::FabricBugs::uninitialized_pipeline_config`]) makes stage
//! one start forwarding records before the configuration was delivered, so
//! stage two dereferences an uninitialized option — the
//! `NullReferenceException`-style bug of the paper, surfacing as a panic.

use psharp::prelude::*;

/// A raw input record for stage one.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RawRecord {
    /// The record's value.
    pub value: i64,
}

/// A derived record forwarded from stage one to stage two (the modeled RPC).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DerivedRecord {
    /// The derived (scaled) value.
    pub value: i64,
}

/// Configuration for stage two; must arrive before any derived record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StageConfig {
    /// The window size used for aggregation.
    pub window: usize,
}

/// First pipeline stage: scales raw records and forwards them downstream.
#[derive(Clone)]
pub struct StageOne {
    downstream: MachineId,
    scale: i64,
    forwarded: usize,
}

impl StageOne {
    /// Creates the stage with its downstream peer.
    pub fn new(downstream: MachineId, scale: i64) -> Self {
        StageOne {
            downstream,
            scale,
            forwarded: 0,
        }
    }

    /// Number of records forwarded (exposed for tests).
    pub fn forwarded(&self) -> usize {
        self.forwarded
    }
}

impl Machine for StageOne {
    fn handle(&mut self, ctx: &mut Context<'_>, event: Event) {
        if let Some(record) = event.downcast_ref::<RawRecord>() {
            self.forwarded += 1;
            ctx.send(
                self.downstream,
                Event::new(DerivedRecord {
                    value: record.value * self.scale,
                }),
            );
        }
    }

    fn name(&self) -> &str {
        "StageOne"
    }

    psharp::impl_machine_snapshot!();
}

/// Second pipeline stage: windows and sums the derived records.
#[derive(Clone)]
pub struct StageTwo {
    config: Option<StageConfig>,
    buffer_until_configured: bool,
    pending: Vec<i64>,
    window_values: Vec<i64>,
    window_sums: Vec<i64>,
}

impl StageTwo {
    /// Creates the stage. The fixed implementation buffers records that
    /// arrive before the configuration; the buggy one assumes the
    /// configuration is always there and dereferences it unconditionally.
    pub fn new(buffer_until_configured: bool) -> Self {
        StageTwo {
            config: None,
            buffer_until_configured,
            pending: Vec::new(),
            window_values: Vec::new(),
            window_sums: Vec::new(),
        }
    }

    /// The completed window sums (exposed for tests).
    pub fn window_sums(&self) -> &[i64] {
        &self.window_sums
    }

    fn process(&mut self, value: i64) {
        let window = self
            .config
            .expect("stage two received a record before its configuration")
            .window;
        self.window_values.push(value);
        if self.window_values.len() >= window {
            self.window_sums.push(self.window_values.iter().sum());
            self.window_values.clear();
        }
    }
}

impl Machine for StageTwo {
    fn handle(&mut self, _ctx: &mut Context<'_>, event: Event) {
        if let Some(config) = event.downcast_ref::<StageConfig>() {
            self.config = Some(*config);
            for value in std::mem::take(&mut self.pending) {
                self.process(value);
            }
        } else if let Some(record) = event.downcast_ref::<DerivedRecord>() {
            if self.config.is_none() && self.buffer_until_configured {
                // Fixed behaviour: hold early records until configured.
                self.pending.push(record.value);
            } else {
                // BUG path (when `buffer_until_configured` is false and the
                // configuration has not arrived yet): the unconditional
                // dereference panics — the analogue of the
                // NullReferenceException found by the P# Fabric model.
                self.process(record.value);
            }
        }
    }

    fn name(&self) -> &str {
        "StageTwo"
    }

    psharp::impl_machine_snapshot!();
}

/// Configures stage two from a separate machine, so whether the
/// configuration arrives before or after the first derived record depends on
/// the interleaving the scheduler picks.
#[derive(Clone)]
pub struct Configurator {
    stage_two: MachineId,
    window: usize,
}

impl Configurator {
    /// Creates the configurator.
    pub fn new(stage_two: MachineId, window: usize) -> Self {
        Configurator { stage_two, window }
    }
}

impl Machine for Configurator {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        ctx.send(
            self.stage_two,
            Event::new(StageConfig {
                window: self.window,
            }),
        );
        ctx.halt();
    }

    fn handle(&mut self, _ctx: &mut Context<'_>, _event: Event) {}

    fn name(&self) -> &str {
        "Configurator"
    }

    psharp::impl_machine_snapshot!();
}

/// Drives the pipeline: feeds raw records into stage one while the
/// [`Configurator`] races to deliver stage two's configuration.
#[derive(Clone)]
pub struct PipelineDriver {
    stage_one: MachineId,
    records: usize,
}

impl PipelineDriver {
    /// Creates the driver.
    pub fn new(stage_one: MachineId, records: usize) -> Self {
        PipelineDriver { stage_one, records }
    }
}

impl Machine for PipelineDriver {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        for index in 0..self.records {
            ctx.send(
                self.stage_one,
                Event::new(RawRecord {
                    value: index as i64 + 1,
                }),
            );
        }
        ctx.halt();
    }

    fn handle(&mut self, _ctx: &mut Context<'_>, _event: Event) {}

    fn name(&self) -> &str {
        "PipelineDriver"
    }

    psharp::impl_machine_snapshot!();
}

#[cfg(test)]
mod tests {
    use super::*;
    use psharp::runtime::{Runtime, RuntimeConfig};
    use psharp::scheduler::RoundRobinScheduler;

    fn build(rt: &mut Runtime, records: usize, buffer_until_configured: bool) -> MachineId {
        let stage_two = rt.create_machine(StageTwo::new(buffer_until_configured));
        let stage_one = rt.create_machine(StageOne::new(stage_two, 10));
        rt.create_machine(Configurator::new(stage_two, 2));
        rt.create_machine(PipelineDriver::new(stage_one, records));
        stage_two
    }

    #[test]
    fn configured_pipeline_produces_window_sums() {
        let mut rt = Runtime::new(
            Box::new(RoundRobinScheduler::new()),
            RuntimeConfig::default(),
            0,
        );
        let stage_two = build(&mut rt, 4, true);
        let outcome = rt.run();
        assert!(
            !matches!(outcome, ExecutionOutcome::BugFound(_)),
            "unexpected violation: {outcome:?}"
        );
        let stage = rt.machine_ref::<StageTwo>(stage_two).expect("stage two");
        // Records 1..=4 scaled by 10, windowed in pairs: 10+20, 30+40.
        assert_eq!(stage.window_sums(), &[30, 70]);
    }

    #[test]
    fn fixed_pipeline_never_panics_even_with_late_configuration() {
        let engine = TestEngine::new(TestConfig::new().with_iterations(200).with_seed(5));
        let report = engine.run(|rt| {
            build(rt, 3, true);
        });
        assert!(!report.found_bug());
    }

    #[test]
    fn unconfigured_pipeline_is_found_by_the_engine() {
        let engine = TestEngine::new(TestConfig::new().with_iterations(200).with_seed(5));
        let report = engine.run(|rt| {
            build(rt, 3, false);
        });
        let bug = report.bug.expect("the uninitialized-config panic");
        assert_eq!(bug.bug.kind, BugKind::Panic);
        assert!(bug.bug.message.contains("configuration"));
    }
}
