//! Azure Service Fabric (§5 of the paper), rebuilt as a P#-style model.
//!
//! Fabric makes a user service reliable by running several *replicas* of it:
//! one **primary** serves client requests and forwards state-mutating
//! operations to the **active secondaries**; if the primary fails, one of the
//! secondaries is elected primary and a fresh **idle secondary** is launched,
//! which must receive a copy of the state before being promoted to an active
//! secondary.
//!
//! The paper's bug: when the primary fails exactly while a new secondary is
//! waiting for its state copy, the secondary can be elected primary and then
//! also "promoted" to an active secondary even though it never caught up —
//! an assertion in the model (only a caught-up idle secondary may be
//! promoted). The defect is re-introduced with
//! [`cluster::FabricBugs::promote_pending_copy_on_failover`].
//!
//! On top of the model run two user services: a counter service and a small
//! CScale-like two-stage stream pipeline whose second stage dereferences an
//! uninitialized configuration when
//! [`cluster::FabricBugs::uninitialized_pipeline_config`] is set (the
//! `NullReferenceException`-style bug reported in §5).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cluster;
pub mod harness;
pub mod pipeline;
pub mod service;

pub use cluster::FabricBugs;
pub use harness::{
    build_harness, model_stats, portfolio_hunt, FabricConfig, FabricHarness, FabricScenario,
};
