//! User services hosted on the modeled Fabric platform.

/// A deterministic, replicable user service: the primary applies operations
/// and ships either the operation or its state to the secondaries.
pub trait ReplicatedService: 'static {
    /// Applies one client operation and returns the service's reply.
    fn apply(&mut self, operation: i64) -> i64;

    /// A snapshot of the full service state, shipped to catching-up replicas.
    fn snapshot(&self) -> i64;

    /// Installs a snapshot received from the primary.
    fn restore(&mut self, snapshot: i64);
}

/// The counter service used by the failover scenario: every operation adds to
/// an accumulator and the reply is the new total.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CounterService {
    total: i64,
}

impl CounterService {
    /// Creates a counter at zero.
    pub fn new() -> Self {
        CounterService::default()
    }

    /// The current total (exposed for tests).
    pub fn total(&self) -> i64 {
        self.total
    }
}

impl ReplicatedService for CounterService {
    fn apply(&mut self, operation: i64) -> i64 {
        self.total += operation;
        self.total
    }

    fn snapshot(&self) -> i64 {
        self.total
    }

    fn restore(&mut self, snapshot: i64) {
        self.total = snapshot;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_applies_and_snapshots() {
        let mut service = CounterService::new();
        assert_eq!(service.apply(3), 3);
        assert_eq!(service.apply(4), 7);
        assert_eq!(service.snapshot(), 7);
        let mut copy = CounterService::new();
        copy.restore(service.snapshot());
        assert_eq!(copy.total(), 7);
        assert_eq!(copy.apply(1), 8);
    }
}
