//! The Fabric test harness: scenarios, configuration and the builder.

use psharp::prelude::*;

use crate::cluster::{ClusterManagerMachine, ConsistencyMonitor, FabricBugs, FabricClient};
use crate::pipeline::{Configurator, PipelineDriver, StageOne, StageTwo};

/// Which Fabric scenario to drive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FabricScenario {
    /// A replicated counter service whose replicas are *crashable*: run it
    /// with a crash budget ([`FabricConfig::fault_plan`] /
    /// `TestConfig::with_faults`) and the scheduler explores which replica
    /// fails and when — the scenario that exposes the promotion-during-copy
    /// bug.
    Failover,
    /// The CScale-like two-stage stream pipeline running on the model.
    Pipeline,
}

/// Configuration of the Fabric harness.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FabricConfig {
    /// The scenario to drive.
    pub scenario: FabricScenario,
    /// Number of active secondaries in the replica set.
    pub secondaries: usize,
    /// Number of client requests (failover scenario) or raw records
    /// (pipeline scenario).
    pub requests: usize,
    /// Seeded defects.
    pub bugs: FabricBugs,
}

impl Default for FabricConfig {
    fn default() -> Self {
        FabricConfig {
            scenario: FabricScenario::Failover,
            secondaries: 2,
            requests: 3,
            bugs: FabricBugs::default(),
        }
    }
}

impl FabricConfig {
    /// The failover scenario with the §5 promotion bug re-introduced.
    pub fn with_promotion_bug() -> Self {
        FabricConfig {
            bugs: FabricBugs {
                promote_pending_copy_on_failover: true,
                uninitialized_pipeline_config: false,
            },
            ..FabricConfig::default()
        }
    }

    /// The pipeline scenario with the CScale-style defect re-introduced.
    pub fn with_pipeline_bug() -> Self {
        FabricConfig {
            scenario: FabricScenario::Pipeline,
            bugs: FabricBugs {
                promote_pending_copy_on_failover: false,
                uninitialized_pipeline_config: true,
            },
            ..FabricConfig::default()
        }
    }

    /// The fault budget this scenario is designed around: one replica crash
    /// for the failover scenario (the cluster tolerates a single failure —
    /// more would legitimately break it), none for the pipeline scenario.
    pub fn fault_plan(&self) -> FaultPlan {
        match self.scenario {
            FabricScenario::Failover => FaultPlan::new().with_crashes(1),
            FabricScenario::Pipeline => FaultPlan::none(),
        }
    }
}

/// Ids of the machines created by [`build_harness`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FabricHarness {
    /// The cluster manager (failover scenario) if created.
    pub manager: Option<MachineId>,
    /// The second pipeline stage (pipeline scenario) if created.
    pub stage_two: Option<MachineId>,
}

/// Builds the configured Fabric scenario into `rt`.
pub fn build_harness(rt: &mut Runtime, config: &FabricConfig) -> FabricHarness {
    match config.scenario {
        FabricScenario::Failover => {
            rt.add_monitor(ConsistencyMonitor::new());
            // Replica failures are injected by the core scheduler: the
            // manager marks every replica it creates as crashable, and a
            // crash budget on the test configuration
            // (`TestConfig::with_faults`, see [`FabricConfig::fault_plan`])
            // lets the scheduler explore which replica fails and when.
            let manager =
                rt.create_machine(ClusterManagerMachine::new(config.secondaries, config.bugs));
            rt.create_machine(FabricClient::new(manager, config.requests));
            FabricHarness {
                manager: Some(manager),
                stage_two: None,
            }
        }
        FabricScenario::Pipeline => {
            let stage_two =
                rt.create_machine(StageTwo::new(!config.bugs.uninitialized_pipeline_config));
            let stage_one = rt.create_machine(StageOne::new(stage_two, 10));
            rt.create_machine(Configurator::new(stage_two, 2));
            rt.create_machine(PipelineDriver::new(stage_one, config.requests));
            FabricHarness {
                manager: None,
                stage_two: Some(stage_two),
            }
        }
    }
}

/// Hunts for bugs in this harness with a parallel (optionally portfolio)
/// run: the iteration space of `test` is sharded over
/// [`TestConfig::workers`] threads, each execution keeping the seed it would
/// have had serially.
pub fn portfolio_hunt(config: &FabricConfig, test: TestConfig) -> TestReport {
    let config = *config;
    ParallelTestEngine::new(test).run(move |rt| {
        build_harness(rt, &config);
    })
}

/// Model statistics of this harness, for the Table 1 reproduction.
pub fn model_stats() -> ModelStats {
    let config = FabricConfig::default();
    // Manager + primary + secondaries + replacement idle secondary + client,
    // plus the three pipeline machines (failure injection moved into the
    // core runtime — no injector machinery).
    let machines = 1 + 1 + config.secondaries + 1 + 1 + 3;
    // Handlers: replica {SetSecondaries, ClientRequest, Replicate,
    // CopyStateRequest, CopyState, BecomeRole, on_crash}, manager
    // {ClientRequest, CopyStateRequest, CopyCompleted, ReplicaFailed},
    // client {NextRequest}, pipeline {config, derived, raw, driver start},
    // monitor {applied}.
    let action_handlers = 7 + 4 + 1 + 4 + 1;
    // State transitions: replica role changes (3 roles) plus live->crashed,
    // manager failover, pipeline configured/unconfigured.
    let state_transitions = 6 + 1 + 1 + 1;
    ModelStats::new("Fabric user services")
        .with_bugs(2)
        .with_model(machines, state_transitions, action_handlers)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_failover_scenario_is_clean_under_crash_faults() {
        let config = FabricConfig::default();
        let engine = TestEngine::new(
            TestConfig::new()
                .with_iterations(150)
                .with_max_steps(5_000)
                .with_seed(2)
                .with_faults(config.fault_plan()),
        );
        let report = engine.run(move |rt| {
            build_harness(rt, &config);
        });
        assert!(
            !report.found_bug(),
            "fixed fabric scenario flagged: {:?}",
            report.bug.map(|b| b.bug)
        );
    }

    #[test]
    fn promotion_bug_is_found_via_injected_crash_faults() {
        let config = FabricConfig::with_promotion_bug();
        let engine = TestEngine::new(
            TestConfig::new()
                .with_iterations(2_000)
                .with_max_steps(5_000)
                .with_seed(3)
                .with_faults(config.fault_plan()),
        );
        let report = engine.run(move |rt| {
            build_harness(rt, &config);
        });
        let bug = report.bug.expect("promotion bug");
        assert_eq!(bug.bug.kind, BugKind::SafetyViolation);
        assert!(bug.bug.message.contains("promoted"));
        assert!(
            bug.trace.fault_decision_count() >= 1,
            "the bug needs an injected crash in its decision stream"
        );
    }

    #[test]
    fn promotion_bug_is_unreachable_without_a_fault_budget() {
        // The §5 bug requires a primary crash; with no crash budget the
        // buggy model is indistinguishable from the fixed one.
        let config = FabricConfig::with_promotion_bug();
        let engine = TestEngine::new(
            TestConfig::new()
                .with_iterations(300)
                .with_max_steps(5_000)
                .with_seed(3),
        );
        let report = engine.run(move |rt| {
            build_harness(rt, &config);
        });
        assert!(!report.found_bug());
    }

    #[test]
    fn pipeline_bug_is_found_by_the_engine() {
        let engine = TestEngine::new(
            TestConfig::new()
                .with_iterations(500)
                .with_max_steps(2_000)
                .with_seed(4),
        );
        let config = FabricConfig::with_pipeline_bug();
        let report = engine.run(move |rt| {
            build_harness(rt, &config);
        });
        let bug = report.bug.expect("pipeline bug");
        assert_eq!(bug.bug.kind, BugKind::Panic);
    }

    #[test]
    fn model_stats_report_the_harness_size() {
        let stats = model_stats();
        assert!(stats.machines >= 9);
        assert_eq!(stats.bugs_found, 2);
    }
}
