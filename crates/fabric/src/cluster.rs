//! The modeled Fabric replica-management platform: cluster manager, replicas,
//! and the consistency / promotion specifications.
//!
//! Replica failures are no longer injected by a bespoke harness machine:
//! every replica is marked *crashable*, and the core scheduler decides —
//! within the test's [`FaultPlan`] budget — whether, when and which replica
//! crashes (`Decision::CrashMachine`, replayable and shrinkable like any
//! other decision). A crashed replica's [`Machine::on_crash`] hook models
//! the platform's failure detector reporting [`ReplicaFailed`] to the
//! cluster manager.

use std::collections::BTreeMap;

use psharp::prelude::*;

use crate::service::{CounterService, ReplicatedService};

/// Seeded defects of the Fabric model and the services running on it.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FabricBugs {
    /// §5's bug: on primary failover, an idle secondary that is still waiting
    /// for its state copy may be elected primary and subsequently promoted to
    /// an active secondary without ever catching up.
    pub promote_pending_copy_on_failover: bool,
    /// The CScale-style defect: the second pipeline stage dereferences its
    /// configuration before initialization (a `NullReferenceException`
    /// analogue, reported as a panic bug).
    pub uninitialized_pipeline_config: bool,
}

/// The role a replica currently plays.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// Serves client requests and replicates to active secondaries.
    Primary,
    /// Caught up; receives replicated operations.
    ActiveSecondary,
    /// Freshly launched; waiting for a state copy from the primary.
    IdleSecondary,
}

// ---------------------------------------------------------------------------
// Events
// ---------------------------------------------------------------------------

/// Client request carrying one service operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClientRequest {
    /// The operation to apply.
    pub operation: i64,
}

/// Replication of one applied operation from the primary to a secondary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Replicate {
    /// The primary's configuration epoch (bumped at every failover).
    pub epoch: u64,
    /// Sequence number of the operation.
    pub sequence: u64,
    /// The operation to apply.
    pub operation: i64,
}

/// Request for a state copy, sent by an idle secondary to the primary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CopyStateRequest {
    /// The idle secondary asking for the copy.
    pub requester: MachineId,
}

/// State copy shipped from the primary to a catching-up replica.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CopyState {
    /// The primary's configuration epoch.
    pub epoch: u64,
    /// Snapshot of the service state.
    pub snapshot: i64,
    /// Sequence number the snapshot reflects.
    pub sequence: u64,
}

/// Role change instruction from the cluster manager to a replica.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BecomeRole {
    /// The role to assume.
    pub role: Role,
    /// The configuration epoch of the instruction (meaningful for promotions
    /// to primary; bumped at every failover).
    pub epoch: u64,
}

/// Notification from a replica to the manager that its state copy completed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CopyCompleted {
    /// The replica that caught up.
    pub replica: MachineId,
}

/// Failure-detection signal to the cluster manager: a replica went down.
/// Emitted by the replica's [`Machine::on_crash`] hook when the core
/// scheduler injects a crash fault (`Decision::CrashMachine`), modeling the
/// platform's failure detector noticing the dead node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplicaFailed {
    /// The failed replica.
    pub replica: MachineId,
}

/// Monitor notification: a replica applied operation `sequence` and its
/// service state is now `state`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NotifyApplied {
    /// The replica reporting.
    pub replica: MachineId,
    /// The configuration epoch the replica is in.
    pub epoch: u64,
    /// The sequence number applied.
    pub sequence: u64,
    /// The service state after applying.
    pub state: i64,
}

// ---------------------------------------------------------------------------
// Replica machine
// ---------------------------------------------------------------------------

/// A Fabric replica hosting the counter service.
#[derive(Clone)]
pub struct ReplicaMachine {
    manager: MachineId,
    role: Role,
    service: CounterService,
    epoch: u64,
    sequence: u64,
    copy_completed: bool,
    secondaries: Vec<MachineId>,
}

impl ReplicaMachine {
    /// Creates a replica in the given initial role.
    pub fn new(manager: MachineId, role: Role) -> Self {
        ReplicaMachine {
            manager,
            role,
            service: CounterService::new(),
            epoch: 0,
            sequence: 0,
            copy_completed: role != Role::IdleSecondary,
            secondaries: Vec::new(),
        }
    }

    /// The replica's current role (exposed for tests).
    pub fn role(&self) -> Role {
        self.role
    }

    /// The hosted service's state (exposed for tests).
    pub fn state(&self) -> i64 {
        self.service.snapshot()
    }

    /// The highest sequence number applied (exposed for tests).
    pub fn sequence(&self) -> u64 {
        self.sequence
    }

    fn notify_applied(&self, ctx: &mut Context<'_>) {
        let replica = ctx.id();
        ctx.notify_monitor::<ConsistencyMonitor>(Event::new(NotifyApplied {
            replica,
            epoch: self.epoch,
            sequence: self.sequence,
            state: self.service.snapshot(),
        }));
    }
}

/// Tells a replica which machines are its active secondaries (sent by the
/// cluster manager whenever the set changes).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SetSecondaries {
    /// The active secondaries to replicate to.
    pub secondaries: Vec<MachineId>,
}

impl Machine for ReplicaMachine {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        if self.role == Role::IdleSecondary {
            let requester = ctx.id();
            ctx.send(self.manager, Event::new(CopyStateRequest { requester }));
        }
    }

    fn handle(&mut self, ctx: &mut Context<'_>, event: Event) {
        if let Some(set) = event.downcast_ref::<SetSecondaries>() {
            self.secondaries = set.secondaries.clone();
            if self.role == Role::Primary {
                // A (possibly new) primary brings its secondaries to its own
                // state and epoch before replicating further operations.
                for &secondary in &self.secondaries.clone() {
                    ctx.send(
                        secondary,
                        Event::new(CopyState {
                            epoch: self.epoch,
                            snapshot: self.service.snapshot(),
                            sequence: self.sequence,
                        }),
                    );
                }
            }
        } else if let Some(request) = event.downcast_ref::<ClientRequest>() {
            if self.role != Role::Primary {
                // Stale request addressed to a demoted or failed primary; the
                // manager re-routes requests, so simply ignore it.
                return;
            }
            self.sequence += 1;
            self.service.apply(request.operation);
            self.notify_applied(ctx);
            for &secondary in &self.secondaries.clone() {
                ctx.send(
                    secondary,
                    Event::new(Replicate {
                        epoch: self.epoch,
                        sequence: self.sequence,
                        operation: request.operation,
                    }),
                );
            }
        } else if let Some(replicate) = event.downcast_ref::<Replicate>() {
            // Only apply replication from the configuration epoch this
            // replica has been synced into; stale epochs are ignored.
            if replicate.epoch == self.epoch && replicate.sequence > self.sequence {
                self.sequence = replicate.sequence;
                self.service.apply(replicate.operation);
                self.notify_applied(ctx);
            }
        } else if let Some(copy_request) = event.downcast_ref::<CopyStateRequest>() {
            // Only the primary serves copies.
            if self.role == Role::Primary {
                ctx.send(
                    copy_request.requester,
                    Event::new(CopyState {
                        epoch: self.epoch,
                        snapshot: self.service.snapshot(),
                        sequence: self.sequence,
                    }),
                );
            }
        } else if let Some(copy) = event.downcast_ref::<CopyState>() {
            let catching_up = self.role == Role::IdleSecondary;
            // Accept the copy when catching up, when it comes from a newer
            // configuration epoch, or when it is simply ahead of this replica
            // (a secondary that joined the replication stream late and missed
            // operations between its snapshot and its promotion).
            let ahead = copy.epoch == self.epoch && copy.sequence > self.sequence;
            if catching_up || copy.epoch > self.epoch || ahead {
                self.service.restore(copy.snapshot);
                self.sequence = copy.sequence;
                self.epoch = copy.epoch;
                if catching_up {
                    self.copy_completed = true;
                    let replica = ctx.id();
                    ctx.send(self.manager, Event::new(CopyCompleted { replica }));
                }
            }
        } else if let Some(role_change) = event.downcast_ref::<BecomeRole>() {
            match role_change.role {
                Role::ActiveSecondary => {
                    // The model's assertion from §5: only a caught-up idle
                    // secondary may be promoted to an active secondary. In the
                    // buggy interleaving the replica has meanwhile been elected
                    // primary (it stopped waiting for its copy), so the
                    // promotion is invalid.
                    ctx.assert(
                        self.role == Role::IdleSecondary && self.copy_completed,
                        "only a caught-up idle secondary can be promoted to active secondary",
                    );
                    self.role = Role::ActiveSecondary;
                }
                Role::Primary => {
                    self.role = Role::Primary;
                    self.epoch = role_change.epoch;
                    // A new primary stops waiting for any pending state copy.
                    self.copy_completed = true;
                }
                Role::IdleSecondary => {
                    self.role = Role::IdleSecondary;
                    self.copy_completed = false;
                    let requester = ctx.id();
                    ctx.send(self.manager, Event::new(CopyStateRequest { requester }));
                }
            }
        }
    }

    fn on_crash(&mut self, ctx: &mut Context<'_>) {
        // The platform's failure detector notices the dead replica and
        // reports it to the cluster manager, which triggers failover or
        // replacement. This replaces the old bespoke `FailPrimary` event the
        // harness used to deliver by hand: crashes are now injected by the
        // core scheduler (`Decision::CrashMachine`) under the test's fault
        // budget and replay like every other decision.
        let replica = ctx.id();
        ctx.send(self.manager, Event::new(ReplicaFailed { replica }));
    }

    fn name(&self) -> &str {
        "ReplicaMachine"
    }

    psharp::impl_machine_snapshot!();
}

// ---------------------------------------------------------------------------
// Cluster manager
// ---------------------------------------------------------------------------

/// The modeled Fabric cluster manager: creates the replica set, routes client
/// requests to the current primary, relays copy requests, and performs
/// failover when the primary fails.
#[derive(Clone)]
pub struct ClusterManagerMachine {
    bugs: FabricBugs,
    secondary_count: usize,
    initial_idle_secondaries: usize,
    primary: Option<MachineId>,
    active_secondaries: Vec<MachineId>,
    idle_secondaries: Vec<MachineId>,
    failovers: usize,
}

impl ClusterManagerMachine {
    /// Creates a manager that will launch one primary, `secondary_count`
    /// active secondaries, and one idle secondary that still needs to catch
    /// up (the paper's scenario: a new secondary is about to receive a copy
    /// of the state).
    pub fn new(secondary_count: usize, bugs: FabricBugs) -> Self {
        ClusterManagerMachine {
            bugs,
            secondary_count,
            initial_idle_secondaries: 1,
            primary: None,
            active_secondaries: Vec::new(),
            idle_secondaries: Vec::new(),
            failovers: 0,
        }
    }

    /// The current primary (exposed for tests).
    pub fn primary(&self) -> Option<MachineId> {
        self.primary
    }

    /// Number of failovers performed (exposed for tests).
    pub fn failovers(&self) -> usize {
        self.failovers
    }

    fn broadcast_secondaries(&self, ctx: &mut Context<'_>) {
        if let Some(primary) = self.primary {
            ctx.send(
                primary,
                Event::new(SetSecondaries {
                    secondaries: self.active_secondaries.clone(),
                }),
            );
        }
    }

    fn launch_idle_secondary(&mut self, ctx: &mut Context<'_>) {
        let me = ctx.id();
        let replica = ctx.create(ReplicaMachine::new(me, Role::IdleSecondary));
        // Replacement replicas are as fallible as the nodes they replace.
        ctx.mark_crashable(replica);
        self.idle_secondaries.push(replica);
    }

    fn handle_primary_failure(&mut self, ctx: &mut Context<'_>, failed: MachineId) {
        if Some(failed) != self.primary {
            // A non-primary replica failed; replace it with a fresh idle one.
            self.active_secondaries.retain(|&r| r != failed);
            self.idle_secondaries.retain(|&r| r != failed);
            self.launch_idle_secondary(ctx);
            self.broadcast_secondaries(ctx);
            return;
        }
        self.failovers += 1;
        self.primary = None;

        // Elect a new primary. The fixed model only considers caught-up
        // (active) secondaries; the buggy model also considers idle
        // secondaries that are still waiting for their state copy.
        let mut candidates = self.active_secondaries.clone();
        if self.bugs.promote_pending_copy_on_failover {
            candidates.extend(self.idle_secondaries.iter().copied());
        }
        if candidates.is_empty() {
            return;
        }
        let new_primary = *ctx.choose(&candidates);
        self.active_secondaries.retain(|&r| r != new_primary);
        let was_idle = self.idle_secondaries.contains(&new_primary);
        self.idle_secondaries.retain(|&r| r != new_primary);
        self.primary = Some(new_primary);
        let epoch = self.failovers as u64;
        ctx.send(
            new_primary,
            Event::new(BecomeRole {
                role: Role::Primary,
                epoch,
            }),
        );
        if self.bugs.promote_pending_copy_on_failover && was_idle {
            // BUG (§5): because the newly elected primary stopped waiting for
            // its copy, the manager also counts it as caught up and promotes
            // it to active secondary — the replica's assertion fires.
            ctx.send(
                new_primary,
                Event::new(BecomeRole {
                    role: Role::ActiveSecondary,
                    epoch,
                }),
            );
        }
        // Launch a replacement idle secondary, which will catch up from the
        // new primary.
        self.launch_idle_secondary(ctx);
        self.broadcast_secondaries(ctx);
    }
}

impl Machine for ClusterManagerMachine {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        let me = ctx.id();
        // Every replica is a crash candidate: which one fails (if any,
        // within the test's fault budget) is the scheduler's decision.
        let primary = ctx.create(ReplicaMachine::new(me, Role::Primary));
        ctx.mark_crashable(primary);
        self.primary = Some(primary);
        for _ in 0..self.secondary_count {
            let secondary = ctx.create(ReplicaMachine::new(me, Role::ActiveSecondary));
            ctx.mark_crashable(secondary);
            self.active_secondaries.push(secondary);
        }
        for _ in 0..self.initial_idle_secondaries {
            self.launch_idle_secondary(ctx);
        }
        self.broadcast_secondaries(ctx);
    }

    fn handle(&mut self, ctx: &mut Context<'_>, event: Event) {
        if let Some(request) = event.downcast_ref::<ClientRequest>() {
            if let Some(primary) = self.primary {
                ctx.send(primary, Event::new(*request));
            }
        } else if let Some(copy_request) = event.downcast_ref::<CopyStateRequest>() {
            if let Some(primary) = self.primary {
                ctx.send(primary, Event::new(*copy_request));
            }
        } else if let Some(completed) = event.downcast_ref::<CopyCompleted>() {
            if self.idle_secondaries.contains(&completed.replica) {
                self.idle_secondaries.retain(|&r| r != completed.replica);
                self.active_secondaries.push(completed.replica);
                ctx.send(
                    completed.replica,
                    Event::new(BecomeRole {
                        role: Role::ActiveSecondary,
                        epoch: self.failovers as u64,
                    }),
                );
                self.broadcast_secondaries(ctx);
            }
        } else if let Some(failed) = event.downcast_ref::<ReplicaFailed>() {
            self.handle_primary_failure(ctx, failed.replica);
        }
    }

    fn name(&self) -> &str {
        "ClusterManagerMachine"
    }

    psharp::impl_machine_snapshot!();
}

// ---------------------------------------------------------------------------
// Client
// ---------------------------------------------------------------------------

/// Modeled client issuing a fixed number of counter increments through the
/// cluster manager.
#[derive(Clone)]
pub struct FabricClient {
    manager: MachineId,
    remaining: usize,
}

impl FabricClient {
    /// Creates a client that issues `requests` increments.
    pub fn new(manager: MachineId, requests: usize) -> Self {
        FabricClient {
            manager,
            remaining: requests,
        }
    }
}

/// Internal self-message pacing the client.
#[derive(Debug)]
struct NextRequest;

impl Machine for FabricClient {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        ctx.send_to_self(Event::new(NextRequest));
    }

    fn handle(&mut self, ctx: &mut Context<'_>, event: Event) {
        if event.is::<NextRequest>() {
            if self.remaining == 0 {
                ctx.halt();
                return;
            }
            self.remaining -= 1;
            let operation = ctx.random_index(5) as i64 + 1;
            ctx.send(self.manager, Event::new(ClientRequest { operation }));
            ctx.send_to_self(Event::new(NextRequest));
        }
    }

    fn name(&self) -> &str {
        "FabricClient"
    }

    psharp::impl_machine_snapshot!();
}

// ---------------------------------------------------------------------------
// Consistency monitor
// ---------------------------------------------------------------------------

/// Safety monitor: for every sequence number, all replicas that apply it must
/// reach the same service state (no divergent replicas).
#[derive(Debug, Clone, Default)]
pub struct ConsistencyMonitor {
    states_by_sequence: BTreeMap<(u64, u64), i64>,
    applications_observed: usize,
}

impl ConsistencyMonitor {
    /// Creates the monitor.
    pub fn new() -> Self {
        ConsistencyMonitor::default()
    }

    /// Number of apply notifications observed (exposed for tests).
    pub fn applications_observed(&self) -> usize {
        self.applications_observed
    }
}

impl Monitor for ConsistencyMonitor {
    fn observe(&mut self, ctx: &mut MonitorContext<'_>, event: &Event) {
        if let Some(applied) = event.downcast_ref::<NotifyApplied>() {
            self.applications_observed += 1;
            let key = (applied.epoch, applied.sequence);
            match self.states_by_sequence.get(&key) {
                None => {
                    self.states_by_sequence.insert(key, applied.state);
                }
                Some(&expected) => ctx.assert(
                    expected == applied.state,
                    format!(
                        "replica {} diverged at epoch {} sequence {}: state {} vs {}",
                        applied.replica, applied.epoch, applied.sequence, applied.state, expected
                    ),
                ),
            }
        }
    }

    fn name(&self) -> &str {
        "ConsistencyMonitor"
    }

    fn clone_state(&self) -> Option<Box<dyn Monitor>> {
        Some(Box::new(self.clone()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psharp::runtime::{Runtime, RuntimeConfig};
    use psharp::scheduler::{RandomScheduler, RoundRobinScheduler};

    fn new_runtime(seed: u64, faults: FaultPlan) -> Runtime {
        Runtime::new(
            Box::new(RandomScheduler::new(seed)),
            RuntimeConfig {
                max_steps: 5_000,
                faults,
                ..RuntimeConfig::default()
            },
            seed,
        )
    }

    #[test]
    fn replication_reaches_all_secondaries_without_failures() {
        let mut rt = Runtime::new(
            Box::new(RoundRobinScheduler::new()),
            RuntimeConfig::default(),
            0,
        );
        rt.add_monitor(ConsistencyMonitor::new());
        let manager = rt.create_machine(ClusterManagerMachine::new(2, FabricBugs::default()));
        rt.create_machine(FabricClient::new(manager, 3));
        let outcome = rt.run();
        assert!(
            !matches!(outcome, ExecutionOutcome::BugFound(_)),
            "unexpected violation: {outcome:?}"
        );
        let manager_ref = rt
            .machine_ref::<ClusterManagerMachine>(manager)
            .expect("manager");
        let primary = manager_ref.primary().expect("primary exists");
        let primary_state = rt
            .machine_ref::<ReplicaMachine>(primary)
            .expect("replica")
            .state();
        assert!(primary_state > 0, "the client's increments were applied");
    }

    #[test]
    fn failover_in_fixed_model_keeps_assertions_intact() {
        // The fixed model must survive a scheduler-injected replica crash
        // (primary or secondary — the scheduler picks) without violating
        // the consistency monitor or the promotion assertion.
        let mut crashes_observed = 0;
        for seed in 0..20 {
            let mut rt = new_runtime(seed, FaultPlan::new().with_crashes(1));
            rt.add_monitor(ConsistencyMonitor::new());
            let manager = rt.create_machine(ClusterManagerMachine::new(2, FabricBugs::default()));
            rt.create_machine(FabricClient::new(manager, 3));
            let outcome = rt.run();
            assert!(
                !matches!(outcome, ExecutionOutcome::BugFound(_)),
                "fixed fabric model flagged a bug with seed {seed}: {outcome:?}"
            );
            crashes_observed += rt.trace().fault_decision_count();
        }
        assert!(
            crashes_observed > 0,
            "at least one seed must actually crash a replica"
        );
    }

    #[test]
    fn consistency_monitor_flags_divergent_states() {
        let mut monitor = ConsistencyMonitor::new();
        let mut bug = None;
        let mut ctx = MonitorContext::new_for_tests(&mut bug);
        monitor.observe(
            &mut ctx,
            &Event::new(NotifyApplied {
                replica: MachineId::from_raw(1),
                epoch: 0,
                sequence: 1,
                state: 5,
            }),
        );
        monitor.observe(
            &mut ctx,
            &Event::new(NotifyApplied {
                replica: MachineId::from_raw(2),
                epoch: 0,
                sequence: 1,
                state: 6,
            }),
        );
        assert!(bug.is_some());
        assert_eq!(monitor.applications_observed(), 2);
    }
}
