//! Portfolio coverage of the Fabric case study with the PR 3 strategy set:
//! delay-bounding finds the pipeline configuration bug on its own, and a
//! default-portfolio hunt over the promotion bug is worker-count
//! independent.

use fabric::{build_harness, portfolio_hunt, FabricConfig};
use psharp::prelude::*;

#[test]
fn delay_bounding_finds_the_pipeline_bug() {
    let engine = TestEngine::new(
        TestConfig::new()
            .with_iterations(2_000)
            .with_max_steps(2_000)
            .with_seed(4)
            .with_scheduler(SchedulerKind::DelayBounding { delays: 5 }),
    );
    let config = FabricConfig::with_pipeline_bug();
    let report = engine.run(move |rt| {
        build_harness(rt, &config);
    });
    let bug = report.bug.expect("delay-bounding finds the pipeline bug");
    assert_eq!(bug.bug.kind, BugKind::Panic);
    assert_eq!(report.scheduler, "delay");
}

#[test]
fn portfolio_hunt_on_the_promotion_bug_is_worker_count_independent() {
    let config = FabricConfig::with_promotion_bug();
    let base = TestConfig::new()
        .with_iterations(1_500)
        .with_max_steps(5_000)
        .with_seed(3)
        .with_faults(config.fault_plan())
        .with_default_portfolio();
    let serial = portfolio_hunt(&config, base.clone().with_workers(1));
    let expected = serial.bug.expect("portfolio finds the promotion bug");
    let parallel = portfolio_hunt(&config, base.with_workers(4));
    let found = parallel.bug.expect("portfolio finds the promotion bug");
    assert_eq!(found.iteration, expected.iteration);
    assert_eq!(found.trace.seed, expected.trace.seed);
    assert_eq!(parallel.scheduler, serial.scheduler);
}
