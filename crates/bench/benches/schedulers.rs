//! Benches measuring the cost of systematic testing (§6.2): executions per
//! unit of time for each case-study harness, the scheduler ablations (random
//! vs PCT vs round-robin, PCT priority-change budget, liveness step bound),
//! the step-loop hot path, and the serial vs work-stealing parallel engine
//! comparison.
//!
//! This is a plain `harness = false` bench (no Criterion: the build
//! environment is hermetic). Each case runs a few timed repetitions and
//! prints the median wall-clock time plus executions/second.
//!
//! Besides the human-readable table the bench writes a machine-readable
//! `BENCH_pr10.json` (override with `--json PATH`; schema-compatible with
//! `BENCH_pr2.json`, plus per-strategy portfolio rows, the
//! schedule-shrinking row added in PR 4, the fault-injection overhead rows
//! added in PR 5, the worker-count scaling rows added in PR 6, the
//! calibration probe plus schedule-reduction rows added in PR 7, the
//! mega-scale machine-count sweep added in PR 8, the copy-on-write
//! fork-cost sweep added in PR 9, and the DPOR-vs-sleep-set reduction plus
//! parallel prefix-tree scaling rows added in PR 10) so the
//! perf trajectory of the engine is tracked from PR 2 on — `dashboard`
//! renders the whole `BENCH_*.json` series as a trend table. `--quick`
//! shrinks every budget for CI smoke runs.
//!
//! Run with `cargo bench -p bench` — or directly:
//! `cargo run --release -p bench --bench schedulers -- [--quick] [--json PATH]`.

use std::time::{Duration, Instant};

use psharp::engine::{ParallelTestEngine, PrefixForkEngine};
use psharp::json::{Json, ToJson};
use psharp::prelude::*;
use psharp::runtime::RuntimeConfig;
use psharp::scheduler::RandomScheduler;

/// Pre-change reference point for the step-loop hot path, measured on the
/// same host immediately before the PR 2 zero-allocation refactor (commit
/// ead1cb9: per-step enabled-set `Vec` + `String` clones into every trace
/// record, fixed-stripe parallel engine). `speedup_vs_baseline` in the JSON
/// is computed against this figure.
const BASELINE_SERIAL_RANDOM_EXECS_PER_SEC: f64 = 2774.0;

/// The step-loop hotpath figure of the committed PR 2 reference run
/// (`BENCH_pr2.json`), used by the CI bench-smoke job to warn on serial
/// regressions of more than 10%.
const PR2_SERIAL_RANDOM_EXECS_PER_SEC: f64 = 6069.0;

/// One timed measurement, kept for the JSON report.
struct BenchResult {
    group: &'static str,
    name: String,
    median: Duration,
    execs_per_sec: f64,
    steps: u64,
}

impl ToJson for BenchResult {
    fn to_json_value(&self) -> Json {
        Json::object([
            ("group", Json::Str(self.group.to_string())),
            ("name", Json::Str(self.name.clone())),
            ("median_ms", Json::Float(self.median.as_secs_f64() * 1e3)),
            ("execs_per_sec", Json::Float(self.execs_per_sec)),
            ("steps", Json::UInt(self.steps)),
        ])
    }
}

/// Global bench settings parsed from argv.
struct Settings {
    /// Repetitions per case (median reported).
    reps: usize,
    /// Multiplier applied to every iteration budget (1 = full run).
    scale: u64,
    /// Output path of the machine-readable report.
    json: String,
}

fn parse_settings() -> Settings {
    let mut settings = Settings {
        reps: 5,
        scale: 1,
        json: "BENCH_pr10.json".to_string(),
    };
    let mut argv = std::env::args().skip(1);
    while let Some(flag) = argv.next() {
        match flag.as_str() {
            "--quick" => {
                settings.reps = 2;
                settings.scale = 4;
            }
            "--json" => {
                settings.json = argv.next().expect("--json requires a path");
            }
            // `cargo bench` passes `--bench` through to the binary.
            "--bench" => {}
            other => panic!("unknown argument {other:?}"),
        }
    }
    settings
}

/// Outcome of the paired fault-probe measurement: probe-on and probe-off
/// runs interleaved rep-by-rep so container-speed drift hits both sides of
/// every pair equally.
struct ProbeOverhead {
    /// Median of the per-pair overhead ratios, in percent (can be negative:
    /// a faster probe-on run is pure measurement noise).
    raw_percent: f64,
    /// Half the spread of the per-pair ratios, in percent — the measurement
    /// noise floor of this run.
    noise_percent: f64,
}

impl ProbeOverhead {
    /// The reported overhead: a probe cannot make the loop faster, so a
    /// negative raw figure clamps to zero.
    fn clamped_percent(&self) -> f64 {
        self.raw_percent.max(0.0)
    }

    /// True when the noise floor is larger than the measured effect — the
    /// run cannot distinguish the probe cost from container drift.
    fn noise_exceeds_effect(&self) -> bool {
        self.noise_percent > self.raw_percent.abs()
    }
}

/// A fork-cost row: restores/second through the copy-on-write path vs the
/// full from-scratch rebuild, at one total machine count.
struct ForkCostRow {
    machines: usize,
    dirty_machines: u64,
    cow_restores_per_sec: f64,
    full_restores_per_sec: f64,
}

impl ForkCostRow {
    fn speedup(&self) -> f64 {
        self.cow_restores_per_sec / self.full_restores_per_sec.max(1e-9)
    }
}

/// Paired sleep-set vs DPOR measurement on the wide all-local workload
/// (PR 10): both strategies get the identical budget; each row carries its
/// own redundancy ratio `(explored steps + pruned equivalents) / explored
/// steps` so the headline figure — how much further DPOR's vector-clock
/// pruning reaches than the sleep-set window — comes from one run.
struct DporReduction {
    sleep_set_ratio: f64,
    dpor_ratio: f64,
    races_detected: u64,
    backtracks_scheduled: u64,
}

impl DporReduction {
    /// DPOR's redundancy ratio relative to sleep sets on the same workload.
    fn ratio_vs_sleep_set(&self) -> f64 {
        self.dpor_ratio / self.sleep_set_ratio.max(1e-9)
    }
}

struct Bench {
    settings: Settings,
    results: Vec<BenchResult>,
    /// Redundancy ratio measured by the `schedule_reduction` group:
    /// `(explored steps + pruned schedule-equivalents) / explored steps`.
    reduction_ratio: Option<f64>,
    /// Paired sleep-set/DPOR ratios from the `dpor_reduction` group.
    dpor_reduction: Option<DporReduction>,
    /// Paired probe-on/probe-off measurement from the `fault_injection`
    /// group.
    probe_overhead: Option<ProbeOverhead>,
    /// Copy-on-write fork cost per machine count from the `fork_cost` group.
    fork_cost: Vec<ForkCostRow>,
}

impl Bench {
    /// Scales an iteration budget down for `--quick` runs (at least 1).
    fn budget(&self, iterations: u64) -> u64 {
        (iterations / self.settings.scale).max(1)
    }

    /// Times `body` over the configured repetitions and reports the median.
    fn bench<F: FnMut() -> u64>(
        &mut self,
        group: &'static str,
        name: &str,
        executions: u64,
        mut body: F,
    ) {
        let mut times: Vec<Duration> = Vec::with_capacity(self.settings.reps);
        let mut last_steps = 0;
        for _ in 0..self.settings.reps {
            let start = Instant::now();
            last_steps = body();
            times.push(start.elapsed());
        }
        times.sort();
        let median = times[times.len() / 2];
        let execs_per_sec = executions as f64 / median.as_secs_f64().max(1e-9);
        println!(
            "{group:<32} {name:<24} median {:>9.3}ms  {:>10.0} exec/s  {last_steps:>8} steps",
            median.as_secs_f64() * 1e3,
            execs_per_sec,
        );
        self.results.push(BenchResult {
            group,
            name: name.to_string(),
            median,
            execs_per_sec,
            steps: last_steps,
        });
    }

    /// The measured executions/second of a named case, when it has run.
    fn execs_per_sec(&self, group: &str, name: &str) -> Option<f64> {
        self.results
            .iter()
            .find(|r| r.group == group && r.name == name)
            .map(|r| r.execs_per_sec)
    }
}

fn run_iterations<F>(iterations: u64, max_steps: usize, scheduler: SchedulerKind, build: F) -> u64
where
    F: Fn(&mut Runtime),
{
    run_iterations_with_faults(iterations, max_steps, scheduler, FaultPlan::none(), build)
}

fn run_iterations_with_faults<F>(
    iterations: u64,
    max_steps: usize,
    scheduler: SchedulerKind,
    faults: FaultPlan,
    build: F,
) -> u64
where
    F: Fn(&mut Runtime),
{
    let engine = TestEngine::new(
        TestConfig::new()
            .with_iterations(iterations)
            .with_max_steps(max_steps)
            .with_seed(42)
            .with_scheduler(scheduler)
            .with_faults(faults),
    );
    engine.run(build).total_steps
}

/// A small bug-free harness that maximizes step-loop pressure: three
/// self-sending machines run the runtime to the step bound with almost no
/// per-step work of their own, so the measurement isolates the engine's
/// scheduling + trace-recording overhead.
mod hotpath {
    use super::*;

    #[derive(Debug)]
    pub struct Spin;

    pub struct Spinner;
    impl Machine for Spinner {
        fn on_start(&mut self, ctx: &mut Context<'_>) {
            ctx.send_to_self(Event::new(Spin));
        }
        fn handle(&mut self, ctx: &mut Context<'_>, _event: Event) {
            ctx.send_to_self(Event::new(Spin));
        }
    }

    pub fn setup(rt: &mut Runtime) {
        for _ in 0..3 {
            rt.create_machine(Spinner);
        }
    }
}

const HOTPATH_ITERATIONS: u64 = 200;
const HOTPATH_MAX_STEPS: usize = 2_000;

/// A clonable, all-local workload: three sinks consume pre-queued events with
/// no sends of their own, so every step is independent of every other
/// machine's — the reference case for sleep-set partial-order reduction, and
/// (being snapshotable) for prefix-sharing forks.
mod reduction {
    use super::*;

    #[derive(Debug, Clone)]
    pub struct Job;

    #[derive(Clone)]
    pub struct LocalSink;
    impl Machine for LocalSink {
        fn handle(&mut self, _ctx: &mut Context<'_>, _event: Event) {}
        fn clone_state(&self) -> Option<Box<dyn Machine>> {
            Some(Box::new(self.clone()))
        }
    }

    pub const SINKS: usize = 3;
    pub const EVENTS_PER_SINK: usize = 600;
    pub const MAX_STEPS: usize = SINKS * EVENTS_PER_SINK + 8;

    pub fn setup(rt: &mut Runtime) {
        for _ in 0..SINKS {
            let sink = rt.create_machine(LocalSink);
            for _ in 0..EVENTS_PER_SINK {
                rt.send(sink, Event::replicable(Job));
            }
        }
    }

    /// The wide variant for the DPOR comparison: the sleep-set scheduler's
    /// pruning is capped by its fixed sleep window, while DPOR's sticky
    /// run-to-completion prunes against *every* concurrently-enabled local
    /// machine — so the gap between the two only shows once the enabled set
    /// is wider than the sleep window.
    pub const WIDE_SINKS: usize = 20;
    pub const WIDE_EVENTS_PER_SINK: usize = 90;
    pub const WIDE_MAX_STEPS: usize = WIDE_SINKS * WIDE_EVENTS_PER_SINK + 32;

    pub fn setup_wide(rt: &mut Runtime) {
        for _ in 0..WIDE_SINKS {
            let sink = rt.create_machine(LocalSink);
            for _ in 0..WIDE_EVENTS_PER_SINK {
                rt.send(sink, Event::replicable(Job));
            }
        }
    }
}

/// Fixed-work calibration probe: a deterministic workload whose size never
/// scales with `--quick`, so every `BENCH_*.json` carries a comparable
/// container-speed figure. The dashboard divides each report's headline
/// numbers by this row to render container-normalized trends (the PR 6 run
/// measured ~2x slower inside the CI container than the PR 2 reference; the
/// raw trend table could not tell that apart from a real regression).
const CALIBRATION_ITERATIONS: u64 = 50;

fn calibration(b: &mut Bench) {
    let group = "calibration";
    b.bench(
        group,
        "fixed_roundrobin_hotpath",
        CALIBRATION_ITERATIONS,
        || {
            run_iterations(
                CALIBRATION_ITERATIONS,
                HOTPATH_MAX_STEPS,
                SchedulerKind::RoundRobin,
                hotpath::setup,
            )
        },
    );
}

/// Schedule-space reduction (PR 7): sleep-set POR and prefix-sharing
/// snapshot forks on the all-local reference workload.
///
/// * `random_baseline` vs `sleep_set`: same execution budget; the sleep-set
///   rows additionally record how many provably-equivalent schedules the
///   strategy *pruned* instead of exploring. The redundancy ratio
///   `(steps + pruned) / steps` scales raw exec/s into effective
///   schedule-equivalents/s.
/// * `straight_line` vs `prefix_shared`: the identical run with and without
///   prefix sharing; shared runs execute setup once and fork every later
///   iteration from the post-setup snapshot.
fn schedule_reduction(b: &mut Bench) {
    let group = "schedule_reduction";
    let iterations = b.budget(HOTPATH_ITERATIONS);
    let base = TestConfig::new()
        .with_iterations(iterations)
        .with_max_steps(reduction::MAX_STEPS)
        .with_seed(42);
    b.bench(group, "random_baseline", iterations, || {
        TestEngine::new(base.clone().with_scheduler(SchedulerKind::Random))
            .run(reduction::setup)
            .total_steps
    });
    let mut pruned = 0u64;
    let mut steps = 0u64;
    let sleep_config = base.clone().with_scheduler(SchedulerKind::sleep_set());
    b.bench(group, "sleep_set", iterations, || {
        let report = TestEngine::new(sleep_config.clone()).run(reduction::setup);
        pruned = report.per_strategy.iter().map(|r| r.pruned_schedules).sum();
        steps = report.total_steps;
        steps
    });
    let ratio = (steps + pruned) as f64 / steps.max(1) as f64;
    b.reduction_ratio = Some(ratio);
    println!(
        "    sleep-set pruned {pruned} schedule-equivalents over {steps} steps \
         (redundancy ratio {ratio:.2}x)"
    );
    // Prefix sharing on a real harness: the chaintable build replays every
    // table insert (plus spec-model seeding) each iteration, while shared
    // runs pay it once and fork every later iteration from the post-setup
    // snapshot. A setup-heavy configuration (many pre-loaded rows, short
    // run) isolates exactly the work the snapshot amortizes.
    let chain = |rt: &mut Runtime| {
        let config = chaintable::ChainConfig {
            initial_rows: 512,
            key_space: 64,
            ops_per_service: 2,
            ..chaintable::ChainConfig::fixed()
        };
        chaintable::build_harness(rt, &config);
    };
    let chain_base = TestConfig::new()
        .with_iterations(iterations)
        .with_max_steps(150)
        .with_seed(42);
    b.bench(group, "straight_line", iterations, || {
        TestEngine::new(chain_base.clone()).run(chain).total_steps
    });
    b.bench(group, "prefix_shared", iterations, || {
        TestEngine::new(chain_base.clone().with_prefix_sharing(true))
            .run(chain)
            .total_steps
    });
}

/// Vector-clock DPOR vs sleep sets (PR 10): the same execution budget on the
/// *wide* all-local workload (20 sinks). The sleep-set row's pruning is
/// bounded by its fixed sleep window; the DPOR row's sticky
/// run-to-completion pruning scales with the enabled-set width, so its
/// redundancy ratio should clear 1.5x the sleep-set figure here — that gap
/// is the headline `dpor_reduction` number the CI smoke job tracks.
fn dpor_reduction(b: &mut Bench) {
    let group = "dpor_reduction";
    let iterations = b.budget(HOTPATH_ITERATIONS);
    let base = TestConfig::new()
        .with_iterations(iterations)
        .with_max_steps(reduction::WIDE_MAX_STEPS)
        .with_seed(42);
    let ratio_of = |report: &psharp::engine::TestReport| {
        let pruned: u64 = report.per_strategy.iter().map(|r| r.pruned_schedules).sum();
        (report.total_steps + pruned) as f64 / report.total_steps.max(1) as f64
    };
    let mut sleep_set_ratio = 1.0;
    let sleep_config = base.clone().with_scheduler(SchedulerKind::sleep_set());
    b.bench(group, "sleep_set_wide", iterations, || {
        let report = TestEngine::new(sleep_config.clone()).run(reduction::setup_wide);
        sleep_set_ratio = ratio_of(&report);
        report.total_steps
    });
    let mut dpor_ratio = 1.0;
    let mut races_detected = 0u64;
    let mut backtracks_scheduled = 0u64;
    let dpor_config = base.with_scheduler(SchedulerKind::Dpor);
    b.bench(group, "dpor_wide", iterations, || {
        let report = TestEngine::new(dpor_config.clone()).run(reduction::setup_wide);
        dpor_ratio = ratio_of(&report);
        races_detected = report.per_strategy.iter().map(|r| r.races_detected).sum();
        backtracks_scheduled = report
            .per_strategy
            .iter()
            .map(|r| r.backtracks_scheduled)
            .sum();
        report.total_steps
    });
    let row = DporReduction {
        sleep_set_ratio,
        dpor_ratio,
        races_detected,
        backtracks_scheduled,
    };
    println!(
        "    DPOR redundancy {dpor_ratio:.2}x vs sleep-set {sleep_set_ratio:.2}x \
         ({:.2}x further; {races_detected} races, {backtracks_scheduled} backtracks)",
        row.ratio_vs_sleep_set()
    );
    b.dpor_reduction = Some(row);
}

/// The worker counts the parallel prefix-tree sweep measures.
const TREE_WORKER_COUNTS: [usize; 2] = [1, 8];

/// Parallel prefix-tree exploration (PR 10): the same bug-free chaintable
/// portfolio budget driven through [`PrefixForkEngine`] at 1 and 8 workers.
/// Phase 1 expands the shared prefix tree through a work-stealing queue of
/// snapshot nodes and phase 2 drains the iteration space over the pooled
/// leaves, so the 8-worker row should scale like the flat parallel engine
/// while paying the tree expansion once. `write_report` computes the
/// per-core efficiency the CI bench-smoke job warns on.
fn prefix_tree_scaling(b: &mut Bench) {
    let group = "prefix_tree";
    let iterations = b.budget(40);
    let base = TestConfig::new()
        .with_iterations(iterations)
        .with_max_steps(2_000)
        .with_seed(42)
        .with_default_portfolio();
    let build = |rt: &mut Runtime| {
        chaintable::build_harness(rt, &chaintable::ChainConfig::fixed());
    };
    for workers in TREE_WORKER_COUNTS {
        b.bench(
            group,
            &format!("tree_workers_{workers}"),
            iterations,
            || {
                PrefixForkEngine::new(base.clone().with_workers(workers), 2)
                    .run(build)
                    .total_steps
            },
        );
    }
}

/// Raw step-loop throughput: the serial random-scheduler figure here is the
/// number tracked across PRs (`serial_random_execs_per_sec` in the JSON).
fn step_loop_hotpath(b: &mut Bench) {
    let group = "step_loop_hotpath";
    let iterations = b.budget(HOTPATH_ITERATIONS);
    b.bench(group, "serial_random", iterations, || {
        run_iterations(
            iterations,
            HOTPATH_MAX_STEPS,
            SchedulerKind::Random,
            hotpath::setup,
        )
    });
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let config = TestConfig::new()
        .with_iterations(iterations)
        .with_max_steps(HOTPATH_MAX_STEPS)
        .with_seed(42)
        .with_workers(workers);
    b.bench(
        group,
        &format!("parallel_{workers}_workers"),
        iterations,
        || {
            ParallelTestEngine::new(config.clone())
                .run(hotpath::setup)
                .total_steps
        },
    );
}

/// Executions/second of each harness under the random scheduler (the cost the
/// paper's §6.2 reports as "time to bug" denominators).
fn harness_throughput(b: &mut Bench) {
    let group = "executions_per_harness";
    let n = b.budget(10);
    b.bench(group, "replsim_fixed_10_execs", n, || {
        run_iterations(n, 1_500, SchedulerKind::Random, |rt| {
            replsim::build_harness(rt, &replsim::ReplConfig::default());
        })
    });
    b.bench(group, "vnext_fixed_10_execs", n, || {
        run_iterations(n, 2_000, SchedulerKind::Random, |rt| {
            vnext::build_harness(rt, &vnext::VnextConfig::default());
        })
    });
    b.bench(group, "chaintable_fixed_10_execs", n, || {
        run_iterations(n, 10_000, SchedulerKind::Random, |rt| {
            chaintable::build_harness(rt, &chaintable::ChainConfig::fixed());
        })
    });
    b.bench(group, "fabric_fixed_10_execs", n, || {
        run_iterations(n, 5_000, SchedulerKind::Random, |rt| {
            fabric::build_harness(rt, &fabric::FabricConfig::default());
        })
    });
}

/// Ablation: scheduler strategy on the same buggy harness (time to explore a
/// fixed execution budget).
fn scheduler_ablation(b: &mut Bench) {
    let group = "scheduler_ablation_replsim";
    let schedulers = [
        ("random", SchedulerKind::Random),
        ("pct2", SchedulerKind::Pct { change_points: 2 }),
        ("delay2", SchedulerKind::DelayBounding { delays: 2 }),
        (
            "prob10",
            SchedulerKind::ProbabilisticRandom { switch_percent: 10 },
        ),
        ("round_robin", SchedulerKind::RoundRobin),
    ];
    let n = b.budget(20);
    for (label, scheduler) in schedulers {
        b.bench(group, label, n, || {
            run_iterations(n, 1_500, scheduler, |rt| {
                replsim::build_harness(rt, &replsim::ReplConfig::with_duplicate_counting_bug());
            })
        });
    }
}

/// Ablation: PCT priority-change budget on the vNext liveness bug (the bug
/// is fault-induced since PR 5: the EN crash is a scheduler-injected fault).
/// These rows also track the PR 5 adaptive liveness early-confirm: the fair
/// observation window is now sized by the backlog measured at the bound
/// instead of the worst-case `unfair-prefix x machine-count`.
fn pct_budget_ablation(b: &mut Bench) {
    let group = "pct_change_points_vnext";
    let config = vnext::VnextConfig::with_liveness_bug();
    let n = b.budget(5);
    for change_points in [0usize, 2, 5] {
        b.bench(group, &format!("cp{change_points}"), n, || {
            run_iterations_with_faults(
                n,
                3_000,
                SchedulerKind::Pct { change_points },
                config.fault_plan(),
                |rt| {
                    vnext::build_harness(rt, &config);
                },
            )
        });
    }
}

/// Ablation: the liveness "infinite execution" step bound (§2.5 heuristic).
fn liveness_bound_ablation(b: &mut Bench) {
    let group = "liveness_step_bound_vnext";
    let config = vnext::VnextConfig::with_liveness_bug();
    let n = b.budget(5);
    for max_steps in [1_000usize, 3_000, 6_000] {
        b.bench(group, &format!("bound{max_steps}"), n, || {
            run_iterations_with_faults(
                n,
                max_steps,
                SchedulerKind::Random,
                config.fault_plan(),
                |rt| {
                    vnext::build_harness(rt, &config);
                },
            )
        });
    }
}

/// Fault-injection overhead: the cost of probing for faults on the
/// step-loop hot path. `idle_budget` runs the spinner harness with a crash
/// budget but no crashable machine — since PR 6 the runtime's O(1)
/// applicability check skips the probe entirely when no marked machine can
/// absorb the budget, so this row must match the probe-free run (PR 5
/// scanned every machine per step here, a ~7% tax; `write_report` asserts
/// the overhead stays near zero).
///
/// The PR 8 report computed the overhead from the `serial_random` row
/// measured minutes earlier in a different group, and recorded **-5.1%** —
/// container-speed drift between the two windows was larger than the effect
/// being measured. Since PR 9 the probe-off and probe-on runs are
/// *interleaved rep-by-rep*, so drift hits both sides of every pair equally;
/// the per-pair ratio spread is reported as the noise floor and a negative
/// median clamps to zero. The fabric rows compare the fixed failover harness
/// with and without its one-crash budget (the crash actually fires and the
/// failover machinery runs).
fn fault_injection_overhead(b: &mut Bench) {
    let group = "fault_injection";
    let iterations = b.budget(HOTPATH_ITERATIONS);
    let mut pairs: Vec<(Duration, Duration)> = Vec::with_capacity(b.settings.reps);
    let mut last_steps = 0u64;
    for _ in 0..b.settings.reps {
        let off_start = Instant::now();
        run_iterations(
            iterations,
            HOTPATH_MAX_STEPS,
            SchedulerKind::Random,
            hotpath::setup,
        );
        let off = off_start.elapsed();
        let on_start = Instant::now();
        last_steps = run_iterations_with_faults(
            iterations,
            HOTPATH_MAX_STEPS,
            SchedulerKind::Random,
            FaultPlan::new().with_crashes(1),
            hotpath::setup,
        );
        pairs.push((off, on_start.elapsed()));
    }
    for (name, pick) in [
        ("hotpath_no_budget", 0usize),
        ("hotpath_idle_budget", 1usize),
    ] {
        let mut times: Vec<Duration> = pairs
            .iter()
            .map(|&(off, on)| if pick == 0 { off } else { on })
            .collect();
        times.sort();
        let median = times[times.len() / 2];
        let execs_per_sec = iterations as f64 / median.as_secs_f64().max(1e-9);
        println!(
            "{group:<32} {name:<24} median {:>9.3}ms  {:>10.0} exec/s  {last_steps:>8} steps",
            median.as_secs_f64() * 1e3,
            execs_per_sec,
        );
        b.results.push(BenchResult {
            group,
            name: name.to_string(),
            median,
            execs_per_sec,
            steps: last_steps,
        });
    }
    let mut ratios: Vec<f64> = pairs
        .iter()
        .map(|(off, on)| on.as_secs_f64() / off.as_secs_f64().max(1e-9) - 1.0)
        .collect();
    ratios.sort_by(|a, b| a.total_cmp(b));
    // Median of the per-pair ratios; an even rep count averages the middle
    // pair (picking the upper one would bias quick runs upward).
    let mid = ratios.len() / 2;
    let median_ratio = if ratios.len().is_multiple_of(2) {
        (ratios[mid - 1] + ratios[mid]) / 2.0
    } else {
        ratios[mid]
    };
    let raw_percent = median_ratio * 100.0;
    let noise_percent = (ratios[ratios.len() - 1] - ratios[0]) / 2.0 * 100.0;
    let probe = ProbeOverhead {
        raw_percent,
        noise_percent,
    };
    println!(
        "    idle fault probe: {raw_percent:+.1}% paired overhead \
         (noise floor ±{noise_percent:.1}%{})",
        if probe.noise_exceeds_effect() {
            ", noise exceeds effect"
        } else {
            ""
        }
    );
    b.probe_overhead = Some(probe);
    let n = b.budget(10);
    b.bench(group, "fabric_fixed_no_faults", n, || {
        run_iterations(n, 5_000, SchedulerKind::Random, |rt| {
            fabric::build_harness(rt, &fabric::FabricConfig::default());
        })
    });
    b.bench(group, "fabric_fixed_crash_budget", n, || {
        run_iterations_with_faults(
            n,
            5_000,
            SchedulerKind::Random,
            fabric::FabricConfig::default().fault_plan(),
            |rt| {
                fabric::build_harness(rt, &fabric::FabricConfig::default());
            },
        )
    });
}

/// Per-strategy throughput of a default-portfolio run on the hotpath
/// harness: one `portfolio_per_strategy` row per strategy, attributing the
/// run's executions to the strategy that drove them (iteration-index
/// assignment, so the split is deterministic). The per-strategy exec/s
/// series is tracked in the BENCH JSON from PR 3 on.
fn portfolio_per_strategy(b: &mut Bench) {
    let group = "portfolio_per_strategy";
    let iterations = b.budget(HOTPATH_ITERATIONS);
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let config = TestConfig::new()
        .with_iterations(iterations)
        .with_max_steps(HOTPATH_MAX_STEPS)
        .with_seed(42)
        .with_workers(workers)
        .with_default_portfolio();
    let mut runs = Vec::with_capacity(b.settings.reps);
    for _ in 0..b.settings.reps {
        let start = Instant::now();
        let report = ParallelTestEngine::new(config.clone()).run(hotpath::setup);
        runs.push((start.elapsed(), report));
    }
    runs.sort_by_key(|(elapsed, _)| *elapsed);
    let (median, report) = &runs[runs.len() / 2];
    let all_steps: u64 = report.per_strategy.iter().map(|r| r.total_steps).sum();
    for row in &report.per_strategy {
        // Attribute wall-clock time to a strategy by its share of executed
        // steps (per-step cost is dominated by the runtime, not the
        // scheduler), so a row's exec/s reflects that strategy's own
        // execution cost — not merely its ~1/N share of the iteration
        // space, which would hide per-strategy regressions.
        let share = row.total_steps as f64 / all_steps.max(1) as f64;
        let attributed = Duration::from_secs_f64((median.as_secs_f64() * share).max(1e-9));
        let execs_per_sec = row.iterations_run as f64 / attributed.as_secs_f64();
        println!(
            "{group:<32} {:<24} median {:>9.3}ms  {execs_per_sec:>10.0} exec/s  {:>8} steps",
            row.scheduler,
            attributed.as_secs_f64() * 1e3,
            row.total_steps,
        );
        b.results.push(BenchResult {
            group,
            name: row.scheduler.clone(),
            median: attributed,
            execs_per_sec,
            steps: row.total_steps,
        });
    }
}

/// The total machine counts the mega-scale sweep measures.
const MEGAKV_SCALES: [usize; 4] = [256, 1024, 4096, 10_240];

/// Mega-scale machine-count sweep (PR 8): the megakv harness embeds the
/// *same* fixed client workload (two clients, a few put/get pairs over two
/// hot shards) in systems of wildly different total size — from 256 to
/// 10,240 machines — so per-step cost is the only thing that varies. With
/// the O(active) scheduling core (incremental enabled index + lazy
/// mailboxes) the steps/s figure should stay essentially flat as the cold
/// machine count grows 40x; `write_report` computes the 4096-vs-256
/// steps/s ratio the CI bench-smoke job warns on.
///
/// Two one-time O(total) costs are paid *outside* the timed window, so the
/// rows measure steady-state stepping of the fixed active workload:
/// harness construction (`create_machine` x total), and the startup drain —
/// every fresh machine owes one schedulable `on_start` step, so the drain
/// is forced in ascending id order untimed (cold replicas disable
/// themselves after it; only the active workload machines stay enabled).
fn megakv_scaling(b: &mut Bench) {
    let group = "megakv_scaling";
    let iterations = b.budget(40);
    for &total in &MEGAKV_SCALES {
        let config = megakv::MegaKvConfig::scale(total, 4);
        let mut times: Vec<Duration> = Vec::with_capacity(b.settings.reps);
        let mut last_steps = 0u64;
        for _ in 0..b.settings.reps {
            let mut elapsed = Duration::ZERO;
            let mut steps = 0u64;
            for iteration in 0..iterations {
                let seed = 42 + iteration;
                let mut rt = Runtime::new(
                    Box::new(RandomScheduler::new(seed)),
                    RuntimeConfig {
                        // The budget covers the startup drain (one step per
                        // machine) plus the client workload.
                        max_steps: total + 4_000,
                        ..RuntimeConfig::default()
                    },
                    seed,
                );
                megakv::build_harness(&mut rt, &config);
                for raw in 0..rt.machine_count() {
                    rt.force_step(MachineId::from_raw(raw as u64));
                }
                let drained = rt.steps() as u64;
                let start = Instant::now();
                rt.run();
                elapsed += start.elapsed();
                steps += rt.steps() as u64 - drained;
                assert!(
                    rt.bug().is_none(),
                    "the fixed megakv scale harness must stay clean"
                );
            }
            times.push(elapsed);
            last_steps = steps;
        }
        times.sort();
        let median = times[times.len() / 2];
        let execs_per_sec = iterations as f64 / median.as_secs_f64().max(1e-9);
        let name = format!("machines_{total}");
        println!(
            "{group:<32} {name:<24} median {:>9.3}ms  {:>10.0} exec/s  {last_steps:>8} steps",
            median.as_secs_f64() * 1e3,
            execs_per_sec,
        );
        b.results.push(BenchResult {
            group,
            name,
            median,
            execs_per_sec,
            steps: last_steps,
        });
    }
}

/// The total machine counts the fork-cost sweep measures.
const FORK_SCALES: [usize; 3] = [256, 4096, 10_240];

/// Machines explicitly stepped between fork and restore in the fork-cost
/// sweep (the stepped machines plus anything they sent to make up the dirty
/// set).
const FORK_DIRTY: usize = 16;

/// Copy-on-write fork cost (PR 9): the wall-clock price of rewinding a
/// runtime to a snapshot after a low-dirty excursion — the operation
/// prefix-sharing engines perform once per iteration. Each scale builds the
/// megakv harness once, snapshots it, then repeatedly steps `FORK_DIRTY`
/// machines (dirtying them plus whatever they sent to) and restores:
///
/// * `cow_machines_N` rewinds through [`Runtime::restore_from`], which
///   re-clones only the dirty set — O(dirty) restores whose cost must stay
///   flat as the total machine count grows 40x;
/// * `full_machines_N` rewinds through [`Runtime::restore_from_full`], the
///   historical from-scratch rebuild that walks every slot — O(machines).
///
/// `write_report` records the per-scale speedup; the acceptance bar is a
/// low-dirty fork at least 5x cheaper at 10,240 machines. The dirtying
/// steps run outside the timed windows, which cover the restores alone.
fn fork_cost(b: &mut Bench) {
    let group = "fork_cost";
    let restores = b.budget(100);
    for &total in &FORK_SCALES {
        let kv = megakv::MegaKvConfig::scale(total, 0);
        let mut rt = Runtime::new(
            Box::new(RandomScheduler::new(11)),
            RuntimeConfig {
                max_steps: total + 100,
                ..RuntimeConfig::default()
            },
            11,
        );
        megakv::build_harness(&mut rt, &kv);
        let snapshot = rt.snapshot().expect("the megakv harness snapshots");
        let dirty = |rt: &mut Runtime| {
            for raw in 0..FORK_DIRTY as u64 {
                rt.force_step(MachineId::from_raw(raw));
            }
        };
        // Warm-up forks grow the machine/mailbox pools to steady state.
        for _ in 0..2 {
            dirty(&mut rt);
            rt.restore_from(&snapshot);
        }
        let mut rates = [0.0f64; 2];
        let mut dirty_machines = 0u64;
        for (slot, full) in [(0usize, false), (1usize, true)] {
            let mut times: Vec<Duration> = Vec::with_capacity(b.settings.reps);
            for _ in 0..b.settings.reps {
                let mut elapsed = Duration::ZERO;
                for _ in 0..restores {
                    dirty(&mut rt);
                    dirty_machines = rt.dirty_machine_count() as u64;
                    let start = Instant::now();
                    if full {
                        rt.restore_from_full(&snapshot);
                    } else {
                        rt.restore_from(&snapshot);
                    }
                    elapsed += start.elapsed();
                }
                times.push(elapsed);
            }
            times.sort();
            let median = times[times.len() / 2];
            let restores_per_sec = restores as f64 / median.as_secs_f64().max(1e-9);
            rates[slot] = restores_per_sec;
            let name = format!("{}_machines_{total}", if full { "full" } else { "cow" });
            println!(
                "{group:<32} {name:<24} median {:>9.3}ms  {restores_per_sec:>10.0} exec/s  \
                 {dirty_machines:>8} steps",
                median.as_secs_f64() * 1e3,
            );
            b.results.push(BenchResult {
                group,
                name,
                median,
                execs_per_sec: restores_per_sec,
                steps: dirty_machines,
            });
        }
        let row = ForkCostRow {
            machines: total,
            dirty_machines,
            cow_restores_per_sec: rates[0],
            full_restores_per_sec: rates[1],
        };
        println!(
            "    {total} machines, {dirty_machines} dirty: COW fork {:.1}x cheaper than \
             the full rebuild",
            row.speedup()
        );
        b.fork_cost.push(row);
    }
}

/// The worker counts the scaling sweep measures.
const SCALING_WORKER_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// Worker-count scaling of the parallel engine (PR 6): the same bug-free
/// portfolio hunt on the hotpath harness at 1/2/4/8 workers, plus the serial
/// portfolio reference. The JSON normalizes each row into a *per-core
/// efficiency*: exec/s at `W` workers divided by serial exec/s times
/// `min(W, cores)` — the engine caps its OS threads at the host's available
/// parallelism, so workers beyond the core count share time slices and do
/// not count as capacity.
fn worker_scaling(b: &mut Bench) {
    let group = "scaling";
    let iterations = b.budget(HOTPATH_ITERATIONS);
    let base = TestConfig::new()
        .with_iterations(iterations)
        .with_max_steps(HOTPATH_MAX_STEPS)
        .with_seed(42)
        .with_default_portfolio();
    b.bench(group, "serial_portfolio", iterations, || {
        TestEngine::new(base.clone())
            .run(hotpath::setup)
            .total_steps
    });
    for workers in SCALING_WORKER_COUNTS {
        b.bench(group, &format!("workers_{workers}"), iterations, || {
            ParallelTestEngine::new(base.clone().with_workers(workers))
                .run(hotpath::setup)
                .total_steps
        });
    }
}

/// Wall-clock cost of the schedule-shrinking pass (PR 4): hunt a seeded bug
/// once (untimed), then time `shrink_trace` reducing its recorded schedule
/// to a minimal replayable counterexample. The row's `steps` column carries
/// the minimized decision count, so the JSON tracks reduction quality along
/// with shrink time.
fn shrink_pass(b: &mut Bench) {
    let group = "shrink";
    let (_, chain_config) = chaintable::named_bugs()
        .into_iter()
        .find(|(name, _)| *name == "DeletePrimaryKey")
        .expect("known seeded bug");
    let build = move |rt: &mut Runtime| {
        chaintable::build_harness(rt, &chain_config);
    };
    let config = TestConfig::new()
        .with_iterations(2_000)
        .with_max_steps(10_000)
        .with_seed(11);
    let report = TestEngine::new(config.clone()).run(build);
    let bug_report = report.bug.expect("the seeded bug is reachable");
    let shrink_config = config.shrink_config();
    let mut last_summary = String::new();
    b.bench(group, "chaintable_delete_primary_key", 1, || {
        let result = shrink_trace(&shrink_config, &bug_report.bug, &bug_report.trace, &build);
        last_summary = result.summary();
        result.minimized_decisions as u64
    });
    println!("    {last_summary}");
}

/// Serial vs work-stealing parallel engine over the same bug-free exploration
/// budget, demonstrating the throughput multiplier on multi-core hosts.
fn parallel_engine_comparison(b: &mut Bench) {
    let group = "parallel_vs_serial_chaintable";
    let iterations = b.budget(40);
    let config = TestConfig::new()
        .with_iterations(iterations)
        .with_max_steps(2_000)
        .with_seed(42);
    let build = |rt: &mut Runtime| {
        chaintable::build_harness(rt, &chaintable::ChainConfig::fixed());
    };
    b.bench(group, "serial_1_worker", iterations, || {
        TestEngine::new(config.clone()).run(build).total_steps
    });
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    b.bench(
        group,
        &format!("parallel_{workers}_workers"),
        iterations,
        || {
            ParallelTestEngine::new(config.clone().with_workers(workers))
                .run(build)
                .total_steps
        },
    );
    // One untimed run for the summary line (printing inside the timed closure
    // would charge terminal I/O to the parallel measurement only).
    let report = ParallelTestEngine::new(config.with_workers(workers)).run(build);
    println!(
        "    parallel portfolio: {:.0} exec/s over {workers} workers ({})",
        report.executions_per_second(),
        report.summary()
    );
}

fn write_report(b: &Bench) {
    let serial = b
        .execs_per_sec("step_loop_hotpath", "serial_random")
        .unwrap_or(0.0);
    let parallel = b
        .results
        .iter()
        .find(|r| r.group == "step_loop_hotpath" && r.name.starts_with("parallel"))
        .map(|r| r.execs_per_sec)
        .unwrap_or(0.0);
    // Idle fault-probe overhead: a budget no marked machine can absorb must
    // be skipped by the runtime's O(1) applicability check, so the paired
    // probe-on run matches the probe-off run to within measurement noise.
    // PR 5 paid ~7% here; the assertion keeps a regression to the
    // scan-per-step behavior from landing silently.
    let probe = b.probe_overhead.as_ref().expect("probe pairs measured");
    let probe_overhead_percent = probe.clamped_percent();
    let quick = b.settings.scale != 1;
    // Quick-mode budgets are too small for a stable median on a noisy host,
    // so the gate only hard-fails on full runs; quick runs warn.
    if quick && probe_overhead_percent >= 4.0 {
        eprintln!(
            "warning: idle fault-probe overhead measured {probe_overhead_percent:.1}% \
             in quick mode (noise-prone; full runs assert < 4%)"
        );
    } else {
        assert!(
            probe_overhead_percent < 4.0,
            "idle fault-probe overhead regressed to {probe_overhead_percent:.1}% \
             (an unabsorbable fault budget must skip the per-step probe entirely)"
        );
    }

    // Worker-count scaling summary: per-core efficiency normalized by the
    // *effective* core count min(workers, cores).
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let serial_portfolio = b
        .execs_per_sec("scaling", "serial_portfolio")
        .unwrap_or(0.0);
    let scaling_rows: Vec<Json> = SCALING_WORKER_COUNTS
        .iter()
        .map(|&workers| {
            let execs = b
                .execs_per_sec("scaling", &format!("workers_{workers}"))
                .unwrap_or(0.0);
            let effective_cores = workers.min(cores).max(1) as f64;
            Json::object([
                ("workers", Json::UInt(workers as u64)),
                ("execs_per_sec", Json::Float(execs)),
                (
                    "per_core_efficiency",
                    Json::Float(execs / (serial_portfolio.max(1e-9) * effective_cores)),
                ),
            ])
        })
        .collect();
    let efficiency_8 = scaling_rows
        .last()
        .and_then(|row| row.opt("per_core_efficiency"))
        .and_then(|value| value.as_f64().ok())
        .unwrap_or(0.0);

    // Schedule-reduction summary (PR 7): effective schedule-equivalents/s is
    // the sleep-set strategy's raw exec/s scaled by its redundancy ratio —
    // every pruned equivalent is a schedule the budget did not have to spend.
    let reduction_ratio = b.reduction_ratio.unwrap_or(1.0);
    let random_baseline = b
        .execs_per_sec("schedule_reduction", "random_baseline")
        .unwrap_or(0.0);
    let sleep_set = b
        .execs_per_sec("schedule_reduction", "sleep_set")
        .unwrap_or(0.0);
    let effective_equivalents = sleep_set * reduction_ratio;
    let straight_line = b
        .execs_per_sec("schedule_reduction", "straight_line")
        .unwrap_or(0.0);
    let prefix_shared = b
        .execs_per_sec("schedule_reduction", "prefix_shared")
        .unwrap_or(0.0);
    let prefix_speedup = prefix_shared / straight_line.max(1e-9);
    let effective_speedup = effective_equivalents / random_baseline.max(1e-9);
    if reduction_ratio < 1.5 {
        eprintln!(
            "warning: sleep-set redundancy ratio {reduction_ratio:.2}x is below the 1.5x \
             reference (the all-local workload should prune ~2 equivalents per step)"
        );
    }

    // DPOR-vs-sleep-set summary (PR 10): each strategy's raw exec/s on the
    // wide workload scaled by its own redundancy ratio gives effective
    // schedule-equivalents/s; the acceptance bar is a DPOR redundancy ratio
    // at least 1.5x the sleep-set figure from the same run.
    let dpor = b.dpor_reduction.as_ref().expect("dpor pair measured");
    let sleep_set_wide = b
        .execs_per_sec("dpor_reduction", "sleep_set_wide")
        .unwrap_or(0.0);
    let dpor_wide = b
        .execs_per_sec("dpor_reduction", "dpor_wide")
        .unwrap_or(0.0);
    let sleep_set_wide_equivalents = sleep_set_wide * dpor.sleep_set_ratio;
    let dpor_equivalents = dpor_wide * dpor.dpor_ratio;
    let dpor_vs_sleep_set = dpor.ratio_vs_sleep_set();
    if quick && dpor_vs_sleep_set < 1.5 {
        eprintln!(
            "warning: DPOR redundancy ratio is only {dpor_vs_sleep_set:.2}x the sleep-set \
             figure in quick mode (noise-prone; full runs assert >= 1.5x)"
        );
    } else {
        assert!(
            dpor_vs_sleep_set >= 1.5,
            "DPOR redundancy ratio is only {dpor_vs_sleep_set:.2}x the sleep-set figure \
             on the wide all-local workload (vector-clock pruning must reach past the \
             sleep window)"
        );
    }

    // Prefix-tree scaling summary (PR 10): per-core efficiency of the
    // 8-worker tree run against the 1-worker tree run, normalized by the
    // effective core count exactly like the flat `scaling` group.
    let tree_1 = b
        .execs_per_sec("prefix_tree", "tree_workers_1")
        .unwrap_or(0.0);
    let tree_8 = b
        .execs_per_sec("prefix_tree", "tree_workers_8")
        .unwrap_or(0.0);
    let tree_effective_cores = 8usize.min(cores).max(1) as f64;
    let tree_efficiency = tree_8 / (tree_1.max(1e-9) * tree_effective_cores);

    let calibration = b
        .execs_per_sec("calibration", "fixed_roundrobin_hotpath")
        .unwrap_or(0.0);

    // Mega-scale sweep summary (PR 8): steps/s per machine count and the
    // headline ratio. The acceptance bar is "per-step throughput at 4096
    // total machines within 2x of the 256-machine configuration" — with the
    // O(active) core the cold 4000 machines must not tax the step loop.
    let megakv_steps_per_sec = |total: usize| -> f64 {
        b.results
            .iter()
            .find(|r| r.group == "megakv_scaling" && r.name == format!("machines_{total}"))
            .map(|r| r.steps as f64 / r.median.as_secs_f64().max(1e-9))
            .unwrap_or(0.0)
    };
    let megakv_rows: Vec<Json> = MEGAKV_SCALES
        .iter()
        .map(|&total| {
            Json::object([
                ("machines", Json::UInt(total as u64)),
                ("steps_per_sec", Json::Float(megakv_steps_per_sec(total))),
            ])
        })
        .collect();
    // Fork-cost summary (PR 9): the copy-on-write restore vs the full
    // rebuild per machine count. The acceptance bar is a >= 5x cheaper
    // low-dirty fork at 10,240 machines — O(dirty) work cannot scale with
    // the 10,224 machines the fork did not touch.
    let fork_rows: Vec<Json> = b
        .fork_cost
        .iter()
        .map(|row| {
            Json::object([
                ("machines", Json::UInt(row.machines as u64)),
                ("dirty_machines", Json::UInt(row.dirty_machines)),
                (
                    "cow_restores_per_sec",
                    Json::Float(row.cow_restores_per_sec),
                ),
                (
                    "full_restores_per_sec",
                    Json::Float(row.full_restores_per_sec),
                ),
                ("speedup", Json::Float(row.speedup())),
            ])
        })
        .collect();
    let fork_speedup_10240 = b
        .fork_cost
        .iter()
        .find(|row| row.machines == 10_240)
        .map(ForkCostRow::speedup)
        .unwrap_or(0.0);
    if quick && fork_speedup_10240 < 5.0 {
        eprintln!(
            "warning: COW fork at 10240 machines is only {fork_speedup_10240:.1}x cheaper \
             than a full rebuild in quick mode (noise-prone; full runs assert >= 5x)"
        );
    } else {
        assert!(
            fork_speedup_10240 >= 5.0,
            "COW fork at 10240 machines is only {fork_speedup_10240:.1}x cheaper than a \
             full rebuild (a low-dirty restore must cost O(dirty), not O(machines))"
        );
    }

    let megakv_ratio = megakv_steps_per_sec(4_096) / megakv_steps_per_sec(256).max(1e-9);
    if quick && megakv_ratio < 0.5 {
        eprintln!(
            "warning: megakv steps/s at 4096 machines is {megakv_ratio:.2}x the 256-machine \
             figure in quick mode (noise-prone; full runs assert >= 0.5x)"
        );
    } else {
        assert!(
            megakv_ratio >= 0.5,
            "megakv per-step throughput at 4096 machines regressed to {megakv_ratio:.2}x the \
             256-machine figure (the O(active) step loop must not scale with cold machines)"
        );
    }

    let json = Json::object([
        ("pr", Json::UInt(10)),
        (
            "bench",
            Json::Str("crates/bench/benches/schedulers.rs".to_string()),
        ),
        ("quick_mode", Json::Bool(b.settings.scale != 1)),
        (
            "baseline",
            Json::object([
                (
                    "serial_random_execs_per_sec",
                    Json::Float(BASELINE_SERIAL_RANDOM_EXECS_PER_SEC),
                ),
                (
                    "pr2_serial_random_execs_per_sec",
                    Json::Float(PR2_SERIAL_RANDOM_EXECS_PER_SEC),
                ),
                (
                    "source",
                    Json::Str(
                        "step_loop_hotpath/serial_random measured in the PR 2 reference \
                         container at commit ead1cb9, before the zero-allocation step loop; \
                         pr2_serial_random_execs_per_sec is the committed BENCH_pr2.json \
                         figure the CI bench-smoke job warns against; comparisons are only \
                         meaningful on comparable hardware"
                            .to_string(),
                    ),
                ),
            ]),
        ),
        ("serial_random_execs_per_sec", Json::Float(serial)),
        ("parallel_execs_per_sec", Json::Float(parallel)),
        (
            "speedup_vs_baseline",
            Json::Float(serial / BASELINE_SERIAL_RANDOM_EXECS_PER_SEC.max(1e-9)),
        ),
        (
            "fault_probe_overhead_percent",
            Json::Float(probe_overhead_percent),
        ),
        (
            "fault_probe_overhead",
            Json::object([
                ("raw_percent", Json::Float(probe.raw_percent)),
                ("noise_percent", Json::Float(probe.noise_percent)),
                (
                    "noise_exceeds_effect",
                    Json::Bool(probe.noise_exceeds_effect()),
                ),
            ]),
        ),
        ("calibration_execs_per_sec", Json::Float(calibration)),
        (
            "schedule_reduction",
            Json::object([
                ("redundancy_ratio", Json::Float(reduction_ratio)),
                (
                    "random_baseline_execs_per_sec",
                    Json::Float(random_baseline),
                ),
                ("sleep_set_execs_per_sec", Json::Float(sleep_set)),
                (
                    "effective_schedule_equivalents_per_sec",
                    Json::Float(effective_equivalents),
                ),
                (
                    "effective_speedup_vs_random",
                    Json::Float(effective_speedup),
                ),
                ("straight_line_execs_per_sec", Json::Float(straight_line)),
                ("prefix_shared_execs_per_sec", Json::Float(prefix_shared)),
                ("prefix_sharing_speedup", Json::Float(prefix_speedup)),
            ]),
        ),
        (
            "dpor_reduction",
            Json::object([
                (
                    "sleep_set_redundancy_ratio",
                    Json::Float(dpor.sleep_set_ratio),
                ),
                ("dpor_redundancy_ratio", Json::Float(dpor.dpor_ratio)),
                ("dpor_vs_sleep_set", Json::Float(dpor_vs_sleep_set)),
                ("sleep_set_execs_per_sec", Json::Float(sleep_set_wide)),
                ("dpor_execs_per_sec", Json::Float(dpor_wide)),
                (
                    "sleep_set_effective_equivalents_per_sec",
                    Json::Float(sleep_set_wide_equivalents),
                ),
                (
                    "dpor_effective_equivalents_per_sec",
                    Json::Float(dpor_equivalents),
                ),
                ("races_detected", Json::UInt(dpor.races_detected)),
                (
                    "backtracks_scheduled",
                    Json::UInt(dpor.backtracks_scheduled),
                ),
            ]),
        ),
        (
            "prefix_tree",
            Json::object([
                ("workers_1_execs_per_sec", Json::Float(tree_1)),
                ("workers_8_execs_per_sec", Json::Float(tree_8)),
                (
                    "per_core_efficiency_8_workers",
                    Json::Float(tree_efficiency),
                ),
            ]),
        ),
        (
            "scaling",
            Json::object([
                ("cores_available", Json::UInt(cores as u64)),
                (
                    "serial_portfolio_execs_per_sec",
                    Json::Float(serial_portfolio),
                ),
                ("rows", Json::Array(scaling_rows)),
                ("per_core_efficiency_8_workers", Json::Float(efficiency_8)),
            ]),
        ),
        (
            "megakv_scaling",
            Json::object([
                ("rows", Json::Array(megakv_rows)),
                ("steps_per_sec_ratio_4096_vs_256", Json::Float(megakv_ratio)),
            ]),
        ),
        (
            "fork_cost",
            Json::object([
                ("dirty_target", Json::UInt(FORK_DIRTY as u64)),
                ("rows", Json::Array(fork_rows)),
                ("speedup_at_10240", Json::Float(fork_speedup_10240)),
            ]),
        ),
        (
            "results",
            Json::Array(b.results.iter().map(ToJson::to_json_value).collect()),
        ),
    ]);
    std::fs::write(&b.settings.json, json.to_string_pretty()).expect("write bench report");
    println!(
        "\nserial step loop: {serial:.0} exec/s ({:.2}x the pre-PR2 baseline of {:.0} exec/s)",
        serial / BASELINE_SERIAL_RANDOM_EXECS_PER_SEC.max(1e-9),
        BASELINE_SERIAL_RANDOM_EXECS_PER_SEC,
    );
    println!(
        "idle fault-probe overhead: {probe_overhead_percent:.1}% \
         (paired raw {:+.1}%, noise floor ±{:.1}%{})",
        probe.raw_percent,
        probe.noise_percent,
        if probe.noise_exceeds_effect() {
            ", noise exceeds effect"
        } else {
            ""
        }
    );
    println!(
        "8-worker per-core efficiency: {efficiency_8:.2}x on {cores} core(s) \
         (serial portfolio {serial_portfolio:.0} exec/s)"
    );
    println!(
        "schedule reduction: {reduction_ratio:.2}x redundancy ratio, \
         {effective_equivalents:.0} effective schedule-equivalents/s \
         ({effective_speedup:.2}x the random baseline); \
         prefix sharing {prefix_speedup:.2}x vs straight-line"
    );
    println!(
        "DPOR reduction: {:.2}x redundancy vs sleep-set {:.2}x \
         ({dpor_vs_sleep_set:.2}x further), {dpor_equivalents:.0} effective \
         schedule-equivalents/s vs sleep-set {sleep_set_wide_equivalents:.0}",
        dpor.dpor_ratio, dpor.sleep_set_ratio,
    );
    println!(
        "prefix-tree scaling: {tree_8:.0} exec/s at 8 workers vs {tree_1:.0} at 1 \
         ({tree_efficiency:.2}x per-core on {cores} core(s))"
    );
    println!("calibration probe: {calibration:.0} exec/s (fixed round-robin hotpath)");
    println!(
        "megakv scale sweep: {:.0} steps/s at 256 machines, {:.0} steps/s at 4096 \
         ({megakv_ratio:.2}x), {:.0} steps/s at 10240",
        megakv_steps_per_sec(256),
        megakv_steps_per_sec(4_096),
        megakv_steps_per_sec(10_240),
    );
    for row in &b.fork_cost {
        println!(
            "fork cost at {} machines ({} dirty): COW {:.0} restores/s vs full {:.0} \
             restores/s ({:.1}x)",
            row.machines,
            row.dirty_machines,
            row.cow_restores_per_sec,
            row.full_restores_per_sec,
            row.speedup(),
        );
    }
    println!("machine-readable report written to {}", b.settings.json);
}

fn main() {
    let mut b = Bench {
        settings: parse_settings(),
        results: Vec::new(),
        reduction_ratio: None,
        dpor_reduction: None,
        probe_overhead: None,
        fork_cost: Vec::new(),
    };
    calibration(&mut b);
    step_loop_hotpath(&mut b);
    schedule_reduction(&mut b);
    dpor_reduction(&mut b);
    prefix_tree_scaling(&mut b);
    megakv_scaling(&mut b);
    fork_cost(&mut b);
    harness_throughput(&mut b);
    scheduler_ablation(&mut b);
    pct_budget_ablation(&mut b);
    liveness_bound_ablation(&mut b);
    fault_injection_overhead(&mut b);
    portfolio_per_strategy(&mut b);
    worker_scaling(&mut b);
    shrink_pass(&mut b);
    parallel_engine_comparison(&mut b);
    write_report(&b);
}
