//! Benches measuring the cost of systematic testing (§6.2): executions per
//! unit of time for each case-study harness, the scheduler ablations (random
//! vs PCT vs round-robin, PCT priority-change budget, liveness step bound),
//! and the serial vs parallel portfolio engine comparison.
//!
//! This is a plain `harness = false` bench (no Criterion: the build
//! environment is hermetic). Each case runs a few timed repetitions and
//! prints the median wall-clock time plus executions/second.
//!
//! Run with `cargo bench -p bench` — or directly:
//! `cargo run --release -p bench --bench schedulers`.

use std::time::{Duration, Instant};

use psharp::engine::ParallelTestEngine;
use psharp::prelude::*;

const REPS: usize = 5;

fn run_iterations<F>(iterations: u64, max_steps: usize, scheduler: SchedulerKind, build: F) -> u64
where
    F: Fn(&mut Runtime),
{
    let engine = TestEngine::new(
        TestConfig::new()
            .with_iterations(iterations)
            .with_max_steps(max_steps)
            .with_seed(42)
            .with_scheduler(scheduler),
    );
    engine.run(build).total_steps
}

/// Times `body` over [`REPS`] repetitions and reports the median.
fn bench<F: FnMut() -> u64>(group: &str, name: &str, executions: u64, mut body: F) {
    let mut times: Vec<Duration> = Vec::with_capacity(REPS);
    let mut last_steps = 0;
    for _ in 0..REPS {
        let start = Instant::now();
        last_steps = body();
        times.push(start.elapsed());
    }
    times.sort();
    let median = times[times.len() / 2];
    let execs_per_sec = executions as f64 / median.as_secs_f64().max(1e-9);
    println!(
        "{group:<32} {name:<24} median {:>9.3}ms  {:>10.0} exec/s  {last_steps:>8} steps",
        median.as_secs_f64() * 1e3,
        execs_per_sec,
    );
}

/// Executions/second of each harness under the random scheduler (the cost the
/// paper's §6.2 reports as "time to bug" denominators).
fn harness_throughput() {
    let group = "executions_per_harness";
    bench(group, "replsim_fixed_10_execs", 10, || {
        run_iterations(10, 1_500, SchedulerKind::Random, |rt| {
            replsim::build_harness(rt, &replsim::ReplConfig::default());
        })
    });
    bench(group, "vnext_fixed_10_execs", 10, || {
        run_iterations(10, 2_000, SchedulerKind::Random, |rt| {
            vnext::build_harness(rt, &vnext::VnextConfig::default());
        })
    });
    bench(group, "chaintable_fixed_10_execs", 10, || {
        run_iterations(10, 10_000, SchedulerKind::Random, |rt| {
            chaintable::build_harness(rt, &chaintable::ChainConfig::fixed());
        })
    });
    bench(group, "fabric_fixed_10_execs", 10, || {
        run_iterations(10, 5_000, SchedulerKind::Random, |rt| {
            fabric::build_harness(rt, &fabric::FabricConfig::default());
        })
    });
}

/// Ablation: scheduler strategy on the same buggy harness (time to explore a
/// fixed execution budget).
fn scheduler_ablation() {
    let group = "scheduler_ablation_replsim";
    let schedulers = [
        ("random", SchedulerKind::Random),
        ("pct2", SchedulerKind::Pct { change_points: 2 }),
        ("round_robin", SchedulerKind::RoundRobin),
    ];
    for (label, scheduler) in schedulers {
        bench(group, label, 20, || {
            run_iterations(20, 1_500, scheduler, |rt| {
                replsim::build_harness(rt, &replsim::ReplConfig::with_duplicate_counting_bug());
            })
        });
    }
}

/// Ablation: PCT priority-change budget on the vNext liveness bug.
fn pct_budget_ablation() {
    let group = "pct_change_points_vnext";
    for change_points in [0usize, 2, 5] {
        bench(group, &format!("cp{change_points}"), 5, || {
            run_iterations(5, 3_000, SchedulerKind::Pct { change_points }, |rt| {
                vnext::build_harness(rt, &vnext::VnextConfig::with_liveness_bug());
            })
        });
    }
}

/// Ablation: the liveness "infinite execution" step bound (§2.5 heuristic).
fn liveness_bound_ablation() {
    let group = "liveness_step_bound_vnext";
    for max_steps in [1_000usize, 3_000, 6_000] {
        bench(group, &format!("bound{max_steps}"), 5, || {
            run_iterations(5, max_steps, SchedulerKind::Random, |rt| {
                vnext::build_harness(rt, &vnext::VnextConfig::with_liveness_bug());
            })
        });
    }
}

/// Serial vs parallel portfolio engine over the same bug-free exploration
/// budget, demonstrating the throughput multiplier of
/// [`ParallelTestEngine`] on multi-core hosts.
fn parallel_engine_comparison() {
    let group = "parallel_vs_serial_chaintable";
    let iterations = 40;
    let config = TestConfig::new()
        .with_iterations(iterations)
        .with_max_steps(2_000)
        .with_seed(42);
    let build = |rt: &mut Runtime| {
        chaintable::build_harness(rt, &chaintable::ChainConfig::fixed());
    };
    bench(group, "serial_1_worker", iterations, || {
        TestEngine::new(config.clone()).run(build).total_steps
    });
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    bench(
        group,
        &format!("parallel_{workers}_workers"),
        iterations,
        || {
            ParallelTestEngine::new(config.clone().with_workers(workers))
                .run(build)
                .total_steps
        },
    );
    // One untimed run for the summary line (printing inside the timed closure
    // would charge terminal I/O to the parallel measurement only).
    let report = ParallelTestEngine::new(config.with_workers(workers)).run(build);
    println!(
        "    parallel portfolio: {:.0} exec/s over {workers} workers ({})",
        report.executions_per_second(),
        report.summary()
    );
}

fn main() {
    harness_throughput();
    scheduler_ablation();
    pct_budget_ablation();
    liveness_bound_ablation();
    parallel_engine_comparison();
}
