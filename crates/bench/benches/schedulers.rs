//! Criterion benches measuring the cost of systematic testing (§6.2):
//! executions per unit of time for each case-study harness, and the scheduler
//! ablations called out in DESIGN.md (random vs PCT vs round-robin, PCT
//! priority-change budget, liveness step bound).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use psharp::prelude::*;

fn run_iterations<F>(iterations: u64, max_steps: usize, scheduler: SchedulerKind, build: F) -> u64
where
    F: Fn(&mut Runtime),
{
    let engine = TestEngine::new(
        TestConfig::new()
            .with_iterations(iterations)
            .with_max_steps(max_steps)
            .with_seed(42)
            .with_scheduler(scheduler),
    );
    engine.run(build).total_steps
}

/// Executions/second of each harness under the random scheduler (the cost the
/// paper's §6.2 reports as "time to bug" denominators).
fn harness_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("executions_per_harness");
    group.sample_size(10);

    group.bench_function("replsim_fixed_10_execs", |b| {
        b.iter(|| {
            run_iterations(10, 1_500, SchedulerKind::Random, |rt| {
                replsim::build_harness(rt, &replsim::ReplConfig::default());
            })
        })
    });
    group.bench_function("vnext_fixed_10_execs", |b| {
        b.iter(|| {
            run_iterations(10, 2_000, SchedulerKind::Random, |rt| {
                vnext::build_harness(rt, &vnext::VnextConfig::default());
            })
        })
    });
    group.bench_function("chaintable_fixed_10_execs", |b| {
        b.iter(|| {
            run_iterations(10, 10_000, SchedulerKind::Random, |rt| {
                chaintable::build_harness(rt, &chaintable::ChainConfig::fixed());
            })
        })
    });
    group.bench_function("fabric_fixed_10_execs", |b| {
        b.iter(|| {
            run_iterations(10, 5_000, SchedulerKind::Random, |rt| {
                fabric::build_harness(rt, &fabric::FabricConfig::default());
            })
        })
    });
    group.finish();
}

/// Ablation: scheduler strategy on the same buggy harness (time to explore a
/// fixed execution budget).
fn scheduler_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("scheduler_ablation_replsim_bug1");
    group.sample_size(10);
    let schedulers = [
        ("random", SchedulerKind::Random),
        ("pct2", SchedulerKind::Pct { change_points: 2 }),
        ("round_robin", SchedulerKind::RoundRobin),
    ];
    for (label, scheduler) in schedulers {
        group.bench_with_input(BenchmarkId::from_parameter(label), &scheduler, |b, &s| {
            b.iter(|| {
                run_iterations(20, 1_500, s, |rt| {
                    replsim::build_harness(rt, &replsim::ReplConfig::with_duplicate_counting_bug());
                })
            })
        });
    }
    group.finish();
}

/// Ablation: PCT priority-change budget on the vNext liveness bug.
fn pct_budget_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("pct_change_points_vnext");
    group.sample_size(10);
    for change_points in [0usize, 2, 5] {
        group.bench_with_input(
            BenchmarkId::from_parameter(change_points),
            &change_points,
            |b, &cp| {
                b.iter(|| {
                    run_iterations(
                        5,
                        3_000,
                        SchedulerKind::Pct { change_points: cp },
                        |rt| {
                            vnext::build_harness(rt, &vnext::VnextConfig::with_liveness_bug());
                        },
                    )
                })
            },
        );
    }
    group.finish();
}

/// Ablation: the liveness "infinite execution" step bound (§2.5 heuristic).
fn liveness_bound_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("liveness_step_bound_vnext");
    group.sample_size(10);
    for max_steps in [1_000usize, 3_000, 6_000] {
        group.bench_with_input(
            BenchmarkId::from_parameter(max_steps),
            &max_steps,
            |b, &bound| {
                b.iter(|| {
                    run_iterations(5, bound, SchedulerKind::Random, |rt| {
                        vnext::build_harness(rt, &vnext::VnextConfig::with_liveness_bug());
                    })
                })
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    harness_throughput,
    scheduler_ablation,
    pct_budget_ablation,
    liveness_bound_ablation
);
criterion_main!(benches);
