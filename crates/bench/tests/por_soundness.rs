//! Soundness suite for the PR 7 schedule-reduction machinery.
//!
//! Two properties keep "exploring fewer schedules" honest:
//!
//! - **Sleep-set partial-order reduction must not lose bugs.** Pruning an
//!   interleaving is only sound when an equivalent one is still explored, so
//!   the sleep-set scheduler must find every seeded bug of the Table 2
//!   reproduction within the same execution budget the other strategies get.
//! - **Prefix-sharing snapshot execution must not change results.** Forking
//!   an iteration from the post-setup snapshot instead of rebuilding the
//!   harness is an implementation detail: the (iteration, seed, decisions,
//!   bug) outcome must stay byte-identical at any worker count.

use bench::{bug_cases, hunt_with_fault_override};
use psharp::engine::ParallelTestEngine;
use psharp::prelude::*;
use psharp::runtime::{Runtime, RuntimeConfig};
use psharp::scheduler::RandomScheduler;

/// The Table 2 execution budget; `table2 --scheduler sleep-set` finds every
/// seeded bug well inside it (worst case observed: iteration 660).
const BUDGET: u64 = 2_000;

#[test]
fn sleep_set_finds_every_seeded_bug_within_the_table2_budget() {
    for case in bug_cases() {
        let config = TestConfig::new()
            .with_iterations(BUDGET)
            .with_seed(2016)
            .with_scheduler(SchedulerKind::SleepSet);
        let result = hunt_with_fault_override(&case, config, None);
        assert!(
            result.found,
            "sleep-set pruning lost the seeded bug {} (budget {BUDGET})",
            case.name
        );
    }
}

/// Every case-study harness supports post-setup snapshots: all machines and
/// monitors implement `clone_state` and every event queued during setup is
/// replicable. If one regresses, prefix sharing silently degrades to
/// straight-line execution — results stay correct but the speedup vanishes,
/// so this is the test that notices.
#[test]
fn every_case_study_harness_supports_post_setup_snapshots() {
    type Build = Box<dyn Fn(&mut Runtime)>;
    let harnesses: Vec<(&str, Build)> = vec![
        (
            "replsim",
            Box::new(|rt: &mut Runtime| {
                replsim::build_harness(rt, &replsim::ReplConfig::with_lost_replication_bug());
            }),
        ),
        (
            "vnext",
            Box::new(|rt: &mut Runtime| {
                vnext::build_harness(rt, &vnext::VnextConfig::with_liveness_bug());
            }),
        ),
        (
            "chaintable",
            Box::new(|rt: &mut Runtime| {
                chaintable::build_harness(rt, &chaintable::ChainConfig::fixed());
            }),
        ),
        (
            "fabric",
            Box::new(|rt: &mut Runtime| {
                fabric::build_harness(rt, &fabric::FabricConfig::with_promotion_bug());
            }),
        ),
        (
            "megakv",
            Box::new(|rt: &mut Runtime| {
                megakv::build_harness(rt, &megakv::MegaKvConfig::with_promote_lost_write_bug());
            }),
        ),
    ];
    for (name, build) in harnesses {
        let mut rt = Runtime::new(
            Box::new(RandomScheduler::new(1)),
            RuntimeConfig::default(),
            1,
        );
        build(&mut rt);
        assert!(
            rt.snapshot().is_some(),
            "the {name} harness is no longer snapshotable after setup"
        );
    }
}

fn build_replsim_bug(rt: &mut Runtime) {
    replsim::build_harness(rt, &replsim::ReplConfig::with_lost_replication_bug());
}

#[test]
fn prefix_shared_reports_are_byte_identical_at_any_worker_count() {
    let base = TestConfig::new()
        .with_iterations(200)
        .with_max_steps(2_500)
        .with_seed(2016)
        .with_faults(replsim::ReplConfig::with_lost_replication_bug().fault_plan());
    let reference = TestEngine::new(base.clone()).run(build_replsim_bug);
    let reference_bug = reference.bug.expect("the seeded replsim bug");

    for workers in [1, 2, 4, 8] {
        let report =
            ParallelTestEngine::new(base.clone().with_prefix_sharing(true).with_workers(workers))
                .run(build_replsim_bug);
        let bug = report
            .bug
            .unwrap_or_else(|| panic!("prefix sharing at {workers} workers lost the bug"));
        assert_eq!(
            bug.iteration, reference_bug.iteration,
            "winning iteration diverged at {workers} workers"
        );
        assert_eq!(
            bug.trace.decisions, reference_bug.trace.decisions,
            "trace decisions diverged at {workers} workers"
        );
        assert_eq!(bug.bug.kind, reference_bug.bug.kind);
        assert_eq!(bug.bug.message, reference_bug.bug.message);
    }
}

/// The two reduction layers compose: sleep-set scheduling over snapshot-forked
/// iterations reports exactly what it reports over straight-line execution,
/// including under an active fault budget (vNext's crash-induced liveness
/// bug).
#[test]
fn sleep_set_with_prefix_sharing_matches_straight_line_execution() {
    let build = |rt: &mut Runtime| {
        vnext::build_harness(rt, &vnext::VnextConfig::with_liveness_bug());
    };
    let base = TestConfig::new()
        .with_iterations(200)
        .with_max_steps(3_000)
        .with_seed(2016)
        .with_scheduler(SchedulerKind::SleepSet)
        .with_faults(vnext::VnextConfig::with_liveness_bug().fault_plan());

    let straight = TestEngine::new(base.clone()).run(build);
    let shared = TestEngine::new(base.with_prefix_sharing(true)).run(build);

    let a = straight.bug.expect("the seeded vNext liveness bug");
    let b = shared.bug.expect("prefix sharing lost the vNext bug");
    assert_eq!(a.iteration, b.iteration);
    assert_eq!(a.trace.decisions, b.trace.decisions);
    assert_eq!(a.bug.kind, b.bug.kind);
    assert_eq!(a.bug.message, b.bug.message);
    assert_eq!(straight.iterations_run, shared.iterations_run);
    assert_eq!(straight.total_steps, shared.total_steps);
}
