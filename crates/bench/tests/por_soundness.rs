//! Soundness suite for the PR 7 schedule-reduction machinery.
//!
//! Two properties keep "exploring fewer schedules" honest:
//!
//! - **Sleep-set partial-order reduction must not lose bugs.** Pruning an
//!   interleaving is only sound when an equivalent one is still explored, so
//!   the sleep-set scheduler must find every seeded bug of the Table 2
//!   reproduction within the same execution budget the other strategies get.
//! - **Prefix-sharing snapshot execution must not change results.** Forking
//!   an iteration from the post-setup snapshot instead of rebuilding the
//!   harness is an implementation detail: the (iteration, seed, decisions,
//!   bug) outcome must stay byte-identical at any worker count.

use bench::{bug_cases, hunt_with_fault_override};
use psharp::engine::{ParallelTestEngine, PrefixForkEngine, TestReport};
use psharp::prelude::*;
use psharp::runtime::{Runtime, RuntimeConfig};
use psharp::scheduler::RandomScheduler;

/// The Table 2 execution budget; `table2 --scheduler sleep-set` finds every
/// seeded bug well inside it (worst case observed: iteration 660).
const BUDGET: u64 = 2_000;

#[test]
fn sleep_set_finds_every_seeded_bug_within_the_table2_budget() {
    for case in bug_cases() {
        let config = TestConfig::new()
            .with_iterations(BUDGET)
            .with_seed(2016)
            .with_scheduler(SchedulerKind::sleep_set());
        let result = hunt_with_fault_override(&case, config, None);
        assert!(
            result.found,
            "sleep-set pruning lost the seeded bug {} (budget {BUDGET})",
            case.name
        );
    }
}

/// Vector-clock DPOR prunes entire continuations per scheduling point, a
/// much more aggressive reduction than sleep sets — so it gets the same
/// soundness obligation: every seeded bug of the Table 2 reproduction must
/// still be found within the shared execution budget.
#[test]
fn dpor_finds_every_seeded_bug_within_the_table2_budget() {
    for case in bug_cases() {
        let config = TestConfig::new()
            .with_iterations(BUDGET)
            .with_seed(2016)
            .with_scheduler(SchedulerKind::Dpor);
        let result = hunt_with_fault_override(&case, config, None);
        assert!(
            result.found,
            "DPOR pruning lost the seeded bug {} (budget {BUDGET})",
            case.name
        );
    }
}

/// Liveness verdicts under DPOR must be starvation-free: the strategy's
/// run-to-completion bias and backtrack priority are both fairness-bounded
/// and its bounded horizon is declared as an unfair prefix, so hot-at-bound
/// monitors get confirmed over the runtime's fair grace period instead of
/// reported immediately. Before those bounds existed, two racing machines
/// could ping-pong through the backtrack queue forever and the *fixed*
/// case studies reported spurious liveness violations — this is the test
/// that notices a regression.
#[test]
fn dpor_keeps_fixed_systems_clean() {
    type Build = Box<dyn Fn(&mut Runtime) + Send + Sync>;
    let checks: Vec<(&str, Build, usize)> = vec![
        (
            "replsim",
            Box::new(|rt: &mut Runtime| {
                replsim::build_harness(rt, &replsim::ReplConfig::default());
            }),
            2_500,
        ),
        (
            "vnext",
            Box::new(|rt: &mut Runtime| {
                vnext::build_harness(rt, &vnext::VnextConfig::default());
            }),
            3_000,
        ),
        (
            "chaintable",
            Box::new(|rt: &mut Runtime| {
                chaintable::build_harness(rt, &chaintable::ChainConfig::fixed());
            }),
            10_000,
        ),
        (
            "fabric",
            Box::new(|rt: &mut Runtime| {
                fabric::build_harness(rt, &fabric::FabricConfig::default());
            }),
            5_000,
        ),
        (
            "megakv",
            Box::new(|rt: &mut Runtime| {
                megakv::build_harness(rt, &megakv::MegaKvConfig::default());
            }),
            4_000,
        ),
    ];
    for (name, build, max_steps) in checks {
        let config = TestConfig::new()
            .with_iterations(50)
            .with_max_steps(max_steps)
            .with_seed(99)
            .with_scheduler(SchedulerKind::Dpor);
        let bug = bench::verify_fixed_config(move |rt| build(rt), config);
        assert!(
            bug.is_none(),
            "DPOR reported a spurious liveness violation on the fixed {name} system: {}",
            bug.unwrap()
        );
    }
}

/// Every case-study harness supports post-setup snapshots: all machines and
/// monitors implement `clone_state` and every event queued during setup is
/// replicable. If one regresses, prefix sharing silently degrades to
/// straight-line execution — results stay correct but the speedup vanishes,
/// so this is the test that notices.
#[test]
fn every_case_study_harness_supports_post_setup_snapshots() {
    type Build = Box<dyn Fn(&mut Runtime)>;
    let harnesses: Vec<(&str, Build)> = vec![
        (
            "replsim",
            Box::new(|rt: &mut Runtime| {
                replsim::build_harness(rt, &replsim::ReplConfig::with_lost_replication_bug());
            }),
        ),
        (
            "vnext",
            Box::new(|rt: &mut Runtime| {
                vnext::build_harness(rt, &vnext::VnextConfig::with_liveness_bug());
            }),
        ),
        (
            "chaintable",
            Box::new(|rt: &mut Runtime| {
                chaintable::build_harness(rt, &chaintable::ChainConfig::fixed());
            }),
        ),
        (
            "fabric",
            Box::new(|rt: &mut Runtime| {
                fabric::build_harness(rt, &fabric::FabricConfig::with_promotion_bug());
            }),
        ),
        (
            "megakv",
            Box::new(|rt: &mut Runtime| {
                megakv::build_harness(rt, &megakv::MegaKvConfig::with_promote_lost_write_bug());
            }),
        ),
    ];
    for (name, build) in harnesses {
        let mut rt = Runtime::new(
            Box::new(RandomScheduler::new(1)),
            RuntimeConfig::default(),
            1,
        );
        build(&mut rt);
        assert!(
            rt.snapshot().is_some(),
            "the {name} harness is no longer snapshotable after setup"
        );
    }
}

fn build_replsim_bug(rt: &mut Runtime) {
    replsim::build_harness(rt, &replsim::ReplConfig::with_lost_replication_bug());
}

#[test]
fn prefix_shared_reports_are_byte_identical_at_any_worker_count() {
    let base = TestConfig::new()
        .with_iterations(200)
        .with_max_steps(2_500)
        .with_seed(2016)
        .with_faults(replsim::ReplConfig::with_lost_replication_bug().fault_plan());
    let reference = TestEngine::new(base.clone()).run(build_replsim_bug);
    let reference_bug = reference.bug.expect("the seeded replsim bug");

    for workers in [1, 2, 4, 8] {
        let report =
            ParallelTestEngine::new(base.clone().with_prefix_sharing(true).with_workers(workers))
                .run(build_replsim_bug);
        let bug = report
            .bug
            .unwrap_or_else(|| panic!("prefix sharing at {workers} workers lost the bug"));
        assert_eq!(
            bug.iteration, reference_bug.iteration,
            "winning iteration diverged at {workers} workers"
        );
        assert_eq!(
            bug.trace.decisions, reference_bug.trace.decisions,
            "trace decisions diverged at {workers} workers"
        );
        assert_eq!(bug.bug.kind, reference_bug.bug.kind);
        assert_eq!(bug.bug.message, reference_bug.bug.message);
    }
}

/// The two reduction layers compose: sleep-set scheduling over snapshot-forked
/// iterations reports exactly what it reports over straight-line execution,
/// including under an active fault budget (vNext's crash-induced liveness
/// bug).
#[test]
fn sleep_set_with_prefix_sharing_matches_straight_line_execution() {
    let build = |rt: &mut Runtime| {
        vnext::build_harness(rt, &vnext::VnextConfig::with_liveness_bug());
    };
    let base = TestConfig::new()
        .with_iterations(200)
        .with_max_steps(3_000)
        .with_seed(2016)
        .with_scheduler(SchedulerKind::sleep_set())
        .with_faults(vnext::VnextConfig::with_liveness_bug().fault_plan());

    let straight = TestEngine::new(base.clone()).run(build);
    let shared = TestEngine::new(base.with_prefix_sharing(true)).run(build);

    let a = straight.bug.expect("the seeded vNext liveness bug");
    let b = shared.bug.expect("prefix sharing lost the vNext bug");
    assert_eq!(a.iteration, b.iteration);
    assert_eq!(a.trace.decisions, b.trace.decisions);
    assert_eq!(a.bug.kind, b.bug.kind);
    assert_eq!(a.bug.message, b.bug.message);
    assert_eq!(straight.iterations_run, shared.iterations_run);
    assert_eq!(straight.total_steps, shared.total_steps);
}

/// DPOR composes with the other exploration layers exactly like sleep sets:
/// driving snapshot-forked iterations under an active fault budget reports
/// what straight-line execution reports, bit for bit. Backtrack points are
/// ordinary recorded schedule decisions, so nothing downstream (replay,
/// shrinking, fault injection) can tell the difference.
#[test]
fn dpor_with_prefix_sharing_and_faults_matches_straight_line_execution() {
    let build = |rt: &mut Runtime| {
        vnext::build_harness(rt, &vnext::VnextConfig::with_liveness_bug());
    };
    let base = TestConfig::new()
        .with_iterations(200)
        .with_max_steps(3_000)
        .with_seed(2016)
        .with_scheduler(SchedulerKind::Dpor)
        .with_faults(vnext::VnextConfig::with_liveness_bug().fault_plan());

    let straight = TestEngine::new(base.clone()).run(build);
    let shared = TestEngine::new(base.with_prefix_sharing(true)).run(build);

    let a = straight
        .bug
        .expect("the seeded vNext liveness bug under DPOR");
    let b = shared
        .bug
        .expect("prefix sharing lost the vNext bug under DPOR");
    assert_eq!(a.iteration, b.iteration);
    assert_eq!(a.trace.decisions, b.trace.decisions);
    assert_eq!(a.bug.kind, b.bug.kind);
    assert_eq!(a.bug.message, b.bug.message);
    assert_eq!(straight.iterations_run, shared.iterations_run);
    assert_eq!(straight.total_steps, shared.total_steps);
}

/// Everything of a bug-free report except wall-clock times, compared across
/// worker counts.
fn report_key(report: &TestReport) -> (u64, u64, String, Vec<String>) {
    (
        report.iterations_run,
        report.total_steps,
        report.scheduler.to_string(),
        report
            .per_strategy
            .iter()
            .map(|row| format!("{row:?}"))
            .collect(),
    )
}

/// The parallel prefix-tree engine keeps the flat engines' guarantee: a
/// bug-free run's report — iteration count, step count, per-strategy
/// attribution including pruned/race/backtrack counters — is byte-identical
/// at 1, 2, 4 and 8 workers, and so is the flat parallel engine's on the
/// same harness and portfolio.
#[test]
fn tree_and_flat_reports_are_byte_identical_at_any_worker_count() {
    let build = |rt: &mut Runtime| {
        chaintable::build_harness(rt, &chaintable::ChainConfig::fixed());
    };
    let base = TestConfig::new()
        .with_iterations(48)
        .with_max_steps(2_000)
        .with_seed(7)
        .with_default_portfolio();

    let tree_reference = PrefixForkEngine::new(base.clone().with_workers(1), 2).run(build);
    assert!(
        tree_reference.bug.is_none(),
        "the fixed chaintable harness must be bug-free"
    );
    let flat_reference = ParallelTestEngine::new(base.clone().with_workers(1)).run(build);
    for workers in [2, 4, 8] {
        let tree = PrefixForkEngine::new(base.clone().with_workers(workers), 2).run(build);
        assert_eq!(
            report_key(&tree),
            report_key(&tree_reference),
            "prefix-tree report diverged at {workers} workers"
        );
        let flat = ParallelTestEngine::new(base.clone().with_workers(workers)).run(build);
        assert_eq!(
            report_key(&flat),
            report_key(&flat_reference),
            "flat parallel report diverged at {workers} workers"
        );
    }
}

/// When the harness does have a bug, the tree engine's winner — iteration,
/// decisions, bug identity — is the same at any worker count, mirroring the
/// flat parallel engine's deterministic first-bug selection.
#[test]
fn tree_engine_bug_selection_is_worker_count_independent() {
    let base = TestConfig::new()
        .with_iterations(200)
        .with_max_steps(2_500)
        .with_seed(2016)
        .with_faults(replsim::ReplConfig::with_lost_replication_bug().fault_plan());
    let reference = PrefixForkEngine::new(base.clone().with_workers(1), 2).run(build_replsim_bug);
    let reference_bug = reference.bug.expect("the seeded replsim bug via the tree");

    for workers in [2, 4, 8] {
        let report =
            PrefixForkEngine::new(base.clone().with_workers(workers), 2).run(build_replsim_bug);
        let bug = report
            .bug
            .unwrap_or_else(|| panic!("the tree engine at {workers} workers lost the bug"));
        assert_eq!(
            bug.iteration, reference_bug.iteration,
            "winning iteration diverged at {workers} workers"
        );
        assert_eq!(
            bug.trace.decisions, reference_bug.trace.decisions,
            "trace decisions diverged at {workers} workers"
        );
        assert_eq!(bug.bug.kind, reference_bug.bug.kind);
        assert_eq!(bug.bug.message, reference_bug.bug.message);
    }
}
