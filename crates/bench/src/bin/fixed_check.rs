//! Verifies that the *fixed* variants of every case study stay clean over a
//! configurable number of executions — the paper's "no bugs were found during
//! 100,000 executions" check after the fixes were applied (§3.6).
//!
//! Usage: `fixed_check [--iterations N] [--workers W|max]
//! [--scheduler random|pct|delay|prob|round-robin|sleep-set[:N]|dpor]
//! [--portfolio] [--prefix-share] [--trace-mode full|ring:N|decisions]
//! [--faults default|crash=N,restart=N,drop=N,dup=N]` (defaults: 2,000
//! executions, 1 worker, random scheduling, full traces, no faults).
//! `--portfolio` verifies under the full default strategy portfolio instead
//! of a single scheduler; `--scheduler sleep-set` (alias `por`) verifies
//! with the sleep-set partial-order-reduction scheduler, covering more
//! distinct behaviors per execution budget (`sleep-set:N` sets its
//! wake-after-skips fairness knob, and `--scheduler dpor` uses the
//! vector-clock dynamic-POR scheduler instead); `--prefix-share` forks each
//! iteration from a post-setup snapshot of the harness instead of
//! rebuilding it (identical results, cheaper iterations); `--trace-mode
//! ring:N` bounds per-execution trace
//! memory on long verification runs; `--faults` additionally injects
//! environment faults — `--faults default` uses each harness's designed
//! fault budget (crashes for vNext/Fabric/megakv, message loss for replsim,
//! crash+restart for MigratingTable), verifying the *fault tolerance* of the
//! fixed systems, while an explicit plan applies globally.
//!
//! The PR 3 caveat about spurious liveness "violations" under unfair
//! strategies (PCT, delay-bounding, the probabilistic walk) is resolved: the
//! runtime now confirms bounded-horizon liveness verdicts of
//! starvation-prone strategies over a fair grace period, so `--scheduler
//! pct`, `--scheduler delay`, `--scheduler prob` and `--portfolio` runs
//! stay clean on the fixed systems at the default bounds.

use bench::{parse_scheduler, verify_fixed_config};
use psharp::prelude::*;

/// How the check injects faults into the fixed systems.
#[derive(Clone, Copy)]
enum FaultMode {
    /// No faults (the historical behavior).
    None,
    /// Each harness's own designed budget (`--faults default`).
    PerHarness,
    /// One explicit global plan.
    Global(FaultPlan),
}

fn main() {
    let mut iterations: u64 = 2_000;
    let mut workers: usize = 1;
    let mut scheduler = SchedulerKind::Random;
    let mut portfolio = false;
    let mut prefix_share = false;
    let mut trace_mode: Option<TraceMode> = None;
    let mut fault_mode = FaultMode::None;
    let mut argv = std::env::args().skip(1);
    while let Some(flag) = argv.next() {
        match flag.as_str() {
            "--faults" => {
                let spec = argv.next().expect("--faults requires a plan or 'default'");
                fault_mode = if spec == "default" {
                    FaultMode::PerHarness
                } else {
                    FaultMode::Global(
                        FaultPlan::parse(&spec)
                            .unwrap_or_else(|| panic!("unknown fault plan {spec:?}")),
                    )
                };
            }
            "--trace-mode" => {
                let name = argv.next().expect("--trace-mode requires a mode");
                trace_mode = Some(
                    TraceMode::parse(&name)
                        .unwrap_or_else(|| panic!("unknown trace mode {name:?}")),
                );
            }
            "--iterations" => {
                iterations = argv
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--iterations requires a number");
            }
            "--scheduler" => {
                let name = argv.next().expect("--scheduler requires a name");
                scheduler =
                    parse_scheduler(&name).unwrap_or_else(|| panic!("unknown scheduler {name:?}"));
            }
            "--portfolio" => portfolio = true,
            "--prefix-share" => prefix_share = true,
            "--workers" => {
                workers = match argv.next().as_deref() {
                    Some("max") => std::thread::available_parallelism()
                        .map(|n| n.get())
                        .unwrap_or(1),
                    Some(value) => value
                        .parse::<usize>()
                        .expect("--workers requires a number or 'max'")
                        .max(1),
                    None => panic!("--workers requires a number or 'max'"),
                };
            }
            other => panic!("unknown argument {other:?}"),
        }
    }

    type Build = Box<dyn Fn(&mut psharp::runtime::Runtime) + Send + Sync>;
    let checks: Vec<(&str, Build, usize, FaultPlan)> = vec![
        (
            "replsim (fixed server)",
            Box::new(|rt: &mut psharp::runtime::Runtime| {
                replsim::build_harness(rt, &replsim::ReplConfig::default());
            }),
            2_500,
            replsim::ReplConfig::default().fault_plan(),
        ),
        (
            "vNext extent manager (fixed)",
            Box::new(|rt: &mut psharp::runtime::Runtime| {
                vnext::build_harness(rt, &vnext::VnextConfig::default());
            }),
            3_000,
            vnext::VnextConfig::default().fault_plan(),
        ),
        (
            "MigratingTable (fixed)",
            Box::new(|rt: &mut psharp::runtime::Runtime| {
                chaintable::build_harness(rt, &chaintable::ChainConfig::fixed());
            }),
            10_000,
            chaintable::ChainConfig::fixed().fault_plan(),
        ),
        (
            "Fabric failover (fixed)",
            Box::new(|rt: &mut psharp::runtime::Runtime| {
                fabric::build_harness(rt, &fabric::FabricConfig::default());
            }),
            5_000,
            fabric::FabricConfig::default().fault_plan(),
        ),
        (
            "megakv sharded store (fixed)",
            Box::new(|rt: &mut psharp::runtime::Runtime| {
                megakv::build_harness(rt, &megakv::MegaKvConfig::default());
            }),
            4_000,
            megakv::MegaKvConfig::default().fault_plan(),
        ),
    ];

    let mode = if portfolio {
        "portfolio".to_string()
    } else {
        scheduler.describe()
    };
    let fault_label = match fault_mode {
        FaultMode::None => "no faults".to_string(),
        FaultMode::PerHarness => "per-harness fault budgets".to_string(),
        FaultMode::Global(plan) => format!("faults {plan}"),
    };
    println!(
        "Fixed-system verification over {iterations} executions each ({workers} worker(s), {mode}, {fault_label}):\n"
    );
    let mut clean = true;
    for (name, build, max_steps, harness_faults) in checks {
        let start = std::time::Instant::now();
        let mut config = TestConfig::new()
            .with_iterations(iterations)
            .with_max_steps(max_steps)
            .with_seed(99)
            .with_scheduler(scheduler)
            .with_workers(workers)
            .with_prefix_sharing(prefix_share)
            .with_faults(match fault_mode {
                FaultMode::None => FaultPlan::none(),
                FaultMode::PerHarness => harness_faults,
                FaultMode::Global(plan) => plan,
            });
        if portfolio {
            config = config.with_default_portfolio();
        }
        if let Some(trace_mode) = trace_mode {
            config = config.with_trace_mode(trace_mode);
        }
        match verify_fixed_config(|rt| build(rt), config) {
            None => println!(
                "  {name:<32} clean ({iterations} executions, {}s)",
                bench::seconds(start.elapsed())
            ),
            Some(bug) => {
                clean = false;
                println!("  {name:<32} VIOLATION: {bug}");
            }
        }
    }
    if !clean {
        std::process::exit(1);
    }
}
