//! Verifies that the *fixed* variants of every case study stay clean over a
//! configurable number of executions — the paper's "no bugs were found during
//! 100,000 executions" check after the fixes were applied (§3.6).
//!
//! Usage: `fixed_check [--iterations N] [--workers W|max]` (defaults: 2,000
//! executions, 1 worker).

use bench::verify_fixed_parallel;

fn main() {
    let mut iterations: u64 = 2_000;
    let mut workers: usize = 1;
    let mut argv = std::env::args().skip(1);
    while let Some(flag) = argv.next() {
        match flag.as_str() {
            "--iterations" => {
                iterations = argv
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--iterations requires a number");
            }
            "--workers" => {
                workers = match argv.next().as_deref() {
                    Some("max") => std::thread::available_parallelism()
                        .map(|n| n.get())
                        .unwrap_or(1),
                    Some(value) => value
                        .parse::<usize>()
                        .expect("--workers requires a number or 'max'")
                        .max(1),
                    None => panic!("--workers requires a number or 'max'"),
                };
            }
            other => panic!("unknown argument {other:?}"),
        }
    }

    type Build = Box<dyn Fn(&mut psharp::runtime::Runtime) + Send + Sync>;
    let checks: Vec<(&str, Build, usize)> = vec![
        (
            "replsim (fixed server)",
            Box::new(|rt: &mut psharp::runtime::Runtime| {
                replsim::build_harness(rt, &replsim::ReplConfig::default());
            }),
            2_500,
        ),
        (
            "vNext extent manager (fixed)",
            Box::new(|rt: &mut psharp::runtime::Runtime| {
                vnext::build_harness(rt, &vnext::VnextConfig::default());
            }),
            3_000,
        ),
        (
            "MigratingTable (fixed)",
            Box::new(|rt: &mut psharp::runtime::Runtime| {
                chaintable::build_harness(rt, &chaintable::ChainConfig::fixed());
            }),
            10_000,
        ),
        (
            "Fabric failover (fixed)",
            Box::new(|rt: &mut psharp::runtime::Runtime| {
                fabric::build_harness(rt, &fabric::FabricConfig::default());
            }),
            5_000,
        ),
    ];

    println!(
        "Fixed-system verification over {iterations} executions each ({workers} worker(s)):\n"
    );
    let mut clean = true;
    for (name, build, max_steps) in checks {
        let start = std::time::Instant::now();
        match verify_fixed_parallel(|rt| build(rt), iterations, max_steps, 99, workers) {
            None => println!(
                "  {name:<32} clean ({iterations} executions, {}s)",
                bench::seconds(start.elapsed())
            ),
            Some(bug) => {
                clean = false;
                println!("  {name:<32} VIOLATION: {bug}");
            }
        }
    }
    if !clean {
        std::process::exit(1);
    }
}
