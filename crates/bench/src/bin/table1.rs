//! Regenerates Table 1 of the paper: modeling-cost statistics per case study.
//!
//! The machine / state-transition / action-handler counts come from each
//! harness crate; lines of code are counted over this repository's crates
//! (system-under-test crate vs its harness modules), mirroring how the paper
//! reports the size of the real system against the size of its P# test
//! harness.

use std::path::Path;

use psharp::stats::{count_loc, ModelStats};

fn crate_dir(name: &str) -> std::path::PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .expect("crates/ directory")
        .join(name)
        .join("src")
}

fn loc(name: &str, files: &[&str]) -> usize {
    files
        .iter()
        .map(|file| {
            let path = crate_dir(name).join(file);
            if path.is_dir() {
                count_loc(&path)
            } else {
                single_file_loc(&path)
            }
        })
        .sum()
}

fn single_file_loc(path: &Path) -> usize {
    std::fs::read_to_string(path)
        .map(|text| {
            text.lines()
                .map(str::trim)
                .filter(|l| !l.is_empty() && !l.starts_with("//"))
                .count()
        })
        .unwrap_or(0)
}

fn main() {
    // System-under-test code vs harness (environment model + monitors) code,
    // per case study.
    let rows = vec![
        (
            replsim::model_stats(),
            loc("replsim", &["server.rs"]),
            loc(
                "replsim",
                &[
                    "client.rs",
                    "storage_node.rs",
                    "monitors.rs",
                    "harness.rs",
                    "events.rs",
                ],
            ),
        ),
        (
            vnext::model_stats(),
            loc(
                "vnext",
                &[
                    "extent_manager.rs",
                    "extent_center.rs",
                    "en_store.rs",
                    "types.rs",
                ],
            ),
            loc(
                "vnext",
                &["machines", "monitor.rs", "harness.rs", "events.rs"],
            ),
        ),
        (
            chaintable::model_stats(),
            loc("chaintable", &["table.rs", "migrate.rs"]),
            loc("chaintable", &["machines.rs", "spec.rs", "harness.rs"]),
        ),
        (
            fabric::model_stats(),
            loc("fabric", &["service.rs", "pipeline.rs"]),
            loc("fabric", &["cluster.rs", "harness.rs"]),
        ),
    ];

    println!("Table 1: statistics from modeling the environment of the systems under test\n");
    println!("{}", ModelStats::table_header());
    for (stats, system_loc, harness_loc) in rows {
        let stats = stats.with_loc(system_loc, harness_loc);
        println!("{stats}");
    }
    println!(
        "\n(paper reference: vNext 19,775/684 LoC, 1 bug, 5 machines; MigratingTable \
         2,267/2,275 LoC, 11 bugs, 3 machines; Fabric 31,959/6,534 LoC, 1 bug, 13 machines)"
    );
}
