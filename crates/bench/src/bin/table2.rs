//! Regenerates Table 2 of the paper: for every re-introducible bug, whether
//! the random and the priority-based (PCT) schedulers find it, the time to
//! the first buggy execution, and the number of nondeterministic choices in
//! that execution.
//!
//! Usage:
//!
//! ```text
//! table2 [--iterations N] [--seed S]
//!        [--scheduler random|pct|delay|prob|round-robin|sleep-set[:N]|dpor|both|all]
//!        [--json PATH] [--workers W] [--portfolio] [--prefix-share]
//!        [--shrink] [--trace-mode full|ring:N|decisions]
//!        [--faults crash=N,restart=N,drop=N,dup=N]
//! ```
//!
//! Fault-induced bug cases carry their own fault budget (a crash for the
//! vNext and Fabric failover bugs, message loss for the replsim
//! retransmission bug, crash+restart for the MigratingTable recovery bug) —
//! it is applied automatically. `--faults` overrides every case's budget
//! with one global plan; `--faults none` disables fault injection entirely
//! (the fault-induced bugs then become unreachable by design).
//!
//! `--shrink` delta-debugs every found bug's schedule down to a minimal
//! replayable counterexample (extra `MinNDC` column + `minimized_ndc` /
//! `shrink_time_seconds` JSON fields). `--trace-mode` bounds how much of the
//! human-facing annotated schedule each execution retains (`ring:N` keeps
//! the last N steps, `decisions` keeps none); replay is unaffected.
//!
//! `--scheduler both` runs the paper's random + PCT pair (the default);
//! `--scheduler all` adds the delay-bounding, probabilistic-random and
//! round-robin ablations as extra rows per bug. `--scheduler sleep-set`
//! (alias `por`) hunts with the sleep-set partial-order-reduction scheduler,
//! which skips interleavings equivalent to ones already explored;
//! `sleep-set:N` sets its wake-after-skips fairness knob. `--scheduler dpor`
//! hunts with the vector-clock dynamic-POR scheduler, whose happens-before
//! tracking prunes past the fixed sleep window.
//!
//! `--prefix-share` makes every run fork its iterations from a post-setup
//! snapshot of the harness instead of rebuilding it, when the harness
//! supports state cloning (all four case studies do); results are identical,
//! iterations are cheaper.
//!
//! `--portfolio` replaces the per-scheduler columns with one run per bug
//! that mixes the full default scheduler portfolio (random, PCT with
//! several priority-change budgets, delay-bounding, probabilistic random,
//! round-robin) over the iteration space. The strategy driving an iteration
//! is decided by the iteration index, so the reported (iteration, seed,
//! strategy, bug) result is identical at any `--workers` value — including
//! a serial run; the scheduler column reports the strategy that earned the
//! bug.
//!
//! The paper uses 100,000 executions per cell; the default here is 2,000 so
//! the whole table regenerates in minutes on a laptop. Pass `--iterations
//! 100000` for the full-budget run.

use std::fs;

use bench::{bug_cases, hunt_with_fault_override, parse_scheduler, BugHuntResult};
use psharp::json::{Json, ToJson};
use psharp::prelude::{FaultPlan, SchedulerKind, TestConfig, TraceMode};

struct Args {
    iterations: u64,
    seed: u64,
    schedulers: Vec<SchedulerKind>,
    json: Option<String>,
    workers: usize,
    portfolio: bool,
    prefix_share: bool,
    shrink: bool,
    trace_mode: Option<TraceMode>,
    faults: Option<FaultPlan>,
}

fn parse_args() -> Args {
    let mut args = Args {
        iterations: 2_000,
        seed: 2016,
        schedulers: vec![
            SchedulerKind::Random,
            SchedulerKind::Pct { change_points: 2 },
        ],
        json: None,
        workers: 1,
        portfolio: false,
        prefix_share: false,
        shrink: false,
        trace_mode: None,
        faults: None,
    };
    let mut argv = std::env::args().skip(1);
    while let Some(flag) = argv.next() {
        match flag.as_str() {
            "--iterations" => {
                args.iterations = argv
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--iterations requires a number");
            }
            "--seed" => {
                args.seed = argv
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--seed requires a number");
            }
            "--scheduler" => match argv.next().as_deref() {
                Some("both") => {}
                Some("all") => {
                    // One source of truth for the default parameterizations:
                    // the same parser the single-name path uses.
                    args.schedulers = ["random", "pct", "delay", "prob", "round-robin"]
                        .iter()
                        .map(|name| parse_scheduler(name).expect("known scheduler name"))
                        .collect();
                }
                Some(name) => match parse_scheduler(name) {
                    Some(kind) => args.schedulers = vec![kind],
                    None => panic!("unknown scheduler {name:?}"),
                },
                None => panic!("--scheduler requires a name"),
            },
            "--json" => args.json = argv.next(),
            "--faults" => {
                let spec = argv.next().expect("--faults requires a plan");
                args.faults = Some(
                    FaultPlan::parse(&spec)
                        .unwrap_or_else(|| panic!("unknown fault plan {spec:?}")),
                );
            }
            "--portfolio" => args.portfolio = true,
            "--prefix-share" => args.prefix_share = true,
            "--shrink" => args.shrink = true,
            "--trace-mode" => {
                let name = argv.next().expect("--trace-mode requires a mode");
                args.trace_mode = Some(
                    TraceMode::parse(&name)
                        .unwrap_or_else(|| panic!("unknown trace mode {name:?}")),
                );
            }
            "--workers" => {
                args.workers = match argv.next().as_deref() {
                    Some("max") => std::thread::available_parallelism()
                        .map(|n| n.get())
                        .unwrap_or(1),
                    Some(value) => value
                        .parse::<usize>()
                        .expect("--workers requires a number or 'max'")
                        .max(1),
                    None => panic!("--workers requires a number or 'max'"),
                };
            }
            other => panic!("unknown argument {other:?}"),
        }
    }
    args
}

fn main() {
    let args = parse_args();
    println!(
        "Table 2: systematic testing results ({} executions per bug and scheduler, seed {}, {} worker(s))\n",
        args.iterations, args.seed, args.workers
    );
    println!("{}", BugHuntResult::table_header());

    let mut base_config = TestConfig::new()
        .with_iterations(args.iterations)
        .with_seed(args.seed)
        .with_workers(args.workers)
        .with_shrink(args.shrink)
        .with_prefix_sharing(args.prefix_share);
    if let Some(trace_mode) = args.trace_mode {
        base_config = base_config.with_trace_mode(trace_mode);
    }

    let mut results: Vec<BugHuntResult> = Vec::new();
    for case in bug_cases() {
        if args.portfolio {
            // `--faults` (including `none`) replaces every case's own fault
            // budget with one global plan; without it each case's applies.
            let result = hunt_with_fault_override(
                &case,
                base_config.clone().with_default_portfolio(),
                args.faults,
            );
            println!("{}", result.table_row());
            results.push(result);
        } else {
            for &scheduler in &args.schedulers {
                let result = hunt_with_fault_override(
                    &case,
                    base_config.clone().with_scheduler(scheduler),
                    args.faults,
                );
                println!("{}", result.table_row());
                results.push(result);
            }
        }
    }

    let found = results.iter().filter(|r| r.found).count();
    println!(
        "\n{} of {} (bug, scheduler) cells found the bug within the budget.",
        found,
        results.len()
    );
    if let Some(path) = args.json {
        let json =
            Json::Array(results.iter().map(ToJson::to_json_value).collect()).to_string_pretty();
        fs::write(&path, json).expect("write results file");
        println!("results written to {path}");
    }
}
