//! Shared experiment-runner utilities used by the table-regeneration binaries
//! (`table1`, `table2`) and the Criterion benches.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::Duration;

use psharp::json::{Json, ToJson};
use psharp::prelude::*;

/// One named, re-introducible bug together with the harness that exposes it.
pub struct BugCase {
    /// The case-study index used by the paper's Table 2 ("1" = vNext,
    /// "2" = MigratingTable, "3" = Fabric; "0" = the §2 example replication
    /// system, "4" = the mega-scale sharded KV store).
    pub case_study: u8,
    /// The paper's bug identifier.
    pub name: &'static str,
    /// Builds the harness with the bug re-introduced.
    pub build: Box<dyn Fn(&mut Runtime) + Send + Sync>,
    /// Per-execution step bound appropriate for the harness.
    pub max_steps: usize,
    /// The fault budget the bug needs ([`FaultPlan::none`] for bugs
    /// reachable on a reliable network without crashes). Applied by
    /// [`hunt_with_config`] unless the caller's configuration already
    /// carries its own plan.
    pub faults: FaultPlan,
}

/// The full list of re-introducible bugs across the case studies, in the
/// order of the paper's Table 2, plus the Fabric bugs reported in §5 and the
/// fault-induced bugs of the PR 5 fault-injection refactor (one per
/// case-study crate; each needs its [`BugCase::faults`] budget to be
/// reachable).
pub fn bug_cases() -> Vec<BugCase> {
    let mut cases: Vec<BugCase> = Vec::new();

    // The §2 example replication system: the fault-induced missing
    // retransmission bug (needs message loss on the lossy storage channel).
    cases.push(BugCase {
        case_study: 0,
        name: "ReplReqLostNoRetransmit",
        build: Box::new(|rt| {
            replsim::build_harness(rt, &replsim::ReplConfig::with_lost_replication_bug());
        }),
        max_steps: 2_500,
        faults: replsim::ReplConfig::with_lost_replication_bug().fault_plan(),
    });

    // Case study 1: Azure Storage vNext. The §3.6 liveness bug is
    // fault-induced: it needs a scheduler-injected EN crash.
    cases.push(BugCase {
        case_study: 1,
        name: "ExtentNodeLivenessViolation",
        build: Box::new(|rt| {
            vnext::build_harness(rt, &vnext::VnextConfig::with_liveness_bug());
        }),
        max_steps: 3_000,
        faults: vnext::VnextConfig::with_liveness_bug().fault_plan(),
    });

    // Case study 2: MigratingTable (the eleven named bugs of Table 2).
    for (name, config) in chaintable::named_bugs() {
        cases.push(BugCase {
            case_study: 2,
            name,
            build: Box::new(move |rt| {
                chaintable::build_harness(rt, &config);
            }),
            max_steps: 10_000,
            faults: FaultPlan::none(),
        });
    }
    // ... plus the fault-induced migrator-recovery bug (needs a
    // crash+restart of the migrator).
    cases.push(BugCase {
        case_study: 2,
        name: "MigratorRestartSkipsStep",
        build: Box::new(|rt| {
            chaintable::build_harness(rt, &chaintable::ChainConfig::with_restart_bug());
        }),
        max_steps: 10_000,
        faults: chaintable::ChainConfig::with_restart_bug().fault_plan(),
    });

    // Case study 3: Fabric (reported in §5, not part of Table 2). The
    // promotion bug is fault-induced: it needs a primary crash.
    cases.push(BugCase {
        case_study: 3,
        name: "FabricPromotePendingCopy",
        build: Box::new(|rt| {
            fabric::build_harness(rt, &fabric::FabricConfig::with_promotion_bug());
        }),
        max_steps: 5_000,
        faults: fabric::FabricConfig::with_promotion_bug().fault_plan(),
    });
    cases.push(BugCase {
        case_study: 3,
        name: "CScaleUninitializedConfig",
        build: Box::new(|rt| {
            fabric::build_harness(rt, &fabric::FabricConfig::with_pipeline_bug());
        }),
        max_steps: 2_000,
        faults: FaultPlan::none(),
    });

    // Case study 4: the mega-scale sharded KV store. Three bugs reachable on
    // a reliable network (the shard-aliasing bug only exists beyond 256
    // shards) plus the fault-induced promotion bug (needs a primary crash).
    cases.push(BugCase {
        case_study: 4,
        name: "MegaKvShardAliasing",
        build: Box::new(|rt| {
            megakv::build_harness(rt, &megakv::MegaKvConfig::with_shard_aliasing_bug());
        }),
        max_steps: 6_000,
        faults: FaultPlan::none(),
    });
    cases.push(BugCase {
        case_study: 4,
        name: "MegaKvSplitForgottenPrimary",
        build: Box::new(|rt| {
            megakv::build_harness(rt, &megakv::MegaKvConfig::with_split_bug());
        }),
        max_steps: 1_500,
        faults: FaultPlan::none(),
    });
    cases.push(BugCase {
        case_study: 4,
        name: "MegaKvRebalanceLostWrite",
        build: Box::new(|rt| {
            megakv::build_harness(rt, &megakv::MegaKvConfig::with_rebalance_bug());
        }),
        max_steps: 2_000,
        faults: FaultPlan::none(),
    });
    cases.push(BugCase {
        case_study: 4,
        name: "MegaKvPromoteLostWrite",
        build: Box::new(|rt| {
            megakv::build_harness(rt, &megakv::MegaKvConfig::with_promote_lost_write_bug());
        }),
        max_steps: 2_500,
        faults: megakv::MegaKvConfig::with_promote_lost_write_bug().fault_plan(),
    });

    cases
}

/// The outcome of hunting one bug with one scheduler (one cell group of
/// Table 2).
#[derive(Debug, Clone)]
pub struct BugHuntResult {
    /// The case-study index.
    pub case_study: u8,
    /// The bug identifier.
    pub bug: String,
    /// The scheduler label ("random", "pct", ...).
    pub scheduler: String,
    /// Whether the bug was found within the execution budget.
    pub found: bool,
    /// The winning iteration index (when found) — deterministic at any
    /// worker count.
    pub iteration: Option<u64>,
    /// The winning iteration's seed (when found) — deterministic at any
    /// worker count.
    pub seed: Option<u64>,
    /// Wall-clock time until the bug was found (when found).
    pub time_to_bug_seconds: Option<f64>,
    /// Number of nondeterministic choices in the first buggy execution.
    pub ndc: Option<usize>,
    /// Number of executions explored. Unlike the (iteration, seed,
    /// strategy) columns, this aggregate depends on how far other workers
    /// got before cancellation in runs that find a bug.
    pub executions: u64,
    /// Decision count of the minimized counterexample, when the hunt ran
    /// with schedule shrinking enabled and found a bug.
    pub minimized_ndc: Option<usize>,
    /// Wall-clock seconds the shrink pass spent, when it ran.
    pub shrink_time_seconds: Option<f64>,
    /// Fault decisions in the first buggy execution (when found): the
    /// injected fault set of the original recording.
    pub fault_decisions: Option<usize>,
    /// Fault decisions surviving in the minimized counterexample (when the
    /// hunt ran with shrinking): the bug's *minimum fault set*.
    pub minimized_fault_decisions: Option<usize>,
}

impl ToJson for BugHuntResult {
    fn to_json_value(&self) -> Json {
        Json::object([
            ("case_study", Json::UInt(self.case_study as u64)),
            ("bug", Json::Str(self.bug.clone())),
            ("scheduler", Json::Str(self.scheduler.clone())),
            ("found", Json::Bool(self.found)),
            (
                "iteration",
                match self.iteration {
                    Some(i) => Json::UInt(i),
                    None => Json::Null,
                },
            ),
            (
                "seed",
                match self.seed {
                    Some(s) => Json::UInt(s),
                    None => Json::Null,
                },
            ),
            (
                "time_to_bug_seconds",
                match self.time_to_bug_seconds {
                    Some(t) => Json::Float(t),
                    None => Json::Null,
                },
            ),
            (
                "ndc",
                match self.ndc {
                    Some(n) => Json::UInt(n as u64),
                    None => Json::Null,
                },
            ),
            ("executions", Json::UInt(self.executions)),
            (
                "minimized_ndc",
                match self.minimized_ndc {
                    Some(n) => Json::UInt(n as u64),
                    None => Json::Null,
                },
            ),
            (
                "shrink_time_seconds",
                match self.shrink_time_seconds {
                    Some(t) => Json::Float(t),
                    None => Json::Null,
                },
            ),
            (
                "fault_decisions",
                match self.fault_decisions {
                    Some(n) => Json::UInt(n as u64),
                    None => Json::Null,
                },
            ),
            (
                "minimized_fault_decisions",
                match self.minimized_fault_decisions {
                    Some(n) => Json::UInt(n as u64),
                    None => Json::Null,
                },
            ),
        ])
    }
}

impl BugHuntResult {
    /// Renders one row of the Table 2 layout. The `MinNDC` column holds the
    /// minimized decision count when the hunt ran with `--shrink`.
    pub fn table_row(&self) -> String {
        let found = if self.found { "yes" } else { "no " };
        let iteration = self
            .iteration
            .map(|i| format!("{i:7}"))
            .unwrap_or_else(|| format!("{:>7}", "-"));
        let time = self
            .time_to_bug_seconds
            .map(|t| format!("{t:10.2}"))
            .unwrap_or_else(|| format!("{:>10}", "-"));
        let ndc = self
            .ndc
            .map(|n| format!("{n:8}"))
            .unwrap_or_else(|| format!("{:>8}", "-"));
        let minimized = self
            .minimized_ndc
            .map(|n| format!("{n:8}"))
            .unwrap_or_else(|| format!("{:>8}", "-"));
        format!(
            "{:>2}  {:<38} {:<11} {}  {}  {}  {}  {:>9}  {}",
            self.case_study,
            self.bug,
            self.scheduler,
            found,
            iteration,
            time,
            ndc,
            self.executions,
            minimized
        )
    }

    /// The header matching [`BugHuntResult::table_row`].
    pub fn table_header() -> String {
        format!(
            "{:>2}  {:<38} {:<11} {}  {:>7}  {:>10}  {:>8}  {:>9}  {:>8}",
            "CS", "Bug Identifier", "Sched", "BF?", "Iter", "Time(s)", "#NDC", "Execs", "MinNDC"
        )
    }
}

/// Runs one bug hunt: explores up to `iterations` executions of `case` under
/// `scheduler` and reports whether (and how fast) the bug was found.
///
/// Equivalent to [`hunt_parallel`] with one worker.
pub fn hunt(case: &BugCase, scheduler: SchedulerKind, iterations: u64, seed: u64) -> BugHuntResult {
    hunt_parallel(case, scheduler, iterations, seed, 1)
}

/// Runs one bug hunt with the iteration space sharded over `workers` threads.
///
/// One worker reproduces the serial [`hunt`] bit for bit; more workers
/// explore the identical seed set faster and stop as soon as any worker hits
/// the bug.
pub fn hunt_parallel(
    case: &BugCase,
    scheduler: SchedulerKind,
    iterations: u64,
    seed: u64,
    workers: usize,
) -> BugHuntResult {
    let config = TestConfig::new()
        .with_iterations(iterations)
        .with_max_steps(case.max_steps)
        .with_seed(seed)
        .with_scheduler(scheduler)
        .with_workers(workers);
    hunt_with_config(case, config)
}

/// Runs one bug hunt with the full default scheduler portfolio (random, PCT
/// with several priority-change budgets, delay-bounding, probabilistic
/// random, round-robin) sharded over `workers` threads. Which strategy
/// drives an iteration is decided by the iteration index
/// ([`TestConfig::strategy_for_iteration`]), so the hunt reports the
/// identical (iteration, seed, strategy, bug) result at any worker count —
/// any number of workers covers the full portfolio. The result's `scheduler`
/// column reports the strategy that earned the bug, or `"portfolio"` when no
/// bug was found.
pub fn hunt_portfolio(case: &BugCase, iterations: u64, seed: u64, workers: usize) -> BugHuntResult {
    let config = TestConfig::new()
        .with_iterations(iterations)
        .with_max_steps(case.max_steps)
        .with_seed(seed)
        .with_workers(workers)
        .with_portfolio(SchedulerKind::default_portfolio());
    hunt_with_config(case, config)
}

/// Parses a scheduler name from the CLI (`table2 --scheduler`, `fixed_check
/// --scheduler`) into a [`SchedulerKind`]: `random`, `pct`, `delay`, `prob`
/// (aliases `delay-bounding`, `prob-random`), `round-robin`, `sleep-set`
/// (alias `por`) or `dpor`, each with its default parameterization.
/// `sleep-set:N` / `por:N` override the sleep-set fairness knob (a sleeping
/// machine is forcibly woken after `N` consecutive pass-overs).
pub fn parse_scheduler(name: &str) -> Option<SchedulerKind> {
    if let Some(skips) = name
        .strip_prefix("sleep-set:")
        .or_else(|| name.strip_prefix("por:"))
    {
        let wake_after_skips: u32 = skips.parse().ok()?;
        return Some(SchedulerKind::SleepSet { wake_after_skips });
    }
    match name {
        "random" => Some(SchedulerKind::Random),
        "pct" => Some(SchedulerKind::Pct { change_points: 2 }),
        "delay" | "delay-bounding" => Some(SchedulerKind::DelayBounding { delays: 2 }),
        "prob" | "prob-random" | "probabilistic" => {
            Some(SchedulerKind::ProbabilisticRandom { switch_percent: 10 })
        }
        "round-robin" => Some(SchedulerKind::RoundRobin),
        "sleep-set" | "por" => Some(SchedulerKind::sleep_set()),
        "dpor" => Some(SchedulerKind::Dpor),
        _ => None,
    }
}

/// Shared hunt runner under an arbitrary configuration (scheduler,
/// portfolio, worker count, trace mode, shrinking): the result's `scheduler`
/// column is the report's label (the configured strategy, or the winning
/// portfolio strategy). The case's own step bound overrides the
/// configuration's and the case's own fault budget applies; use
/// [`hunt_with_fault_override`] to replace the per-case budgets with one
/// global plan (e.g. `table2 --faults`).
pub fn hunt_with_config(case: &BugCase, config: TestConfig) -> BugHuntResult {
    hunt_with_fault_override(case, config, None)
}

/// [`hunt_with_config`] with an optional global fault plan: `Some(plan)`
/// replaces the case's own budget (including `Some(FaultPlan::none())`,
/// which genuinely disables fault injection — the distinction an all-zero
/// plan on the config could not express), `None` keeps the case's budget.
pub fn hunt_with_fault_override(
    case: &BugCase,
    config: TestConfig,
    fault_override: Option<FaultPlan>,
) -> BugHuntResult {
    let config = config.with_faults(fault_override.unwrap_or(case.faults));
    let engine = ParallelTestEngine::new(config.with_max_steps(case.max_steps));
    let build = &case.build;
    let report = engine.run(|rt| build(rt));
    let shrink = report.bug.as_ref().and_then(|b| b.shrink.as_ref());
    BugHuntResult {
        case_study: case.case_study,
        bug: case.name.to_string(),
        scheduler: report.scheduler.to_string(),
        found: report.found_bug(),
        iteration: report.bug.as_ref().map(|b| b.iteration),
        seed: report.bug.as_ref().map(|b| b.trace.seed),
        time_to_bug_seconds: report.bug.as_ref().map(|b| b.time_to_bug.as_secs_f64()),
        ndc: report.bug.as_ref().map(|b| b.ndc),
        minimized_ndc: shrink.map(|s| s.minimized_decisions),
        shrink_time_seconds: shrink.map(|s| s.elapsed.as_secs_f64()),
        fault_decisions: report.bug.as_ref().map(|b| b.trace.fault_decision_count()),
        minimized_fault_decisions: shrink.map(|s| s.minimized_faults),
        executions: report.iterations_run,
    }
}

/// Verifies that a fixed (bug-free) harness stays clean for `iterations`
/// executions; returns the violation if one is found.
///
/// Equivalent to [`verify_fixed_parallel`] with one worker.
pub fn verify_fixed<F>(build: F, iterations: u64, max_steps: usize, seed: u64) -> Option<Bug>
where
    F: Fn(&mut Runtime) + Send + Sync,
{
    verify_fixed_parallel(build, iterations, max_steps, seed, 1)
}

/// Verifies a fixed harness over `workers` threads, covering the same seed
/// set as [`verify_fixed`] at full core count.
pub fn verify_fixed_parallel<F>(
    build: F,
    iterations: u64,
    max_steps: usize,
    seed: u64,
    workers: usize,
) -> Option<Bug>
where
    F: Fn(&mut Runtime) + Send + Sync,
{
    verify_fixed_config(
        build,
        TestConfig::new()
            .with_iterations(iterations)
            .with_max_steps(max_steps)
            .with_seed(seed)
            .with_workers(workers),
    )
}

/// Verifies a fixed harness under an arbitrary configuration (scheduler,
/// portfolio, worker count); returns the violation if one is found.
pub fn verify_fixed_config<F>(build: F, config: TestConfig) -> Option<Bug>
where
    F: Fn(&mut Runtime) + Send + Sync,
{
    ParallelTestEngine::new(config)
        .run(build)
        .bug
        .map(|b| b.bug)
}

/// Formats a [`Duration`] in seconds with two decimals.
pub fn seconds(duration: Duration) -> String {
    format!("{:.2}", duration.as_secs_f64())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bug_case_list_covers_all_case_studies() {
        let cases = bug_cases();
        assert_eq!(cases.len(), 20);
        assert_eq!(cases.iter().filter(|c| c.case_study == 0).count(), 1);
        assert_eq!(cases.iter().filter(|c| c.case_study == 1).count(), 1);
        assert_eq!(cases.iter().filter(|c| c.case_study == 2).count(), 12);
        assert_eq!(cases.iter().filter(|c| c.case_study == 3).count(), 2);
        assert_eq!(cases.iter().filter(|c| c.case_study == 4).count(), 4);
        // Exactly one fault-induced bug per case-study crate.
        assert_eq!(cases.iter().filter(|c| !c.faults.is_none()).count(), 5);
    }

    #[test]
    fn fault_induced_bug_cases_are_found_with_their_budgets() {
        // One representative: the replsim lost-replication bug needs its
        // drop budget (hunt_with_config applies the case's own plan).
        let cases = bug_cases();
        let case = cases
            .iter()
            .find(|c| c.name == "ReplReqLostNoRetransmit")
            .expect("known case");
        let result = hunt_with_config(case, TestConfig::new().with_iterations(800).with_seed(21));
        assert!(result.found, "the fault-induced bug must be reachable");
        assert!(result.fault_decisions.unwrap_or(0) >= 1);
    }

    #[test]
    fn hunting_an_easy_bug_finds_it_quickly() {
        let cases = bug_cases();
        let delete_primary_key = cases
            .iter()
            .find(|c| c.name == "DeletePrimaryKey")
            .expect("known case");
        let result = hunt(delete_primary_key, SchedulerKind::Random, 500, 11);
        assert!(result.found);
        assert!(result.ndc.unwrap_or(0) > 0);
        assert!(result.table_row().contains("DeletePrimaryKey"));
    }

    #[test]
    fn parse_scheduler_covers_every_portfolio_family() {
        assert_eq!(parse_scheduler("random"), Some(SchedulerKind::Random));
        assert_eq!(
            parse_scheduler("pct"),
            Some(SchedulerKind::Pct { change_points: 2 })
        );
        assert_eq!(
            parse_scheduler("delay"),
            Some(SchedulerKind::DelayBounding { delays: 2 })
        );
        assert_eq!(
            parse_scheduler("prob"),
            Some(SchedulerKind::ProbabilisticRandom { switch_percent: 10 })
        );
        assert_eq!(
            parse_scheduler("round-robin"),
            Some(SchedulerKind::RoundRobin)
        );
        assert_eq!(
            parse_scheduler("sleep-set"),
            Some(SchedulerKind::sleep_set())
        );
        assert_eq!(parse_scheduler("por"), Some(SchedulerKind::sleep_set()));
        assert_eq!(
            parse_scheduler("sleep-set:3"),
            Some(SchedulerKind::SleepSet {
                wake_after_skips: 3
            })
        );
        assert_eq!(
            parse_scheduler("por:12"),
            Some(SchedulerKind::SleepSet {
                wake_after_skips: 12
            })
        );
        assert_eq!(parse_scheduler("dpor"), Some(SchedulerKind::Dpor));
        assert_eq!(parse_scheduler("nope"), None);
        assert_eq!(parse_scheduler("sleep-set:x"), None);
    }

    #[test]
    fn portfolio_hunt_is_worker_count_independent() {
        let cases = bug_cases();
        let case = cases
            .iter()
            .find(|c| c.name == "DeletePrimaryKey")
            .expect("known case");
        let one = hunt_portfolio(case, 400, 11, 1);
        let four = hunt_portfolio(case, 400, 11, 4);
        assert!(one.found && four.found);
        assert_eq!(one.iteration, four.iteration, "same winning iteration");
        assert_eq!(one.seed, four.seed, "same winning seed");
        assert_eq!(one.scheduler, four.scheduler, "same winning strategy");
        assert_eq!(one.ndc, four.ndc, "same winning execution");
    }

    #[test]
    fn fixed_replsim_harness_verifies_clean() {
        let bug = verify_fixed(
            |rt| {
                replsim::build_harness(rt, &replsim::ReplConfig::default());
            },
            25,
            2_500,
            7,
        );
        assert!(bug.is_none(), "unexpected violation: {bug:?}");
    }

    #[test]
    fn table_header_and_rows_align() {
        let header = BugHuntResult::table_header();
        let row = BugHuntResult {
            case_study: 2,
            bug: "QueryStreamedLock".to_string(),
            scheduler: "random".to_string(),
            found: false,
            iteration: None,
            seed: None,
            time_to_bug_seconds: None,
            ndc: None,
            minimized_ndc: None,
            shrink_time_seconds: None,
            fault_decisions: None,
            minimized_fault_decisions: None,
            executions: 1000,
        }
        .table_row();
        assert!(!header.is_empty());
        assert!(row.contains("QueryStreamedLock"));
    }
}
