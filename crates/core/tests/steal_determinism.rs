//! Determinism of the work-stealing parallel engine's first-bug selection:
//! whatever the worker count, the reported bug must be the one at the lowest
//! iteration index — i.e. exactly the bug the serial engine reports — with an
//! identical seed, trace and message.

use psharp::prelude::*;

/// A harness where many iterations are buggy (≈1 in 8), so under parallel
/// exploration several workers race to find *different* buggy iterations and
/// temporally-first selection would be nondeterministic.
fn frequently_buggy(rt: &mut Runtime) {
    struct Sometimes;
    impl Machine for Sometimes {
        fn on_start(&mut self, ctx: &mut Context<'_>) {
            if ctx.random_index(8) == 3 {
                ctx.report_bug(BugKind::SafetyViolation, "unlucky draw");
            }
        }
        fn handle(&mut self, _ctx: &mut Context<'_>, _event: Event) {}
    }
    rt.create_machine(Sometimes);
}

fn config() -> TestConfig {
    TestConfig::new().with_iterations(400).with_seed(17)
}

#[test]
fn work_stealing_reports_the_serial_first_bug_at_any_worker_count() {
    let serial = TestEngine::new(config()).run(frequently_buggy);
    let expected = serial.bug.expect("serial run finds a bug");

    for workers in [2usize, 4, 8] {
        let parallel =
            ParallelTestEngine::new(config().with_workers(workers)).run(frequently_buggy);
        let found = parallel
            .bug
            .unwrap_or_else(|| panic!("{workers}-worker run must find the bug"));
        assert_eq!(
            found.iteration, expected.iteration,
            "{workers} workers: lowest buggy iteration wins"
        );
        assert_eq!(found.trace, expected.trace, "{workers} workers: same trace");
        assert_eq!(
            found.trace.seed, expected.trace.seed,
            "{workers} workers: same seed"
        );
        assert_eq!(
            found.bug.message, expected.bug.message,
            "{workers} workers: same bug"
        );
    }
}

#[test]
fn repeated_parallel_runs_agree_with_each_other() {
    let reference = ParallelTestEngine::new(config().with_workers(4)).run(frequently_buggy);
    let reference = reference.bug.expect("bug found");
    for _ in 0..3 {
        let again = ParallelTestEngine::new(config().with_workers(4)).run(frequently_buggy);
        let again = again.bug.expect("bug found");
        assert_eq!(again.iteration, reference.iteration);
        assert_eq!(again.trace, reference.trace);
    }
}

/// A harness whose bug only a schedule-sensitive strategy mix surfaces
/// cheaply: any strategy can hit it (a 1-in-12 value draw), so in portfolio
/// mode different strategies race to win different iterations and
/// worker-order-dependent strategy assignment would report different
/// (iteration, strategy, bug) results run to run.
fn occasionally_buggy(rt: &mut Runtime) {
    struct Sometimes;
    impl Machine for Sometimes {
        fn on_start(&mut self, ctx: &mut Context<'_>) {
            if ctx.random_index(12) == 5 {
                ctx.report_bug(BugKind::SafetyViolation, "unlucky draw");
            }
        }
        fn handle(&mut self, _ctx: &mut Context<'_>, _event: Event) {}
    }
    rt.create_machine(Sometimes);
}

fn portfolio_config() -> TestConfig {
    TestConfig::new()
        .with_iterations(400)
        .with_seed(23)
        .with_default_portfolio()
}

#[test]
fn portfolio_run_reports_the_serial_result_at_any_worker_count() {
    // The serial engine is the reference: per-iteration strategy assignment
    // makes the portfolio deterministic, so every worker count must
    // reproduce the serial (iteration, seed, strategy, bug) result exactly.
    let serial = TestEngine::new(portfolio_config()).run(occasionally_buggy);
    let expected = serial.bug.expect("serial portfolio run finds a bug");

    for workers in [1usize, 2, 8] {
        let parallel = ParallelTestEngine::new(portfolio_config().with_workers(workers))
            .run(occasionally_buggy);
        let found = parallel
            .bug
            .unwrap_or_else(|| panic!("{workers}-worker portfolio run must find the bug"));
        assert_eq!(
            found.iteration, expected.iteration,
            "{workers} workers: same winning iteration"
        );
        assert_eq!(
            found.trace.seed, expected.trace.seed,
            "{workers} workers: same seed"
        );
        assert_eq!(found.trace, expected.trace, "{workers} workers: same trace");
        assert_eq!(
            parallel.scheduler, serial.scheduler,
            "{workers} workers: same winning strategy label"
        );
        assert_eq!(
            found.bug.message, expected.bug.message,
            "{workers} workers: same bug"
        );
    }
}

#[test]
fn pooled_runtime_reports_are_identical_at_1_2_4_8_workers() {
    // Per-worker runtime pooling (`Runtime::reset` between iterations) must
    // not leak any state — machines, mailbox contents, fault markings, name
    // table — from one iteration into the next: the full report, including
    // the shrink pass over the winner, is the serial one at every worker
    // count, and the minimized counterexample is byte-identical.
    let config = || portfolio_config().with_shrink(true);
    let serial = TestEngine::new(config()).run(occasionally_buggy);
    let expected = serial.bug.as_ref().expect("serial run finds a bug");
    let expected_min = expected.minimized().expect("shrink pass ran");

    for workers in [1usize, 2, 4, 8] {
        let parallel =
            ParallelTestEngine::new(config().with_workers(workers)).run(occasionally_buggy);
        let found = parallel
            .bug
            .as_ref()
            .unwrap_or_else(|| panic!("{workers}-worker run must find the bug"));
        assert_eq!(
            found.iteration, expected.iteration,
            "{workers} workers: same winning iteration"
        );
        assert_eq!(
            found.trace.seed, expected.trace.seed,
            "{workers} workers: same seed"
        );
        assert_eq!(found.trace, expected.trace, "{workers} workers: same trace");
        assert_eq!(
            parallel.scheduler, serial.scheduler,
            "{workers} workers: same winning strategy"
        );
        assert_eq!(
            found.bug.message, expected.bug.message,
            "{workers} workers: same bug"
        );
        let minimized = found.minimized().expect("shrink pass ran");
        assert_eq!(
            minimized, expected_min,
            "{workers} workers: same minimized counterexample"
        );
        assert_eq!(
            minimized.to_json().expect("serializable"),
            expected_min.to_json().expect("serializable"),
            "{workers} workers: byte-identical minimized trace"
        );
    }
}

#[test]
fn bug_free_portfolio_reports_are_identical_at_any_worker_count() {
    // Without a bug to race for, the whole TestReport — winning label,
    // counters and the per-strategy attribution rows — must be identical for
    // 1, 2 and 8 workers and match the serial engine.
    fn clean(rt: &mut Runtime) {
        struct Quiet;
        impl Machine for Quiet {
            fn on_start(&mut self, ctx: &mut Context<'_>) {
                let _ = ctx.random_bool();
                let _ = ctx.random_index(4);
            }
            fn handle(&mut self, _ctx: &mut Context<'_>, _event: Event) {}
        }
        rt.create_machine(Quiet);
    }
    let base = || {
        TestConfig::new()
            .with_iterations(300)
            .with_seed(41)
            .with_default_portfolio()
    };
    let serial = TestEngine::new(base()).run(clean);
    assert!(!serial.found_bug());
    assert_eq!(serial.scheduler, "portfolio");

    for workers in [1usize, 2, 8] {
        let parallel = ParallelTestEngine::new(base().with_workers(workers)).run(clean);
        assert_eq!(
            parallel.iterations_run, serial.iterations_run,
            "{workers} workers"
        );
        assert_eq!(
            parallel.total_steps, serial.total_steps,
            "{workers} workers"
        );
        assert_eq!(parallel.scheduler, serial.scheduler, "{workers} workers");
        assert_eq!(
            parallel.per_strategy, serial.per_strategy,
            "{workers} workers: identical per-strategy attribution"
        );
    }
}
