//! Determinism of the work-stealing parallel engine's first-bug selection:
//! whatever the worker count, the reported bug must be the one at the lowest
//! iteration index — i.e. exactly the bug the serial engine reports — with an
//! identical seed, trace and message.

use psharp::prelude::*;

/// A harness where many iterations are buggy (≈1 in 8), so under parallel
/// exploration several workers race to find *different* buggy iterations and
/// temporally-first selection would be nondeterministic.
fn frequently_buggy(rt: &mut Runtime) {
    struct Sometimes;
    impl Machine for Sometimes {
        fn on_start(&mut self, ctx: &mut Context<'_>) {
            if ctx.random_index(8) == 3 {
                ctx.report_bug(BugKind::SafetyViolation, "unlucky draw");
            }
        }
        fn handle(&mut self, _ctx: &mut Context<'_>, _event: Event) {}
    }
    rt.create_machine(Sometimes);
}

fn config() -> TestConfig {
    TestConfig::new().with_iterations(400).with_seed(17)
}

#[test]
fn work_stealing_reports_the_serial_first_bug_at_any_worker_count() {
    let serial = TestEngine::new(config()).run(frequently_buggy);
    let expected = serial.bug.expect("serial run finds a bug");

    for workers in [2usize, 4, 8] {
        let parallel =
            ParallelTestEngine::new(config().with_workers(workers)).run(frequently_buggy);
        let found = parallel
            .bug
            .unwrap_or_else(|| panic!("{workers}-worker run must find the bug"));
        assert_eq!(
            found.iteration, expected.iteration,
            "{workers} workers: lowest buggy iteration wins"
        );
        assert_eq!(found.trace, expected.trace, "{workers} workers: same trace");
        assert_eq!(
            found.trace.seed, expected.trace.seed,
            "{workers} workers: same seed"
        );
        assert_eq!(
            found.bug.message, expected.bug.message,
            "{workers} workers: same bug"
        );
    }
}

#[test]
fn repeated_parallel_runs_agree_with_each_other() {
    let reference = ParallelTestEngine::new(config().with_workers(4)).run(frequently_buggy);
    let reference = reference.bug.expect("bug found");
    for _ in 0..3 {
        let again = ParallelTestEngine::new(config().with_workers(4)).run(frequently_buggy);
        let again = again.bug.expect("bug found");
        assert_eq!(again.iteration, reference.iteration);
        assert_eq!(again.trace, reference.trace);
    }
}
