//! Guard tests for the parallel engine's serialization contract: a single
//! execution is only ever stepped by one thread at a time (machines never
//! observe intra-execution parallelism), and the first bug found cancels all
//! in-flight workers at their next iteration boundary.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use psharp::prelude::*;

#[derive(Debug)]
struct Tick;

/// A machine that marks a serial section on every step (atomic-counter
/// style): if two steps of the *same execution* ever ran concurrently, the
/// entry counter would observe a value other than zero and the assertion
/// would surface as a panic bug.
struct SerialSection {
    active: Arc<AtomicUsize>,
    entries: Arc<AtomicU64>,
    budget: usize,
}

impl SerialSection {
    fn step(&self, ctx: &mut Context<'_>) {
        let previous = self.active.fetch_add(1, Ordering::SeqCst);
        assert_eq!(previous, 0, "two steps of one execution ran concurrently");
        self.entries.fetch_add(1, Ordering::SeqCst);
        // Interleave some controlled nondeterminism while "inside" the
        // section so a racing second step would have a window to collide.
        let _ = ctx.random_bool();
        let previous = self.active.fetch_sub(1, Ordering::SeqCst);
        assert_eq!(previous, 1, "serial section left in an inconsistent state");
    }
}

impl Machine for SerialSection {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        self.step(ctx);
        ctx.send_to_self(Event::new(Tick));
    }
    fn handle(&mut self, ctx: &mut Context<'_>, _event: Event) {
        self.step(ctx);
        if self.budget > 0 {
            self.budget -= 1;
            ctx.send_to_self(Event::new(Tick));
        }
    }
}

#[test]
fn workers_never_step_one_execution_concurrently() {
    let total_entries = Arc::new(AtomicU64::new(0));
    let entries = Arc::clone(&total_entries);
    let report = ParallelTestEngine::new(
        TestConfig::new()
            .with_iterations(300)
            .with_seed(3)
            .with_workers(4)
            .with_default_portfolio(),
    )
    .run(move |rt| {
        // One guard per execution: steps of *different* executions may (and
        // should) overlap across workers; steps of the same execution never.
        let active = Arc::new(AtomicUsize::new(0));
        for _ in 0..3 {
            rt.create_machine(SerialSection {
                active: Arc::clone(&active),
                entries: Arc::clone(&entries),
                budget: 4,
            });
        }
    });
    assert!(
        !report.found_bug(),
        "serial-section guard tripped: {:?}",
        report.bug
    );
    assert_eq!(report.iterations_run, 300);
    // 3 machines × (1 start + 5 handled events) × 300 executions.
    assert_eq!(total_entries.load(Ordering::SeqCst), 3 * 6 * 300);
}

/// A harness whose bug needs a modestly rare controlled choice, so some — but
/// far from all — of a large iteration budget is needed to hit it.
struct RareBug;
impl Machine for RareBug {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        if ctx.random_index(40) == 7 {
            ctx.report_bug(BugKind::SafetyViolation, "rare path reached");
        }
    }
    fn handle(&mut self, _ctx: &mut Context<'_>, _event: Event) {}
}

#[test]
fn first_bug_cancels_in_flight_workers() {
    let budget = 1_000_000;
    let report = ParallelTestEngine::new(
        TestConfig::new()
            .with_iterations(budget)
            .with_seed(5)
            .with_workers(4),
    )
    .run(|rt| {
        rt.create_machine(RareBug);
    });
    assert!(report.found_bug(), "the rare path must be reachable");
    // Early stop: nowhere near the full budget may have run. The winning
    // iteration is found within a few hundred executions; the other three
    // workers stop at the next iteration boundary, so the total stays tiny.
    assert!(
        report.iterations_run < budget / 100,
        "early stop must cancel the remaining budget (ran {})",
        report.iterations_run
    );
    let bug = report.bug.expect("found");
    assert_eq!(bug.bug.kind, BugKind::SafetyViolation);
    // Exactly one strategy row claims the bug.
    let credited: u64 = report.per_strategy.iter().map(|s| s.bugs_found).sum();
    assert!(credited >= 1, "the winning strategy must be attributed");
}
