//! Integration tests for scheduler-controlled fault injection: crash /
//! restart / drop / duplicate semantics, replay (strict and tolerant,
//! including the edge cases around deleted or stale fault decisions), shrink
//! reduction to a minimum fault set, and determinism across engines and
//! worker counts.

use psharp::prelude::*;
use psharp::scheduler::{ReplayScheduler, Scheduler};
use psharp::shrink::shrink_trace;

#[derive(Debug, Clone)]
struct Ping;

#[derive(Debug)]
struct CrashNotice(MachineId);

/// A machine that counts handled pings and, via its hooks, reports crashes
/// to a supervisor and restarts cleanly.
struct Worker {
    supervisor: Option<MachineId>,
    handled: usize,
    crashes_seen: usize,
    restarts_seen: usize,
}

impl Worker {
    fn new() -> Self {
        Worker {
            supervisor: None,
            handled: 0,
            crashes_seen: 0,
            restarts_seen: 0,
        }
    }

    fn supervised(supervisor: MachineId) -> Self {
        Worker {
            supervisor: Some(supervisor),
            ..Worker::new()
        }
    }
}

impl Machine for Worker {
    fn handle(&mut self, _ctx: &mut Context<'_>, event: Event) {
        if event.is::<Ping>() {
            self.handled += 1;
        }
    }

    fn on_crash(&mut self, ctx: &mut Context<'_>) {
        self.crashes_seen += 1;
        if let Some(supervisor) = self.supervisor {
            let me = ctx.id();
            ctx.send(supervisor, Event::new(CrashNotice(me)));
        }
    }

    fn on_restart(&mut self, ctx: &mut Context<'_>) {
        self.restarts_seen += 1;
        ctx.send_to_self(Event::new(Ping));
    }
}

/// Records crash notices.
#[derive(Default)]
struct Supervisor {
    notices: Vec<MachineId>,
}

impl Machine for Supervisor {
    fn handle(&mut self, _ctx: &mut Context<'_>, event: Event) {
        if let Some(notice) = event.downcast_ref::<CrashNotice>() {
            self.notices.push(notice.0);
        }
    }
}

fn runtime_with_faults(seed: u64, faults: FaultPlan, max_steps: usize) -> Runtime {
    Runtime::new(
        SchedulerKind::Random.build(seed, max_steps),
        RuntimeConfig {
            max_steps,
            faults,
            ..RuntimeConfig::default()
        },
        seed,
    )
}

#[test]
fn crash_fault_downs_the_machine_and_runs_the_hook() {
    // Scan seeds until the gate fires a crash (geometric firing times).
    for seed in 0..20 {
        let mut rt = runtime_with_faults(seed, FaultPlan::new().with_crashes(1), 400);
        let supervisor = rt.create_machine(Supervisor::default());
        let worker = rt.create_machine(Worker::supervised(supervisor));
        rt.mark_crashable(worker);
        for _ in 0..50 {
            rt.send(worker, Event::new(Ping));
        }
        rt.run();
        if !rt.is_crashed(worker) {
            continue;
        }
        let crashed = rt.machine_ref::<Worker>(worker).expect("worker");
        assert_eq!(crashed.crashes_seen, 1, "on_crash ran exactly once");
        assert_eq!(crashed.restarts_seen, 0, "no restart budget");
        assert!(
            crashed.handled < 50,
            "the crash must interrupt the ping backlog (mailbox discarded)"
        );
        let supervisor = rt
            .machine_ref::<Supervisor>(supervisor)
            .expect("supervisor");
        assert_eq!(
            supervisor.notices,
            vec![worker],
            "the crash hook's supervision signal was delivered"
        );
        assert_eq!(rt.trace().fault_decision_count(), 1);
        assert!(rt
            .trace()
            .decisions
            .contains(&Decision::CrashMachine(worker)));
        return;
    }
    panic!("no seed in 0..20 fired the crash fault");
}

#[test]
fn restart_fault_revives_a_crashed_machine_through_on_restart() {
    for seed in 0..40 {
        let mut rt = runtime_with_faults(
            seed,
            FaultPlan::new().with_crashes(1).with_restarts(1),
            2_000,
        );
        let worker = rt.create_machine(Worker::new());
        rt.mark_restartable(worker);
        // A second, fault-free machine keeps the execution alive while the
        // worker is down, so the scheduler gets probe opportunities to
        // restart it (a quiescent system ends the execution, restart budget
        // or not).
        let bystander = rt.create_machine(Worker::new());
        for _ in 0..100 {
            rt.send(worker, Event::new(Ping));
            rt.send(bystander, Event::new(Ping));
        }
        rt.run();
        let w = rt.machine_ref::<Worker>(worker).expect("worker");
        if w.restarts_seen == 0 {
            continue;
        }
        assert_eq!(w.crashes_seen, 1, "restart requires a preceding crash");
        assert!(!rt.is_crashed(worker), "the machine is live again");
        assert!(
            rt.trace()
                .decisions
                .contains(&Decision::RestartMachine(worker)),
            "the restart is a recorded decision"
        );
        // on_restart sent a Ping to self: the revived machine handled it.
        assert!(w.handled >= 1);
        return;
    }
    panic!("no seed in 0..40 fired crash + restart");
}

#[test]
fn restart_of_a_never_started_machine_boots_through_on_start() {
    // A machine can be crashed at the very first scheduling point, before
    // its `on_start` ever ran. Restarting it must not mark it started:
    // there is no prior incarnation to recover, so it boots normally via
    // `on_start` (with all its wiring) and `on_restart` is skipped.
    struct Booter {
        started: usize,
        restarted: usize,
    }
    impl Machine for Booter {
        fn on_start(&mut self, _ctx: &mut Context<'_>) {
            self.started += 1;
        }
        fn handle(&mut self, _ctx: &mut Context<'_>, _event: Event) {}
        fn on_restart(&mut self, _ctx: &mut Context<'_>) {
            self.restarted += 1;
        }
    }
    for seed in 0..60 {
        let mut rt = runtime_with_faults(
            seed,
            FaultPlan::new().with_crashes(1).with_restarts(1),
            2_000,
        );
        let booter = rt.create_machine(Booter {
            started: 0,
            restarted: 0,
        });
        rt.mark_restartable(booter);
        // A busy bystander keeps the execution alive for probe chances.
        let bystander = rt.create_machine(Worker::new());
        for _ in 0..200 {
            rt.send(bystander, Event::new(Ping));
        }
        rt.run();
        let b = rt.machine_ref::<Booter>(booter).expect("booter");
        let crashed_before_start = rt
            .trace()
            .decisions
            .iter()
            .position(|d| *d == Decision::CrashMachine(booter))
            .is_some_and(|crash_at| {
                // No Schedule(booter) decision before the crash means the
                // machine never ran its on_start.
                !rt.trace().decisions[..crash_at].contains(&Decision::Schedule(booter))
            });
        let restarted = rt
            .trace()
            .decisions
            .contains(&Decision::RestartMachine(booter));
        if !(crashed_before_start && restarted) {
            continue;
        }
        assert_eq!(b.restarted, 0, "no prior incarnation to recover");
        assert_eq!(b.started, 1, "the restarted machine boots exactly once");
        return;
    }
    panic!("no seed in 0..60 crashed the machine before it started and restarted it");
}

#[test]
fn sends_to_a_crashed_machine_are_dropped_until_restart() {
    let mut rt = runtime_with_faults(1, FaultPlan::none(), 100);
    let worker = rt.create_machine(Worker::new());
    rt.mark_crashable(worker);
    // No budget, so nothing can fire; crash candidates are simply inert.
    rt.send(worker, Event::new(Ping));
    rt.run();
    assert!(!rt.is_crashed(worker));
    assert_eq!(rt.trace().fault_decision_count(), 0);
}

#[test]
fn drop_fault_loses_exactly_one_queued_message() {
    for seed in 0..20 {
        let mut rt = runtime_with_faults(seed, FaultPlan::new().with_drops(1), 400);
        let worker = rt.create_machine(Worker::new());
        rt.mark_lossy(worker);
        for _ in 0..30 {
            rt.send(worker, Event::new(Ping));
        }
        rt.run();
        let handled = rt.machine_ref::<Worker>(worker).expect("worker").handled;
        if handled == 30 {
            continue; // the gate did not fire for this seed
        }
        assert_eq!(handled, 29, "exactly one message was dropped");
        assert!(rt
            .trace()
            .decisions
            .contains(&Decision::DropMessage(worker)));
        return;
    }
    panic!("no seed in 0..20 fired the drop fault");
}

#[test]
fn duplicate_fault_redelivers_a_replicable_message() {
    for seed in 0..20 {
        let mut rt = runtime_with_faults(seed, FaultPlan::new().with_duplicates(1), 400);
        let worker = rt.create_machine(Worker::new());
        rt.mark_lossy(worker);
        for _ in 0..30 {
            rt.send(worker, Event::replicable(Ping));
        }
        rt.run();
        let handled = rt.machine_ref::<Worker>(worker).expect("worker").handled;
        if handled == 30 {
            continue;
        }
        assert_eq!(handled, 31, "exactly one message was re-delivered");
        assert!(rt
            .trace()
            .decisions
            .contains(&Decision::DuplicateMessage(worker)));
        return;
    }
    panic!("no seed in 0..20 fired the duplicate fault");
}

#[test]
fn plain_events_are_never_duplicated() {
    // Same setup as above but with non-replicable events: the duplicate
    // budget can never fire, for any seed.
    for seed in 0..20 {
        let mut rt = runtime_with_faults(seed, FaultPlan::new().with_duplicates(3), 400);
        let worker = rt.create_machine(Worker::new());
        rt.mark_lossy(worker);
        for _ in 0..30 {
            rt.send(worker, Event::new(Ping));
        }
        rt.run();
        assert_eq!(
            rt.machine_ref::<Worker>(worker).expect("worker").handled,
            30
        );
        assert_eq!(rt.trace().fault_decision_count(), 0);
    }
}

#[test]
fn unmarked_machines_are_never_offered_as_fault_targets() {
    for seed in 0..20 {
        let mut rt = runtime_with_faults(seed, FaultPlan::new().with_crashes(5).with_drops(5), 400);
        let worker = rt.create_machine(Worker::new());
        // No marking at all: the budget exists but nothing is a candidate.
        for _ in 0..30 {
            rt.send(worker, Event::new(Ping));
        }
        rt.run();
        assert!(!rt.is_crashed(worker));
        assert_eq!(rt.trace().fault_decision_count(), 0);
        assert_eq!(
            rt.machine_ref::<Worker>(worker).expect("worker").handled,
            30
        );
    }
}

/// Regression test: a machine marked both crashable AND lossy must appear in
/// the fault-target candidate list exactly once, whichever order the marks
/// arrive in — a duplicated entry would skew the replay-critical offer order
/// and double that machine's selection weight.
#[test]
fn doubly_marked_machine_is_offered_as_one_fault_target() {
    for flip in [false, true] {
        let mut rt = runtime_with_faults(3, FaultPlan::new().with_crashes(1).with_drops(1), 400);
        let worker = rt.create_machine(Worker::new());
        let bystander = rt.create_machine(Worker::new());
        if flip {
            rt.mark_lossy(worker);
            rt.mark_crashable(worker);
        } else {
            rt.mark_crashable(worker);
            rt.mark_lossy(worker);
        }
        rt.mark_restartable(worker);
        rt.mark_lossy(bystander);
        assert_eq!(
            rt.fault_target_count(),
            2,
            "two distinct machines are marked, so two candidates exist"
        );
        for _ in 0..10 {
            rt.send(worker, Event::new(Ping));
            rt.send(bystander, Event::new(Ping));
        }
        rt.run();
    }
}

#[test]
fn fault_budget_bounds_the_injected_fault_count() {
    let plan = FaultPlan::new().with_drops(2).with_duplicates(1);
    for seed in 0..30 {
        let mut rt = runtime_with_faults(seed, plan, 2_000);
        let worker = rt.create_machine(Worker::new());
        rt.mark_lossy(worker);
        for _ in 0..200 {
            rt.send(worker, Event::replicable(Ping));
        }
        rt.run();
        let drops = rt
            .trace()
            .decisions
            .iter()
            .filter(|d| matches!(d, Decision::DropMessage(_)))
            .count();
        let dups = rt
            .trace()
            .decisions
            .iter()
            .filter(|d| matches!(d, Decision::DuplicateMessage(_)))
            .count();
        assert!(drops <= 2, "seed {seed}: {drops} drops exceed the budget");
        assert!(
            dups <= 1,
            "seed {seed}: {dups} duplicates exceed the budget"
        );
    }
}

/// The probe stream is decorrelated from the scheduling stream: with and
/// without a fault budget, the same seed makes the same schedule decisions
/// up to the first injected fault.
#[test]
fn enabling_faults_does_not_perturb_the_schedule_before_the_first_fault() {
    let run = |faults: FaultPlan| {
        let mut rt = runtime_with_faults(9, faults, 300);
        let a = rt.create_machine(Worker::new());
        let b = rt.create_machine(Worker::new());
        rt.mark_lossy(a);
        rt.mark_lossy(b);
        for _ in 0..40 {
            rt.send(a, Event::new(Ping));
            rt.send(b, Event::new(Ping));
        }
        rt.run();
        rt.into_trace()
    };
    let without = run(FaultPlan::none());
    let with = run(FaultPlan::new().with_drops(1));
    let first_fault = with
        .decisions
        .iter()
        .position(|d| d.is_fault())
        .unwrap_or(with.decisions.len());
    assert_eq!(
        &without.decisions[..first_fault],
        &with.decisions[..first_fault],
        "schedules must agree decision-for-decision up to the first fault"
    );
}

// ---------------------------------------------------------------------------
// A harness whose bug is *fault-induced*: the flag machine loses its state on
// crash+restart, and the checker asserts the state survived.
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
struct SetValue(u64);
#[derive(Debug, Clone)]
struct Probe;

struct FragileStore {
    value: Option<u64>,
}

impl Machine for FragileStore {
    fn handle(&mut self, ctx: &mut Context<'_>, event: Event) {
        if let Some(set) = event.downcast_ref::<SetValue>() {
            self.value = Some(set.0);
        } else if event.is::<Probe>() {
            // BUG under faults: a crash wipes the "persisted" value, so a
            // probe after crash+restart observes the loss.
            ctx.assert(self.value.is_some(), "stored value was lost");
        }
    }

    fn on_restart(&mut self, _ctx: &mut Context<'_>) {
        // Volatile state was never persisted.
        self.value = None;
    }
}

struct Prober {
    store: MachineId,
    probes: usize,
}

impl Machine for Prober {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        ctx.send(self.store, Event::new(SetValue(7)));
        ctx.send_to_self(Event::new(Ping));
    }
    fn handle(&mut self, ctx: &mut Context<'_>, event: Event) {
        if event.is::<Ping>() {
            if self.probes == 0 {
                ctx.halt();
                return;
            }
            self.probes -= 1;
            ctx.send(self.store, Event::new(Probe));
            ctx.send_to_self(Event::new(Ping));
        }
    }
}

fn fragile_setup(rt: &mut Runtime) {
    let store = rt.create_machine(FragileStore { value: None });
    rt.mark_restartable(store);
    rt.create_machine(Prober { store, probes: 40 });
}

fn fragile_config() -> TestConfig {
    TestConfig::new()
        .with_iterations(400)
        .with_max_steps(500)
        .with_seed(11)
        .with_faults(FaultPlan::new().with_crashes(1).with_restarts(1))
}

#[test]
fn fault_induced_bug_is_found_replayed_and_shrunk_to_its_fault_set() {
    let engine = TestEngine::new(fragile_config());
    let report = engine.run(fragile_setup);
    let bug_report = report.bug.expect("the fault-induced bug is reachable");
    assert_eq!(bug_report.bug.kind, BugKind::SafetyViolation);
    let faults = bug_report.trace.fault_decision_count();
    assert!(
        faults >= 2,
        "the buggy execution needs at least crash + restart, got {faults}"
    );

    // Strict replay reproduces the identical bug, faults included.
    let replayed = engine
        .replay(&bug_report.trace, fragile_setup)
        .expect("replay reproduces the fault-induced bug");
    assert_eq!(replayed.kind, bug_report.bug.kind);
    assert_eq!(replayed.message, bug_report.bug.message);

    // Shrinking keeps the minimum fault set: the bug needs exactly one
    // crash and one restart, and no shrunk trace may lose them.
    let shrink = shrink_trace(
        &fragile_config().shrink_config(),
        &bug_report.bug,
        &bug_report.trace,
        &fragile_setup,
    );
    assert_eq!(
        shrink.minimized_faults,
        2,
        "minimum fault set is crash + restart: {}",
        shrink.summary()
    );
    assert!(shrink.minimized_decisions <= bug_report.ndc);
    let verified = engine
        .replay(&shrink.minimized, fragile_setup)
        .expect("the minimized trace still reproduces");
    assert_eq!(verified.message, bug_report.bug.message);
}

#[test]
fn fault_reports_are_identical_across_engines_and_worker_counts() {
    let config = fragile_config();
    let serial = TestEngine::new(config.clone()).run(fragile_setup);
    let serial_bug = serial.bug.expect("serial run finds the bug");
    for workers in [1usize, 2, 8] {
        let parallel =
            ParallelTestEngine::new(config.clone().with_workers(workers)).run(fragile_setup);
        let bug = parallel
            .bug
            .unwrap_or_else(|| panic!("{workers}-worker run finds the bug"));
        assert_eq!(bug.iteration, serial_bug.iteration, "workers={workers}");
        assert_eq!(bug.trace.seed, serial_bug.trace.seed, "workers={workers}");
        assert_eq!(
            bug.trace.decisions, serial_bug.trace.decisions,
            "workers={workers}: the decision stream (faults included) must be byte-identical"
        );
        assert_eq!(bug.bug.message, serial_bug.bug.message, "workers={workers}");
    }
}

// ---------------------------------------------------------------------------
// Tolerant-replay edge cases (PR 5 satellite).
// ---------------------------------------------------------------------------

fn ids(raw: &[u64]) -> Vec<MachineId> {
    raw.iter().copied().map(MachineId::from_raw).collect()
}

#[test]
fn tolerant_replay_with_empty_prefix_is_a_pure_seeded_tail() {
    let enabled = ids(&[0, 1, 2]);
    let run = || {
        let mut s = ReplayScheduler::tolerant(Vec::new(), 13);
        let picks: Vec<u64> = (0..50).map(|i| s.next_machine(&enabled, i).raw()).collect();
        assert!(s.error().is_none());
        assert_eq!(s.position(), 0, "an empty prefix consumes nothing");
        picks
    };
    let picks = run();
    assert_eq!(picks, run(), "the tail is deterministic");
    assert!(enabled.iter().all(|m| picks.contains(&m.raw())));
}

#[test]
fn tolerant_replay_prefix_longer_than_the_run_is_harmless() {
    // A prefix with far more decisions than the (short) run consumes only
    // what the run asks for; the surplus is simply never read.
    let decisions: Vec<Decision> = (0..100)
        .map(|i| Decision::Schedule(MachineId::from_raw(i % 2)))
        .collect();
    let engine = TestEngine::new(TestConfig::new().with_max_steps(5));
    let _ = engine; // the scheduler-level check below is what matters
    let enabled = ids(&[0, 1]);
    let mut s = ReplayScheduler::tolerant(decisions, 3);
    for step in 0..5 {
        let pick = s.next_machine(&enabled, step);
        assert!(enabled.contains(&pick));
    }
    assert_eq!(s.position(), 5, "only the consumed prefix advances");
    assert!(s.error().is_none());
}

#[test]
fn tolerant_replay_skips_fault_decisions_whose_machines_no_longer_apply() {
    // A crash recorded for a machine id that does not exist in the replayed
    // harness (e.g. the shrink pass deleted the decisions that created it)
    // must be skipped without error, and no fault may fire.
    let decisions = vec![
        Decision::CrashMachine(MachineId::from_raw(99)),
        Decision::Schedule(MachineId::from_raw(0)),
    ];
    let mut s = ReplayScheduler::tolerant(decisions, 5);
    let candidates = [Fault::Crash(MachineId::from_raw(0))];
    assert_eq!(
        s.next_fault(&candidates, 0),
        None,
        "a stale fault decision fires nothing"
    );
    assert!(s.error().is_none(), "tolerant replay never errors");
    assert_eq!(s.position(), 1, "the stale fault decision was consumed");
    // The following Schedule decision still replays positionally.
    let enabled = ids(&[0, 1]);
    assert_eq!(s.next_machine(&enabled, 0), MachineId::from_raw(0));
}

#[test]
fn strict_replay_flags_stale_fault_decisions_as_divergence() {
    let mut trace = Trace::new(0);
    trace.push_decision(Decision::CrashMachine(MachineId::from_raw(9)));
    let mut s = ReplayScheduler::from_trace(&trace);
    let candidates = [Fault::Crash(MachineId::from_raw(0))];
    assert_eq!(s.next_fault(&candidates, 0), None);
    assert!(
        s.error().is_some(),
        "strict replay reports the unusable fault decision"
    );
}

#[test]
fn replay_scheduler_peeks_faults_without_consuming_schedule_decisions() {
    let mut trace = Trace::new(0);
    trace.push_decision(Decision::Schedule(MachineId::from_raw(1)));
    let mut s = ReplayScheduler::from_trace(&trace);
    let candidates = [Fault::Crash(MachineId::from_raw(1))];
    // The probe sees a Schedule decision: no fault, nothing consumed.
    assert_eq!(s.next_fault(&candidates, 0), None);
    assert_eq!(s.position(), 0);
    let enabled = ids(&[0, 1]);
    assert_eq!(s.next_machine(&enabled, 0), MachineId::from_raw(1));
    assert!(s.error().is_none());
}

#[test]
fn tolerant_replay_after_crash_decision_prefix_reaches_the_bug() {
    // End-to-end: record a fault-induced bug, delete a *schedule* chunk from
    // the middle, and tolerant-replay the mutated prefix. The crash/restart
    // decisions survive and the execution still completes without error.
    let engine = TestEngine::new(fragile_config());
    let report = engine.run(fragile_setup);
    let bug_report = report.bug.expect("bug found");
    let mut mutated = bug_report.trace.decisions.clone();
    // Remove a mid-stream non-fault chunk.
    let start = mutated.len() / 3;
    let removed: Vec<Decision> = mutated.drain(start..start + 3).collect();
    let _ = removed;
    let shrink_config = fragile_config().shrink_config();
    let mut runtime = Runtime::new(
        Box::new(ReplayScheduler::tolerant(mutated, 77)),
        RuntimeConfig {
            max_steps: shrink_config.max_steps,
            faults: shrink_config.faults,
            ..RuntimeConfig::default()
        },
        bug_report.trace.seed,
    );
    fragile_setup(&mut runtime);
    runtime.run();
    assert!(
        runtime.replay_error().is_none(),
        "tolerant replay of a mutated fault trace never errors"
    );
}
