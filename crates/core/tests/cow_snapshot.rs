//! Property tests for the copy-on-write snapshot restore path.
//!
//! `Runtime::restore_from` dispatches to an incremental O(dirty) restore
//! whenever the runtime still shares state with the snapshot it is being
//! rewound to. That fast path must be an invisible optimization: restoring
//! through it has to leave the runtime byte-identical — enabled set, trace,
//! fault targets, monitor state, every machine's state — to the historical
//! full rebuild, which the runtime keeps as `restore_from_full`.
//!
//! The property test drives two runtimes in lockstep through random
//! interleavings of every operation that can dirty snapshot state — send,
//! step, crash, restart, drop, duplicate, create, monitor notification,
//! snapshot, restore — with one runtime rewinding through `restore_from`
//! (COW) and the other through `restore_from_full` (the oracle), and checks
//! full observable equality after *every* operation.

use psharp::engine::{ParallelTestEngine, TestConfig, TestEngine, TestReport};
use psharp::prelude::*;
use psharp::scheduler::RandomScheduler;

/// A replicable payload so mailboxes survive `Runtime::snapshot`.
#[derive(Debug, Clone)]
struct Work(u32);

/// A clonable machine that relays a bounded number of events to its peers
/// (machines created before it) and reports each relay to the progress
/// monitor, so stepping dirties both machine and monitor state.
#[derive(Clone, PartialEq, Eq)]
struct Node {
    peers: Vec<MachineId>,
    relays_left: u32,
}

impl Machine for Node {
    fn handle(&mut self, ctx: &mut Context<'_>, event: Event) {
        if let Some(work) = event.downcast_ref::<Work>() {
            if self.relays_left > 0 && !self.peers.is_empty() {
                self.relays_left -= 1;
                let target = self.peers[work.0 as usize % self.peers.len()];
                ctx.send(target, Event::replicable(Work(work.0.wrapping_add(1))));
                ctx.notify_monitor::<RelayCount>(Event::new(Relayed));
            }
        }
    }

    psharp::impl_machine_snapshot!();
}

/// Notification published on every relay.
#[derive(Debug, Clone)]
struct Relayed;

/// A clonable monitor whose state advances with every relay, so a restore
/// that fails to rewind (or needlessly re-clones) monitor state is caught by
/// the lockstep comparison.
#[derive(Clone, Default)]
struct RelayCount {
    seen: usize,
}

impl Monitor for RelayCount {
    fn observe(&mut self, _ctx: &mut MonitorContext<'_>, event: &Event) {
        if event.is::<Relayed>() {
            self.seen += 1;
        }
    }

    fn clone_state(&self) -> Option<Box<dyn Monitor>> {
        Some(Box::new(self.clone()))
    }
}

/// Deterministic LCG driving the op mix (no external rand dependency).
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1);
        self.0 >> 16
    }

    fn below(&mut self, bound: u64) -> u64 {
        self.next() % bound.max(1)
    }
}

fn generous_faults() -> FaultPlan {
    FaultPlan::new()
        .with_crashes(1000)
        .with_restarts(1000)
        .with_drops(1000)
        .with_duplicates(1000)
}

fn config() -> RuntimeConfig {
    RuntimeConfig {
        max_steps: usize::MAX,
        faults: generous_faults(),
        ..RuntimeConfig::default()
    }
}

fn new_runtime(seed: u64) -> Runtime {
    let mut rt = Runtime::new(Box::new(RandomScheduler::new(seed)), config(), seed);
    rt.add_monitor(RelayCount::default());
    rt
}

fn spawn_node(rt: &mut Runtime, relays_left: u32) -> MachineId {
    let peers = (0..rt.machine_count() as u64)
        .map(MachineId::from_raw)
        .collect();
    let id = rt.create_machine(Node { peers, relays_left });
    rt.mark_crashable(id);
    rt.mark_restartable(id);
    rt.mark_lossy(id);
    id
}

/// Asserts every observable of the COW runtime matches the full-restore
/// oracle: counters, enabled set (order included), fault bookkeeping, the
/// trace (schedule, decisions, resolved step names), per-machine liveness
/// flags and state, and monitor state.
fn assert_equivalent(cow: &Runtime, full: &Runtime, op: &str) {
    assert_eq!(cow.steps(), full.steps(), "steps diverged after {op}");
    assert_eq!(
        cow.machine_count(),
        full.machine_count(),
        "machine count diverged after {op}"
    );
    assert_eq!(
        cow.enabled_machines(),
        full.enabled_machines(),
        "enabled set diverged after {op}"
    );
    assert_eq!(
        cow.fault_target_count(),
        full.fault_target_count(),
        "fault targets diverged after {op}"
    );
    assert_eq!(cow.trace(), full.trace(), "trace diverged after {op}");
    for raw in 0..cow.machine_count() as u64 {
        let id = MachineId::from_raw(raw);
        assert_eq!(
            cow.is_halted(id),
            full.is_halted(id),
            "halted flag diverged for {id:?} after {op}"
        );
        assert_eq!(
            cow.is_crashed(id),
            full.is_crashed(id),
            "crashed flag diverged for {id:?} after {op}"
        );
        let cow_node = cow.machine_ref::<Node>(id);
        let full_node = full.machine_ref::<Node>(id);
        assert!(
            cow_node == full_node,
            "machine state diverged for {id:?} after {op}"
        );
    }
    let cow_seen = cow.monitor_ref::<RelayCount>().map(|m| m.seen);
    let full_seen = full.monitor_ref::<RelayCount>().map(|m| m.seen);
    assert_eq!(cow_seen, full_seen, "monitor state diverged after {op}");
}

#[test]
fn cow_restore_is_byte_identical_to_full_restore() {
    for seed in 0..8u64 {
        // Two runtimes driven by the identical op sequence: `cow` rewinds
        // through the dispatching `restore_from`, `full` through the
        // from-scratch oracle. Snapshots are taken at the same ops.
        let mut cow = new_runtime(seed);
        let mut full = new_runtime(seed);
        let mut rng = Lcg(0x9e3779b97f4a7c15 ^ seed.wrapping_mul(0xd1342543de82ef95));
        let mut saved: Option<(RuntimeSnapshot, RuntimeSnapshot)> = None;

        for _ in 0..4 {
            spawn_node(&mut cow, 8);
            spawn_node(&mut full, 8);
        }
        assert_equivalent(&cow, &full, "initial creation");

        for op_index in 0..2500 {
            let pick_id = |rng: &mut Lcg, rt: &Runtime| {
                MachineId::from_raw(rng.below(rt.machine_count() as u64))
            };
            let op = rng.below(16);
            let label = match op {
                0 => {
                    if cow.machine_count() < 48 {
                        let relays = rng.below(12) as u32;
                        spawn_node(&mut cow, relays);
                        spawn_node(&mut full, relays);
                    }
                    "create"
                }
                1..=3 => {
                    let target = pick_id(&mut rng, &cow);
                    let payload = rng.below(1 << 20) as u32;
                    cow.send(target, Event::replicable(Work(payload)));
                    full.send(target, Event::replicable(Work(payload)));
                    "send"
                }
                4..=8 => {
                    let target = if rng.below(4) == 0 || cow.enabled_machines().is_empty() {
                        pick_id(&mut rng, &cow)
                    } else {
                        let enabled = cow.enabled_machines();
                        enabled[rng.below(enabled.len() as u64) as usize]
                    };
                    cow.force_step(target);
                    full.force_step(target);
                    "force_step"
                }
                9..=12 => {
                    let target = pick_id(&mut rng, &cow);
                    let fault = match op {
                        9 => Fault::Crash(target),
                        10 => Fault::Restart(target),
                        11 => Fault::Drop(target),
                        _ => Fault::Duplicate(target),
                    };
                    cow.inject_fault(fault);
                    full.inject_fault(fault);
                    "fault"
                }
                13 => {
                    let pair = (cow.snapshot(), full.snapshot());
                    if let (Some(c), Some(f)) = pair {
                        saved = Some((c, f));
                    }
                    "snapshot"
                }
                _ => {
                    if let Some((snap_cow, snap_full)) = &saved {
                        cow.restore_from(snap_cow);
                        full.restore_from_full(snap_full);
                        assert_eq!(
                            cow.dirty_machine_count(),
                            0,
                            "restore must leave the dirty set empty"
                        );
                        "restore"
                    } else {
                        "restore (no snapshot yet)"
                    }
                }
            };
            assert_equivalent(&cow, &full, label);
            assert!(
                cow.bug().is_none() && full.bug().is_none(),
                "op {op_index} ({label}) unexpectedly reported a bug"
            );
        }
    }
}

/// Restoring from a *parent* snapshot after taking child snapshots (the
/// `PrefixForkEngine` pattern: snapshot at depth d, fork children, rewind to
/// the parent) must also stay on the incremental path and match the oracle.
#[test]
fn nested_snapshots_rewind_to_the_parent_identically() {
    let mut cow = new_runtime(3);
    let mut full = new_runtime(3);
    for _ in 0..6 {
        spawn_node(&mut cow, 6);
        spawn_node(&mut full, 6);
    }
    for id in 0..6u64 {
        cow.send(MachineId::from_raw(id), Event::replicable(Work(id as u32)));
        full.send(MachineId::from_raw(id), Event::replicable(Work(id as u32)));
    }
    let parent_cow = cow.snapshot().expect("snapshotable");
    let parent_full = full.snapshot().expect("snapshotable");

    for round in 0..4u32 {
        // Diverge: step a few machines, crash one, spawn one.
        for _ in 0..3 {
            let enabled = cow.enabled_machines().to_vec();
            if let Some(&target) = enabled.first() {
                cow.force_step(target);
                full.force_step(target);
            }
        }
        cow.inject_fault(Fault::Crash(MachineId::from_raw(u64::from(round % 6))));
        full.inject_fault(Fault::Crash(MachineId::from_raw(u64::from(round % 6))));
        spawn_node(&mut cow, 2);
        spawn_node(&mut full, 2);
        // Child snapshots must not sever sharing with the parent.
        let _child_cow = cow.snapshot().expect("snapshotable");
        let _child_full = full.snapshot().expect("snapshotable");
        cow.restore_from(&parent_cow);
        full.restore_from_full(&parent_full);
        assert_equivalent(&cow, &full, "parent rewind");
    }
}

/// Engine-level identity: with prefix sharing (the COW restore consumer),
/// sleep-set scheduling and fault injection composed, reports must be
/// byte-identical to straight-line execution at 1, 2, 4 and 8 workers.
#[test]
fn prefix_shared_fault_injection_reports_are_identical_at_any_worker_count() {
    fn setup(rt: &mut Runtime) {
        rt.add_monitor(RelayCount::default());
        for relays in [4u32, 6, 8] {
            spawn_node(rt, relays);
        }
        for id in 0..3u64 {
            rt.send(MachineId::from_raw(id), Event::replicable(Work(id as u32)));
        }
    }

    let faults = FaultPlan::new()
        .with_crashes(2)
        .with_restarts(2)
        .with_drops(1)
        .with_duplicates(1);
    let base = TestConfig::new()
        .with_iterations(200)
        .with_seed(2016)
        .with_scheduler(SchedulerKind::sleep_set())
        .with_faults(faults);

    let fingerprint = |report: &TestReport| {
        (
            report.iterations_run,
            report.total_steps,
            report
                .bug
                .as_ref()
                .map(|bug| (bug.iteration, bug.trace.decisions.clone())),
        )
    };

    let straight = TestEngine::new(base.clone()).run(setup);
    let shared = TestEngine::new(base.clone().with_prefix_sharing(true)).run(setup);
    assert_eq!(
        fingerprint(&straight),
        fingerprint(&shared),
        "prefix sharing changed the serial outcome"
    );

    for workers in [1usize, 2, 4, 8] {
        let parallel =
            ParallelTestEngine::new(base.clone().with_prefix_sharing(true).with_workers(workers))
                .run(setup);
        let a = straight
            .bug
            .as_ref()
            .map(|b| (b.iteration, &b.trace.decisions));
        let b = parallel
            .bug
            .as_ref()
            .map(|b| (b.iteration, &b.trace.decisions));
        assert_eq!(a, b, "outcome diverged at {workers} workers");
    }
}
