//! Property and regression tests for the incrementally maintained enabled
//! index (`EnabledSet`).
//!
//! The incremental index replaced a from-scratch slot scan on every step.
//! The property test here drives random interleavings of every operation
//! that touches an enablement edge — create, send, step, crash, restart,
//! drop, duplicate, snapshot, restore, reset — and after *every* operation
//! asserts the index is byte-identical (order included) to the historical
//! O(total) slot scan, which the runtime keeps as `scan_enabled`.

use psharp::prelude::*;
use psharp::scheduler::{RandomScheduler, Scheduler};

/// A replicable payload so mailboxes survive `Runtime::snapshot`.
#[derive(Debug, Clone)]
struct Work(u32);

/// A clonable machine that relays a bounded number of events to its peers
/// (machines created before it), so stepping produces fresh enablement edges
/// deep into the run.
#[derive(Clone)]
struct Node {
    peers: Vec<MachineId>,
    relays_left: u32,
}

impl Machine for Node {
    fn handle(&mut self, ctx: &mut Context<'_>, event: Event) {
        if let Some(work) = event.downcast_ref::<Work>() {
            if self.relays_left > 0 && !self.peers.is_empty() {
                self.relays_left -= 1;
                let target = self.peers[work.0 as usize % self.peers.len()];
                ctx.send(target, Event::replicable(Work(work.0.wrapping_add(1))));
            }
        }
    }

    fn clone_state(&self) -> Option<Box<dyn Machine>> {
        Some(Box::new(self.clone()))
    }
}

/// Deterministic LCG driving the op mix (no external rand dependency).
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1);
        self.0 >> 16
    }

    fn below(&mut self, bound: u64) -> u64 {
        self.next() % bound.max(1)
    }
}

fn generous_faults() -> FaultPlan {
    FaultPlan::new()
        .with_crashes(1000)
        .with_restarts(1000)
        .with_drops(1000)
        .with_duplicates(1000)
}

fn config() -> RuntimeConfig {
    RuntimeConfig {
        max_steps: usize::MAX,
        faults: generous_faults(),
        ..RuntimeConfig::default()
    }
}

fn spawn_node(rt: &mut Runtime, relays_left: u32) -> MachineId {
    let peers = (0..rt.machine_count() as u64)
        .map(MachineId::from_raw)
        .collect();
    let id = rt.create_machine(Node { peers, relays_left });
    rt.mark_crashable(id);
    rt.mark_restartable(id);
    rt.mark_lossy(id);
    id
}

/// Asserts the incremental index matches the from-scratch slot scan exactly,
/// order included.
fn assert_index_matches_scan(rt: &Runtime, op: &str) {
    assert_eq!(
        rt.enabled_machines(),
        rt.scan_enabled().as_slice(),
        "incremental enabled set diverged from the slot scan after {op}"
    );
}

#[test]
fn random_interleavings_keep_index_identical_to_slot_scan() {
    for seed in 0..8u64 {
        let mut rt = Runtime::new(Box::new(RandomScheduler::new(seed)), config(), seed);
        let mut rng = Lcg(0x9e3779b97f4a7c15 ^ seed.wrapping_mul(0xd1342543de82ef95));
        let mut saved: Option<RuntimeSnapshot> = None;

        // Seed population so every op kind has targets from the start.
        for _ in 0..4 {
            spawn_node(&mut rt, 8);
        }
        assert_index_matches_scan(&rt, "initial creation");

        for op_index in 0..3000 {
            let pick_id = |rng: &mut Lcg, rt: &Runtime| {
                MachineId::from_raw(rng.below(rt.machine_count() as u64))
            };
            let op = rng.below(16);
            let label = match op {
                0 => {
                    if rt.machine_count() < 48 {
                        let relays = rng.below(12) as u32;
                        spawn_node(&mut rt, relays);
                    }
                    "create"
                }
                1..=3 => {
                    let target = pick_id(&mut rng, &rt);
                    let payload = rng.below(1 << 20) as u32;
                    rt.send(target, Event::replicable(Work(payload)));
                    "send"
                }
                4..=8 => {
                    // Prefer an actually enabled machine so steps happen, but
                    // sometimes aim at an arbitrary id to exercise the
                    // force_step refusal path too.
                    let target = if rng.below(4) == 0 || rt.enabled_machines().is_empty() {
                        pick_id(&mut rng, &rt)
                    } else {
                        let enabled = rt.enabled_machines();
                        enabled[rng.below(enabled.len() as u64) as usize]
                    };
                    rt.force_step(target);
                    "force_step"
                }
                9 => {
                    rt.inject_fault(Fault::Crash(pick_id(&mut rng, &rt)));
                    "crash"
                }
                10 => {
                    rt.inject_fault(Fault::Restart(pick_id(&mut rng, &rt)));
                    "restart"
                }
                11 => {
                    rt.inject_fault(Fault::Drop(pick_id(&mut rng, &rt)));
                    "drop"
                }
                12 => {
                    rt.inject_fault(Fault::Duplicate(pick_id(&mut rng, &rt)));
                    "duplicate"
                }
                13 => {
                    if let Some(snapshot) = rt.snapshot() {
                        saved = Some(snapshot);
                    }
                    "snapshot"
                }
                14 => {
                    if let Some(snapshot) = &saved {
                        rt.restore_from(snapshot);
                    }
                    "restore"
                }
                _ => {
                    // Reset is rare: it discards the whole population, so
                    // gate it to keep most of the run exercising a live set.
                    if rng.below(12) == 0 {
                        saved = None;
                        rt.reset(Box::new(RandomScheduler::new(seed)), config(), seed);
                        assert_index_matches_scan(&rt, "reset");
                        for _ in 0..3 {
                            spawn_node(&mut rt, 6);
                        }
                        "reset+respawn"
                    } else {
                        "skipped reset"
                    }
                }
            };
            assert_index_matches_scan(&rt, label);
            assert!(
                rt.bug().is_none(),
                "op {op_index} ({label}) unexpectedly reported a bug: {:?}",
                rt.bug()
            );
        }
    }
}

/// A scheduler that always answers with an id outside the enabled set,
/// modeling a buggy or adversarial strategy.
struct OutOfSetScheduler;

impl Scheduler for OutOfSetScheduler {
    fn name(&self) -> &'static str {
        "out-of-set"
    }

    fn next_machine(&mut self, _enabled: &[MachineId], _step: usize) -> MachineId {
        MachineId::from_raw(999)
    }

    fn next_bool(&mut self) -> bool {
        false
    }

    fn next_int(&mut self, _bound: usize) -> usize {
        0
    }
}

/// Satellite regression test: a scheduler pick outside the enabled set must
/// fall back deterministically to the lowest enabled id (historically this
/// fallback was an O(n) `contains` scan; it is now an O(1) index probe, but
/// the observable behavior must be unchanged).
#[test]
fn out_of_set_scheduler_pick_falls_back_to_lowest_enabled_id() {
    struct Inert;
    impl Machine for Inert {
        fn handle(&mut self, _ctx: &mut Context<'_>, _event: Event) {}
    }

    let mut rt = Runtime::new(Box::new(OutOfSetScheduler), RuntimeConfig::default(), 0);
    for _ in 0..3 {
        rt.create_machine(Inert);
    }
    // All three machines are enabled (unstarted); every scheduler answer is
    // id 999, so every step must fall back to the lowest enabled id: the
    // machines start in ascending id order, one step each, then quiescence.
    let outcome = rt.run();
    assert_eq!(outcome, ExecutionOutcome::Quiescent);
    assert_eq!(rt.steps(), 3);
    let schedules: Vec<MachineId> = rt
        .trace()
        .decisions
        .iter()
        .filter_map(|decision| match decision {
            Decision::Schedule(id) => Some(*id),
            _ => None,
        })
        .collect();
    assert_eq!(
        schedules,
        vec![
            MachineId::from_raw(0),
            MachineId::from_raw(1),
            MachineId::from_raw(2)
        ],
        "fallback must pick the lowest enabled id, deterministically"
    );
}
