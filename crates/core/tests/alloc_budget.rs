//! Allocation-budget regression test for the step loop.
//!
//! PR 2 made the hot path allocation-free in the steady state: the enabled
//! set lives in a reusable buffer and trace records store interned name ids
//! instead of freshly cloned `String`s. The only per-step allocation left is
//! the `Event` payload box the harness itself creates. A counting
//! `#[global_allocator]` asserts that budget so a future change cannot
//! silently reintroduce per-step heap traffic.
//!
//! These tests live alone in their integration-test binary (a global
//! allocator is process-wide) and serialize their measurement windows on a
//! mutex so libtest's default parallelism cannot cross-pollute the counter.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

use psharp::prelude::*;

/// Counts every allocation (and growth `realloc`) while armed.
struct CountingAllocator;

static ARMED: AtomicBool = AtomicBool::new(false);
static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

/// Serializes measurement windows: the counter is process-global, so two
/// tests measuring concurrently would count each other's allocations.
static MEASURE: Mutex<()> = Mutex::new(());

/// Runs `body` with the counter armed and returns how many allocations it
/// performed.
fn count_allocations<R>(body: impl FnOnce() -> R) -> (u64, R) {
    let _window = MEASURE.lock().expect("measurement lock poisoned");
    ALLOCATIONS.store(0, Ordering::SeqCst);
    ARMED.store(true, Ordering::SeqCst);
    let result = body();
    ARMED.store(false, Ordering::SeqCst);
    (ALLOCATIONS.load(Ordering::SeqCst), result)
}

#[derive(Debug)]
struct Spin;

/// Self-sending machine: every step dequeues one event and enqueues one, so
/// the run reaches the step bound with exactly one `Event::new` per step.
struct Spinner;
impl Machine for Spinner {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        ctx.send_to_self(Event::new(Spin));
    }
    fn handle(&mut self, ctx: &mut Context<'_>, _event: Event) {
        ctx.send_to_self(Event::new(Spin));
    }
}

/// Steady-state step cost: at most 2 allocations per step on average over a
/// long execution. The harness's own `Event::new` box accounts for 1; the
/// remainder covers amortized growth of the trace/mailbox vectors. Before the
/// interned-trace refactor the loop spent ~5 allocations per step (enabled-set
/// `Vec` plus two `String` clones into every trace record), so this budget
/// fails on a regression to that behavior.
#[test]
fn steady_state_allocations_per_step_stay_under_budget() {
    const STEPS: usize = 20_000;
    let mut rt = Runtime::new(
        SchedulerKind::Random.build(7, STEPS),
        RuntimeConfig {
            max_steps: STEPS,
            ..RuntimeConfig::default()
        },
        7,
    );
    rt.create_machine(Spinner);
    rt.create_machine(Spinner);

    let (allocations, outcome) = count_allocations(|| rt.run());
    assert_eq!(outcome, ExecutionOutcome::MaxStepsReached);
    assert_eq!(rt.steps(), STEPS);

    let per_step = allocations as f64 / STEPS as f64;
    assert!(
        per_step <= 2.0,
        "step loop allocates too much: {allocations} allocations over {STEPS} steps \
         ({per_step:.2}/step, budget 2.0)"
    );
}

/// The schedule decision path (no machine handler involvement beyond a
/// no-send handler) must not allocate at all in the steady state: this run
/// delivers pre-queued events to a machine that never sends, so `Event::new`
/// is off the hot path and the budget is a handful of amortized vector
/// growths, not one-per-step.
#[test]
fn pure_scheduling_steps_allocate_nothing_per_step() {
    const EVENTS: usize = 8_192;
    struct Sink;
    impl Machine for Sink {
        fn handle(&mut self, _ctx: &mut Context<'_>, _event: Event) {}
    }
    let mut rt = Runtime::new(
        SchedulerKind::Random.build(11, EVENTS * 2),
        RuntimeConfig {
            max_steps: EVENTS * 2,
            ..RuntimeConfig::default()
        },
        11,
    );
    let sink = rt.create_machine(Sink);
    for _ in 0..EVENTS {
        rt.send(sink, Event::new(Spin));
    }

    let (allocations, outcome) = count_allocations(|| rt.run());
    assert_eq!(outcome, ExecutionOutcome::Quiescent);

    // Trace decision + step vectors double ~13 times each for 8k steps; give
    // headroom for the name-table and enabled-buffer first-touch, but stay
    // two orders of magnitude below one-allocation-per-step.
    assert!(
        allocations <= 64,
        "delivering {EVENTS} pre-queued events allocated {allocations} times; \
         the dispatch path must be allocation-free in the steady state"
    );
}
