//! Allocation-budget regression tests for the step loop and the trace path.
//!
//! PR 2 made the hot path allocation-free in the steady state: the enabled
//! set lives in a reusable buffer and trace records store interned name ids
//! instead of freshly cloned `String`s. The only per-step allocation left is
//! the `Event` payload box the harness itself creates. A counting
//! `#[global_allocator]` asserts that budget so a future change cannot
//! silently reintroduce per-step heap traffic.
//!
//! PR 4 added two more guarantees covered here: `TraceMode::RingBuffer`
//! bounds the *peak live memory* of the annotated schedule on very long
//! executions (the allocator tracks net live bytes and their high-water
//! mark), and engines recycle trace storage across iterations, so the
//! steady-state cost of an iteration no longer includes re-growing the
//! trace vectors from scratch.
//!
//! These tests live alone in their integration-test binary (a global
//! allocator is process-wide) and serialize their measurement windows on a
//! mutex so libtest's default parallelism cannot cross-pollute the counter.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::Mutex;

use psharp::prelude::*;

/// Counts every allocation (and growth `realloc`) while armed, and tracks
/// the net live bytes plus their high-water mark.
struct CountingAllocator;

static ARMED: AtomicBool = AtomicBool::new(false);
static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);
static LIVE_BYTES: AtomicI64 = AtomicI64::new(0);
static PEAK_BYTES: AtomicI64 = AtomicI64::new(0);

fn track_alloc(bytes: usize) {
    ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
    let live = LIVE_BYTES.fetch_add(bytes as i64, Ordering::Relaxed) + bytes as i64;
    PEAK_BYTES.fetch_max(live, Ordering::Relaxed);
}

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            track_alloc(layout.size());
        }
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        if ARMED.load(Ordering::Relaxed) {
            LIVE_BYTES.fetch_sub(layout.size() as i64, Ordering::Relaxed);
        }
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            track_alloc(new_size);
            LIVE_BYTES.fetch_sub(layout.size() as i64, Ordering::Relaxed);
        }
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

/// Serializes measurement windows: the counter is process-global, so two
/// tests measuring concurrently would count each other's allocations.
static MEASURE: Mutex<()> = Mutex::new(());

/// One armed measurement window: allocation count, peak net-new live bytes,
/// and the body's result.
fn measure<R>(body: impl FnOnce() -> R) -> (u64, u64, R) {
    let _window = MEASURE.lock().expect("measurement lock poisoned");
    ALLOCATIONS.store(0, Ordering::SeqCst);
    LIVE_BYTES.store(0, Ordering::SeqCst);
    PEAK_BYTES.store(0, Ordering::SeqCst);
    ARMED.store(true, Ordering::SeqCst);
    let result = body();
    ARMED.store(false, Ordering::SeqCst);
    (
        ALLOCATIONS.load(Ordering::SeqCst),
        PEAK_BYTES.load(Ordering::SeqCst).max(0) as u64,
        result,
    )
}

/// Runs `body` with the counter armed and returns how many allocations it
/// performed.
fn count_allocations<R>(body: impl FnOnce() -> R) -> (u64, R) {
    let (allocations, _, result) = measure(body);
    (allocations, result)
}

#[derive(Debug)]
struct Spin;

/// Self-sending machine: every step dequeues one event and enqueues one, so
/// the run reaches the step bound with exactly one `Event::new` per step.
struct Spinner;
impl Machine for Spinner {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        ctx.send_to_self(Event::new(Spin));
    }
    fn handle(&mut self, ctx: &mut Context<'_>, _event: Event) {
        ctx.send_to_self(Event::new(Spin));
    }
}

/// Steady-state step cost: at most 2 allocations per step on average over a
/// long execution. The harness's own `Event::new` box accounts for 1; the
/// remainder covers amortized growth of the trace/mailbox vectors. Before the
/// interned-trace refactor the loop spent ~5 allocations per step (enabled-set
/// `Vec` plus two `String` clones into every trace record), so this budget
/// fails on a regression to that behavior.
#[test]
fn steady_state_allocations_per_step_stay_under_budget() {
    const STEPS: usize = 20_000;
    let mut rt = Runtime::new(
        SchedulerKind::Random.build(7, STEPS),
        RuntimeConfig {
            max_steps: STEPS,
            ..RuntimeConfig::default()
        },
        7,
    );
    rt.create_machine(Spinner);
    rt.create_machine(Spinner);

    let (allocations, outcome) = count_allocations(|| rt.run());
    assert_eq!(outcome, ExecutionOutcome::MaxStepsReached);
    assert_eq!(rt.steps(), STEPS);

    let per_step = allocations as f64 / STEPS as f64;
    assert!(
        per_step <= 2.0,
        "step loop allocates too much: {allocations} allocations over {STEPS} steps \
         ({per_step:.2}/step, budget 2.0)"
    );
}

/// The schedule decision path (no machine handler involvement beyond a
/// no-send handler) must not allocate at all in the steady state: this run
/// delivers pre-queued events to a machine that never sends, so `Event::new`
/// is off the hot path and the budget is a handful of amortized vector
/// growths, not one-per-step.
#[test]
fn pure_scheduling_steps_allocate_nothing_per_step() {
    const EVENTS: usize = 8_192;
    struct Sink;
    impl Machine for Sink {
        fn handle(&mut self, _ctx: &mut Context<'_>, _event: Event) {}
    }
    let mut rt = Runtime::new(
        SchedulerKind::Random.build(11, EVENTS * 2),
        RuntimeConfig {
            max_steps: EVENTS * 2,
            ..RuntimeConfig::default()
        },
        11,
    );
    let sink = rt.create_machine(Sink);
    for _ in 0..EVENTS {
        rt.send(sink, Event::new(Spin));
    }

    let (allocations, outcome) = count_allocations(|| rt.run());
    assert_eq!(outcome, ExecutionOutcome::Quiescent);

    // Trace decision + step vectors double ~13 times each for 8k steps; give
    // headroom for the name-table and enabled-buffer first-touch, but stay
    // two orders of magnitude below one-allocation-per-step.
    assert!(
        allocations <= 64,
        "delivering {EVENTS} pre-queued events allocated {allocations} times; \
         the dispatch path must be allocation-free in the steady state"
    );
}

/// A runtime that inherits a previous execution's trace storage
/// ([`Runtime::recycle_trace`], the engines' cross-iteration path) records a
/// same-shaped execution without growing the trace vectors at all: the only
/// allowed allocations are the machine box, first-touch of the per-machine
/// mailbox/slot vectors, and the re-interned machine names.
#[test]
fn recycled_trace_makes_the_next_iteration_allocation_free_on_the_trace_path() {
    const EVENTS: usize = 8_192;
    struct Sink;
    impl Machine for Sink {
        fn handle(&mut self, _ctx: &mut Context<'_>, _event: Event) {}
    }
    let build = || {
        Runtime::new(
            SchedulerKind::Random.build(11, EVENTS * 2),
            RuntimeConfig {
                max_steps: EVENTS * 2,
                ..RuntimeConfig::default()
            },
            11,
        )
    };

    // Warm-up execution grows the trace to its full size.
    let mut first = build();
    let sink = first.create_machine(Sink);
    for _ in 0..EVENTS {
        first.send(sink, Event::new(Spin));
    }
    assert_eq!(first.run(), ExecutionOutcome::Quiescent);
    let recycled = first.into_trace();

    // Second execution re-uses that storage: recording must not re-allocate.
    let mut second = build();
    second.recycle_trace(recycled);
    let sink = second.create_machine(Sink);
    for _ in 0..EVENTS {
        second.send(sink, Event::new(Spin));
    }
    let (allocations, outcome) = count_allocations(|| second.run());
    assert_eq!(outcome, ExecutionOutcome::Quiescent);
    assert!(
        allocations <= 8,
        "a recycled-trace execution allocated {allocations} times; \
         pre-grown trace storage must absorb the whole recording"
    );
}

/// A pooled runtime ([`Runtime::reset`], the engines' cross-iteration path)
/// replays the whole iteration lifecycle — reset, machine re-creation, event
/// delivery to quiescence — inside a small constant allocation budget: the
/// mailbox pool hands back the previous iteration's queues, the name table
/// re-interns into retained backbone storage, and the trace records into its
/// pre-grown vectors. Only the fresh machine box and the re-interned name
/// `Arc`s may allocate.
#[test]
fn pooled_runtime_iteration_stays_within_a_constant_allocation_budget() {
    const EVENTS: usize = 8_192;
    struct Sink;
    impl Machine for Sink {
        fn handle(&mut self, _ctx: &mut Context<'_>, _event: Event) {}
    }
    let config = RuntimeConfig {
        max_steps: EVENTS * 2,
        ..RuntimeConfig::default()
    };

    // Warm-up iteration grows every buffer to its steady-state size.
    let mut rt = Runtime::new(
        SchedulerKind::Random.build(11, EVENTS * 2),
        config.clone(),
        11,
    );
    let sink = rt.create_machine(Sink);
    for _ in 0..EVENTS {
        rt.send(sink, Event::new(Spin));
    }
    assert_eq!(rt.run(), ExecutionOutcome::Quiescent);

    // Second iteration reuses the pooled runtime. The `Event::new` boxes are
    // the harness's own per-event cost, so they are queued outside the armed
    // window; the measured body is the engine-owned part of an iteration.
    let scheduler = SchedulerKind::Random.build(13, EVENTS * 2);
    rt.reset(scheduler, config, 13);
    let sink = rt.create_machine(Sink);
    for _ in 0..EVENTS {
        rt.send(sink, Event::new(Spin));
    }
    let (allocations, outcome) = count_allocations(|| rt.run());
    assert_eq!(outcome, ExecutionOutcome::Quiescent);
    assert_eq!(rt.steps(), EVENTS + 1);
    assert!(
        allocations <= 8,
        "a pooled-runtime iteration allocated {allocations} times; \
         reset storage must absorb the whole execution"
    );
}

/// The mega-scale acceptance of the O(active) scheduling core (PR 8): a
/// *recycled* 10,240-machine megakv iteration — pooled [`Runtime::reset`],
/// full harness re-creation, then a run to quiescence covering one
/// schedulable `on_start` step per machine — stays within the same ≤8
/// allocation budget as the small harnesses above. The enabled index,
/// mailbox pool (all cold mailboxes stay lazily vacant), trace storage and
/// name table all retain their capacity across the reset, so ten thousand
/// machines cost the armed window nothing. The harness re-build (machine
/// boxes, slot-vector reuse) is the iteration's own setup cost and happens
/// outside the window, exactly as the engines sequence it.
#[test]
fn recycled_megakv_iteration_at_ten_thousand_machines_stays_within_budget() {
    const TOTAL: usize = 10_240;
    let kv = megakv::MegaKvConfig::scale(TOTAL, 0);
    let config = RuntimeConfig {
        max_steps: TOTAL + 100,
        ..RuntimeConfig::default()
    };

    // Warm-up iteration grows every pooled buffer to mega-scale size.
    let mut rt = Runtime::new(
        SchedulerKind::Random.build(11, TOTAL + 100),
        config.clone(),
        11,
    );
    megakv::build_harness(&mut rt, &kv);
    assert_eq!(rt.run(), ExecutionOutcome::Quiescent);
    assert_eq!(rt.steps(), TOTAL, "one start step per machine");

    // The recycled iteration: reset, re-build, measure the run.
    rt.reset(SchedulerKind::Random.build(13, TOTAL + 100), config, 13);
    megakv::build_harness(&mut rt, &kv);
    let (allocations, outcome) = count_allocations(|| rt.run());
    assert_eq!(outcome, ExecutionOutcome::Quiescent);
    assert_eq!(rt.steps(), TOTAL);
    assert!(
        allocations <= 8,
        "a recycled {TOTAL}-machine megakv iteration allocated {allocations} times; \
         the O(active) core must absorb mega-scale runs in retained storage"
    );
}

/// The vector-clock DPOR strategy preallocates its entire clock machinery —
/// the LRU slot window, the pending-clock rings, the recent-step race-scan
/// ring and the backtrack queue — in [`DporScheduler::new`], which the
/// engines call *outside* an iteration's hot loop. A recycled iteration
/// driven by DPOR must therefore fit the same ≤8 allocation budget as the
/// non-reducing strategies: happens-before tracking, race detection and
/// backtrack scheduling are all in-place updates of retained storage.
#[test]
fn recycled_dpor_iteration_stays_within_a_constant_allocation_budget() {
    const EVENTS: usize = 8_192;
    struct Sink;
    impl Machine for Sink {
        fn handle(&mut self, _ctx: &mut Context<'_>, _event: Event) {}
    }
    let config = RuntimeConfig {
        max_steps: EVENTS * 2,
        ..RuntimeConfig::default()
    };

    let preload = |rt: &mut Runtime| {
        let sinks = [
            rt.create_machine(Sink),
            rt.create_machine(Sink),
            rt.create_machine(Sink),
        ];
        for i in 0..EVENTS {
            rt.send(sinks[i % sinks.len()], Event::new(Spin));
        }
    };

    // Warm-up iteration grows every buffer to its steady-state size.
    let mut rt = Runtime::new(
        SchedulerKind::Dpor.build(11, EVENTS * 2),
        config.clone(),
        11,
    );
    preload(&mut rt);
    assert_eq!(rt.run(), ExecutionOutcome::Quiescent);

    // The recycled iteration: the scheduler (and its preallocated clock
    // tables) is constructed outside the armed window, exactly as the
    // engines sequence it; only the run itself is measured.
    let scheduler = SchedulerKind::Dpor.build(13, EVENTS * 2);
    rt.reset(scheduler, config, 13);
    preload(&mut rt);
    let (allocations, outcome) = count_allocations(|| rt.run());
    assert_eq!(outcome, ExecutionOutcome::Quiescent);
    assert!(
        rt.pruned_equivalents() > 0,
        "the DPOR run must actually have pruned (sticky run-to-completion)"
    );
    assert!(
        allocations <= 8,
        "a recycled DPOR iteration allocated {allocations} times; \
         vector-clock tracking must run entirely in preallocated storage"
    );
}

/// Snapshot forks ([`Runtime::restore_from`], the prefix-sharing path) recycle
/// the pooled mailboxes, retained trace storage and footprint buffers of the
/// runtime they overwrite, so once the pools are warm a fork costs O(machines)
/// allocations — the re-cloned machine boxes, the snapshot scheduler re-clone
/// and duplicated queued events — never O(steps) of the suffix it replaces.
#[test]
fn snapshot_fork_restore_stays_within_a_constant_allocation_budget() {
    const STEPS: usize = 8_192;

    /// Clonable twin of [`Spinner`]: snapshots require `clone_state`.
    #[derive(Clone)]
    struct CloneSpinner;
    impl Machine for CloneSpinner {
        fn on_start(&mut self, ctx: &mut Context<'_>) {
            ctx.send_to_self(Event::new(Spin));
        }
        fn handle(&mut self, ctx: &mut Context<'_>, _event: Event) {
            ctx.send_to_self(Event::new(Spin));
        }
        fn clone_state(&self) -> Option<Box<dyn Machine>> {
            Some(Box::new(self.clone()))
        }
    }

    let mut rt = Runtime::new(
        SchedulerKind::Random.build(11, STEPS),
        RuntimeConfig {
            max_steps: STEPS,
            ..RuntimeConfig::default()
        },
        11,
    );
    rt.create_machine(CloneSpinner);
    rt.create_machine(CloneSpinner);
    let snapshot = rt.snapshot().expect("clonable harness snapshots");

    // Warm-up forks grow every pooled buffer to its steady-state size.
    for seed in [13, 17] {
        rt.restore_from(&snapshot);
        rt.set_scheduler(SchedulerKind::Random.build(seed, STEPS));
        rt.reseed(seed);
        assert_eq!(rt.run(), ExecutionOutcome::MaxStepsReached);
    }

    // The measured fork: restoring an 8k-step runtime back to the prefix
    // must not touch the heap beyond the constant per-fork cost.
    let (allocations, ()) = count_allocations(|| rt.restore_from(&snapshot));
    assert!(
        allocations <= 8,
        "a warm snapshot fork allocated {allocations} times; \
         recycled snapshot buffers must absorb the restore"
    );

    // And the fork is a fully working runtime: the suffix runs to the bound.
    rt.set_scheduler(SchedulerKind::Random.build(19, STEPS));
    rt.reseed(19);
    assert_eq!(rt.run(), ExecutionOutcome::MaxStepsReached);
    assert_eq!(rt.steps(), STEPS);
}

/// The copy-on-write acceptance at mega-scale (PR 9): a warm fork that
/// touched K of 10,240 machines re-clones O(K) state, not O(machines). The
/// snapshot holds every machine behind an `Arc`; stepping dirties a handful,
/// and `Runtime::restore_from` rewinds only those — everything clean is an
/// `Arc` the runtime still shares with the snapshot. The budget is pinned to
/// the dirty count and deliberately does NOT scale with the total machine
/// count: re-run this test at `TOTAL = 1_024` or `TOTAL = 102_400` and it
/// must still hold.
#[test]
fn low_dirty_fork_at_ten_thousand_machines_costs_o_dirty_not_o_machines() {
    const TOTAL: usize = 10_240;
    const DIRTY: usize = 16;
    let kv = megakv::MegaKvConfig::scale(TOTAL, 0);
    let config = RuntimeConfig {
        max_steps: TOTAL + 100,
        ..RuntimeConfig::default()
    };
    let mut rt = Runtime::new(
        SchedulerKind::Random.build(11, TOTAL + 100),
        config.clone(),
        11,
    );
    megakv::build_harness(&mut rt, &kv);
    let snapshot = rt.snapshot().expect("megakv harness snapshots");

    // Warm-up forks: dirty a few machines, rewind, twice — growing the
    // machine pool, mailbox pool and trace storage to steady state.
    for _ in 0..2 {
        for raw in 0..DIRTY as u64 {
            rt.force_step(MachineId::from_raw(raw));
        }
        rt.restore_from(&snapshot);
    }

    // The measured fork: K stepped machines (plus whatever they sent to)
    // out of 10,240. The restore must touch only those.
    for raw in 0..DIRTY as u64 {
        rt.force_step(MachineId::from_raw(raw));
    }
    let touched = rt.dirty_machine_count();
    assert!(
        (DIRTY..TOTAL / 10).contains(&touched),
        "expected a low-dirty fork, got {touched} dirty of {TOTAL}"
    );
    let (allocations, ()) = count_allocations(|| rt.restore_from(&snapshot));
    assert_eq!(rt.dirty_machine_count(), 0);
    let budget = 8 + 2 * touched as u64;
    assert!(
        allocations <= budget,
        "a {touched}-dirty fork of {TOTAL} machines allocated {allocations} times \
         (budget {budget}); the restore must cost O(dirty), not O(machines)"
    );

    // And the fork is a fully working runtime: every machine still runs its
    // start step and the iteration reaches quiescence.
    assert_eq!(rt.run(), ExecutionOutcome::Quiescent);
    assert_eq!(rt.steps(), TOTAL);
}

/// One branch expansion of the parallel prefix-tree engine — rewinding a
/// worker's pooled runtime to the node snapshot, forcing one scheduling
/// step, and capturing the child snapshot — runs in a small constant budget
/// once the worker's pools are warm, *independent of how long the suffix the
/// rewind discards ran*. This is what makes tree forks "cheap": expanding a
/// node costs O(machines + dirty), never O(steps).
#[test]
fn parallel_tree_branch_expansion_stays_within_a_constant_allocation_budget() {
    const STEPS: usize = 8_192;

    #[derive(Clone)]
    struct CloneSpinner;
    impl Machine for CloneSpinner {
        fn on_start(&mut self, ctx: &mut Context<'_>) {
            ctx.send_to_self(Event::replicable(ClonableSpin));
        }
        fn handle(&mut self, ctx: &mut Context<'_>, _event: Event) {
            ctx.send_to_self(Event::replicable(ClonableSpin));
        }
        fn clone_state(&self) -> Option<Box<dyn Machine>> {
            Some(Box::new(self.clone()))
        }
    }
    #[derive(Debug, Clone)]
    struct ClonableSpin;

    let mut rt = Runtime::new(
        SchedulerKind::Random.build(11, STEPS),
        RuntimeConfig {
            max_steps: STEPS,
            ..RuntimeConfig::default()
        },
        11,
    );
    let first = rt.create_machine(CloneSpinner);
    rt.create_machine(CloneSpinner);
    let node = rt.snapshot().expect("clonable harness snapshots");

    // Warm-up: run a long suffix, then perform the branch-expansion cycle
    // twice so every pool reaches steady state.
    assert_eq!(rt.run(), ExecutionOutcome::MaxStepsReached);
    for _ in 0..2 {
        rt.restore_from(&node);
        assert!(rt.force_step(first));
        let _child = rt.snapshot().expect("branch snapshots");
    }

    // The measured expansion: rewind past the 8k-step suffix, force the
    // branch step, capture the child. The budget covers the per-machine
    // state clones of the child snapshot plus the snapshot scheduler clone —
    // nothing proportional to the discarded suffix.
    let (allocations, child) = count_allocations(|| {
        rt.restore_from(&node);
        assert!(rt.force_step(first));
        rt.snapshot().expect("branch snapshots")
    });
    assert!(
        allocations <= 48,
        "one tree-branch expansion allocated {allocations} times; \
         forking a node must cost O(machines), not O(suffix steps)"
    );

    // And the child is a usable tree node: a fork of it runs to the bound.
    rt.restore_from(&child);
    rt.set_scheduler(SchedulerKind::Random.build(17, STEPS));
    rt.reseed(17);
    assert_eq!(rt.run(), ExecutionOutcome::MaxStepsReached);
}

/// Bug-free portfolio sweeps auto-select `TraceMode::DecisionsOnly` when
/// neither shrinking nor an explicit trace mode was requested
/// (`TestConfig::effective_trace_mode`): the annotated schedule — the larger
/// trace stream — is never materialized, so the sweep's peak memory drops
/// measurably below the same sweep pinned to `TraceMode::Full`.
#[test]
fn portfolio_sweep_auto_decisions_only_drops_peak_memory() {
    const ITERATIONS: u64 = 12;
    const STEPS: usize = 20_000;
    let run = |config: TestConfig| {
        let engine = TestEngine::new(
            config
                .with_iterations(ITERATIONS)
                .with_max_steps(STEPS)
                .with_seed(5)
                .with_default_portfolio(),
        );
        let (_, peak, report) = measure(|| {
            engine.run(|rt| {
                rt.create_machine(Spinner);
                rt.create_machine(Spinner);
            })
        });
        assert!(!report.found_bug(), "the sweep must be bug-free");
        peak
    };

    let auto = TestConfig::new().with_default_portfolio();
    assert_eq!(auto.effective_trace_mode(), TraceMode::DecisionsOnly);
    assert_eq!(
        auto.clone().with_shrink(true).effective_trace_mode(),
        TraceMode::Full,
        "shrink runs keep the annotated schedule"
    );
    assert_eq!(
        auto.clone()
            .with_trace_mode(TraceMode::Full)
            .effective_trace_mode(),
        TraceMode::Full,
        "an explicit trace mode wins over the auto-selection"
    );

    let auto_peak = run(TestConfig::new());
    let full_peak = run(TestConfig::new().with_trace_mode(TraceMode::Full));
    let step_bytes = (STEPS * std::mem::size_of::<psharp::trace::TraceStep>()) as u64;
    assert!(
        auto_peak + step_bytes / 2 <= full_peak,
        "auto decisions-only peak {auto_peak} saves too little vs full-mode peak {full_peak}"
    );
}

/// `TraceMode::RingBuffer` bounds the peak memory of the annotated schedule
/// on very long executions: the replay-bearing decision stream still grows
/// (dropping it would destroy replayability), but the per-step `TraceStep`
/// records — the larger of the two streams — stay capped at the ring
/// capacity instead of scaling with the execution length.
#[test]
fn ring_buffer_trace_mode_bounds_peak_trace_memory() {
    const STEPS: usize = 100_000;
    const RING: usize = 256;
    let run = |trace_mode| {
        let mut rt = Runtime::new(
            SchedulerKind::Random.build(7, STEPS),
            RuntimeConfig {
                max_steps: STEPS,
                trace_mode,
                ..RuntimeConfig::default()
            },
            7,
        );
        rt.create_machine(Spinner);
        rt.create_machine(Spinner);
        let (_, peak, outcome) = measure(|| rt.run());
        assert_eq!(outcome, ExecutionOutcome::MaxStepsReached);
        (peak, rt.into_trace())
    };

    let (full_peak, full_trace) = run(TraceMode::Full);
    let (ring_peak, ring_trace) = run(TraceMode::RingBuffer(RING));

    assert_eq!(full_trace.retained_step_count(), STEPS);
    assert_eq!(ring_trace.retained_step_count(), RING);
    assert_eq!(ring_trace.dropped_steps(), STEPS - RING);
    assert_eq!(
        ring_trace.decision_count(),
        full_trace.decision_count(),
        "the replay-bearing decision stream must be complete in every mode"
    );

    // The annotated schedule is ~24 bytes per step; the ring must save at
    // least that (modulo growth slack), and land well below the full-mode
    // high-water mark.
    let step_bytes = (STEPS * std::mem::size_of::<psharp::trace::TraceStep>()) as u64;
    assert!(
        full_peak >= step_bytes,
        "full-mode peak {full_peak} is implausibly below the step storage {step_bytes}"
    );
    assert!(
        ring_peak + step_bytes / 2 <= full_peak,
        "ring-buffer peak {ring_peak} saves too little vs full-mode peak {full_peak}"
    );
}
