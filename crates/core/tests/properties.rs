//! Property-style tests of the core runtime's data structures and invariants.
//!
//! The container building this workspace has no access to a crates.io mirror,
//! so instead of `proptest` these tests drive the crate's own deterministic
//! [`SplitMix64`] generator over many derived seeds: same coverage style
//! (random structured inputs, shrunk to a failing seed printed in the panic
//! message), zero external dependencies, and perfectly reproducible runs.

use psharp::machine::MachineId;
use psharp::prelude::*;
use psharp::rng::SplitMix64;
use psharp::trace::{Decision, Trace};

/// Number of generated cases per property, mirroring proptest's default.
const CASES: u64 = 128;

fn gen_decision(rng: &mut SplitMix64) -> Decision {
    match rng.next_below(3) {
        0 => Decision::Schedule(MachineId::from_raw(rng.next_below(32) as u64)),
        1 => Decision::Bool(rng.next_bool()),
        _ => Decision::Int(rng.next_below(1_000)),
    }
}

/// Traces round-trip through their JSON representation unchanged, which is
/// what makes stored bug reports replayable later.
#[test]
fn trace_json_round_trip() {
    for case in 0..CASES {
        let mut rng = SplitMix64::new(0xA11CE ^ case);
        let seed = rng.next_u64();
        let mut trace = Trace::new(seed);
        for _ in 0..rng.next_below(200) {
            trace.push_decision(gen_decision(&mut rng));
        }
        let json = trace.to_json().expect("serialize");
        let back = Trace::from_json(&json).expect("deserialize");
        assert_eq!(trace, back, "case {case}");
    }
}

/// The deterministic RNG produces identical streams for identical seeds and
/// respects requested bounds.
#[test]
fn splitmix_is_deterministic_and_bounded() {
    for case in 0..CASES {
        let mut meta = SplitMix64::new(0xB0B ^ case);
        let seed = meta.next_u64();
        let mut a = SplitMix64::new(seed);
        let mut b = SplitMix64::new(seed);
        for _ in 0..1 + meta.next_below(50) {
            let bound = 1 + meta.next_below(10_000);
            let x = a.next_below(bound);
            let y = b.next_below(bound);
            assert_eq!(x, y, "case {case}");
            assert!(x < bound, "case {case}");
        }
    }
}

/// Whatever seed drives the random scheduler, a buggy execution's trace
/// replays to the same violation: replay determinism is independent of the
/// schedule that found the bug.
#[test]
fn replay_reproduces_bugs_for_any_seed() {
    #[derive(Debug)]
    struct Poke;
    struct Racer {
        peer_started: bool,
    }
    impl Machine for Racer {
        fn on_start(&mut self, ctx: &mut Context<'_>) {
            // A bug that depends on a controlled choice.
            if ctx.random_index(4) == 3 {
                ctx.assert(self.peer_started, "raced ahead of the peer");
            }
            ctx.send_to_self(Event::new(Poke));
        }
        fn handle(&mut self, _ctx: &mut Context<'_>, _event: Event) {}
    }
    let setup = |rt: &mut Runtime| {
        rt.create_machine(Racer {
            peer_started: false,
        });
        rt.create_machine(Racer { peer_started: true });
    };
    for case in 0..32 {
        let seed = SplitMix64::new(0xCAFE ^ case).next_u64();
        let engine = TestEngine::new(TestConfig::new().with_iterations(200).with_seed(seed));
        let report = engine.run(setup);
        if let Some(found) = report.bug {
            let replayed = engine
                .replay(&found.trace, setup)
                .expect("replay finds the same bug");
            assert_eq!(replayed.kind, found.bug.kind, "case {case}");
            assert_eq!(replayed.message, found.bug.message, "case {case}");
        }
    }
}

/// The schedule portion of every recorded trace only ever names machines that
/// exist, and the number of recorded steps never exceeds the bound.
#[test]
fn traces_respect_the_step_bound() {
    #[derive(Debug)]
    struct Loop;
    struct Spinner;
    impl Machine for Spinner {
        fn on_start(&mut self, ctx: &mut Context<'_>) {
            ctx.send_to_self(Event::new(Loop));
        }
        fn handle(&mut self, ctx: &mut Context<'_>, _event: Event) {
            let _ = ctx.random_bool();
            ctx.send_to_self(Event::new(Loop));
        }
    }
    for case in 0..64 {
        let mut meta = SplitMix64::new(0xDEED ^ case);
        let seed = meta.next_u64();
        let max_steps = 1 + meta.next_below(200);
        let mut rt = Runtime::new(
            SchedulerKind::Random.build(seed, max_steps),
            RuntimeConfig {
                max_steps,
                ..RuntimeConfig::default()
            },
            seed,
        );
        let a = rt.create_machine(Spinner);
        let b = rt.create_machine(Spinner);
        rt.run();
        assert!(rt.steps() <= max_steps, "case {case}");
        assert_eq!(rt.trace().retained_step_count(), rt.steps(), "case {case}");
        for step in rt.trace().steps() {
            assert!(step.machine == a || step.machine == b, "case {case}");
        }
    }
}
