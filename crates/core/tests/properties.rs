//! Property-based tests of the core runtime's data structures and invariants.

use proptest::prelude::*;

use psharp::machine::MachineId;
use psharp::prelude::*;
use psharp::rng::SplitMix64;
use psharp::trace::{Decision, Trace};

fn arb_decision() -> impl Strategy<Value = Decision> {
    prop_oneof![
        (0u64..32).prop_map(|id| Decision::Schedule(MachineId::from_raw(id))),
        any::<bool>().prop_map(Decision::Bool),
        (0usize..1_000).prop_map(Decision::Int),
    ]
}

proptest! {
    /// Traces round-trip through their JSON representation unchanged, which
    /// is what makes stored bug reports replayable later.
    #[test]
    fn trace_json_round_trip(seed in any::<u64>(), decisions in prop::collection::vec(arb_decision(), 0..200)) {
        let mut trace = Trace::new(seed);
        for decision in decisions {
            trace.push_decision(decision);
        }
        let json = trace.to_json().expect("serialize");
        let back = Trace::from_json(&json).expect("deserialize");
        prop_assert_eq!(trace, back);
    }

    /// The deterministic RNG produces identical streams for identical seeds
    /// and respects requested bounds.
    #[test]
    fn splitmix_is_deterministic_and_bounded(seed in any::<u64>(), bounds in prop::collection::vec(1usize..10_000, 1..50)) {
        let mut a = SplitMix64::new(seed);
        let mut b = SplitMix64::new(seed);
        for bound in bounds {
            let x = a.next_below(bound);
            let y = b.next_below(bound);
            prop_assert_eq!(x, y);
            prop_assert!(x < bound);
        }
    }

    /// Whatever seed drives the random scheduler, a buggy execution's trace
    /// replays to the same violation: replay determinism is independent of
    /// the schedule that found the bug.
    #[test]
    fn replay_reproduces_bugs_for_any_seed(seed in any::<u64>()) {
        #[derive(Debug)]
        struct Poke;
        struct Racer {
            peer_started: bool,
        }
        impl Machine for Racer {
            fn on_start(&mut self, ctx: &mut Context<'_>) {
                // A bug that depends on a controlled choice.
                if ctx.random_index(4) == 3 {
                    ctx.assert(self.peer_started, "raced ahead of the peer");
                }
                ctx.send_to_self(Event::new(Poke));
            }
            fn handle(&mut self, _ctx: &mut Context<'_>, _event: Event) {}
        }
        let setup = |rt: &mut Runtime| {
            rt.create_machine(Racer { peer_started: false });
            rt.create_machine(Racer { peer_started: true });
        };
        let engine = TestEngine::new(TestConfig::new().with_iterations(200).with_seed(seed));
        let report = engine.run(setup);
        if let Some(found) = report.bug {
            let replayed = engine.replay(&found.trace, setup).expect("replay finds the same bug");
            prop_assert_eq!(replayed.kind, found.bug.kind);
            prop_assert_eq!(replayed.message, found.bug.message);
        }
    }

    /// The schedule portion of every recorded trace only ever names machines
    /// that exist, and the number of recorded steps never exceeds the bound.
    #[test]
    fn traces_respect_the_step_bound(seed in any::<u64>(), max_steps in 1usize..200) {
        #[derive(Debug)]
        struct Loop;
        struct Spinner;
        impl Machine for Spinner {
            fn on_start(&mut self, ctx: &mut Context<'_>) {
                ctx.send_to_self(Event::new(Loop));
            }
            fn handle(&mut self, ctx: &mut Context<'_>, _event: Event) {
                let _ = ctx.random_bool();
                ctx.send_to_self(Event::new(Loop));
            }
        }
        let mut rt = Runtime::new(
            SchedulerKind::Random.build(seed, max_steps),
            RuntimeConfig {
                max_steps,
                ..RuntimeConfig::default()
            },
            seed,
        );
        let a = rt.create_machine(Spinner);
        let b = rt.create_machine(Spinner);
        rt.run();
        prop_assert!(rt.steps() <= max_steps);
        prop_assert_eq!(rt.trace().steps.len(), rt.steps());
        for step in &rt.trace().steps {
            prop_assert!(step.machine == a || step.machine == b);
        }
    }
}
