//! Determinism regression tests: for every [`SchedulerKind`], two runs with
//! the same seed produce identical traces and identical [`TestReport`]
//! counters — with the serial engine, with the parallel engine at one worker
//! (which must be bit-identical to serial), and with the parallel engine at
//! N workers (whose counters are deterministic for bug-free runs because
//! every worker exhausts its stripe of the iteration space).

use psharp::prelude::*;

/// Two writers race to flip a flag machine; one interleaving violates the
/// flag's safety assertion, so schedule exploration decides the outcome.
mod racey {
    use super::*;

    #[derive(Debug)]
    pub struct SetFlag(pub bool);

    pub struct Flag {
        value: bool,
    }
    impl Machine for Flag {
        fn handle(&mut self, ctx: &mut Context<'_>, event: Event) {
            if let Some(set) = event.downcast_ref::<SetFlag>() {
                if !set.0 && !self.value {
                    ctx.assert(false, "cleared a flag that was never set");
                }
                self.value = set.0;
            }
        }
    }

    pub struct Writer {
        pub flag: MachineId,
        pub value: bool,
    }
    impl Machine for Writer {
        fn on_start(&mut self, ctx: &mut Context<'_>) {
            ctx.send(self.flag, Event::new(SetFlag(self.value)));
        }
        fn handle(&mut self, _ctx: &mut Context<'_>, _event: Event) {}
    }

    pub fn setup(rt: &mut Runtime) {
        let flag = rt.create_machine(Flag { value: false });
        rt.create_machine(Writer { flag, value: true });
        rt.create_machine(Writer { flag, value: false });
    }
}

/// A correct system that still consumes nondeterminism, so traces exercise
/// every decision type without ever finding a bug.
mod clean {
    use super::*;

    #[derive(Debug)]
    pub struct Ping;

    pub struct Chatter {
        pub peer: Option<MachineId>,
        pub budget: usize,
    }
    impl Machine for Chatter {
        fn on_start(&mut self, ctx: &mut Context<'_>) {
            if let Some(peer) = self.peer {
                ctx.send(peer, Event::new(Ping));
            }
        }
        fn handle(&mut self, ctx: &mut Context<'_>, _event: Event) {
            let _ = ctx.random_bool();
            let _ = ctx.random_index(5);
            if self.budget > 0 {
                self.budget -= 1;
                ctx.send_to_self(Event::new(Ping));
            }
        }
    }

    pub fn setup(rt: &mut Runtime) {
        let a = rt.create_machine(Chatter {
            peer: None,
            budget: 6,
        });
        rt.create_machine(Chatter {
            peer: Some(a),
            budget: 4,
        });
    }
}

fn every_kind() -> Vec<SchedulerKind> {
    vec![
        SchedulerKind::Random,
        SchedulerKind::Pct { change_points: 2 },
        SchedulerKind::Pct { change_points: 5 },
        SchedulerKind::DelayBounding { delays: 2 },
        SchedulerKind::ProbabilisticRandom { switch_percent: 10 },
        SchedulerKind::RoundRobin,
    ]
}

fn config(kind: SchedulerKind) -> TestConfig {
    TestConfig::new()
        .with_iterations(200)
        .with_seed(1)
        .with_scheduler(kind)
}

/// Asserts the deterministic portions of two reports are identical (elapsed
/// wall-clock time is the only field allowed to differ).
fn assert_reports_identical(a: &TestReport, b: &TestReport, context: &str) {
    assert_eq!(a.iterations_run, b.iterations_run, "{context}: iterations");
    assert_eq!(a.total_steps, b.total_steps, "{context}: steps");
    assert_eq!(a.scheduler, b.scheduler, "{context}: scheduler label");
    assert_eq!(a.workers, b.workers, "{context}: worker count");
    assert_eq!(a.found_bug(), b.found_bug(), "{context}: found_bug");
    if let (Some(x), Some(y)) = (&a.bug, &b.bug) {
        assert_eq!(x.iteration, y.iteration, "{context}: bug iteration");
        assert_eq!(x.ndc, y.ndc, "{context}: bug ndc");
        assert_eq!(x.trace, y.trace, "{context}: bug trace");
        assert_eq!(x.bug.kind, y.bug.kind, "{context}: bug kind");
        assert_eq!(x.bug.message, y.bug.message, "{context}: bug message");
    }
    assert_eq!(a.per_strategy, b.per_strategy, "{context}: per-strategy");
}

#[test]
fn serial_runs_are_identical_for_every_scheduler() {
    for kind in every_kind() {
        let engine = TestEngine::new(config(kind));
        let first = engine.run(racey::setup);
        let second = engine.run(racey::setup);
        assert_reports_identical(&first, &second, kind.label());
    }
}

#[test]
fn single_worker_parallel_run_is_bit_identical_to_serial() {
    for kind in every_kind() {
        let serial = TestEngine::new(config(kind)).run(racey::setup);
        let parallel = ParallelTestEngine::new(config(kind).with_workers(1)).run(racey::setup);
        assert_reports_identical(&serial, &parallel, kind.label());
    }
}

#[test]
fn n_worker_runs_are_identical_for_every_scheduler_on_clean_harness() {
    // With no bug to race for, every worker exhausts its stripe, so the
    // merged counters are independent of thread timing.
    for kind in every_kind() {
        let make = || ParallelTestEngine::new(config(kind).with_workers(3)).run(clean::setup);
        let first = make();
        let second = make();
        assert_reports_identical(&first, &second, kind.label());
        assert!(!first.found_bug(), "{}: clean harness", kind.label());
        assert_eq!(first.iterations_run, 200, "{}: full budget", kind.label());
    }
}

#[test]
fn n_worker_run_covers_the_same_seed_space_as_serial() {
    // A bug-free run explores every iteration regardless of worker count, so
    // the total step count must match the serial engine exactly: each global
    // iteration keeps its serial seed.
    for kind in every_kind() {
        let serial = TestEngine::new(config(kind)).run(clean::setup);
        let sharded = ParallelTestEngine::new(config(kind).with_workers(4)).run(clean::setup);
        assert_eq!(
            serial.total_steps,
            sharded.total_steps,
            "{}: same executions, same steps",
            kind.label()
        );
        assert_eq!(serial.iterations_run, sharded.iterations_run);
    }
}

#[test]
fn portfolio_attribution_covers_every_iteration() {
    let report = ParallelTestEngine::new(
        TestConfig::new()
            .with_iterations(120)
            .with_seed(9)
            .with_workers(5)
            .with_default_portfolio(),
    )
    .run(clean::setup);
    assert_eq!(report.workers, 5);
    let attributed: u64 = report.per_strategy.iter().map(|s| s.iterations_run).sum();
    assert_eq!(attributed, report.iterations_run);
    let attributed_steps: u64 = report.per_strategy.iter().map(|s| s.total_steps).sum();
    assert_eq!(attributed_steps, report.total_steps);
    // One row per portfolio entry, in portfolio order.
    let portfolio = SchedulerKind::default_portfolio();
    assert_eq!(report.per_strategy.len(), portfolio.len());
    for (row, kind) in report.per_strategy.iter().zip(&portfolio) {
        assert_eq!(row.scheduler, kind.describe());
    }
    assert!(report.strategy_table().contains("random"));
    assert!(report.strategy_table().contains("delay(d=2)"));
    assert!(report.strategy_table().contains("prob(p=10)"));
}
