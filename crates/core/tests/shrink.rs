//! Integration tests for the schedule-shrinking subsystem: reduction
//! quality, replay verification, idempotence, determinism across engines and
//! worker counts, and the interplay with bounded trace modes.

use psharp::json::{FromJson, ToJson};
use psharp::prelude::*;

/// The order-dependent harness used across the engine tests: the bug
/// manifests only when the `false` writer is scheduled before the `true`
/// writer, after a fair amount of irrelevant nondeterministic noise that
/// shrinking should strip away.
struct Flag {
    value: bool,
}
impl Machine for Flag {
    fn handle(&mut self, ctx: &mut Context<'_>, event: Event) {
        if let Some(set) = event.downcast_ref::<SetFlag>() {
            if !set.0 && !self.value {
                ctx.assert(false, "cleared a flag that was never set");
            }
            self.value = set.0;
        }
    }
    fn name(&self) -> &str {
        "Flag"
    }
}

#[derive(Debug)]
struct SetFlag(bool);

#[derive(Debug)]
struct Noise;

struct Writer {
    flag: MachineId,
    value: bool,
    /// Self-messages consumed before the write goes out, so every buggy
    /// execution is long enough to wrap small trace rings.
    delay: usize,
}
impl Machine for Writer {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        // Irrelevant nondeterministic noise that pads the decision stream.
        for _ in 0..4 {
            let _ = ctx.random_bool();
            let _ = ctx.random_index(16);
        }
        ctx.send_to_self(Event::new(Noise));
    }
    fn handle(&mut self, ctx: &mut Context<'_>, event: Event) {
        if !event.is::<Noise>() {
            return;
        }
        if self.delay > 0 {
            self.delay -= 1;
            ctx.send_to_self(Event::new(Noise));
        } else {
            ctx.send(self.flag, Event::new(SetFlag(self.value)));
        }
    }
    fn name(&self) -> &str {
        "Writer"
    }
}

/// A bystander that spins for a while, adding schedule decisions that are
/// irrelevant to the bug.
struct Spinner {
    remaining: usize,
}
impl Machine for Spinner {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        ctx.send_to_self(Event::new(Noise));
    }
    fn handle(&mut self, ctx: &mut Context<'_>, _event: Event) {
        if self.remaining > 0 {
            self.remaining -= 1;
            ctx.send_to_self(Event::new(Noise));
        }
    }
    fn name(&self) -> &str {
        "Spinner"
    }
}

fn noisy_racey_setup(rt: &mut Runtime) {
    let flag = rt.create_machine(Flag { value: false });
    rt.create_machine(Spinner { remaining: 40 });
    rt.create_machine(Writer {
        flag,
        value: true,
        delay: 6,
    });
    rt.create_machine(Writer {
        flag,
        value: false,
        delay: 6,
    });
}

fn shrinking_config() -> TestConfig {
    TestConfig::new()
        .with_iterations(500)
        .with_seed(11)
        .with_shrink(true)
}

#[test]
fn shrink_produces_a_smaller_replay_verified_counterexample() {
    let engine = TestEngine::new(shrinking_config());
    let report = engine.run(noisy_racey_setup);
    let bug_report = report.bug.expect("the racey bug is reachable");
    let shrink = bug_report.shrink.as_ref().expect("shrink ran");
    assert_eq!(shrink.original_decisions, bug_report.ndc);
    assert!(
        shrink.improved(),
        "shrinking must strip the noise: {}",
        shrink.summary()
    );
    assert!(shrink.minimized_decisions < shrink.original_decisions);
    assert_eq!(
        shrink.minimized.decision_count(),
        shrink.minimized_decisions
    );
    assert_eq!(bug_report.minimized(), Some(&shrink.minimized));
    assert_eq!(bug_report.best_trace(), &shrink.minimized);
    assert_eq!(bug_report.original(), &bug_report.trace);

    // The minimized trace replays, strictly, to the same bug.
    let replayed = engine
        .replay(&shrink.minimized, noisy_racey_setup)
        .expect("the minimized trace replays to a bug");
    assert_eq!(replayed.kind, bug_report.bug.kind);
    assert_eq!(replayed.message, bug_report.bug.message);
    assert_eq!(replayed.source, bug_report.bug.source);
}

#[test]
fn shrink_is_idempotent_on_a_minimized_trace() {
    let config = shrinking_config();
    let report = TestEngine::new(config.clone()).run(noisy_racey_setup);
    let bug_report = report.bug.expect("bug found");
    let shrink = bug_report.shrink.expect("shrink ran");

    let again = shrink_trace(
        &config.shrink_config(),
        &bug_report.bug,
        &shrink.minimized,
        &noisy_racey_setup,
    );
    assert!(
        !again.improved(),
        "re-shrinking a minimized trace must be a no-op: {}",
        again.summary()
    );
    assert_eq!(again.minimized.decisions, shrink.minimized.decisions);
    assert_eq!(again.minimized, shrink.minimized);
}

#[test]
fn shrink_output_is_byte_identical_across_engines_and_worker_counts() {
    let serial = TestEngine::new(shrinking_config()).run(noisy_racey_setup);
    let reference = serial.bug.expect("serial engine finds the bug");
    let reference_json = reference
        .shrink
        .as_ref()
        .expect("shrink ran")
        .minimized
        .to_json()
        .expect("serialize");

    for workers in [1usize, 2, 8] {
        let parallel = ParallelTestEngine::new(shrinking_config().with_workers(workers))
            .run(noisy_racey_setup);
        let report = parallel.bug.expect("parallel engine finds the bug");
        assert_eq!(report.iteration, reference.iteration, "{workers} workers");
        let json = report
            .shrink
            .as_ref()
            .expect("shrink ran")
            .minimized
            .to_json()
            .expect("serialize");
        assert_eq!(
            json, reference_json,
            "minimized trace differs at {workers} workers"
        );
    }
}

#[test]
fn shrink_report_round_trips_through_json_from_an_engine_run() {
    let report = TestEngine::new(shrinking_config()).run(noisy_racey_setup);
    let shrink = report.bug.expect("bug found").shrink.expect("shrink ran");
    let json = shrink.to_json_value().to_string_pretty();
    let back = ShrinkReport::from_json_value(&psharp::json::Json::parse(&json).expect("parse"))
        .expect("roundtrip");
    assert_eq!(back.minimized, shrink.minimized);
    assert_eq!(back.original_decisions, shrink.original_decisions);
    assert_eq!(back.minimized_decisions, shrink.minimized_decisions);
}

#[test]
fn ring_buffer_trace_mode_preserves_replay_and_shrink() {
    // Hunt with a tightly bounded annotated schedule: the decision stream
    // stays complete, so both replay and shrinking are unaffected.
    let config = shrinking_config().with_trace_mode(TraceMode::RingBuffer(16));
    let engine = TestEngine::new(config);
    let report = engine.run(noisy_racey_setup);
    let bug_report = report.bug.expect("bug found");
    assert_eq!(bug_report.trace.mode(), TraceMode::RingBuffer(16));
    assert!(bug_report.trace.retained_step_count() <= 16);
    assert!(bug_report.ndc > 0);

    let replayed = engine
        .replay(&bug_report.trace, noisy_racey_setup)
        .expect("ring-buffer trace replays");
    assert_eq!(replayed.message, bug_report.bug.message);

    // The minimized trace is re-recorded in full mode: the human-facing
    // counterexample is complete even when the hunt ran ring-buffered.
    let shrink = bug_report.shrink.as_ref().expect("shrink ran");
    assert_eq!(shrink.minimized.mode(), TraceMode::Full);
    assert!(shrink.improved());
    assert_eq!(
        shrink.minimized.retained_step_count(),
        shrink.minimized.total_step_count()
    );
}

#[test]
fn decisions_only_trace_mode_preserves_replay() {
    let config = shrinking_config()
        .with_shrink(false)
        .with_trace_mode(TraceMode::DecisionsOnly);
    let engine = TestEngine::new(config);
    let report = engine.run(noisy_racey_setup);
    let bug_report = report.bug.expect("bug found");
    assert_eq!(bug_report.trace.retained_step_count(), 0);
    assert!(bug_report.trace.dropped_steps() > 0);
    let replayed = engine
        .replay(&bug_report.trace, noisy_racey_setup)
        .expect("decisions-only trace replays");
    assert_eq!(replayed.message, bug_report.bug.message);
}

#[test]
fn ring_buffer_truncated_bug_trace_round_trips_through_json() {
    let config = shrinking_config()
        .with_shrink(false)
        .with_trace_mode(TraceMode::RingBuffer(8));
    let report = TestEngine::new(config).run(noisy_racey_setup);
    let trace = report.bug.expect("bug found").trace;
    assert!(trace.dropped_steps() > 0, "the ring must have wrapped");
    let back = Trace::from_json(&trace.to_json().expect("serialize")).expect("parse");
    assert_eq!(back, trace);
    assert_eq!(back.mode(), TraceMode::RingBuffer(8));
    assert_eq!(back.dropped_steps(), trace.dropped_steps());
}

#[test]
fn shrink_respects_its_candidate_budget() {
    let config = shrinking_config().with_shrink_budget(3);
    let report = TestEngine::new(config).run(noisy_racey_setup);
    let shrink = report.bug.expect("bug found").shrink.expect("shrink ran");
    assert!(shrink.candidates_tried <= 3);
}
