//! Per-machine FIFO event queues.

use std::collections::VecDeque;

use crate::event::Event;

/// The FIFO queue of events waiting to be handled by one machine.
///
/// Sends are non-blocking: the event is appended to the target's mailbox and
/// handled later, when the scheduler next picks the target machine. Delivery
/// order between two sends to the same machine follows the order in which the
/// sends executed; nondeterminism in message ordering arises from the
/// scheduler interleaving the *senders*.
#[derive(Debug, Default)]
pub struct Mailbox {
    queue: VecDeque<Event>,
}

impl Mailbox {
    /// Creates an empty mailbox.
    pub fn new() -> Self {
        Mailbox {
            queue: VecDeque::new(),
        }
    }

    /// Appends an event.
    pub fn enqueue(&mut self, event: Event) {
        self.queue.push_back(event);
    }

    /// Removes and returns the oldest event, if any.
    pub fn dequeue(&mut self) -> Option<Event> {
        self.queue.pop_front()
    }

    /// Returns `true` when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// Name of the oldest pending event, if any (used for trace annotation).
    pub fn peek_name(&self) -> Option<&'static str> {
        self.queue.front().map(Event::name)
    }

    /// Returns `true` when the oldest pending event exists and was created
    /// with [`Event::replicable`], i.e. a duplication fault can target it.
    pub fn front_can_duplicate(&self) -> bool {
        self.queue.front().is_some_and(Event::can_duplicate)
    }

    /// Re-delivers a copy of the oldest pending event behind the queue (the
    /// duplication fault). Returns `false` when the queue is empty or the
    /// front event is not replicable.
    pub fn duplicate_front(&mut self) -> bool {
        match self.queue.front().and_then(Event::duplicate) {
            Some(copy) => {
                self.queue.push_back(copy);
                true
            }
            None => false,
        }
    }

    /// Drops all pending events (used when a machine halts).
    pub fn clear(&mut self) {
        self.queue.clear();
    }

    /// Clones every pending event into `target` (clearing it first), using
    /// each event's [`Event::duplicate`] copy constructor. Returns `false` —
    /// leaving `target` cleared — when any pending event was not created
    /// with [`Event::replicable`] and therefore cannot be copied.
    ///
    /// This is the snapshot path of
    /// [`Runtime::snapshot`](crate::runtime::Runtime::snapshot): writing into
    /// a caller-provided mailbox lets forks reuse pooled queue allocations.
    pub fn clone_into(&self, target: &mut Mailbox) -> bool {
        target.clear();
        for event in &self.queue {
            match event.duplicate() {
                Some(copy) => target.queue.push_back(copy),
                None => {
                    target.clear();
                    return false;
                }
            }
        }
        true
    }
}

/// A mailbox slot that materializes its queue lazily, on first send.
///
/// At mega-scale (thousands of machines, most of which never receive a
/// message) eagerly giving every machine a `VecDeque` wastes both the
/// allocation and the pooled-queue inventory. A `LazyMailbox` starts
/// *vacant* — an empty queue for every read purpose — and only binds a real
/// [`Mailbox`] (preferably a recycled one from the runtime's pool) when the
/// first event actually arrives. Halting or crashing a machine releases the
/// queue back to the pool via [`LazyMailbox::release_into`].
#[derive(Debug, Default)]
pub struct LazyMailbox {
    inner: Option<Mailbox>,
}

impl LazyMailbox {
    /// Creates a vacant slot (no queue bound).
    pub fn vacant() -> Self {
        LazyMailbox { inner: None }
    }

    /// Wraps an already materialized mailbox (the snapshot-restore path).
    pub fn materialized(mailbox: Mailbox) -> Self {
        LazyMailbox {
            inner: Some(mailbox),
        }
    }

    /// Binds a queue if none is bound yet — recycled from `pool` when
    /// possible — and returns it for enqueuing.
    pub fn materialize_from<'a>(&'a mut self, pool: &mut Vec<Mailbox>) -> &'a mut Mailbox {
        self.inner
            .get_or_insert_with(|| pool.pop().unwrap_or_default())
    }

    /// The bound queue, if any. Vacant slots read as empty mailboxes.
    pub fn as_ref(&self) -> Option<&Mailbox> {
        self.inner.as_ref()
    }

    /// Mutable access to the bound queue, if any. Dequeue paths use this:
    /// an enabled started machine always has a bound, non-empty queue.
    pub fn as_mut(&mut self) -> Option<&mut Mailbox> {
        self.inner.as_mut()
    }

    /// Returns `true` when no event is pending (vacant or bound-but-empty).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.inner.as_ref().is_none_or(Mailbox::is_empty)
    }

    /// Number of pending events (zero when vacant).
    pub fn len(&self) -> usize {
        self.inner.as_ref().map_or(0, Mailbox::len)
    }

    /// Unbinds the queue — cleared — into `pool` for reuse by another slot.
    /// Used when a machine halts or crashes (its pending events are lost)
    /// and when a pooled runtime resets.
    pub fn release_into(&mut self, pool: &mut Vec<Mailbox>) {
        if let Some(mut mailbox) = self.inner.take() {
            mailbox.clear();
            pool.push(mailbox);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug)]
    struct A(u32);
    #[derive(Debug)]
    struct B;

    #[test]
    fn fifo_order_is_preserved() {
        let mut mb = Mailbox::new();
        mb.enqueue(Event::new(A(1)));
        mb.enqueue(Event::new(B));
        mb.enqueue(Event::new(A(2)));
        assert_eq!(mb.len(), 3);
        assert_eq!(mb.dequeue().unwrap().downcast::<A>().unwrap().0, 1);
        assert_eq!(mb.dequeue().unwrap().name(), "B");
        assert_eq!(mb.dequeue().unwrap().downcast::<A>().unwrap().0, 2);
        assert!(mb.dequeue().is_none());
    }

    #[test]
    fn peek_does_not_remove() {
        let mut mb = Mailbox::new();
        mb.enqueue(Event::new(B));
        assert_eq!(mb.peek_name(), Some("B"));
        assert_eq!(mb.len(), 1);
    }

    #[test]
    fn duplicate_front_requires_a_replicable_event() {
        #[derive(Debug, Clone)]
        struct C(u32);
        let mut mb = Mailbox::new();
        mb.enqueue(Event::new(B));
        assert!(!mb.front_can_duplicate());
        assert!(!mb.duplicate_front());
        assert_eq!(mb.len(), 1);

        let mut mb = Mailbox::new();
        mb.enqueue(Event::replicable(C(7)));
        mb.enqueue(Event::new(B));
        assert!(mb.front_can_duplicate());
        assert!(mb.duplicate_front());
        assert_eq!(mb.len(), 3);
        // The copy lands behind the queue; the original is still delivered
        // first and in order.
        assert_eq!(mb.dequeue().unwrap().downcast::<C>().unwrap().0, 7);
        assert_eq!(mb.dequeue().unwrap().name(), "B");
        assert_eq!(mb.dequeue().unwrap().downcast::<C>().unwrap().0, 7);
    }

    #[test]
    fn clear_empties_queue() {
        let mut mb = Mailbox::new();
        mb.enqueue(Event::new(B));
        mb.enqueue(Event::new(B));
        mb.clear();
        assert!(mb.is_empty());
        assert_eq!(mb.peek_name(), None);
    }

    #[test]
    fn lazy_mailbox_stays_vacant_until_first_send() {
        let mut pool: Vec<Mailbox> = Vec::new();
        let mut lazy = LazyMailbox::vacant();
        assert!(lazy.is_empty());
        assert_eq!(lazy.len(), 0);
        assert!(lazy.as_ref().is_none());

        lazy.materialize_from(&mut pool).enqueue(Event::new(B));
        assert!(!lazy.is_empty());
        assert_eq!(lazy.len(), 1);
        assert!(lazy.as_ref().is_some());
    }

    #[test]
    fn lazy_mailbox_prefers_the_pooled_queue() {
        let mut seeded = Mailbox::new();
        seeded.enqueue(Event::new(B));
        seeded.clear();
        let mut pool = vec![seeded];
        let mut lazy = LazyMailbox::vacant();
        lazy.materialize_from(&mut pool);
        assert!(pool.is_empty(), "the pooled queue was taken");

        // Releasing hands the (cleared) queue back for the next slot.
        lazy.materialize_from(&mut pool).enqueue(Event::new(A(1)));
        lazy.release_into(&mut pool);
        assert_eq!(pool.len(), 1);
        assert!(pool[0].is_empty());
        assert!(lazy.as_ref().is_none());
        // Releasing a vacant slot is a no-op.
        lazy.release_into(&mut pool);
        assert_eq!(pool.len(), 1);
    }
}
