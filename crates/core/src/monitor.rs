//! Safety and liveness monitors.
//!
//! Monitors are special machines that can *receive* notifications from
//! ordinary machines but cannot send events. They cleanly separate the
//! instrumentation state needed to express a correctness property from the
//! program state of the system-under-test.
//!
//! * A **safety monitor** maintains a history of relevant events and flags an
//!   erroneous finite trace through [`MonitorContext::assert`].
//! * A **liveness monitor** additionally reports a [`Temperature`]: it is
//!   *hot* while progress is required but has not happened yet and *cold*
//!   once the system has progressed. An execution is erroneous when a monitor
//!   is still hot at the end of a bounded "infinite" execution (or at
//!   quiescence), mirroring the heuristic described in §2.5 of the paper.

use std::any::Any;

use crate::error::{Bug, BugKind};
use crate::event::{short_type_name, Event};

/// Progress status reported by a liveness monitor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Temperature {
    /// Progress is required but has not happened yet.
    Hot,
    /// No outstanding progress obligation.
    Cold,
}

/// Object-safe downcast support for trait objects.
///
/// Blanket-implemented for every `'static` type; monitor implementors never
/// need to implement it by hand.
pub trait AsAny {
    /// Returns `self` as `&dyn Any` for downcasting.
    fn as_any(&self) -> &dyn Any;

    /// Returns `self` as `&mut dyn Any` for in-place downcasting, used by the
    /// machine pool to recycle a retired box of the same concrete type.
    fn as_any_mut(&mut self) -> &mut dyn Any;
}

impl<T: Any> AsAny for T {
    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// A safety or liveness specification attached to a test.
///
/// # Examples
///
/// A safety monitor that checks an acknowledgement is never issued before
/// three replicas exist:
///
/// ```
/// use psharp::prelude::*;
/// use std::collections::HashSet;
///
/// #[derive(Debug)]
/// struct NotifyReplica(MachineId);
/// #[derive(Debug)]
/// struct NotifyAck;
///
/// #[derive(Default)]
/// struct ReplicaSafety {
///     replicas: HashSet<MachineId>,
/// }
///
/// impl Monitor for ReplicaSafety {
///     fn observe(&mut self, ctx: &mut MonitorContext<'_>, event: &Event) {
///         if let Some(n) = event.downcast_ref::<NotifyReplica>() {
///             self.replicas.insert(n.0);
///         } else if event.is::<NotifyAck>() {
///             ctx.assert(self.replicas.len() >= 3, "ack sent with fewer than 3 replicas");
///         }
///     }
/// }
/// ```
/// Monitors are `Send + Sync` so that runtime snapshots (which carry monitor
/// state for copy-on-write forks) can be shared across the worker threads of
/// the parallel engines.
pub trait Monitor: AsAny + Send + Sync + 'static {
    /// Handles a notification published by a machine via
    /// [`Context::notify_monitor`](crate::runtime::Context::notify_monitor).
    fn observe(&mut self, ctx: &mut MonitorContext<'_>, event: &Event);

    /// Current liveness temperature.
    ///
    /// Safety-only monitors keep the default implementation, which always
    /// reports [`Temperature::Cold`].
    fn temperature(&self) -> Temperature {
        Temperature::Cold
    }

    /// Message attached to a liveness violation when this monitor is hot at
    /// the end of an execution.
    fn hot_message(&self) -> String {
        "liveness monitor is still in a hot state".to_string()
    }

    /// The monitor's display name, used in bug reports.
    fn name(&self) -> &str {
        short_type_name::<Self>()
    }

    /// Produces an independent copy of this monitor's current state for
    /// [`Runtime::snapshot`](crate::runtime::Runtime::snapshot).
    ///
    /// The default returns `None`, which marks the monitor as
    /// non-snapshotable (the runtime then cannot be forked). `Clone`
    /// monitors opt in with `Some(Box::new(self.clone()))`.
    fn clone_state(&self) -> Option<Box<dyn Monitor>> {
        None
    }
}

/// Context handed to [`Monitor::observe`]; allows flagging violations.
#[derive(Debug)]
pub struct MonitorContext<'a> {
    bug: &'a mut Option<Bug>,
    monitor_name: &'a str,
    step: usize,
}

impl<'a> MonitorContext<'a> {
    pub(crate) fn new(bug: &'a mut Option<Bug>, monitor_name: &'a str, step: usize) -> Self {
        MonitorContext {
            bug,
            monitor_name,
            step,
        }
    }

    /// Creates a standalone context for unit-testing a monitor outside of a
    /// [`Runtime`](crate::runtime::Runtime). Violations are written to `bug`.
    pub fn new_for_tests(bug: &'a mut Option<Bug>) -> Self {
        MonitorContext {
            bug,
            monitor_name: "test-monitor",
            step: 0,
        }
    }

    /// Flags a safety violation when `condition` is false.
    ///
    /// Only the first violation of an execution is retained.
    pub fn assert(&mut self, condition: bool, message: impl Into<String>) {
        if !condition {
            self.report_violation(message);
        }
    }

    /// Unconditionally flags a safety violation.
    pub fn report_violation(&mut self, message: impl Into<String>) {
        if self.bug.is_none() {
            *self.bug = Some(
                Bug::new(BugKind::SafetyViolation, message)
                    .with_source(self.monitor_name)
                    .with_step(self.step),
            );
        }
    }

    /// The execution step at which the observed event was published.
    pub fn step(&self) -> usize {
        self.step
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug)]
    struct Tick;

    #[derive(Default)]
    struct CountingMonitor {
        seen: usize,
        hot: bool,
    }

    impl Monitor for CountingMonitor {
        fn observe(&mut self, ctx: &mut MonitorContext<'_>, event: &Event) {
            if event.is::<Tick>() {
                self.seen += 1;
                self.hot = true;
                ctx.assert(self.seen <= 2, "saw more than two ticks");
            }
        }
        fn temperature(&self) -> Temperature {
            if self.hot {
                Temperature::Hot
            } else {
                Temperature::Cold
            }
        }
    }

    #[test]
    fn assert_records_first_violation_only() {
        let mut bug = None;
        let mut monitor = CountingMonitor::default();
        for _ in 0..4 {
            let mut ctx = MonitorContext::new(&mut bug, "CountingMonitor", 7);
            monitor.observe(&mut ctx, &Event::new(Tick));
        }
        let bug = bug.expect("third tick should violate");
        assert_eq!(bug.kind, BugKind::SafetyViolation);
        assert_eq!(bug.step, 7);
        assert_eq!(bug.source.as_deref(), Some("CountingMonitor"));
        assert_eq!(monitor.seen, 4, "monitor keeps observing after violation");
    }

    #[test]
    fn default_temperature_is_cold() {
        struct SafetyOnly;
        impl Monitor for SafetyOnly {
            fn observe(&mut self, _ctx: &mut MonitorContext<'_>, _event: &Event) {}
        }
        assert_eq!(SafetyOnly.temperature(), Temperature::Cold);
        assert!(!SafetyOnly.hot_message().is_empty());
    }

    #[test]
    fn monitor_downcast_via_as_any() {
        let monitor: Box<dyn Monitor> = Box::new(CountingMonitor::default());
        assert!((*monitor)
            .as_any()
            .downcast_ref::<CountingMonitor>()
            .is_some());
    }

    #[test]
    fn report_violation_is_unconditional() {
        let mut bug = None;
        let mut ctx = MonitorContext::new(&mut bug, "M", 1);
        ctx.report_violation("boom");
        assert!(bug.is_some());
    }
}
