//! Incrementally maintained enabled-machine index.
//!
//! Before this module the step loop recomputed the enabled set by scanning
//! every machine slot on every step, which made per-step cost O(total
//! machines created). At mega-scale harnesses (thousands of mostly idle
//! machines, a handful of active ones) that scan dominated the whole run.
//! [`EnabledSet`] instead maintains the set *incrementally*: the runtime
//! notifies it at every enablement edge (enqueue into an empty mailbox,
//! dequeue of the last event, halt, crash, restart, machine creation), so
//! membership queries are O(1) and the per-step cost is a function of the
//! *active* machine count only.
//!
//! # Invariants
//!
//! * `list` holds exactly the currently enabled machine ids, in **ascending
//!   id order** — the [`Scheduler`](crate::scheduler::Scheduler) contract
//!   promises a sorted slice, and replay depends on the order being
//!   identical to the historical from-scratch slot scan.
//! * `member[id]` is `true` iff `id` is in `list`. The dense membership
//!   bitmap is what makes `contains` O(1); the *position* of an id is
//!   recovered by binary search over the sorted list when a mid-list edit
//!   needs it, so mutations never rewrite per-id bookkeeping for the
//!   entries behind the edit point. (An earlier revision kept an id →
//!   position map instead; the scalar fix-up loop after every mid-list
//!   edit made the mass machine-startup drain of a 10⁴-machine harness
//!   quadratic in practice, where the `memmove` the `Vec` edit itself
//!   performs is vectorized and far cheaper.)
//! * All storage is retained across [`EnabledSet::clear`] /
//!   [`EnabledSet::rebuild`], so pooled runtimes
//!   ([`Runtime::reset`](crate::runtime::Runtime::reset)) and snapshot forks
//!   ([`Runtime::restore_from`](crate::runtime::Runtime::restore_from)) keep
//!   the index without reallocating.
//!
//! Mutations keep the list sorted with a binary search plus `Vec`
//! insert/remove; the common creation-order append and the steady-state
//! "highest active id finishes first" cases hit O(1) fast paths.

use crate::machine::MachineId;

/// The set of currently enabled machines, maintained incrementally by the
/// runtime and consumed by schedulers and the fault probe.
///
/// See the [module documentation](self) for the invariants.
#[derive(Debug, Default)]
pub struct EnabledSet {
    /// Enabled machine ids in ascending order.
    list: Vec<MachineId>,
    /// Dense id → membership bitmap. Indexed by raw machine id; grown on
    /// demand and retained across clears.
    member: Vec<bool>,
}

impl EnabledSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        EnabledSet::default()
    }

    /// The enabled machines, in ascending id order.
    #[inline]
    pub fn as_slice(&self) -> &[MachineId] {
        &self.list
    }

    /// Number of enabled machines.
    #[inline]
    pub fn len(&self) -> usize {
        self.list.len()
    }

    /// Returns `true` when no machine is enabled.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.list.is_empty()
    }

    /// O(1) membership test.
    #[inline]
    pub fn contains(&self, id: MachineId) -> bool {
        self.member
            .get(id.raw() as usize)
            .is_some_and(|&present| present)
    }

    /// Inserts `id`, keeping the list sorted. Idempotent; O(1) when `id` is
    /// greater than every present id (the creation-order common case),
    /// otherwise a binary search plus `Vec::insert` memmove.
    pub fn insert(&mut self, id: MachineId) {
        let index = id.raw() as usize;
        if self.member.len() <= index {
            self.member.resize(index + 1, false);
        }
        if self.member[index] {
            return;
        }
        self.member[index] = true;
        match self.list.last() {
            Some(&last) if last > id => {
                let at = self.list.partition_point(|&m| m < id);
                self.list.insert(at, id);
            }
            _ => self.list.push(id),
        }
    }

    /// Removes `id` if present; O(1) when `id` is the highest enabled id,
    /// otherwise a binary search plus `Vec::remove` memmove.
    pub fn remove(&mut self, id: MachineId) {
        let index = id.raw() as usize;
        if !self.member.get(index).is_some_and(|&present| present) {
            return;
        }
        self.member[index] = false;
        if self.list.last() == Some(&id) {
            self.list.pop();
            return;
        }
        let at = self.list.partition_point(|&m| m < id);
        debug_assert_eq!(self.list.get(at), Some(&id), "bitmap/list divergence");
        self.list.remove(at);
    }

    /// Empties the set in O(enabled), retaining all storage.
    pub fn clear(&mut self) {
        for id in self.list.drain(..) {
            self.member[id.raw() as usize] = false;
        }
    }

    /// Rebuilds the set from an iterator of enabled ids **in ascending
    /// order** (the snapshot-restore path, which reconstructs all slots
    /// anyway). Retains storage; `total` is the machine count the
    /// membership bitmap must cover.
    pub fn rebuild(&mut self, total: usize, ids: impl Iterator<Item = MachineId>) {
        self.clear();
        if self.member.len() < total {
            self.member.resize(total, false);
        }
        for id in ids {
            debug_assert!(
                self.list.last().is_none_or(|&last| last < id),
                "rebuild input must be ascending"
            );
            self.member[id.raw() as usize] = true;
            self.list.push(id);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(raw: u64) -> MachineId {
        MachineId::from_raw(raw)
    }

    fn ids(set: &EnabledSet) -> Vec<u64> {
        set.as_slice().iter().map(|m| m.raw()).collect()
    }

    #[test]
    fn insert_keeps_ascending_order_and_membership() {
        let mut set = EnabledSet::new();
        for raw in [4, 1, 7, 0, 3] {
            set.insert(id(raw));
        }
        assert_eq!(ids(&set), vec![0, 1, 3, 4, 7]);
        for raw in [0, 1, 3, 4, 7] {
            assert!(set.contains(id(raw)));
        }
        assert!(!set.contains(id(2)));
        assert!(!set.contains(id(100)), "beyond the map is absent");
    }

    #[test]
    fn insert_is_idempotent() {
        let mut set = EnabledSet::new();
        set.insert(id(2));
        set.insert(id(2));
        assert_eq!(set.len(), 1);
    }

    #[test]
    fn remove_keeps_later_entries_addressable() {
        let mut set = EnabledSet::new();
        for raw in 0..6 {
            set.insert(id(raw));
        }
        set.remove(id(2));
        assert_eq!(ids(&set), vec![0, 1, 3, 4, 5]);
        // Entries after the removal point must still be removable — the
        // sorted order the binary search relies on is intact.
        set.remove(id(4));
        assert_eq!(ids(&set), vec![0, 1, 3, 5]);
        assert!(!set.contains(id(2)));
        assert!(!set.contains(id(4)));
        // Removing an absent or out-of-range id is a no-op.
        set.remove(id(2));
        set.remove(id(99));
        assert_eq!(set.len(), 4);
    }

    #[test]
    fn clear_and_rebuild_retain_consistency() {
        let mut set = EnabledSet::new();
        for raw in 0..5 {
            set.insert(id(raw));
        }
        set.clear();
        assert!(set.is_empty());
        assert!(!set.contains(id(3)));
        set.rebuild(8, [1, 5, 6].into_iter().map(id));
        assert_eq!(ids(&set), vec![1, 5, 6]);
        assert!(set.contains(id(5)));
        assert!(!set.contains(id(0)));
        assert!(!set.contains(id(7)));
    }

    #[test]
    fn interleaved_ops_match_a_reference_set() {
        // Deterministic pseudo-random interleaving of inserts and removes
        // over a small id universe, checked against a sorted reference.
        let mut set = EnabledSet::new();
        let mut reference: Vec<u64> = Vec::new();
        let mut state = 0x9e3779b97f4a7c15u64;
        for _ in 0..10_000 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let raw = (state >> 33) % 64;
            if (state >> 16) & 1 == 0 {
                set.insert(id(raw));
                if !reference.contains(&raw) {
                    reference.push(raw);
                    reference.sort_unstable();
                }
            } else {
                set.remove(id(raw));
                reference.retain(|&r| r != raw);
            }
            assert_eq!(ids(&set), reference);
        }
    }
}
