//! Modeled timers.
//!
//! System correctness should not hinge on the frequency of any individual
//! timer, so test harnesses delegate all timing-related nondeterminism to the
//! runtime: a [`Timer`] machine repeatedly makes a controlled nondeterministic
//! choice and, when it fires, sends a tick event to its target. The scheduler
//! is then free to interleave timeouts arbitrarily with regular system events
//! — exactly the modeling pattern of Figure 9 in the paper.

use std::sync::Arc;

use crate::event::Event;
use crate::machine::{Machine, MachineId};
use crate::runtime::Context;

/// Internal self-message that keeps the timer loop running.
///
/// Replicable so that a queued loop event never blocks [`Runtime::snapshot`]
/// (timers are not marked lossy, so fault injection cannot duplicate it).
///
/// [`Runtime::snapshot`]: crate::runtime::Runtime::snapshot
#[derive(Debug, Clone)]
struct TimerLoop;

/// Event sent by [`Timer`] machines to their target when the timer fires.
///
/// Harness machines can either handle this generic tick directly or configure
/// the timer with a custom event constructor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimerTick;

/// A machine that models timer expiration with controlled nondeterminism.
///
/// Clonable (the tick constructor is behind an `Arc`, so the machine stays
/// `Send + Sync`), so harnesses using timers stay compatible with
/// snapshot-based prefix sharing and parallel prefix-tree exploration.
#[derive(Clone)]
pub struct Timer {
    target: MachineId,
    make_tick: Arc<dyn Fn() -> Event + Send + Sync + 'static>,
    max_ticks: Option<usize>,
    ticks_sent: usize,
}

impl Timer {
    /// Creates a timer that sends [`TimerTick`] events to `target`.
    pub fn new(target: MachineId) -> Self {
        Timer {
            target,
            make_tick: Arc::new(|| Event::new(TimerTick)),
            max_ticks: None,
            ticks_sent: 0,
        }
    }

    /// Creates a timer that sends events built by `make_tick` to `target`.
    ///
    /// Use this when the target machine distinguishes several timers (for
    /// example a heartbeat timer and a sync-report timer).
    pub fn with_event<F>(target: MachineId, make_tick: F) -> Self
    where
        F: Fn() -> Event + Send + Sync + 'static,
    {
        Timer {
            target,
            make_tick: Arc::new(make_tick),
            max_ticks: None,
            ticks_sent: 0,
        }
    }

    /// Bounds the number of ticks the timer may fire; the timer halts after
    /// reaching the bound. Unbounded timers keep every execution running to
    /// the step bound, which is what liveness checking needs, but a bound can
    /// make safety-only tests terminate earlier.
    pub fn with_max_ticks(mut self, max_ticks: usize) -> Self {
        self.max_ticks = Some(max_ticks);
        self
    }

    /// Number of ticks fired so far.
    pub fn ticks_sent(&self) -> usize {
        self.ticks_sent
    }
}

impl Machine for Timer {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        ctx.send_to_self(Event::replicable(TimerLoop));
    }

    fn handle(&mut self, ctx: &mut Context<'_>, event: Event) {
        if !event.is::<TimerLoop>() {
            return;
        }
        if let Some(max) = self.max_ticks {
            if self.ticks_sent >= max {
                ctx.halt();
                return;
            }
        }
        // The controlled nondeterministic choice: the runtime decides whether
        // the timer fires now or later.
        if ctx.random_bool() {
            self.ticks_sent += 1;
            ctx.send(self.target, (self.make_tick)());
        }
        ctx.send_to_self(Event::replicable(TimerLoop));
    }

    fn name(&self) -> &str {
        "Timer"
    }

    crate::impl_machine_snapshot!();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::{ExecutionOutcome, Runtime, RuntimeConfig};
    use crate::scheduler::RandomScheduler;

    struct TickCounter {
        ticks: usize,
    }
    impl Machine for TickCounter {
        fn handle(&mut self, _ctx: &mut Context<'_>, event: Event) {
            if event.is::<TimerTick>() {
                self.ticks += 1;
            }
        }
    }

    fn run_with_timer(max_ticks: usize, max_steps: usize) -> (ExecutionOutcome, usize) {
        let mut rt = Runtime::new(
            Box::new(RandomScheduler::new(7)),
            RuntimeConfig {
                max_steps,
                ..RuntimeConfig::default()
            },
            7,
        );
        let counter = rt.create_machine(TickCounter { ticks: 0 });
        rt.create_machine(Timer::new(counter).with_max_ticks(max_ticks));
        let outcome = rt.run();
        let ticks = rt
            .machine_ref::<TickCounter>(counter)
            .expect("counter exists")
            .ticks;
        (outcome, ticks)
    }

    #[test]
    fn bounded_timer_halts_and_fires_at_most_max_ticks() {
        let (outcome, ticks) = run_with_timer(3, 10_000);
        assert_eq!(outcome, ExecutionOutcome::Quiescent);
        assert!(ticks <= 3);
    }

    #[test]
    fn unbounded_timer_keeps_execution_alive_until_step_bound() {
        let mut rt = Runtime::new(
            Box::new(RandomScheduler::new(3)),
            RuntimeConfig {
                max_steps: 200,
                ..RuntimeConfig::default()
            },
            3,
        );
        let counter = rt.create_machine(TickCounter { ticks: 0 });
        rt.create_machine(Timer::new(counter));
        assert_eq!(rt.run(), ExecutionOutcome::MaxStepsReached);
    }

    #[test]
    fn custom_tick_event_is_delivered() {
        #[derive(Debug)]
        struct HeartbeatTick;
        struct HeartbeatCounter {
            beats: usize,
        }
        impl Machine for HeartbeatCounter {
            fn handle(&mut self, _ctx: &mut Context<'_>, event: Event) {
                if event.is::<HeartbeatTick>() {
                    self.beats += 1;
                }
            }
        }
        let mut rt = Runtime::new(
            Box::new(RandomScheduler::new(9)),
            RuntimeConfig {
                max_steps: 500,
                ..RuntimeConfig::default()
            },
            9,
        );
        let counter = rt.create_machine(HeartbeatCounter { beats: 0 });
        rt.create_machine(
            Timer::with_event(counter, || Event::new(HeartbeatTick)).with_max_ticks(5),
        );
        rt.run();
        let beats = rt
            .machine_ref::<HeartbeatCounter>(counter)
            .expect("counter exists")
            .beats;
        assert!(beats <= 5);
    }
}
