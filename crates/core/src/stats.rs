//! Model statistics, used to regenerate Table 1 of the paper, plus the
//! per-strategy exploration statistics reported by portfolio testing runs.
//!
//! Each case-study harness reports how large its environment model is:
//! number of machines, declared state transitions and action handlers,
//! together with the size of the system-under-test and the number of bugs the
//! methodology found in it. A parallel portfolio run additionally reports a
//! [`StrategyStats`] row per scheduling strategy, attributing explored
//! executions, machine steps and found bugs to the strategy that produced
//! them.

use std::fmt;
use std::path::Path;

use crate::json::{FromJson, Json, JsonError, ToJson};

/// Modeling-cost statistics of one case study (one row of Table 1).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModelStats {
    /// Case study name ("vNext Extent Manager", "MigratingTable", ...).
    pub case_study: String,
    /// Lines of code of the system-under-test.
    pub system_loc: usize,
    /// Number of bugs found in the system-under-test.
    pub bugs_found: usize,
    /// Lines of code of the test harness.
    pub harness_loc: usize,
    /// Number of machines in the test harness.
    pub machines: usize,
    /// Number of state transitions declared by harness machines.
    pub state_transitions: usize,
    /// Number of action handlers declared by harness machines.
    pub action_handlers: usize,
}

impl ModelStats {
    /// Creates a statistics row with zero line counts; use
    /// [`ModelStats::with_loc`] or [`count_loc`] to fill them in.
    pub fn new(case_study: impl Into<String>) -> Self {
        ModelStats {
            case_study: case_study.into(),
            system_loc: 0,
            bugs_found: 0,
            harness_loc: 0,
            machines: 0,
            state_transitions: 0,
            action_handlers: 0,
        }
    }

    /// Sets the line counts.
    pub fn with_loc(mut self, system_loc: usize, harness_loc: usize) -> Self {
        self.system_loc = system_loc;
        self.harness_loc = harness_loc;
        self
    }

    /// Sets the number of bugs found.
    pub fn with_bugs(mut self, bugs_found: usize) -> Self {
        self.bugs_found = bugs_found;
        self
    }

    /// Sets the machine/state-transition/action-handler counts.
    pub fn with_model(
        mut self,
        machines: usize,
        state_transitions: usize,
        action_handlers: usize,
    ) -> Self {
        self.machines = machines;
        self.state_transitions = state_transitions;
        self.action_handlers = action_handlers;
        self
    }

    /// Renders the Table 1 header row.
    pub fn table_header() -> String {
        format!(
            "{:<28} {:>10} {:>4} {:>12} {:>4} {:>4} {:>4}",
            "System-under-test", "Sys #LoC", "#B", "Harness #LoC", "#M", "#ST", "#AH"
        )
    }
}

impl ToJson for ModelStats {
    fn to_json_value(&self) -> Json {
        Json::object([
            ("case_study", Json::Str(self.case_study.clone())),
            ("system_loc", Json::UInt(self.system_loc as u64)),
            ("bugs_found", Json::UInt(self.bugs_found as u64)),
            ("harness_loc", Json::UInt(self.harness_loc as u64)),
            ("machines", Json::UInt(self.machines as u64)),
            (
                "state_transitions",
                Json::UInt(self.state_transitions as u64),
            ),
            ("action_handlers", Json::UInt(self.action_handlers as u64)),
        ])
    }
}

impl FromJson for ModelStats {
    fn from_json_value(value: &Json) -> Result<Self, JsonError> {
        Ok(ModelStats {
            case_study: value.get("case_study")?.as_str()?.to_string(),
            system_loc: value.get("system_loc")?.as_usize()?,
            bugs_found: value.get("bugs_found")?.as_usize()?,
            harness_loc: value.get("harness_loc")?.as_usize()?,
            machines: value.get("machines")?.as_usize()?,
            state_transitions: value.get("state_transitions")?.as_usize()?,
            action_handlers: value.get("action_handlers")?.as_usize()?,
        })
    }
}

impl fmt::Display for ModelStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<28} {:>10} {:>4} {:>12} {:>4} {:>4} {:>4}",
            self.case_study,
            self.system_loc,
            self.bugs_found,
            self.harness_loc,
            self.machines,
            self.state_transitions,
            self.action_handlers
        )
    }
}

/// Exploration statistics attributed to one scheduling strategy of a
/// (portfolio) testing run.
///
/// Produced by [`TestEngine::run`](crate::engine::TestEngine::run) and
/// [`ParallelTestEngine::run`](crate::engine::ParallelTestEngine::run): one
/// row per distinct strategy in the portfolio (a single row outside
/// portfolio mode), in portfolio order. Attribution keys off the iteration's
/// assigned strategy
/// ([`TestConfig::strategy_for_iteration`](crate::engine::TestConfig::strategy_for_iteration)),
/// not off which worker executed it, so rows of bug-free runs are identical
/// at any worker count.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StrategyStats {
    /// The strategy description ("random", "pct(cp=2)", "delay(d=2)") —
    /// [`SchedulerKind::describe`](crate::scheduler::SchedulerKind::describe),
    /// which distinguishes parameterizations of the same strategy.
    pub scheduler: String,
    /// Executions this strategy explored to completion.
    pub iterations_run: u64,
    /// Machine steps executed under this strategy (including partial work of
    /// executions the parallel engine cancelled mid-flight).
    pub total_steps: u64,
    /// Property violations this strategy found (0 or 1 today: runs stop at
    /// the first bug).
    pub bugs_found: u64,
    /// Schedule-equivalents this strategy pruned instead of exploring
    /// (see
    /// [`Scheduler::pruned_equivalents`](crate::scheduler::Scheduler::pruned_equivalents)).
    /// Zero for non-reducing strategies; for the sleep-set strategy, the
    /// effective exploration rate is
    /// `(total_steps + pruned_schedules) / wall-time`.
    pub pruned_schedules: u64,
    /// Racing step pairs — dependent but unordered by happens-before — this
    /// strategy detected (see
    /// [`Scheduler::races_detected`](crate::scheduler::Scheduler::races_detected)).
    /// Zero for strategies without vector-clock tracking.
    pub races_detected: u64,
    /// Scheduling points resolved from a DPOR backtrack (see
    /// [`Scheduler::backtracks_scheduled`](crate::scheduler::Scheduler::backtracks_scheduled)).
    pub backtracks_scheduled: u64,
}

impl StrategyStats {
    /// Creates an empty row for `scheduler`.
    pub fn new(scheduler: impl Into<String>) -> Self {
        StrategyStats {
            scheduler: scheduler.into(),
            iterations_run: 0,
            total_steps: 0,
            bugs_found: 0,
            pruned_schedules: 0,
            races_detected: 0,
            backtracks_scheduled: 0,
        }
    }

    /// Folds another worker's tally for the same strategy into this row.
    ///
    /// # Panics
    ///
    /// Panics if the two rows describe different strategies.
    pub fn absorb(&mut self, other: &StrategyStats) {
        assert_eq!(
            self.scheduler, other.scheduler,
            "cannot merge stats of different strategies"
        );
        self.iterations_run += other.iterations_run;
        self.total_steps += other.total_steps;
        self.bugs_found += other.bugs_found;
        self.pruned_schedules += other.pruned_schedules;
        self.races_detected += other.races_detected;
        self.backtracks_scheduled += other.backtracks_scheduled;
    }

    /// Renders the header row matching [`StrategyStats`]'s `Display` output.
    pub fn table_header() -> String {
        format!(
            "{:<14} {:>12} {:>12} {:>5} {:>12} {:>8} {:>10}",
            "Strategy", "Execs", "Steps", "Bugs", "Pruned", "Races", "Backtracks"
        )
    }
}

impl fmt::Display for StrategyStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<14} {:>12} {:>12} {:>5} {:>12} {:>8} {:>10}",
            self.scheduler,
            self.iterations_run,
            self.total_steps,
            self.bugs_found,
            self.pruned_schedules,
            self.races_detected,
            self.backtracks_scheduled
        )
    }
}

impl ToJson for StrategyStats {
    fn to_json_value(&self) -> Json {
        Json::object([
            ("scheduler", Json::Str(self.scheduler.clone())),
            ("iterations_run", Json::UInt(self.iterations_run)),
            ("total_steps", Json::UInt(self.total_steps)),
            ("bugs_found", Json::UInt(self.bugs_found)),
            ("pruned_schedules", Json::UInt(self.pruned_schedules)),
            ("races_detected", Json::UInt(self.races_detected)),
            (
                "backtracks_scheduled",
                Json::UInt(self.backtracks_scheduled),
            ),
        ])
    }
}

/// Counts non-empty, non-comment lines of Rust code under a directory tree.
///
/// Used by the Table 1 harness to measure the size of each case-study crate
/// the same way the paper reports lines of code. Comment-only lines (starting
/// with `//`) and blank lines are excluded.
pub fn count_loc(dir: &Path) -> usize {
    let mut total = 0;
    let Ok(entries) = std::fs::read_dir(dir) else {
        return 0;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            total += count_loc(&path);
        } else if path.extension().is_some_and(|e| e == "rs") {
            if let Ok(text) = std::fs::read_to_string(&path) {
                total += text
                    .lines()
                    .map(str::trim)
                    .filter(|l| !l.is_empty() && !l.starts_with("//"))
                    .count();
            }
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_sets_all_fields() {
        let stats = ModelStats::new("vNext Extent Manager")
            .with_loc(19_775, 684)
            .with_bugs(1)
            .with_model(5, 11, 17);
        assert_eq!(stats.case_study, "vNext Extent Manager");
        assert_eq!(stats.system_loc, 19_775);
        assert_eq!(stats.harness_loc, 684);
        assert_eq!(stats.bugs_found, 1);
        assert_eq!(stats.machines, 5);
        assert_eq!(stats.state_transitions, 11);
        assert_eq!(stats.action_handlers, 17);
    }

    #[test]
    fn display_aligns_with_header() {
        let header = ModelStats::table_header();
        let row = ModelStats::new("MigratingTable")
            .with_loc(2_267, 2_275)
            .with_bugs(11)
            .with_model(3, 5, 10)
            .to_string();
        assert_eq!(header.len(), row.len());
        assert!(row.contains("MigratingTable"));
    }

    #[test]
    fn count_loc_of_this_crate_is_nonzero() {
        let src = Path::new(env!("CARGO_MANIFEST_DIR")).join("src");
        assert!(count_loc(&src) > 100);
    }

    #[test]
    fn count_loc_missing_dir_is_zero() {
        assert_eq!(count_loc(Path::new("/definitely/not/a/real/path")), 0);
    }

    #[test]
    fn stats_round_trip_through_json() {
        let stats = ModelStats::new("Fabric").with_model(13, 21, 87);
        let json = stats.to_json_value().to_string_compact();
        let back = ModelStats::from_json_value(&Json::parse(&json).unwrap()).unwrap();
        assert_eq!(stats, back);
    }
}
