//! Model statistics, used to regenerate Table 1 of the paper.
//!
//! Each case-study harness reports how large its environment model is:
//! number of machines, declared state transitions and action handlers,
//! together with the size of the system-under-test and the number of bugs the
//! methodology found in it.

use std::fmt;
use std::path::Path;

use serde::{Deserialize, Serialize};

/// Modeling-cost statistics of one case study (one row of Table 1).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ModelStats {
    /// Case study name ("vNext Extent Manager", "MigratingTable", ...).
    pub case_study: String,
    /// Lines of code of the system-under-test.
    pub system_loc: usize,
    /// Number of bugs found in the system-under-test.
    pub bugs_found: usize,
    /// Lines of code of the test harness.
    pub harness_loc: usize,
    /// Number of machines in the test harness.
    pub machines: usize,
    /// Number of state transitions declared by harness machines.
    pub state_transitions: usize,
    /// Number of action handlers declared by harness machines.
    pub action_handlers: usize,
}

impl ModelStats {
    /// Creates a statistics row with zero line counts; use
    /// [`ModelStats::with_loc`] or [`count_loc`] to fill them in.
    pub fn new(case_study: impl Into<String>) -> Self {
        ModelStats {
            case_study: case_study.into(),
            system_loc: 0,
            bugs_found: 0,
            harness_loc: 0,
            machines: 0,
            state_transitions: 0,
            action_handlers: 0,
        }
    }

    /// Sets the line counts.
    pub fn with_loc(mut self, system_loc: usize, harness_loc: usize) -> Self {
        self.system_loc = system_loc;
        self.harness_loc = harness_loc;
        self
    }

    /// Sets the number of bugs found.
    pub fn with_bugs(mut self, bugs_found: usize) -> Self {
        self.bugs_found = bugs_found;
        self
    }

    /// Sets the machine/state-transition/action-handler counts.
    pub fn with_model(
        mut self,
        machines: usize,
        state_transitions: usize,
        action_handlers: usize,
    ) -> Self {
        self.machines = machines;
        self.state_transitions = state_transitions;
        self.action_handlers = action_handlers;
        self
    }

    /// Renders the Table 1 header row.
    pub fn table_header() -> String {
        format!(
            "{:<28} {:>10} {:>4} {:>12} {:>4} {:>4} {:>4}",
            "System-under-test", "Sys #LoC", "#B", "Harness #LoC", "#M", "#ST", "#AH"
        )
    }
}

impl fmt::Display for ModelStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<28} {:>10} {:>4} {:>12} {:>4} {:>4} {:>4}",
            self.case_study,
            self.system_loc,
            self.bugs_found,
            self.harness_loc,
            self.machines,
            self.state_transitions,
            self.action_handlers
        )
    }
}

/// Counts non-empty, non-comment lines of Rust code under a directory tree.
///
/// Used by the Table 1 harness to measure the size of each case-study crate
/// the same way the paper reports lines of code. Comment-only lines (starting
/// with `//`) and blank lines are excluded.
pub fn count_loc(dir: &Path) -> usize {
    let mut total = 0;
    let Ok(entries) = std::fs::read_dir(dir) else {
        return 0;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            total += count_loc(&path);
        } else if path.extension().is_some_and(|e| e == "rs") {
            if let Ok(text) = std::fs::read_to_string(&path) {
                total += text
                    .lines()
                    .map(str::trim)
                    .filter(|l| !l.is_empty() && !l.starts_with("//"))
                    .count();
            }
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_sets_all_fields() {
        let stats = ModelStats::new("vNext Extent Manager")
            .with_loc(19_775, 684)
            .with_bugs(1)
            .with_model(5, 11, 17);
        assert_eq!(stats.case_study, "vNext Extent Manager");
        assert_eq!(stats.system_loc, 19_775);
        assert_eq!(stats.harness_loc, 684);
        assert_eq!(stats.bugs_found, 1);
        assert_eq!(stats.machines, 5);
        assert_eq!(stats.state_transitions, 11);
        assert_eq!(stats.action_handlers, 17);
    }

    #[test]
    fn display_aligns_with_header() {
        let header = ModelStats::table_header();
        let row = ModelStats::new("MigratingTable")
            .with_loc(2_267, 2_275)
            .with_bugs(11)
            .with_model(3, 5, 10)
            .to_string();
        assert_eq!(header.len(), row.len());
        assert!(row.contains("MigratingTable"));
    }

    #[test]
    fn count_loc_of_this_crate_is_nonzero() {
        let src = Path::new(env!("CARGO_MANIFEST_DIR")).join("src");
        assert!(count_loc(&src) > 100);
    }

    #[test]
    fn count_loc_missing_dir_is_zero() {
        assert_eq!(count_loc(Path::new("/definitely/not/a/real/path")), 0);
    }

    #[test]
    fn stats_round_trip_through_json() {
        let stats = ModelStats::new("Fabric").with_model(13, 21, 87);
        let json = serde_json::to_string(&stats).unwrap();
        let back: ModelStats = serde_json::from_str(&json).unwrap();
        assert_eq!(stats, back);
    }
}
