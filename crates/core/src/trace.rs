//! Recorded schedules and nondeterministic choices, for replay and debugging.
//!
//! Every nondeterministic decision made while executing the system-under-test
//! is appended to a [`Trace`]: which machine was scheduled to take the next
//! step, every boolean and integer choice requested via
//! [`Context::random_bool`](crate::runtime::Context::random_bool) and
//! friends. Given the trace of a buggy execution, the
//! [`ReplayScheduler`](crate::scheduler::ReplayScheduler) re-executes the
//! exact same schedule, so the bug reproduces deterministically — the property
//! the paper identifies as the key productivity advantage over production
//! logs.
//!
//! # Name interning
//!
//! The annotated schedule is recorded on the execution hot path (once per
//! machine step), so [`TraceStep`] stores machine and event names as small
//! [`NameId`]s into the trace's [`NameTable`] instead of heap-allocated
//! strings. Names are resolved back to text only when a trace is rendered or
//! serialized — recording a step is allocation-free in the steady state.

use std::collections::HashMap;
use std::sync::Arc;

use crate::json::{FromJson, Json, JsonError, ToJson};
use crate::machine::MachineId;

/// A single nondeterministic decision made during an execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Decision {
    /// The scheduler picked this machine to take the next step.
    Schedule(MachineId),
    /// A nondeterministic boolean choice (`Context::random_bool`).
    Bool(bool),
    /// A nondeterministic integer choice in `[0, bound)`
    /// (`Context::random_index`), recording the chosen value.
    Int(usize),
}

impl ToJson for Decision {
    fn to_json_value(&self) -> Json {
        match self {
            Decision::Schedule(id) => Json::object([("Schedule", id.to_json_value())]),
            Decision::Bool(b) => Json::object([("Bool", Json::Bool(*b))]),
            Decision::Int(v) => Json::object([("Int", Json::UInt(*v as u64))]),
        }
    }
}

impl FromJson for Decision {
    fn from_json_value(value: &Json) -> Result<Self, JsonError> {
        if let Ok(id) = value.get("Schedule") {
            return Ok(Decision::Schedule(MachineId::from_json_value(id)?));
        }
        if let Ok(b) = value.get("Bool") {
            return Ok(Decision::Bool(b.as_bool()?));
        }
        if let Ok(v) = value.get("Int") {
            return Ok(Decision::Int(v.as_usize()?));
        }
        Err(JsonError::new("decision must be Schedule, Bool or Int"))
    }
}

/// Identifier of an interned name in a [`NameTable`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NameId(u32);

impl NameId {
    /// Creates an id from its raw index. Ordinarily ids are produced by
    /// [`NameTable::intern`].
    pub fn from_raw(raw: u32) -> Self {
        NameId(raw)
    }

    /// The raw index of this id.
    pub fn raw(self) -> u32 {
        self.0
    }
}

/// A small interning table mapping [`NameId`]s to shared strings.
///
/// Machine and event names repeat across the (potentially tens of thousands
/// of) steps of an execution; interning them once keeps every subsequent
/// trace record allocation-free.
#[derive(Debug, Clone, Default)]
pub struct NameTable {
    names: Vec<Arc<str>>,
    index: HashMap<Arc<str>, NameId>,
}

impl NameTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        NameTable::default()
    }

    /// Interns `name`, returning the id it already has or a fresh one.
    ///
    /// Allocates only the first time a given name is seen.
    pub fn intern(&mut self, name: &str) -> NameId {
        if let Some(&id) = self.index.get(name) {
            return id;
        }
        let id = NameId(self.names.len() as u32);
        let shared: Arc<str> = Arc::from(name);
        self.names.push(Arc::clone(&shared));
        self.index.insert(shared, id);
        id
    }

    /// Resolves an id back to its name.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not produced by this table.
    pub fn resolve(&self, id: NameId) -> &str {
        &self.names[id.0 as usize]
    }

    /// Resolves an id to a shared handle on the name (no string copy).
    ///
    /// # Panics
    ///
    /// Panics if `id` was not produced by this table.
    pub fn resolve_arc(&self, id: NameId) -> Arc<str> {
        Arc::clone(&self.names[id.0 as usize])
    }

    /// Number of distinct interned names.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Returns `true` when no name has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }
}

/// An annotated step of an execution, used for human-readable bug reports.
///
/// Names are stored as [`NameId`]s into the owning trace's [`Trace::names`]
/// table; resolve them with [`Trace::step_machine_name`] /
/// [`Trace::step_event_name`] or render the whole schedule with
/// [`Trace::render_schedule`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceStep {
    /// Index of the step in the execution.
    pub step: usize,
    /// The machine that executed.
    pub machine: MachineId,
    /// Interned name of the machine.
    pub machine_name: NameId,
    /// Interned name of the event that was handled (or `"start"`).
    pub event: NameId,
}

/// The full record of one execution: every decision plus an annotated,
/// human-readable schedule.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    /// The seed that parameterized the scheduler for this execution.
    pub seed: u64,
    /// Every nondeterministic decision, in order.
    pub decisions: Vec<Decision>,
    /// Human readable schedule: one entry per machine step, names interned
    /// in [`Trace::names`].
    pub steps: Vec<TraceStep>,
    /// The interning table resolving the names referenced by
    /// [`Trace::steps`].
    pub names: NameTable,
}

/// Trace equality is structural on the *resolved* schedule: two traces are
/// equal when they record the same decisions and the same named steps, even
/// if their name tables interned the names in a different order (as happens
/// after a JSON round trip).
impl PartialEq for Trace {
    fn eq(&self, other: &Self) -> bool {
        self.seed == other.seed
            && self.decisions == other.decisions
            && self.steps.len() == other.steps.len()
            && self.steps.iter().zip(&other.steps).all(|(a, b)| {
                a.step == b.step
                    && a.machine == b.machine
                    && self.names.resolve(a.machine_name) == other.names.resolve(b.machine_name)
                    && self.names.resolve(a.event) == other.names.resolve(b.event)
            })
    }
}

impl Eq for Trace {}

impl Trace {
    /// Creates an empty trace for an execution driven by `seed`.
    pub fn new(seed: u64) -> Self {
        Trace {
            seed,
            decisions: Vec::new(),
            steps: Vec::new(),
            names: NameTable::new(),
        }
    }

    /// Number of nondeterministic choices recorded (the paper's `#NDC`).
    pub fn decision_count(&self) -> usize {
        self.decisions.len()
    }

    /// Appends a decision.
    pub fn push_decision(&mut self, decision: Decision) {
        self.decisions.push(decision);
    }

    /// Appends an annotated machine step. The step's name ids must come from
    /// [`Trace::intern`] on this trace.
    pub fn push_step(&mut self, step: TraceStep) {
        self.steps.push(step);
    }

    /// Interns a name into this trace's table.
    pub fn intern(&mut self, name: &str) -> NameId {
        self.names.intern(name)
    }

    /// The machine name recorded for `step`.
    pub fn step_machine_name(&self, step: &TraceStep) -> &str {
        self.names.resolve(step.machine_name)
    }

    /// The event name recorded for `step`.
    pub fn step_event_name(&self, step: &TraceStep) -> &str {
        self.names.resolve(step.event)
    }

    /// Serializes the trace to pretty JSON for storage alongside a bug report.
    ///
    /// Interned names are resolved to plain strings, so the format is stable
    /// and self-contained regardless of interning order.
    ///
    /// # Errors
    ///
    /// Returns an error if serialization fails (it cannot for well-formed
    /// traces; the `Result` is kept for API stability).
    pub fn to_json(&self) -> Result<String, JsonError> {
        Ok(self.to_json_value().to_string_pretty())
    }

    /// Parses a trace previously produced by [`Trace::to_json`].
    ///
    /// # Errors
    ///
    /// Returns an error if the JSON does not describe a trace.
    pub fn from_json(json: &str) -> Result<Self, JsonError> {
        Trace::from_json_value(&Json::parse(json)?)
    }

    /// Renders the annotated schedule as indented text, one line per step.
    pub fn render_schedule(&self) -> String {
        let mut out = String::new();
        for step in &self.steps {
            out.push_str(&format!(
                "[{:>5}] {} ({}) <- {}\n",
                step.step,
                self.names.resolve(step.machine_name),
                step.machine,
                self.names.resolve(step.event)
            ));
        }
        out
    }
}

impl ToJson for Trace {
    fn to_json_value(&self) -> Json {
        Json::object([
            ("seed", Json::UInt(self.seed)),
            (
                "decisions",
                Json::Array(self.decisions.iter().map(ToJson::to_json_value).collect()),
            ),
            (
                "steps",
                Json::Array(
                    self.steps
                        .iter()
                        .map(|step| {
                            Json::object([
                                ("step", Json::UInt(step.step as u64)),
                                ("machine", step.machine.to_json_value()),
                                (
                                    "machine_name",
                                    Json::Str(self.names.resolve(step.machine_name).to_string()),
                                ),
                                (
                                    "event",
                                    Json::Str(self.names.resolve(step.event).to_string()),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

impl FromJson for Trace {
    fn from_json_value(value: &Json) -> Result<Self, JsonError> {
        let mut names = NameTable::new();
        let steps = value
            .get("steps")?
            .as_array()?
            .iter()
            .map(|step| {
                Ok(TraceStep {
                    step: step.get("step")?.as_usize()?,
                    machine: MachineId::from_json_value(step.get("machine")?)?,
                    machine_name: names.intern(step.get("machine_name")?.as_str()?),
                    event: names.intern(step.get("event")?.as_str()?),
                })
            })
            .collect::<Result<_, JsonError>>()?;
        Ok(Trace {
            seed: value.get("seed")?.as_u64()?,
            decisions: value
                .get("decisions")?
                .as_array()?
                .iter()
                .map(Decision::from_json_value)
                .collect::<Result<_, _>>()?,
            steps,
            names,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_trace() -> Trace {
        let mut t = Trace::new(99);
        t.push_decision(Decision::Schedule(MachineId::from_raw(0)));
        t.push_decision(Decision::Bool(true));
        t.push_decision(Decision::Int(3));
        let machine_name = t.intern("Server");
        let event = t.intern("ClientReq");
        t.push_step(TraceStep {
            step: 0,
            machine: MachineId::from_raw(0),
            machine_name,
            event,
        });
        t
    }

    #[test]
    fn decision_count_counts_all_decisions() {
        assert_eq!(sample_trace().decision_count(), 3);
    }

    #[test]
    fn json_round_trip() {
        let t = sample_trace();
        let json = t.to_json().expect("serialize");
        let back = Trace::from_json(&json).expect("deserialize");
        assert_eq!(t, back);
    }

    #[test]
    fn render_schedule_mentions_machine_and_event() {
        let rendered = sample_trace().render_schedule();
        assert!(rendered.contains("Server"));
        assert!(rendered.contains("ClientReq"));
    }

    #[test]
    fn empty_trace_has_no_decisions() {
        let t = Trace::new(0);
        assert_eq!(t.decision_count(), 0);
        assert!(t.render_schedule().is_empty());
    }

    #[test]
    fn interning_deduplicates_names() {
        let mut table = NameTable::new();
        let a = table.intern("Server");
        let b = table.intern("Client");
        let c = table.intern("Server");
        assert_eq!(a, c);
        assert_ne!(a, b);
        assert_eq!(table.len(), 2);
        assert_eq!(table.resolve(a), "Server");
        assert_eq!(&*table.resolve_arc(b), "Client");
    }

    #[test]
    fn trace_equality_ignores_interning_order() {
        // Same resolved schedule, names interned in opposite order.
        let build = |flip: bool| {
            let mut t = Trace::new(1);
            let (first, second) = if flip {
                ("EventB", "MachineA")
            } else {
                ("MachineA", "EventB")
            };
            t.intern(first);
            t.intern(second);
            let machine_name = t.intern("MachineA");
            let event = t.intern("EventB");
            t.push_step(TraceStep {
                step: 0,
                machine: MachineId::from_raw(0),
                machine_name,
                event,
            });
            t
        };
        assert_eq!(build(false), build(true));
    }

    #[test]
    fn step_name_accessors_resolve() {
        let t = sample_trace();
        let step = t.steps[0];
        assert_eq!(t.step_machine_name(&step), "Server");
        assert_eq!(t.step_event_name(&step), "ClientReq");
    }
}
