//! Recorded schedules and nondeterministic choices, for replay and debugging.
//!
//! Every nondeterministic decision made while executing the system-under-test
//! is appended to a [`Trace`]: which machine was scheduled to take the next
//! step, every boolean and integer choice requested via
//! [`Context::random_bool`](crate::runtime::Context::random_bool) and
//! friends. Given the trace of a buggy execution, the
//! [`ReplayScheduler`](crate::scheduler::ReplayScheduler) re-executes the
//! exact same schedule, so the bug reproduces deterministically — the property
//! the paper identifies as the key productivity advantage over production
//! logs.
//!
//! # The two streams of a trace
//!
//! A trace carries two distinct records of one execution:
//!
//! * the **decision stream** ([`Trace::decisions`]) — every nondeterministic
//!   choice, in order. This is the *replay-bearing* stream: it is always
//!   recorded in full, because dropping any part of it would destroy
//!   replayability.
//! * the **annotated schedule** ([`Trace::steps`]) — one human-readable
//!   entry per machine step (who ran, which event it handled). This stream
//!   exists purely for debugging output and can be bounded.
//!
//! How much of the annotated schedule is retained is controlled by a
//! [`TraceMode`]: `Full` keeps everything, `RingBuffer(cap)` keeps only the
//! last `cap` steps (capping trace memory on very long executions while the
//! most recent — and for debugging, most relevant — window survives), and
//! `DecisionsOnly` records no annotated steps at all. Replay works
//! identically under every mode.
//!
//! # Name interning
//!
//! The annotated schedule is recorded on the execution hot path (once per
//! machine step), so [`TraceStep`] stores machine and event names as small
//! [`NameId`]s into the trace's [`NameTable`] instead of heap-allocated
//! strings. Names are resolved back to text only when a trace is rendered or
//! serialized — recording a step is allocation-free in the steady state.

use std::collections::HashMap;
use std::sync::Arc;

use crate::json::{FromJson, Json, JsonError, ToJson};
use crate::machine::MachineId;

/// A single nondeterministic decision made during an execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Decision {
    /// The scheduler picked this machine to take the next step.
    Schedule(MachineId),
    /// A nondeterministic boolean choice (`Context::random_bool`).
    Bool(bool),
    /// A nondeterministic integer choice in `[0, bound)`
    /// (`Context::random_index`), recording the chosen value.
    Int(usize),
    /// The scheduler injected a crash fault into this machine
    /// ([`Scheduler::next_fault`](crate::scheduler::Scheduler::next_fault)).
    CrashMachine(MachineId),
    /// The scheduler restarted this (previously crashed) machine.
    RestartMachine(MachineId),
    /// The scheduler dropped the oldest message queued at this machine's
    /// lossy inbox.
    DropMessage(MachineId),
    /// The scheduler re-delivered a copy of the oldest message queued at
    /// this machine's lossy inbox.
    DuplicateMessage(MachineId),
}

impl Decision {
    /// Returns `true` for the fault decisions
    /// (`CrashMachine` / `RestartMachine` / `DropMessage` /
    /// `DuplicateMessage`): the injected-environment-failure subset of the
    /// stream that the shrink pass minimizes first.
    pub fn is_fault(&self) -> bool {
        matches!(
            self,
            Decision::CrashMachine(_)
                | Decision::RestartMachine(_)
                | Decision::DropMessage(_)
                | Decision::DuplicateMessage(_)
        )
    }
}

impl ToJson for Decision {
    fn to_json_value(&self) -> Json {
        match self {
            Decision::Schedule(id) => Json::object([("Schedule", id.to_json_value())]),
            Decision::Bool(b) => Json::object([("Bool", Json::Bool(*b))]),
            Decision::Int(v) => Json::object([("Int", Json::UInt(*v as u64))]),
            Decision::CrashMachine(id) => Json::object([("Crash", id.to_json_value())]),
            Decision::RestartMachine(id) => Json::object([("Restart", id.to_json_value())]),
            Decision::DropMessage(id) => Json::object([("Drop", id.to_json_value())]),
            Decision::DuplicateMessage(id) => Json::object([("Duplicate", id.to_json_value())]),
        }
    }
}

impl FromJson for Decision {
    fn from_json_value(value: &Json) -> Result<Self, JsonError> {
        if let Ok(id) = value.get("Schedule") {
            return Ok(Decision::Schedule(MachineId::from_json_value(id)?));
        }
        if let Ok(b) = value.get("Bool") {
            return Ok(Decision::Bool(b.as_bool()?));
        }
        if let Ok(v) = value.get("Int") {
            return Ok(Decision::Int(v.as_usize()?));
        }
        for (key, make) in [
            ("Crash", Decision::CrashMachine as fn(MachineId) -> Decision),
            ("Restart", Decision::RestartMachine),
            ("Drop", Decision::DropMessage),
            ("Duplicate", Decision::DuplicateMessage),
        ] {
            if let Ok(id) = value.get(key) {
                return Ok(make(MachineId::from_json_value(id)?));
            }
        }
        Err(JsonError::new(
            "decision must be Schedule, Bool, Int, Crash, Restart, Drop or Duplicate",
        ))
    }
}

/// How much of the human-facing annotated schedule a [`Trace`] retains.
///
/// The replay-bearing decision stream is unaffected: every mode records all
/// decisions, so traces stay replayable regardless of how the annotated
/// schedule is bounded.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TraceMode {
    /// Keep every annotated step (the historical behavior). Memory grows
    /// linearly with the execution length.
    #[default]
    Full,
    /// Keep only the last `N` annotated steps in a ring buffer. Older steps
    /// are evicted and counted in [`Trace::dropped_steps`]; peak trace
    /// memory is bounded by the capacity regardless of execution length.
    RingBuffer(usize),
    /// Record no annotated steps at all — the trace carries only the
    /// decision stream. The cheapest mode for huge throughput runs where
    /// schedules are rendered from a replay, not from the original run.
    DecisionsOnly,
}

impl TraceMode {
    /// Parses a CLI spelling of a trace mode: `full`, `ring:N` (aliases
    /// `ring-buffer:N`, `ringbuffer:N`) or `decisions` (alias
    /// `decisions-only`).
    pub fn parse(text: &str) -> Option<TraceMode> {
        match text {
            "full" => Some(TraceMode::Full),
            "decisions" | "decisions-only" => Some(TraceMode::DecisionsOnly),
            other => {
                let (name, cap) = other.split_once(':')?;
                if !matches!(name, "ring" | "ring-buffer" | "ringbuffer") {
                    return None;
                }
                cap.parse().ok().map(TraceMode::RingBuffer)
            }
        }
    }
}

impl ToJson for TraceMode {
    fn to_json_value(&self) -> Json {
        match self {
            TraceMode::Full => Json::Str("full".to_string()),
            TraceMode::RingBuffer(cap) => Json::object([("ring_buffer", Json::UInt(*cap as u64))]),
            TraceMode::DecisionsOnly => Json::Str("decisions_only".to_string()),
        }
    }
}

impl FromJson for TraceMode {
    fn from_json_value(value: &Json) -> Result<Self, JsonError> {
        if let Ok(cap) = value.get("ring_buffer") {
            return Ok(TraceMode::RingBuffer(cap.as_usize()?));
        }
        match value.as_str()? {
            "full" => Ok(TraceMode::Full),
            "decisions_only" => Ok(TraceMode::DecisionsOnly),
            other => Err(JsonError::new(format!("unknown trace mode '{other}'"))),
        }
    }
}

/// Identifier of an interned name in a [`NameTable`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NameId(u32);

impl NameId {
    /// Creates an id from its raw index. Ordinarily ids are produced by
    /// [`NameTable::intern`].
    pub fn from_raw(raw: u32) -> Self {
        NameId(raw)
    }

    /// The raw index of this id.
    pub fn raw(self) -> u32 {
        self.0
    }
}

/// A small interning table mapping [`NameId`]s to shared strings.
///
/// Machine and event names repeat across the (potentially tens of thousands
/// of) steps of an execution; interning them once keeps every subsequent
/// trace record allocation-free.
#[derive(Debug, Default)]
pub struct NameTable {
    names: Vec<Arc<str>>,
    index: HashMap<Arc<str>, NameId>,
}

/// Hand-written so `clone_from` reuses the destination's backbone storage
/// (the derived `clone_from` is `*self = source.clone()`, a full realloc).
/// Snapshot restores clone the name table on every fork, so this is hot.
impl Clone for NameTable {
    fn clone(&self) -> Self {
        NameTable {
            names: self.names.clone(),
            index: self.index.clone(),
        }
    }

    fn clone_from(&mut self, source: &Self) {
        self.names.clone_from(&source.names);
        self.index.clone_from(&source.index);
    }
}

impl NameTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        NameTable::default()
    }

    /// Interns `name`, returning the id it already has or a fresh one.
    ///
    /// Allocates only the first time a given name is seen.
    pub fn intern(&mut self, name: &str) -> NameId {
        if let Some(&id) = self.index.get(name) {
            return id;
        }
        let id = NameId(self.names.len() as u32);
        let shared: Arc<str> = Arc::from(name);
        self.names.push(Arc::clone(&shared));
        self.index.insert(shared, id);
        id
    }

    /// Resolves an id back to its name.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not produced by this table.
    pub fn resolve(&self, id: NameId) -> &str {
        &self.names[id.0 as usize]
    }

    /// Resolves an id to a shared handle on the name (no string copy).
    ///
    /// # Panics
    ///
    /// Panics if `id` was not produced by this table.
    pub fn resolve_arc(&self, id: NameId) -> Arc<str> {
        Arc::clone(&self.names[id.0 as usize])
    }

    /// Number of distinct interned names.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Returns `true` when no name has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Forgets every interned name, keeping the allocated capacity of the
    /// table so re-use does not re-allocate its backbone.
    pub fn clear(&mut self) {
        self.names.clear();
        self.index.clear();
    }
}

/// An annotated step of an execution, used for human-readable bug reports.
///
/// Names are stored as [`NameId`]s into the owning trace's [`Trace::names`]
/// table; resolve them with [`Trace::step_machine_name`] /
/// [`Trace::step_event_name`] or render the whole schedule with
/// [`Trace::render_schedule`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceStep {
    /// Index of the step in the execution.
    pub step: usize,
    /// The machine that executed.
    pub machine: MachineId,
    /// Interned name of the machine.
    pub machine_name: NameId,
    /// Interned name of the event that was handled (or `"start"`).
    pub event: NameId,
}

/// The full record of one execution: every decision plus an annotated,
/// human-readable schedule (bounded by the trace's [`TraceMode`]).
#[derive(Debug, Default)]
pub struct Trace {
    /// The seed that parameterized the scheduler for this execution.
    pub seed: u64,
    /// Every nondeterministic decision, in order. Always complete — this is
    /// the stream replay consumes.
    pub decisions: Vec<Decision>,
    /// Retained annotated steps. Under `TraceMode::RingBuffer` this is ring
    /// storage: the oldest retained step lives at `ring_head`, so in-order
    /// iteration must go through [`Trace::steps`].
    steps: Vec<TraceStep>,
    /// Index of the oldest retained step once the ring has wrapped.
    ring_head: usize,
    /// How the annotated schedule is bounded.
    mode: TraceMode,
    /// Number of annotated steps that were executed but not retained
    /// (evicted from the ring, or never recorded under `DecisionsOnly`).
    dropped_steps: usize,
    /// The interning table resolving the names referenced by the steps.
    pub names: NameTable,
}

/// Hand-written so `clone_from` — the path [`Runtime::restore_from`] takes on
/// every snapshot fork — copies the decision and step streams into the
/// destination's retained buffers (`Copy` elements, so a memcpy) instead of
/// reallocating them, and reuses the name-table backbone.
///
/// [`Runtime::restore_from`]: crate::runtime::Runtime::restore_from
impl Clone for Trace {
    fn clone(&self) -> Self {
        Trace {
            seed: self.seed,
            decisions: self.decisions.clone(),
            steps: self.steps.clone(),
            ring_head: self.ring_head,
            mode: self.mode,
            dropped_steps: self.dropped_steps,
            names: self.names.clone(),
        }
    }

    fn clone_from(&mut self, source: &Self) {
        self.seed = source.seed;
        self.decisions.clone_from(&source.decisions);
        self.steps.clone_from(&source.steps);
        self.ring_head = source.ring_head;
        self.mode = source.mode;
        self.dropped_steps = source.dropped_steps;
        self.names.clone_from(&source.names);
    }
}

/// Trace equality is structural on the *resolved* schedule: two traces are
/// equal when they record the same decisions, the same retention counters and
/// the same named steps in the same order, even if their name tables interned
/// the names in a different order or their rings wrapped at different offsets
/// (as happens after a JSON round trip).
impl PartialEq for Trace {
    fn eq(&self, other: &Self) -> bool {
        self.seed == other.seed
            && self.decisions == other.decisions
            && self.mode == other.mode
            && self.dropped_steps == other.dropped_steps
            && self.steps.len() == other.steps.len()
            && self.steps().zip(other.steps()).all(|(a, b)| {
                a.step == b.step
                    && a.machine == b.machine
                    && self.names.resolve(a.machine_name) == other.names.resolve(b.machine_name)
                    && self.names.resolve(a.event) == other.names.resolve(b.event)
            })
    }
}

impl Eq for Trace {}

impl Trace {
    /// Creates an empty trace for an execution driven by `seed`, retaining
    /// the full annotated schedule.
    pub fn new(seed: u64) -> Self {
        Trace::with_mode(seed, TraceMode::Full)
    }

    /// Creates an empty trace whose annotated schedule is bounded by `mode`.
    pub fn with_mode(seed: u64, mode: TraceMode) -> Self {
        Trace {
            seed,
            decisions: Vec::new(),
            steps: Vec::new(),
            ring_head: 0,
            mode,
            dropped_steps: 0,
            names: NameTable::new(),
        }
    }

    /// Clears the trace for re-use by a fresh execution driven by `seed`,
    /// keeping every allocated buffer (decision vector, step storage, name
    /// table backbone) so a recycled trace records without re-allocating.
    pub fn reset(&mut self, seed: u64, mode: TraceMode) {
        self.seed = seed;
        self.decisions.clear();
        self.steps.clear();
        self.ring_head = 0;
        self.mode = mode;
        self.dropped_steps = 0;
        self.names.clear();
    }

    /// How the annotated schedule of this trace is bounded.
    pub fn mode(&self) -> TraceMode {
        self.mode
    }

    /// Number of nondeterministic choices recorded (the paper's `#NDC`).
    pub fn decision_count(&self) -> usize {
        self.decisions.len()
    }

    /// Number of fault decisions recorded ([`Decision::is_fault`]): the size
    /// of the execution's injected fault set.
    pub fn fault_decision_count(&self) -> usize {
        self.decisions.iter().filter(|d| d.is_fault()).count()
    }

    /// Number of annotated steps currently retained.
    pub fn retained_step_count(&self) -> usize {
        self.steps.len()
    }

    /// Number of annotated steps that were executed but not retained.
    pub fn dropped_steps(&self) -> usize {
        self.dropped_steps
    }

    /// Total number of machine steps the execution performed (retained plus
    /// dropped).
    pub fn total_step_count(&self) -> usize {
        self.steps.len() + self.dropped_steps
    }

    /// The retained annotated steps in execution order (oldest first).
    pub fn steps(&self) -> impl Iterator<Item = &TraceStep> {
        let (wrapped, oldest) = self.steps.split_at(self.ring_head);
        oldest.iter().chain(wrapped.iter())
    }

    /// Appends a decision.
    pub fn push_decision(&mut self, decision: Decision) {
        self.decisions.push(decision);
    }

    /// Records an annotated machine step, subject to the trace's
    /// [`TraceMode`]. The step's name ids must come from [`Trace::intern`] on
    /// this trace.
    pub fn push_step(&mut self, step: TraceStep) {
        match self.mode {
            TraceMode::Full => self.steps.push(step),
            TraceMode::DecisionsOnly => self.dropped_steps += 1,
            TraceMode::RingBuffer(cap) => {
                if self.steps.len() < cap {
                    self.steps.push(step);
                } else if cap == 0 {
                    self.dropped_steps += 1;
                } else {
                    self.steps[self.ring_head] = step;
                    self.ring_head = (self.ring_head + 1) % cap;
                    self.dropped_steps += 1;
                }
            }
        }
    }

    /// Rolls the trace back to the state it had after `bound_step` machine
    /// steps: the decision stream is truncated to `decision_count` and every
    /// annotated step at or past the bound is discarded. Used by the runtime
    /// when a liveness grace period confirms a bound verdict — the
    /// observation window's recording must not leak into the reported trace.
    ///
    /// Annotated steps *before* the bound that a ring buffer evicted during
    /// the window cannot be restored; the dropped counter is recomputed so
    /// [`Trace::total_step_count`] equals `bound_step` exactly (the runtime
    /// records one annotated step per machine step).
    pub fn truncate_to_step(&mut self, decision_count: usize, bound_step: usize) {
        self.decisions.truncate(decision_count);
        let mut retained: Vec<TraceStep> = self
            .steps()
            .filter(|step| step.step < bound_step)
            .copied()
            .collect();
        self.steps.clear();
        self.steps.append(&mut retained);
        self.ring_head = 0;
        self.dropped_steps = match self.mode {
            TraceMode::Full => 0,
            TraceMode::RingBuffer(_) | TraceMode::DecisionsOnly => {
                bound_step.saturating_sub(self.steps.len())
            }
        };
    }

    /// Interns a name into this trace's table.
    pub fn intern(&mut self, name: &str) -> NameId {
        self.names.intern(name)
    }

    /// The machine name recorded for `step`.
    pub fn step_machine_name(&self, step: &TraceStep) -> &str {
        self.names.resolve(step.machine_name)
    }

    /// The event name recorded for `step`.
    pub fn step_event_name(&self, step: &TraceStep) -> &str {
        self.names.resolve(step.event)
    }

    /// Serializes the trace to pretty JSON for storage alongside a bug report.
    ///
    /// Interned names are resolved to plain strings and ring storage is
    /// unrolled into execution order, so the format is stable and
    /// self-contained regardless of interning order or ring offset.
    ///
    /// # Errors
    ///
    /// Returns an error if serialization fails (it cannot for well-formed
    /// traces; the `Result` is kept for API stability).
    pub fn to_json(&self) -> Result<String, JsonError> {
        Ok(self.to_json_value().to_string_pretty())
    }

    /// Parses a trace previously produced by [`Trace::to_json`].
    ///
    /// Traces written before the trace-mode refactor (no `mode` /
    /// `dropped_steps` keys) parse as `TraceMode::Full` with nothing dropped.
    ///
    /// # Errors
    ///
    /// Returns an error if the JSON does not describe a trace.
    pub fn from_json(json: &str) -> Result<Self, JsonError> {
        Trace::from_json_value(&Json::parse(json)?)
    }

    /// Renders the annotated schedule as indented text, one line per retained
    /// step. When earlier steps were dropped (ring buffer or decisions-only
    /// recording), the rendering starts with a marker saying how many.
    pub fn render_schedule(&self) -> String {
        let mut out = String::new();
        if self.dropped_steps > 0 {
            out.push_str(&format!(
                "[..... {} earlier step(s) not retained ({:?} trace mode) .....]\n",
                self.dropped_steps, self.mode
            ));
        }
        for step in self.steps() {
            out.push_str(&format!(
                "[{:>5}] {} ({}) <- {}\n",
                step.step,
                self.names.resolve(step.machine_name),
                step.machine,
                self.names.resolve(step.event)
            ));
        }
        out
    }
}

impl ToJson for Trace {
    fn to_json_value(&self) -> Json {
        Json::object([
            ("seed", Json::UInt(self.seed)),
            ("mode", self.mode.to_json_value()),
            ("dropped_steps", Json::UInt(self.dropped_steps as u64)),
            (
                "decisions",
                Json::Array(self.decisions.iter().map(ToJson::to_json_value).collect()),
            ),
            (
                "steps",
                Json::Array(
                    self.steps()
                        .map(|step| {
                            Json::object([
                                ("step", Json::UInt(step.step as u64)),
                                ("machine", step.machine.to_json_value()),
                                (
                                    "machine_name",
                                    Json::Str(self.names.resolve(step.machine_name).to_string()),
                                ),
                                (
                                    "event",
                                    Json::Str(self.names.resolve(step.event).to_string()),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

impl FromJson for Trace {
    fn from_json_value(value: &Json) -> Result<Self, JsonError> {
        let mut names = NameTable::new();
        let steps = value
            .get("steps")?
            .as_array()?
            .iter()
            .map(|step| {
                Ok(TraceStep {
                    step: step.get("step")?.as_usize()?,
                    machine: MachineId::from_json_value(step.get("machine")?)?,
                    machine_name: names.intern(step.get("machine_name")?.as_str()?),
                    event: names.intern(step.get("event")?.as_str()?),
                })
            })
            .collect::<Result<_, JsonError>>()?;
        let mode = match value.get("mode") {
            Ok(mode) => TraceMode::from_json_value(mode)?,
            Err(_) => TraceMode::Full,
        };
        let dropped_steps = match value.get("dropped_steps") {
            Ok(count) => count.as_usize()?,
            Err(_) => 0,
        };
        Ok(Trace {
            seed: value.get("seed")?.as_u64()?,
            decisions: value
                .get("decisions")?
                .as_array()?
                .iter()
                .map(Decision::from_json_value)
                .collect::<Result<_, _>>()?,
            steps,
            ring_head: 0,
            mode,
            dropped_steps,
            names,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_trace() -> Trace {
        let mut t = Trace::new(99);
        t.push_decision(Decision::Schedule(MachineId::from_raw(0)));
        t.push_decision(Decision::Bool(true));
        t.push_decision(Decision::Int(3));
        let machine_name = t.intern("Server");
        let event = t.intern("ClientReq");
        t.push_step(TraceStep {
            step: 0,
            machine: MachineId::from_raw(0),
            machine_name,
            event,
        });
        t
    }

    fn numbered_step(t: &mut Trace, index: usize) -> TraceStep {
        let machine_name = t.intern("M");
        let event = t.intern("E");
        TraceStep {
            step: index,
            machine: MachineId::from_raw(0),
            machine_name,
            event,
        }
    }

    #[test]
    fn decision_count_counts_all_decisions() {
        assert_eq!(sample_trace().decision_count(), 3);
    }

    #[test]
    fn fault_decisions_round_trip_and_are_counted() {
        let mut t = Trace::new(4);
        t.push_decision(Decision::Schedule(MachineId::from_raw(0)));
        t.push_decision(Decision::CrashMachine(MachineId::from_raw(2)));
        t.push_decision(Decision::RestartMachine(MachineId::from_raw(2)));
        t.push_decision(Decision::DropMessage(MachineId::from_raw(1)));
        t.push_decision(Decision::DuplicateMessage(MachineId::from_raw(1)));
        assert_eq!(t.decision_count(), 5);
        assert_eq!(t.fault_decision_count(), 4);
        assert!(!Decision::Schedule(MachineId::from_raw(0)).is_fault());
        let back = Trace::from_json(&t.to_json().expect("serialize")).expect("deserialize");
        assert_eq!(back.decisions, t.decisions);
    }

    #[test]
    fn json_round_trip() {
        let t = sample_trace();
        let json = t.to_json().expect("serialize");
        let back = Trace::from_json(&json).expect("deserialize");
        assert_eq!(t, back);
    }

    #[test]
    fn json_without_mode_keys_parses_as_full_trace() {
        // Traces serialized before the trace-mode refactor carry no
        // `mode` / `dropped_steps` keys.
        let legacy = r#"{
            "seed": 7,
            "decisions": [{"Bool": true}],
            "steps": [{"step": 0, "machine": 0, "machine_name": "A", "event": "start"}]
        }"#;
        let t = Trace::from_json(legacy).expect("legacy trace parses");
        assert_eq!(t.mode(), TraceMode::Full);
        assert_eq!(t.dropped_steps(), 0);
        assert_eq!(t.retained_step_count(), 1);
    }

    #[test]
    fn ring_buffer_retains_only_the_newest_steps() {
        let mut t = Trace::with_mode(5, TraceMode::RingBuffer(3));
        for i in 0..10 {
            let step = numbered_step(&mut t, i);
            t.push_step(step);
        }
        assert_eq!(t.retained_step_count(), 3);
        assert_eq!(t.dropped_steps(), 7);
        assert_eq!(t.total_step_count(), 10);
        let retained: Vec<usize> = t.steps().map(|s| s.step).collect();
        assert_eq!(retained, vec![7, 8, 9], "oldest steps are evicted first");
        let rendered = t.render_schedule();
        assert!(rendered.contains("7 earlier step(s) not retained"));
    }

    #[test]
    fn ring_buffer_round_trips_through_json() {
        let mut t = Trace::with_mode(5, TraceMode::RingBuffer(3));
        t.push_decision(Decision::Int(1));
        for i in 0..10 {
            let step = numbered_step(&mut t, i);
            t.push_step(step);
        }
        let back = Trace::from_json(&t.to_json().expect("serialize")).expect("deserialize");
        assert_eq!(t, back);
        assert_eq!(back.mode(), TraceMode::RingBuffer(3));
        assert_eq!(back.dropped_steps(), 7);
        let retained: Vec<usize> = back.steps().map(|s| s.step).collect();
        assert_eq!(retained, vec![7, 8, 9]);
    }

    #[test]
    fn decisions_only_mode_records_no_steps() {
        let mut t = Trace::with_mode(1, TraceMode::DecisionsOnly);
        t.push_decision(Decision::Bool(false));
        for i in 0..4 {
            let step = numbered_step(&mut t, i);
            t.push_step(step);
        }
        assert_eq!(t.retained_step_count(), 0);
        assert_eq!(t.dropped_steps(), 4);
        assert_eq!(t.decision_count(), 1, "decisions are always kept");
        let back = Trace::from_json(&t.to_json().expect("serialize")).expect("deserialize");
        assert_eq!(t, back);
    }

    #[test]
    fn zero_capacity_ring_drops_everything() {
        let mut t = Trace::with_mode(1, TraceMode::RingBuffer(0));
        let step = numbered_step(&mut t, 0);
        t.push_step(step);
        assert_eq!(t.retained_step_count(), 0);
        assert_eq!(t.dropped_steps(), 1);
    }

    #[test]
    fn reset_clears_content_and_applies_the_new_mode() {
        let mut t = sample_trace();
        t.reset(123, TraceMode::RingBuffer(2));
        assert_eq!(t.seed, 123);
        assert_eq!(t.mode(), TraceMode::RingBuffer(2));
        assert_eq!(t.decision_count(), 0);
        assert_eq!(t.retained_step_count(), 0);
        assert_eq!(t.dropped_steps(), 0);
        assert!(t.names.is_empty());
        for i in 0..5 {
            let step = numbered_step(&mut t, i);
            t.push_step(step);
        }
        assert_eq!(t.retained_step_count(), 2);
    }

    #[test]
    fn trace_mode_parses_cli_spellings() {
        assert_eq!(TraceMode::parse("full"), Some(TraceMode::Full));
        assert_eq!(
            TraceMode::parse("ring:256"),
            Some(TraceMode::RingBuffer(256))
        );
        assert_eq!(
            TraceMode::parse("ring-buffer:8"),
            Some(TraceMode::RingBuffer(8))
        );
        assert_eq!(
            TraceMode::parse("decisions"),
            Some(TraceMode::DecisionsOnly)
        );
        assert_eq!(
            TraceMode::parse("decisions-only"),
            Some(TraceMode::DecisionsOnly)
        );
        assert_eq!(TraceMode::parse("ring:"), None);
        assert_eq!(TraceMode::parse("nope"), None);
    }

    #[test]
    fn render_schedule_mentions_machine_and_event() {
        let rendered = sample_trace().render_schedule();
        assert!(rendered.contains("Server"));
        assert!(rendered.contains("ClientReq"));
    }

    #[test]
    fn empty_trace_has_no_decisions() {
        let t = Trace::new(0);
        assert_eq!(t.decision_count(), 0);
        assert!(t.render_schedule().is_empty());
    }

    #[test]
    fn interning_deduplicates_names() {
        let mut table = NameTable::new();
        let a = table.intern("Server");
        let b = table.intern("Client");
        let c = table.intern("Server");
        assert_eq!(a, c);
        assert_ne!(a, b);
        assert_eq!(table.len(), 2);
        assert_eq!(table.resolve(a), "Server");
        assert_eq!(&*table.resolve_arc(b), "Client");
    }

    #[test]
    fn trace_equality_ignores_interning_order() {
        // Same resolved schedule, names interned in opposite order.
        let build = |flip: bool| {
            let mut t = Trace::new(1);
            let (first, second) = if flip {
                ("EventB", "MachineA")
            } else {
                ("MachineA", "EventB")
            };
            t.intern(first);
            t.intern(second);
            let machine_name = t.intern("MachineA");
            let event = t.intern("EventB");
            t.push_step(TraceStep {
                step: 0,
                machine: MachineId::from_raw(0),
                machine_name,
                event,
            });
            t
        };
        assert_eq!(build(false), build(true));
    }

    #[test]
    fn step_name_accessors_resolve() {
        let t = sample_trace();
        let step = *t.steps().next().expect("one step");
        assert_eq!(t.step_machine_name(&step), "Server");
        assert_eq!(t.step_event_name(&step), "ClientReq");
    }
}
