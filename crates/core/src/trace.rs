//! Recorded schedules and nondeterministic choices, for replay and debugging.
//!
//! Every nondeterministic decision made while executing the system-under-test
//! is appended to a [`Trace`]: which machine was scheduled to take the next
//! step, every boolean and integer choice requested via
//! [`Context::random_bool`](crate::runtime::Context::random_bool) and
//! friends. Given the trace of a buggy execution, the
//! [`ReplayScheduler`](crate::scheduler::ReplayScheduler) re-executes the
//! exact same schedule, so the bug reproduces deterministically — the property
//! the paper identifies as the key productivity advantage over production
//! logs.

use crate::json::{FromJson, Json, JsonError, ToJson};
use crate::machine::MachineId;

/// A single nondeterministic decision made during an execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Decision {
    /// The scheduler picked this machine to take the next step.
    Schedule(MachineId),
    /// A nondeterministic boolean choice (`Context::random_bool`).
    Bool(bool),
    /// A nondeterministic integer choice in `[0, bound)`
    /// (`Context::random_index`), recording the chosen value.
    Int(usize),
}

impl ToJson for Decision {
    fn to_json_value(&self) -> Json {
        match self {
            Decision::Schedule(id) => Json::object([("Schedule", id.to_json_value())]),
            Decision::Bool(b) => Json::object([("Bool", Json::Bool(*b))]),
            Decision::Int(v) => Json::object([("Int", Json::UInt(*v as u64))]),
        }
    }
}

impl FromJson for Decision {
    fn from_json_value(value: &Json) -> Result<Self, JsonError> {
        if let Ok(id) = value.get("Schedule") {
            return Ok(Decision::Schedule(MachineId::from_json_value(id)?));
        }
        if let Ok(b) = value.get("Bool") {
            return Ok(Decision::Bool(b.as_bool()?));
        }
        if let Ok(v) = value.get("Int") {
            return Ok(Decision::Int(v.as_usize()?));
        }
        Err(JsonError::new("decision must be Schedule, Bool or Int"))
    }
}

/// An annotated step of an execution, used for human-readable bug reports.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceStep {
    /// Index of the step in the execution.
    pub step: usize,
    /// The machine that executed.
    pub machine: MachineId,
    /// The machine's name.
    pub machine_name: String,
    /// The name of the event that was handled (or `"start"`).
    pub event: String,
}

impl ToJson for TraceStep {
    fn to_json_value(&self) -> Json {
        Json::object([
            ("step", Json::UInt(self.step as u64)),
            ("machine", self.machine.to_json_value()),
            ("machine_name", Json::Str(self.machine_name.clone())),
            ("event", Json::Str(self.event.clone())),
        ])
    }
}

impl FromJson for TraceStep {
    fn from_json_value(value: &Json) -> Result<Self, JsonError> {
        Ok(TraceStep {
            step: value.get("step")?.as_usize()?,
            machine: MachineId::from_json_value(value.get("machine")?)?,
            machine_name: value.get("machine_name")?.as_str()?.to_string(),
            event: value.get("event")?.as_str()?.to_string(),
        })
    }
}

/// The full record of one execution: every decision plus an annotated,
/// human-readable schedule.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Trace {
    /// The seed that parameterized the scheduler for this execution.
    pub seed: u64,
    /// Every nondeterministic decision, in order.
    pub decisions: Vec<Decision>,
    /// Human readable schedule: one entry per machine step.
    pub steps: Vec<TraceStep>,
}

impl Trace {
    /// Creates an empty trace for an execution driven by `seed`.
    pub fn new(seed: u64) -> Self {
        Trace {
            seed,
            decisions: Vec::new(),
            steps: Vec::new(),
        }
    }

    /// Number of nondeterministic choices recorded (the paper's `#NDC`).
    pub fn decision_count(&self) -> usize {
        self.decisions.len()
    }

    /// Appends a decision.
    pub fn push_decision(&mut self, decision: Decision) {
        self.decisions.push(decision);
    }

    /// Appends an annotated machine step.
    pub fn push_step(&mut self, step: TraceStep) {
        self.steps.push(step);
    }

    /// Serializes the trace to pretty JSON for storage alongside a bug report.
    ///
    /// # Errors
    ///
    /// Returns an error if serialization fails (it cannot for well-formed
    /// traces; the `Result` is kept for API stability).
    pub fn to_json(&self) -> Result<String, JsonError> {
        Ok(self.to_json_value().to_string_pretty())
    }

    /// Parses a trace previously produced by [`Trace::to_json`].
    ///
    /// # Errors
    ///
    /// Returns an error if the JSON does not describe a trace.
    pub fn from_json(json: &str) -> Result<Self, JsonError> {
        Trace::from_json_value(&Json::parse(json)?)
    }

    /// Renders the annotated schedule as indented text, one line per step.
    pub fn render_schedule(&self) -> String {
        let mut out = String::new();
        for step in &self.steps {
            out.push_str(&format!(
                "[{:>5}] {} ({}) <- {}\n",
                step.step, step.machine_name, step.machine, step.event
            ));
        }
        out
    }
}

impl ToJson for Trace {
    fn to_json_value(&self) -> Json {
        Json::object([
            ("seed", Json::UInt(self.seed)),
            (
                "decisions",
                Json::Array(self.decisions.iter().map(ToJson::to_json_value).collect()),
            ),
            (
                "steps",
                Json::Array(self.steps.iter().map(ToJson::to_json_value).collect()),
            ),
        ])
    }
}

impl FromJson for Trace {
    fn from_json_value(value: &Json) -> Result<Self, JsonError> {
        Ok(Trace {
            seed: value.get("seed")?.as_u64()?,
            decisions: value
                .get("decisions")?
                .as_array()?
                .iter()
                .map(Decision::from_json_value)
                .collect::<Result<_, _>>()?,
            steps: value
                .get("steps")?
                .as_array()?
                .iter()
                .map(TraceStep::from_json_value)
                .collect::<Result<_, _>>()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_trace() -> Trace {
        let mut t = Trace::new(99);
        t.push_decision(Decision::Schedule(MachineId::from_raw(0)));
        t.push_decision(Decision::Bool(true));
        t.push_decision(Decision::Int(3));
        t.push_step(TraceStep {
            step: 0,
            machine: MachineId::from_raw(0),
            machine_name: "Server".to_string(),
            event: "ClientReq".to_string(),
        });
        t
    }

    #[test]
    fn decision_count_counts_all_decisions() {
        assert_eq!(sample_trace().decision_count(), 3);
    }

    #[test]
    fn json_round_trip() {
        let t = sample_trace();
        let json = t.to_json().expect("serialize");
        let back = Trace::from_json(&json).expect("deserialize");
        assert_eq!(t, back);
    }

    #[test]
    fn render_schedule_mentions_machine_and_event() {
        let rendered = sample_trace().render_schedule();
        assert!(rendered.contains("Server"));
        assert!(rendered.contains("ClientReq"));
    }

    #[test]
    fn empty_trace_has_no_decisions() {
        let t = Trace::new(0);
        assert_eq!(t.decision_count(), 0);
        assert!(t.render_schedule().is_empty());
    }
}
