//! # psharp — systematic testing of distributed systems
//!
//! This crate is a Rust reproduction of the testing methodology described in
//! *"Uncovering Bugs in Distributed Storage Systems during Testing (not in
//! Production!)"* (FAST 2016). It provides the building blocks the paper
//! calls P#:
//!
//! * **Machines** ([`machine::Machine`], [`machine::StateMachine`]) — actors
//!   with a private mailbox that model the components of a distributed
//!   system, including the real component under test wrapped in a thin
//!   machine, and models of its environment (other nodes, timers, clients,
//!   the network).
//! * **Controlled nondeterminism** — every schedule decision and every
//!   `random_*` choice goes through a [`scheduler::Scheduler`], so the
//!   [`engine::TestEngine`] can systematically explore interleavings of
//!   message deliveries, client requests, failures and timeouts.
//! * **Specifications** — [`monitor::Monitor`]s express safety properties
//!   (assertions over a history of observed events) and liveness properties
//!   (hot/cold states that must eventually cool down).
//! * **Replayable traces** — a violation is witnessed by a [`trace::Trace`]
//!   that deterministically reproduces the buggy execution.
//!
//! # Quickstart
//!
//! ```
//! use psharp::prelude::*;
//!
//! // Events.
//! #[derive(Debug)]
//! struct Req;
//! #[derive(Debug)]
//! struct Ack;
//!
//! // A server that loses an acknowledgement under one interleaving.
//! struct Server;
//! impl Machine for Server {
//!     fn handle(&mut self, ctx: &mut Context<'_>, event: Event) {
//!         if event.is::<Req>() {
//!             // A controlled nondeterministic choice models e.g. message loss.
//!             if ctx.random_bool() {
//!                 ctx.notify_monitor::<GotAck>(Event::new(Ack));
//!             }
//!         }
//!     }
//! }
//!
//! struct Client {
//!     server: MachineId,
//! }
//! impl Machine for Client {
//!     fn on_start(&mut self, ctx: &mut Context<'_>) {
//!         ctx.notify_monitor::<GotAck>(Event::new(Req));
//!         ctx.send(self.server, Event::new(Req));
//!     }
//!     fn handle(&mut self, _ctx: &mut Context<'_>, _event: Event) {}
//! }
//!
//! // Liveness spec: every request is eventually acknowledged.
//! #[derive(Default)]
//! struct GotAck {
//!     waiting: bool,
//! }
//! impl Monitor for GotAck {
//!     fn observe(&mut self, _ctx: &mut MonitorContext<'_>, event: &Event) {
//!         if event.is::<Req>() {
//!             self.waiting = true;
//!         } else if event.is::<Ack>() {
//!             self.waiting = false;
//!         }
//!     }
//!     fn temperature(&self) -> Temperature {
//!         if self.waiting { Temperature::Hot } else { Temperature::Cold }
//!     }
//! }
//!
//! let engine = TestEngine::new(TestConfig::new().with_iterations(100));
//! let report = engine.run(|rt| {
//!     rt.add_monitor(GotAck::default());
//!     let server = rt.create_machine(Server);
//!     rt.create_machine(Client { server });
//! });
//! assert!(report.found_bug(), "the lost-ack interleaving is always reachable");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod enabled;
pub mod engine;
pub mod error;
pub mod event;
pub mod fault;
pub mod json;
pub mod machine;
pub mod mailbox;
pub mod monitor;
pub mod rng;
pub mod runtime;
pub mod scheduler;
pub mod shrink;
pub mod stats;
pub mod timer;
pub mod trace;

/// Convenience re-exports of the types needed by almost every harness.
pub mod prelude {
    pub use crate::engine::{
        BugReport, IterationOutcome, IterationStatus, ParallelTestEngine, PrefixForkEngine,
        TestConfig, TestEngine, TestReport,
    };
    pub use crate::error::{Bug, BugKind};
    pub use crate::event::Event;
    pub use crate::fault::{Fault, FaultPlan};
    pub use crate::machine::{Machine, MachineId, StateMachine, StateMachineRunner, Transition};
    pub use crate::monitor::{Monitor, MonitorContext, Temperature};
    pub use crate::runtime::{
        CancelToken, Context, ExecutionOutcome, Runtime, RuntimeConfig, RuntimeSnapshot,
    };
    pub use crate::scheduler::{SchedulerKind, StepFootprint};
    pub use crate::shrink::{shrink_trace, ShrinkConfig, ShrinkReport};
    pub use crate::stats::{ModelStats, StrategyStats};
    pub use crate::timer::{Timer, TimerTick};
    pub use crate::trace::{Decision, NameId, NameTable, Trace, TraceMode};
}
