//! Automatic schedule shrinking: delta-debugging a buggy trace down to a
//! minimal replayable counterexample.
//!
//! The traces that fall out of thousands-of-steps executions are far too long
//! for a human to read — the paper's replayable schedules are only a
//! productivity win if the engineer can actually see *which* interleaving
//! breaks the system. This module implements ddmin-style reduction (Zeller &
//! Hildebrandt's delta debugging, the same family of techniques P#-era tools
//! use to reduce schedules before showing them to developers) over the
//! replay-bearing decision stream of a recorded [`Trace`]:
//!
//! 1. delete a chunk of decisions from the current sequence;
//! 2. re-execute the harness under a *tolerant* replay
//!    ([`ReplayScheduler::tolerant`]): the surviving prefix is followed where
//!    it applies and every gap is resolved by a deterministic seeded tail;
//! 3. keep the mutation iff the **same bug** reproduces — in which case the
//!    new current sequence is the *recording* of the reduced execution
//!    (which ends exactly at bug detection, so it is self-trimming);
//! 4. repeat at finer granularities until no single deletion reproduces the
//!    bug (1-minimality) or the candidate budget is exhausted.
//!
//! The final sequence is re-executed once more under **strict** replay with a
//! full annotated schedule, so the [`ShrinkReport::minimized`] trace is
//! replay-verified end to end. Every candidate execution is deterministic
//! (seeded tail, serialized runtime), so shrinking the same bug report yields
//! byte-identical output on every run and at any engine worker count — and
//! shrinking an already-minimal trace is a no-op.

use std::time::{Duration, Instant};

use crate::error::{Bug, BugKind};
use crate::fault::FaultPlan;
use crate::json::{FromJson, Json, JsonError, ToJson};
use crate::runtime::{ExecutionOutcome, Runtime, RuntimeConfig};
use crate::scheduler::ReplayScheduler;
use crate::trace::{Decision, Trace, TraceMode};

/// Salt decorrelating the tolerant-replay tail stream from the scheduler
/// stream that produced the original execution: candidate tails must not
/// accidentally mirror the choices the original scheduler would make.
const SHRINK_TAIL_STREAM: u64 = 0x51B2_7F4E_8D93_C601;

/// Bounds and execution parameters of one shrink pass, derived from the
/// owning test configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShrinkConfig {
    /// Step bound per candidate execution (use the hunt's own bound).
    pub max_steps: usize,
    /// Whether liveness monitors are checked at quiescence.
    pub check_liveness_at_quiescence: bool,
    /// Whether machine panics are caught and classified.
    pub catch_panics: bool,
    /// Maximum number of candidate executions before the pass gives up and
    /// returns the best sequence found so far.
    pub max_candidates: u64,
    /// The fault budget of the hunt that recorded the trace. Candidate
    /// executions replay under the same budget, so the recorded fault
    /// decisions stay injectable; the tolerant tail itself never invents new
    /// faults, which is what makes the minimized fault set monotonically
    /// shrink.
    pub faults: FaultPlan,
}

impl Default for ShrinkConfig {
    fn default() -> Self {
        ShrinkConfig {
            max_steps: 5_000,
            check_liveness_at_quiescence: true,
            catch_panics: true,
            max_candidates: 2_000,
            faults: FaultPlan::none(),
        }
    }
}

/// The outcome of shrinking one buggy trace: the replay-verified minimal
/// counterexample plus reduction statistics.
#[derive(Debug, Clone)]
pub struct ShrinkReport {
    /// Decision count of the original buggy trace (the paper's `#NDC`).
    pub original_decisions: usize,
    /// Decision count of the minimized trace.
    pub minimized_decisions: usize,
    /// Fault decisions in the original buggy trace (the injected fault set).
    pub original_faults: usize,
    /// Fault decisions in the minimized trace: the *minimum fault set* the
    /// bug still needs — the coarse first pass of the shrinker deletes whole
    /// faults before chunk-deleting schedule decisions.
    pub minimized_faults: usize,
    /// Candidate executions tried (including rejected ones).
    pub candidates_tried: u64,
    /// Candidate executions that reproduced the bug (accepted mutations).
    pub candidates_reproduced: u64,
    /// Wall-clock time of the whole pass.
    pub elapsed: Duration,
    /// The minimized, replay-verified trace: strict replay of this trace
    /// reproduces the same bug as the original.
    pub minimized: Trace,
}

impl ShrinkReport {
    /// Returns `true` when shrinking removed at least one decision.
    pub fn improved(&self) -> bool {
        self.minimized_decisions < self.original_decisions
    }

    /// The fraction of decisions removed, in percent (`0.0` for an
    /// already-minimal trace).
    pub fn reduction_percent(&self) -> f64 {
        if self.original_decisions == 0 {
            return 0.0;
        }
        let removed = self.original_decisions - self.minimized_decisions;
        removed as f64 * 100.0 / self.original_decisions as f64
    }

    /// Renders a one-line human-readable summary of the reduction.
    pub fn summary(&self) -> String {
        let faults = if self.original_faults > 0 {
            format!(
                ", faults {} -> {}",
                self.original_faults, self.minimized_faults
            )
        } else {
            String::new()
        };
        format!(
            "shrunk {} -> {} decisions ({:.0}% removed{faults}, {} of {} candidates reproduced, {:.2}s)",
            self.original_decisions,
            self.minimized_decisions,
            self.reduction_percent(),
            self.candidates_reproduced,
            self.candidates_tried,
            self.elapsed.as_secs_f64()
        )
    }
}

impl ToJson for ShrinkReport {
    fn to_json_value(&self) -> Json {
        Json::object([
            (
                "original_decisions",
                Json::UInt(self.original_decisions as u64),
            ),
            (
                "minimized_decisions",
                Json::UInt(self.minimized_decisions as u64),
            ),
            ("original_faults", Json::UInt(self.original_faults as u64)),
            ("minimized_faults", Json::UInt(self.minimized_faults as u64)),
            ("candidates_tried", Json::UInt(self.candidates_tried)),
            (
                "candidates_reproduced",
                Json::UInt(self.candidates_reproduced),
            ),
            ("elapsed_seconds", Json::Float(self.elapsed.as_secs_f64())),
            ("minimized", self.minimized.to_json_value()),
        ])
    }
}

impl FromJson for ShrinkReport {
    fn from_json_value(value: &Json) -> Result<Self, JsonError> {
        // The fault counters postdate the fault-injection refactor; reports
        // written before it parse with zero faults.
        let fault_count = |key: &str| -> Result<usize, JsonError> {
            match value.opt(key) {
                Some(v) => v.as_usize(),
                None => Ok(0),
            }
        };
        Ok(ShrinkReport {
            original_decisions: value.get("original_decisions")?.as_usize()?,
            minimized_decisions: value.get("minimized_decisions")?.as_usize()?,
            original_faults: fault_count("original_faults")?,
            minimized_faults: fault_count("minimized_faults")?,
            candidates_tried: value.get("candidates_tried")?.as_u64()?,
            candidates_reproduced: value.get("candidates_reproduced")?.as_u64()?,
            elapsed: Duration::from_secs_f64(value.get("elapsed_seconds")?.as_f64()?),
            minimized: Trace::from_json_value(value.get("minimized")?)?,
        })
    }
}

/// Two bugs are "the same" for shrinking purposes when they agree on kind,
/// message and source. The detection *step* is deliberately excluded: the
/// whole point of a reduced schedule is that the bug fires earlier.
pub fn same_bug(a: &Bug, b: &Bug) -> bool {
    a.kind == b.kind && a.message == b.message && a.source == b.source
}

/// Temporarily replaces the process panic hook with a silent one, restoring
/// the previous hook on drop. Shrink passes over panic-kind bugs re-panic
/// (inside `catch_unwind`) once per reproducing candidate; without this the
/// default hook would print a backtrace for every one of them.
///
/// The hook is process-global, so this is only installed from the shrink
/// pass, which both engines run on one thread after all workers have joined.
type PanicHook = Box<dyn Fn(&std::panic::PanicHookInfo<'_>) + Sync + Send + 'static>;

struct QuietPanicHook {
    previous: Option<PanicHook>,
}

impl QuietPanicHook {
    fn install(active: bool) -> Self {
        let previous = active.then(|| {
            let previous = std::panic::take_hook();
            std::panic::set_hook(Box::new(|_| {}));
            previous
        });
        QuietPanicHook { previous }
    }
}

impl Drop for QuietPanicHook {
    fn drop(&mut self) {
        if let Some(previous) = self.previous.take() {
            std::panic::set_hook(previous);
        }
    }
}

/// Delta-debugs `trace` (which reproduces `bug` on the harness built by
/// `setup`) down to a minimal replayable counterexample.
///
/// The returned report always carries a replay-verified minimized trace; if
/// no deletion reproduces the bug (or the budget runs out before any does),
/// the "minimized" trace is the strict re-recording of the original decision
/// sequence and [`ShrinkReport::improved`] is `false`.
pub fn shrink_trace<F>(config: &ShrinkConfig, bug: &Bug, trace: &Trace, setup: &F) -> ShrinkReport
where
    F: Fn(&mut Runtime),
{
    let start = Instant::now();
    let pass = ShrinkPass {
        config,
        bug,
        seed: trace.seed,
        setup,
    };

    let original = trace.decisions.clone();
    let mut current = original.clone();
    let mut tried: u64 = 0;
    let mut reproduced: u64 = 0;
    // Recycled trace storage for the candidate runtimes.
    let mut scratch: Option<Trace> = None;
    // Reproducing candidates of a panic-kind bug re-panic inside
    // `catch_unwind` once per candidate; without this guard the default
    // panic hook would print hundreds of backtraces over one shrink pass.
    let _quiet = QuietPanicHook::install(config.catch_panics && bug.kind == BugKind::Panic);

    // Coarse fault-minimization first pass: before touching schedule
    // decisions, try deleting whole injected faults — first the entire fault
    // set at once (most bugs either need their faults or none of them), then
    // each remaining fault individually until no single deletion reproduces.
    // Dropped faults cannot reappear: the tolerant tail never invents
    // faults, so every accepted recording carries a subset of the candidate's
    // fault set — the minimized trace reports the bug's *minimum fault set*.
    if current.iter().any(Decision::is_fault) {
        let without_faults: Vec<Decision> =
            current.iter().copied().filter(|d| !d.is_fault()).collect();
        tried += 1;
        if let Some(recording) = pass.reproduces(without_faults, &mut scratch) {
            reproduced += 1;
            current = recording;
        }
        'fault_pass: loop {
            let fault_positions: Vec<usize> = current
                .iter()
                .enumerate()
                .filter(|(_, d)| d.is_fault())
                .map(|(i, _)| i)
                .collect();
            for position in fault_positions {
                if tried >= config.max_candidates {
                    break 'fault_pass;
                }
                let mut candidate = current.clone();
                candidate.remove(position);
                tried += 1;
                if let Some(recording) = pass.reproduces(candidate, &mut scratch) {
                    reproduced += 1;
                    current = recording;
                    // Positions shifted; rescan the surviving faults.
                    continue 'fault_pass;
                }
            }
            break;
        }
    }

    // Classic ddmin over complements: delete one of `granularity` chunks,
    // refine the granularity when no deletion reproduces, restart coarse
    // after a success (the accepted recording may enable big deletions
    // again).
    let mut granularity: usize = 2;
    'ddmin: while current.len() >= 2
        && granularity <= current.len()
        && tried < config.max_candidates
    {
        let chunk = current.len().div_ceil(granularity);
        let mut start_index = 0;
        let mut accepted = false;
        while start_index < current.len() && tried < config.max_candidates {
            let end_index = (start_index + chunk).min(current.len());
            let mut candidate = Vec::with_capacity(current.len() - (end_index - start_index));
            candidate.extend_from_slice(&current[..start_index]);
            candidate.extend_from_slice(&current[end_index..]);
            tried += 1;
            if let Some(recording) = pass.reproduces(candidate, &mut scratch) {
                if recording.len() < current.len() {
                    reproduced += 1;
                    current = recording;
                    // Back to the coarsest useful granularity: deletions that
                    // failed before may succeed on the shorter sequence.
                    granularity = 2;
                    accepted = true;
                    break;
                }
            }
            start_index = end_index;
        }
        if accepted {
            continue 'ddmin;
        }
        if chunk <= 1 {
            // Single-decision deletions all failed: 1-minimal.
            break;
        }
        granularity = (granularity * 2).min(current.len());
    }

    // Re-record the winning sequence under strict replay with a full
    // annotated schedule: the minimized trace must stand on its own as a
    // replayable, human-readable counterexample.
    let minimized = pass
        .record_verified(&current)
        .or_else(|| pass.record_verified(&original))
        .unwrap_or_else(|| trace.clone());

    ShrinkReport {
        original_decisions: original.len(),
        minimized_decisions: minimized.decision_count(),
        original_faults: original.iter().filter(|d| d.is_fault()).count(),
        minimized_faults: minimized.fault_decision_count(),
        candidates_tried: tried,
        candidates_reproduced: reproduced,
        elapsed: start.elapsed(),
        minimized,
    }
}

/// The immutable ingredients of one shrink pass.
struct ShrinkPass<'a, F> {
    config: &'a ShrinkConfig,
    bug: &'a Bug,
    seed: u64,
    setup: &'a F,
}

impl<F> ShrinkPass<'_, F>
where
    F: Fn(&mut Runtime),
{
    fn runtime_config(&self, trace_mode: TraceMode) -> RuntimeConfig {
        RuntimeConfig {
            max_steps: self.config.max_steps,
            check_liveness_at_quiescence: self.config.check_liveness_at_quiescence,
            catch_panics: self.config.catch_panics,
            trace_mode,
            faults: self.config.faults,
        }
    }

    /// The deterministic seed of the tolerant-replay tail. Derived from the
    /// execution seed through its own stream so candidate tails do not
    /// mirror the original scheduler's choices.
    fn tail_seed(&self) -> u64 {
        crate::rng::mix64(self.seed ^ SHRINK_TAIL_STREAM)
    }

    /// Executes one candidate decision sequence under tolerant replay.
    /// Returns the recording of the run iff it reproduces the same bug.
    ///
    /// Candidates run with [`TraceMode::DecisionsOnly`] — the annotated
    /// schedule is irrelevant during the search — and recycle trace storage
    /// via `scratch` across calls.
    fn reproduces(
        &self,
        candidate: Vec<Decision>,
        scratch: &mut Option<Trace>,
    ) -> Option<Vec<Decision>> {
        let scheduler = Box::new(ReplayScheduler::tolerant(candidate, self.tail_seed()));
        let mut runtime = Runtime::new(
            scheduler,
            self.runtime_config(TraceMode::DecisionsOnly),
            self.seed,
        );
        if let Some(recycled) = scratch.take() {
            runtime.recycle_trace(recycled);
        }
        (self.setup)(&mut runtime);
        let outcome = runtime.run();
        let trace = runtime.into_trace();
        let reproduced =
            matches!(&outcome, ExecutionOutcome::BugFound(found) if same_bug(found, self.bug));
        // The recording ends at bug detection, so it is already trimmed.
        let decisions = reproduced.then(|| trace.decisions.clone());
        *scratch = Some(trace);
        decisions
    }

    /// Strictly replays `decisions` with a full annotated schedule and
    /// returns the recorded trace iff it reproduces the same bug without
    /// divergence.
    fn record_verified(&self, decisions: &[Decision]) -> Option<Trace> {
        let mut probe = Trace::new(self.seed);
        probe.decisions = decisions.to_vec();
        let scheduler = Box::new(ReplayScheduler::from_trace(&probe));
        let mut runtime = Runtime::new(scheduler, self.runtime_config(TraceMode::Full), self.seed);
        (self.setup)(&mut runtime);
        match runtime.run() {
            ExecutionOutcome::BugFound(found)
                if same_bug(&found, self.bug) && runtime.replay_error().is_none() =>
            {
                Some(runtime.take_trace())
            }
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::BugKind;

    #[test]
    fn same_bug_ignores_the_detection_step() {
        let a = Bug::new(BugKind::SafetyViolation, "boom")
            .with_source("M")
            .with_step(10);
        let b = Bug::new(BugKind::SafetyViolation, "boom")
            .with_source("M")
            .with_step(3);
        assert!(same_bug(&a, &b));
        let c = Bug::new(BugKind::SafetyViolation, "other").with_source("M");
        assert!(!same_bug(&a, &c));
        let d = Bug::new(BugKind::LivenessViolation, "boom").with_source("M");
        assert!(!same_bug(&a, &d));
    }

    #[test]
    fn shrink_report_json_round_trip() {
        let mut minimized = Trace::new(7);
        minimized.push_decision(Decision::Bool(true));
        let report = ShrinkReport {
            original_decisions: 120,
            minimized_decisions: 1,
            original_faults: 3,
            minimized_faults: 1,
            candidates_tried: 40,
            candidates_reproduced: 6,
            elapsed: Duration::from_millis(125),
            minimized,
        };
        let json = report.to_json_value().to_string_pretty();
        let back =
            ShrinkReport::from_json_value(&Json::parse(&json).expect("parse")).expect("roundtrip");
        assert_eq!(back.original_decisions, 120);
        assert_eq!(back.minimized_decisions, 1);
        assert_eq!(back.candidates_tried, 40);
        assert_eq!(back.candidates_reproduced, 6);
        assert!((back.elapsed.as_secs_f64() - 0.125).abs() < 1e-9);
        assert_eq!(back.minimized, report.minimized);
        assert_eq!(back.original_faults, 3);
        assert_eq!(back.minimized_faults, 1);
        assert!(back.improved());
        assert!(back.summary().contains("120 -> 1"));
        assert!(back.summary().contains("faults 3 -> 1"));
    }

    #[test]
    fn legacy_shrink_report_json_parses_with_zero_faults() {
        let legacy = r#"{
            "original_decisions": 10,
            "minimized_decisions": 2,
            "candidates_tried": 5,
            "candidates_reproduced": 1,
            "elapsed_seconds": 0.5,
            "minimized": {"seed": 1, "decisions": [], "steps": []}
        }"#;
        let report = ShrinkReport::from_json_value(&Json::parse(legacy).expect("parse"))
            .expect("legacy report parses");
        assert_eq!(report.original_faults, 0);
        assert_eq!(report.minimized_faults, 0);
        assert!(!report.summary().contains("faults"));
    }

    #[test]
    fn reduction_percent_handles_empty_and_partial() {
        let empty = ShrinkReport {
            original_decisions: 0,
            minimized_decisions: 0,
            original_faults: 0,
            minimized_faults: 0,
            candidates_tried: 0,
            candidates_reproduced: 0,
            elapsed: Duration::ZERO,
            minimized: Trace::new(0),
        };
        assert_eq!(empty.reduction_percent(), 0.0);
        assert!(!empty.improved());
        let half = ShrinkReport {
            original_decisions: 10,
            minimized_decisions: 5,
            ..empty
        };
        assert_eq!(half.reduction_percent(), 50.0);
    }
}
