//! Bug classification and error types reported by the testing engine.

use std::error::Error;
use std::fmt;
use std::sync::Arc;

use crate::json::{FromJson, Json, JsonError, ToJson};

/// The class of property violation detected during an execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BugKind {
    /// A safety monitor assertion, a machine-local assertion, or any other
    /// finite-trace property violation.
    SafetyViolation,
    /// A liveness monitor remained in a hot state at the end of a bounded
    /// ("infinite") execution, or at quiescence.
    LivenessViolation,
    /// A machine panicked while handling an event (the analogue of an
    /// unhandled exception in the system-under-test).
    Panic,
    /// An event was delivered to a machine that declared it must never
    /// receive it.
    UnhandledEvent,
    /// No machine is enabled but a machine explicitly declared it is waiting
    /// for further input.
    Deadlock,
}

impl fmt::Display for BugKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BugKind::SafetyViolation => "safety violation",
            BugKind::LivenessViolation => "liveness violation",
            BugKind::Panic => "panic in machine handler",
            BugKind::UnhandledEvent => "unhandled event",
            BugKind::Deadlock => "deadlock",
        };
        f.write_str(s)
    }
}

impl ToJson for BugKind {
    fn to_json_value(&self) -> Json {
        let name = match self {
            BugKind::SafetyViolation => "SafetyViolation",
            BugKind::LivenessViolation => "LivenessViolation",
            BugKind::Panic => "Panic",
            BugKind::UnhandledEvent => "UnhandledEvent",
            BugKind::Deadlock => "Deadlock",
        };
        Json::Str(name.to_string())
    }
}

impl FromJson for BugKind {
    fn from_json_value(value: &Json) -> Result<Self, JsonError> {
        match value.as_str()? {
            "SafetyViolation" => Ok(BugKind::SafetyViolation),
            "LivenessViolation" => Ok(BugKind::LivenessViolation),
            "Panic" => Ok(BugKind::Panic),
            "UnhandledEvent" => Ok(BugKind::UnhandledEvent),
            "Deadlock" => Ok(BugKind::Deadlock),
            other => Err(JsonError::new(format!("unknown bug kind '{other}'"))),
        }
    }
}

/// A property violation found in one execution of the system-under-test.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bug {
    /// The class of violation.
    pub kind: BugKind,
    /// Human readable description (assertion message, monitor name, ...).
    pub message: String,
    /// The machine or monitor that detected the violation, when known.
    /// Shared (not owned) so attributing a bug to an interned machine name
    /// never copies the string.
    pub source: Option<Arc<str>>,
    /// The execution step at which the violation was detected.
    pub step: usize,
}

impl Bug {
    /// Creates a bug report.
    pub fn new(kind: BugKind, message: impl Into<String>) -> Self {
        Bug {
            kind,
            message: message.into(),
            source: None,
            step: 0,
        }
    }

    /// Attaches the machine or monitor name that detected the violation.
    pub fn with_source(mut self, source: impl Into<Arc<str>>) -> Self {
        self.source = Some(source.into());
        self
    }

    /// Attaches the execution step at which the violation was detected.
    pub fn with_step(mut self, step: usize) -> Self {
        self.step = step;
        self
    }
}

impl ToJson for Bug {
    fn to_json_value(&self) -> Json {
        Json::object([
            ("kind", self.kind.to_json_value()),
            ("message", Json::Str(self.message.clone())),
            (
                "source",
                match &self.source {
                    Some(source) => Json::Str(source.to_string()),
                    None => Json::Null,
                },
            ),
            ("step", Json::UInt(self.step as u64)),
        ])
    }
}

impl FromJson for Bug {
    fn from_json_value(value: &Json) -> Result<Self, JsonError> {
        Ok(Bug {
            kind: BugKind::from_json_value(value.get("kind")?)?,
            message: value.get("message")?.as_str()?.to_string(),
            source: match value.get("source")? {
                Json::Null => None,
                other => Some(other.as_str()?.into()),
            },
            step: value.get("step")?.as_usize()?,
        })
    }
}

impl fmt::Display for Bug {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.kind, self.message)?;
        if let Some(source) = &self.source {
            write!(f, " (detected by {source})")?;
        }
        write!(f, " at step {}", self.step)
    }
}

impl Error for Bug {}

/// Error returned when replaying a recorded trace diverges from the recording.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplayError {
    /// Description of the divergence.
    pub message: String,
    /// Index of the decision at which replay diverged.
    pub decision_index: usize,
}

impl fmt::Display for ReplayError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "trace replay diverged at decision {}: {}",
            self.decision_index, self.message
        )
    }
}

impl Error for ReplayError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bug_display_includes_kind_and_message() {
        let bug = Bug::new(BugKind::SafetyViolation, "replica count too low")
            .with_source("RepairMonitor")
            .with_step(17);
        let s = bug.to_string();
        assert!(s.contains("safety violation"));
        assert!(s.contains("replica count too low"));
        assert!(s.contains("RepairMonitor"));
        assert!(s.contains("17"));
    }

    #[test]
    fn bug_kind_display_is_lowercase() {
        assert_eq!(BugKind::LivenessViolation.to_string(), "liveness violation");
        assert_eq!(BugKind::Deadlock.to_string(), "deadlock");
    }

    #[test]
    fn bug_round_trips_through_json() {
        let bug = Bug::new(BugKind::Panic, "index out of bounds").with_step(3);
        let json = bug.to_json_value().to_string_compact();
        let back = Bug::from_json_value(&Json::parse(&json).expect("parse")).expect("deserialize");
        assert_eq!(bug, back);
    }

    #[test]
    fn replay_error_display() {
        let err = ReplayError {
            message: "expected Bool, got Schedule".to_string(),
            decision_index: 5,
        };
        assert!(err.to_string().contains("decision 5"));
    }
}
