//! The systematic testing engine.
//!
//! A [`TestEngine`] repeatedly executes a test harness from start to
//! completion, each time exploring a potentially different set of
//! nondeterministic choices, until it either reaches a user-supplied bound
//! (number of executions) or it hits a safety or liveness property violation.
//! On a violation it returns a [`BugReport`] containing the replayable
//! [`Trace`] of the buggy execution.
//!
//! A [`ParallelTestEngine`] multiplies throughput by the host's core count:
//! worker threads pull adaptive chunks of the iteration space from a shared
//! work-stealing queue (each execution keeps the exact seed it would have had
//! serially, so results are reproducible at any worker count) and can run a
//! *portfolio* of scheduling strategies side by side, the parallel testing
//! mode popularized by P#/Coyote. First-bug selection is deterministic: the
//! bug at the lowest iteration index wins, regardless of which worker's
//! execution finished first, and doomed executions above that index are
//! cancelled step-by-step instead of running to their bound.
//!
//! Both engines drive the same per-iteration path,
//! [`TestConfig::run_iteration`]: the iteration index determines the seed
//! ([`TestConfig::seed_for_iteration`]) *and*, in portfolio mode, the
//! scheduling strategy ([`TestConfig::strategy_for_iteration`]), so a
//! portfolio run reports the identical (iteration, seed, strategy, bug)
//! result at any worker count — including the serial engine.

use std::ops::Range;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use crate::error::Bug;
use crate::fault::FaultPlan;
use crate::machine::MachineId;
use crate::rng::{mix64, GOLDEN_GAMMA};
use crate::runtime::{CancelToken, ExecutionOutcome, Runtime, RuntimeConfig, RuntimeSnapshot};
use crate::scheduler::StepFootprint;
use crate::scheduler::{ReplayScheduler, SchedulerKind};
use crate::shrink::{same_bug, shrink_trace, ShrinkConfig, ShrinkReport};
use crate::stats::StrategyStats;
use crate::trace::{Trace, TraceMode};

/// Salt decorrelating the strategy-selection stream from the per-iteration
/// execution seeds: both are derived from [`TestConfig::seed`], but through
/// different streams, so which strategy drives an iteration carries no
/// information about the random choices made inside it.
const STRATEGY_STREAM: u64 = 0xA5A3_1E8F_5C6D_92B7;

/// Configuration of a systematic testing run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TestConfig {
    /// Maximum number of executions to explore.
    pub iterations: u64,
    /// Step bound per execution (the "infinite execution" approximation for
    /// liveness checking).
    pub max_steps: usize,
    /// Base random seed; each iteration derives its own seed from it.
    pub seed: u64,
    /// Scheduling strategy.
    pub scheduler: SchedulerKind,
    /// Whether liveness monitors are also checked when the system quiesces.
    pub check_liveness_at_quiescence: bool,
    /// Whether machine panics are caught and reported as bugs.
    pub catch_panics: bool,
    /// Number of worker threads a [`ParallelTestEngine`] lets steal from the
    /// shared iteration queue. `1` (the default) reproduces the serial
    /// [`TestEngine`] bit for bit.
    pub workers: usize,
    /// Optional scheduler portfolio: iteration `i` runs the strategy
    /// [`TestConfig::strategy_for_iteration`] picks from this list (a
    /// seed-derived, worker-count-independent assignment) instead of
    /// [`TestConfig::scheduler`].
    pub portfolio: Option<Vec<SchedulerKind>>,
    /// How much of the human-facing annotated schedule each execution's
    /// trace retains ([`TraceMode::Full`] by default). Replayability is
    /// unaffected: the decision stream is always recorded in full.
    ///
    /// When this field is left untouched (see
    /// [`TestConfig::effective_trace_mode`]), portfolio sweeps without
    /// shrinking automatically record in [`TraceMode::DecisionsOnly`] — the
    /// cheapest mode — and a found bug's annotated schedule is re-recorded
    /// from a strict replay before the report is returned.
    pub trace_mode: TraceMode,
    /// Whether `trace_mode` was set explicitly
    /// ([`TestConfig::with_trace_mode`]); an explicit choice disables the
    /// automatic `DecisionsOnly` selection for portfolio sweeps.
    pub trace_mode_explicit: bool,
    /// Whether a found bug's trace is automatically delta-debugged down to a
    /// minimal replayable counterexample ([`crate::shrink`]) before the
    /// report is returned.
    pub shrink: bool,
    /// Maximum number of candidate executions one shrink pass may spend.
    pub shrink_budget: u64,
    /// Per-execution fault budget ([`FaultPlan::none`] by default): how many
    /// crashes, restarts, message drops and duplications the scheduler may
    /// inject into machines the harness marked crashable / restartable /
    /// lossy. See [`crate::fault`].
    pub faults: FaultPlan,
    /// Whether engines share the post-setup state across iterations via
    /// [`Runtime::snapshot`]: the harness's `setup` closure runs once per
    /// worker, each subsequent iteration forks from the captured snapshot
    /// instead of re-running setup. Requires every machine and monitor the
    /// setup creates to implement `clone_state` (and any event it enqueues
    /// to be [`Event::replicable`](crate::event::Event::replicable));
    /// otherwise the engine silently falls back to straight-line execution.
    /// Results are identical either way, at any worker count.
    pub prefix_sharing: bool,
}

impl Default for TestConfig {
    fn default() -> Self {
        TestConfig {
            iterations: 1_000,
            max_steps: 5_000,
            seed: 0,
            scheduler: SchedulerKind::Random,
            check_liveness_at_quiescence: true,
            catch_panics: true,
            workers: 1,
            portfolio: None,
            trace_mode: TraceMode::Full,
            trace_mode_explicit: false,
            shrink: false,
            shrink_budget: 2_000,
            faults: FaultPlan::none(),
            prefix_sharing: false,
        }
    }
}

impl TestConfig {
    /// Creates a configuration with the default exploration bounds.
    pub fn new() -> Self {
        TestConfig::default()
    }

    /// Sets the number of executions to explore.
    pub fn with_iterations(mut self, iterations: u64) -> Self {
        self.iterations = iterations;
        self
    }

    /// Sets the per-execution step bound.
    pub fn with_max_steps(mut self, max_steps: usize) -> Self {
        self.max_steps = max_steps;
        self
    }

    /// Sets the base random seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the scheduling strategy.
    pub fn with_scheduler(mut self, scheduler: SchedulerKind) -> Self {
        self.scheduler = scheduler;
        self
    }

    /// Sets the number of worker threads used by [`ParallelTestEngine`].
    ///
    /// Zero is treated as one.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Assigns a scheduler portfolio: iteration `i` runs the strategy
    /// [`TestConfig::strategy_for_iteration`] picks from the list. An empty
    /// portfolio is ignored.
    pub fn with_portfolio(mut self, portfolio: Vec<SchedulerKind>) -> Self {
        self.portfolio = if portfolio.is_empty() {
            None
        } else {
            Some(portfolio)
        };
        self
    }

    /// Assigns the default portfolio
    /// ([`SchedulerKind::default_portfolio`]): random, PCT with several
    /// change-point budgets, delay-bounding, a probabilistic random walk,
    /// and round-robin.
    pub fn with_default_portfolio(self) -> Self {
        self.with_portfolio(SchedulerKind::default_portfolio())
    }

    /// Sets how much of the annotated schedule each execution's trace
    /// retains. `TraceMode::RingBuffer(cap)` bounds peak trace memory on
    /// very long executions; replay is unaffected under every mode. An
    /// explicit choice here also disables the automatic `DecisionsOnly`
    /// selection for portfolio sweeps
    /// ([`TestConfig::effective_trace_mode`]).
    pub fn with_trace_mode(mut self, trace_mode: TraceMode) -> Self {
        self.trace_mode = trace_mode;
        self.trace_mode_explicit = true;
        self
    }

    /// Sets the per-execution fault budget: how many crashes, restarts,
    /// message drops and duplications the scheduler may inject into machines
    /// the harness marked crashable / restartable / lossy
    /// ([`crate::fault`]). Injected faults are first-class decisions — they
    /// replay byte-for-byte and the shrink pass reduces a buggy execution to
    /// its minimum fault set.
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// Enables (or disables) prefix sharing ([`TestConfig::prefix_sharing`]):
    /// the harness setup executes once per worker and every subsequent
    /// iteration forks from a snapshot of the post-setup state.
    pub fn with_prefix_sharing(mut self, prefix_sharing: bool) -> Self {
        self.prefix_sharing = prefix_sharing;
        self
    }

    /// Enables (or disables) automatic schedule shrinking: a found bug's
    /// trace is delta-debugged down to a minimal replayable counterexample
    /// and attached to the report as [`BugReport::shrink`].
    pub fn with_shrink(mut self, shrink: bool) -> Self {
        self.shrink = shrink;
        self
    }

    /// Bounds the number of candidate executions one shrink pass may spend.
    pub fn with_shrink_budget(mut self, shrink_budget: u64) -> Self {
        self.shrink_budget = shrink_budget;
        self
    }

    /// The shrink-pass parameters derived from this configuration.
    pub fn shrink_config(&self) -> ShrinkConfig {
        ShrinkConfig {
            max_steps: self.max_steps,
            check_liveness_at_quiescence: self.check_liveness_at_quiescence,
            catch_panics: self.catch_panics,
            max_candidates: self.shrink_budget,
            faults: self.faults,
        }
    }

    /// Whether this configuration auto-selects [`TraceMode::DecisionsOnly`]:
    /// a portfolio sweep with no explicit trace-mode choice and no shrink
    /// pass records only the replay-bearing decision stream — peak trace
    /// memory stops scaling with the execution length, and bug-free sweeps
    /// (the common case for portfolio verification runs) never materialize
    /// an annotated schedule at all. When a bug *is* found, the engine
    /// re-records its annotated schedule from a strict replay, so reports
    /// look identical to full-mode runs.
    pub fn auto_decisions_only(&self) -> bool {
        !self.trace_mode_explicit && self.portfolio.is_some() && !self.shrink
    }

    /// The trace mode executions actually record with: the configured
    /// [`TestConfig::trace_mode`], or [`TraceMode::DecisionsOnly`] when
    /// [`TestConfig::auto_decisions_only`] applies.
    pub fn effective_trace_mode(&self) -> TraceMode {
        if self.auto_decisions_only() {
            TraceMode::DecisionsOnly
        } else {
            self.trace_mode
        }
    }

    /// Re-records a found bug's annotated schedule via strict replay when
    /// the run recorded under the auto-selected `DecisionsOnly` mode. The
    /// replay is deterministic, so the rehydrated trace is identical at any
    /// worker count; on the (impossible in practice) chance the replay does
    /// not reproduce the bug, the decisions-only trace is kept as recorded.
    fn rehydrate_report<F>(&self, report: &mut BugReport, setup: &F)
    where
        F: Fn(&mut Runtime),
    {
        if !self.auto_decisions_only() {
            return;
        }
        let mut config = self.runtime_config();
        config.trace_mode = TraceMode::Full;
        let scheduler = Box::new(ReplayScheduler::from_trace(&report.trace));
        let mut runtime = Runtime::new(scheduler, config, report.trace.seed);
        setup(&mut runtime);
        let outcome = runtime.run();
        let reproduced =
            matches!(&outcome, ExecutionOutcome::BugFound(found) if same_bug(found, &report.bug));
        if reproduced && runtime.replay_error().is_none() {
            report.trace = runtime.take_trace();
        }
    }

    /// Runs the configured shrink pass over a found bug and attaches the
    /// result to the report. No-op when shrinking is disabled.
    fn attach_shrink<F>(&self, report: &mut BugReport, setup: &F)
    where
        F: Fn(&mut Runtime),
    {
        if self.shrink {
            report.shrink = Some(shrink_trace(
                &self.shrink_config(),
                &report.bug,
                &report.trace,
                setup,
            ));
        }
    }

    /// The index of the portfolio entry that drives `iteration`, or `None`
    /// when no portfolio is configured.
    ///
    /// The pick is derived from the base seed through its own stream, so the
    /// strategy mix over the iteration space is stable for a given seed,
    /// unbiased across the portfolio, and — because it depends only on the
    /// iteration index — identical at any worker count.
    pub fn portfolio_index_for_iteration(&self, iteration: u64) -> Option<usize> {
        match &self.portfolio {
            Some(portfolio) if !portfolio.is_empty() => {
                let hash = mix64(
                    mix64(self.seed ^ STRATEGY_STREAM)
                        .wrapping_add(iteration.wrapping_add(1).wrapping_mul(GOLDEN_GAMMA)),
                );
                Some((hash % portfolio.len() as u64) as usize)
            }
            _ => None,
        }
    }

    /// The scheduling strategy that drives `iteration`: the seed-derived
    /// portfolio pick when a portfolio is configured, the base scheduler
    /// otherwise.
    pub fn strategy_for_iteration(&self, iteration: u64) -> SchedulerKind {
        match self.portfolio_index_for_iteration(iteration) {
            Some(index) => self.portfolio.as_ref().expect("index implies portfolio")[index],
            None => self.scheduler,
        }
    }

    fn runtime_config(&self) -> RuntimeConfig {
        RuntimeConfig {
            max_steps: self.max_steps,
            check_liveness_at_quiescence: self.check_liveness_at_quiescence,
            catch_panics: self.catch_panics,
            trace_mode: self.effective_trace_mode(),
            faults: self.faults,
        }
    }

    /// The seed that drives iteration `iteration` of a run with this
    /// configuration.
    ///
    /// The base seed and the iteration index are combined through the full
    /// SplitMix64 finalizer twice (once over the base seed, once over the
    /// sum): a single XOR-with-multiply left the iteration-seed streams of
    /// nearby base seeds heavily overlapping, so two "independent" runs
    /// explored mostly the same executions.
    pub fn seed_for_iteration(&self, iteration: u64) -> u64 {
        Self::derive_seed(mix64(self.seed), iteration)
    }

    /// Batch seed derivation for a contiguous chunk of the iteration space,
    /// used by the work-stealing engine after each chunk pop: `out` is
    /// cleared and filled with the seeds of `range`, mixing the base seed
    /// once for the whole chunk instead of once per iteration.
    pub fn seeds_for_chunk(&self, range: Range<u64>, out: &mut Vec<u64>) {
        out.clear();
        let base = mix64(self.seed);
        out.extend(range.map(|iteration| Self::derive_seed(base, iteration)));
    }

    fn derive_seed(mixed_base: u64, iteration: u64) -> u64 {
        mix64(mixed_base.wrapping_add(iteration.wrapping_add(1).wrapping_mul(GOLDEN_GAMMA)))
    }

    /// Runs one iteration of this configuration's exploration space: builds
    /// the iteration's scheduler ([`TestConfig::strategy_for_iteration`]) and
    /// seed ([`TestConfig::seed_for_iteration`]), executes the harness built
    /// by `setup` once, and classifies the result.
    ///
    /// This is the single execution path shared by [`TestEngine`] and
    /// [`ParallelTestEngine`]; `cancel` is the parallel engine's step-level
    /// cancellation handle.
    pub fn run_iteration<F>(
        &self,
        iteration: u64,
        cancel: Option<CancelToken>,
        setup: &F,
    ) -> IterationOutcome
    where
        F: Fn(&mut Runtime),
    {
        self.run_iteration_seeded(
            iteration,
            self.seed_for_iteration(iteration),
            cancel,
            setup,
            &mut IterationPool::new(),
        )
    }

    /// [`TestConfig::run_iteration`] with the seed precomputed by
    /// [`TestConfig::seeds_for_chunk`] (must equal
    /// `seed_for_iteration(iteration)`) and a worker-local
    /// [`IterationPool`]: engines thread the previous iteration's whole
    /// `Runtime` back in through the pool, so steady-state iterations
    /// [`Runtime::reset`] the pooled instance — machines, mailboxes, name
    /// table, trace and the enabled/fault buffers all keep their grown
    /// storage — instead of constructing a fresh runtime per execution.
    ///
    /// Under [`TestConfig::prefix_sharing`] the pool additionally caches a
    /// snapshot of the post-setup state: the first iteration runs `setup`
    /// and captures it, every later iteration [`Runtime::restore_from`]s the
    /// snapshot (then installs its own scheduler and seed) instead of
    /// re-running setup. Restoring a depth-0 snapshot is observationally
    /// identical to `reset` + `setup` — setup is deterministic and takes no
    /// scheduler decisions — so results stay byte-identical, at any worker
    /// count. When the harness state is not snapshotable the pool remembers
    /// the failure and every iteration takes the straight-line path.
    fn run_iteration_seeded<F>(
        &self,
        iteration: u64,
        seed: u64,
        cancel: Option<CancelToken>,
        setup: &F,
        pool: &mut IterationPool,
    ) -> IterationOutcome
    where
        F: Fn(&mut Runtime),
    {
        debug_assert_eq!(seed, self.seed_for_iteration(iteration));
        let portfolio_entry = self.portfolio_index_for_iteration(iteration);
        let strategy = match portfolio_entry {
            Some(entry) => self.portfolio.as_ref().expect("entry implies portfolio")[entry],
            None => self.scheduler,
        };
        let scheduler = strategy.build(seed, self.max_steps);
        let share = self.prefix_sharing && !pool.snapshot_failed;
        let (mut runtime, needs_setup) = match (share, &pool.snapshot, pool.runtime.take()) {
            (true, Some(snapshot), Some(mut pooled)) => {
                pooled.restore_from(snapshot);
                pooled.set_scheduler(scheduler);
                pooled.reseed(seed);
                (pooled, false)
            }
            (_, _, Some(mut pooled)) => {
                pooled.reset(scheduler, self.runtime_config(), seed);
                (pooled, true)
            }
            (_, _, None) => (Runtime::new(scheduler, self.runtime_config(), seed), true),
        };
        if let Some(token) = cancel {
            runtime.set_cancel_token(token);
        }
        if needs_setup {
            setup(&mut runtime);
            if share {
                match runtime.snapshot() {
                    Some(snapshot) => pool.snapshot = Some(snapshot),
                    None => pool.snapshot_failed = true,
                }
            }
        }
        let status = match runtime.run() {
            ExecutionOutcome::BugFound(bug) => IterationStatus::BugFound {
                bug,
                ndc: runtime.trace().decision_count(),
                trace: Box::new(runtime.take_trace()),
            },
            ExecutionOutcome::Cancelled => IterationStatus::Cancelled,
            ExecutionOutcome::Quiescent | ExecutionOutcome::MaxStepsReached => {
                IterationStatus::Completed
            }
        };
        let steps = runtime.steps() as u64;
        let pruned = runtime.pruned_equivalents();
        let races = runtime.races_detected();
        let backtracks = runtime.backtracks_scheduled();
        // Hand the runtime back for the next iteration. (After a bug the
        // recorded trace went into the outcome and the runtime carries an
        // empty replacement — pooling it is still correct, just cheaper.)
        pool.runtime = Some(runtime);
        IterationOutcome {
            iteration,
            seed,
            strategy,
            portfolio_entry,
            steps,
            pruned,
            races,
            backtracks,
            status,
        }
    }
}

/// Worker-local execution state threaded through consecutive iterations:
/// the pooled [`Runtime`] ([`Runtime::reset`] keeps its grown storage) and,
/// under [`TestConfig::prefix_sharing`], the cached post-setup
/// [`RuntimeSnapshot`] iterations fork from (or the memo that snapshotting
/// failed, so the fallback is decided once, not per iteration).
struct IterationPool {
    runtime: Option<Runtime>,
    snapshot: Option<RuntimeSnapshot>,
    snapshot_failed: bool,
}

impl IterationPool {
    fn new() -> Self {
        IterationPool {
            runtime: None,
            snapshot: None,
            snapshot_failed: false,
        }
    }
}

/// How one iteration of the exploration space ended.
#[derive(Debug)]
pub enum IterationStatus {
    /// The execution ran to quiescence or its step bound without a violation.
    Completed,
    /// The parallel engine cancelled the execution mid-flight (a lower
    /// iteration already holds a bug); its partial step count still tallies.
    Cancelled,
    /// The execution violated a property. The trace is boxed so the common
    /// `Completed` outcome stays a few machine words.
    BugFound {
        /// The violation.
        bug: Bug,
        /// Number of nondeterministic choices in the buggy execution.
        ndc: usize,
        /// The replayable trace of the buggy execution.
        trace: Box<Trace>,
    },
}

/// The classified result of [`TestConfig::run_iteration`]: which iteration
/// ran, with which seed and strategy, how many steps it took and how it
/// ended.
#[derive(Debug)]
pub struct IterationOutcome {
    /// The iteration index.
    pub iteration: u64,
    /// The seed that drove the execution
    /// ([`TestConfig::seed_for_iteration`]).
    pub seed: u64,
    /// The strategy that drove the execution
    /// ([`TestConfig::strategy_for_iteration`]).
    pub strategy: SchedulerKind,
    /// The portfolio index the strategy came from
    /// ([`TestConfig::portfolio_index_for_iteration`]), `None` without a
    /// portfolio — carried so attribution never re-derives the selection
    /// hash.
    pub portfolio_entry: Option<usize>,
    /// Machine steps the execution performed (partial for cancelled ones).
    pub steps: u64,
    /// Schedule-equivalents the iteration's scheduler pruned
    /// ([`Scheduler::pruned_equivalents`](crate::scheduler::Scheduler::pruned_equivalents));
    /// zero for non-reducing strategies.
    pub pruned: u64,
    /// Racing step pairs the iteration's scheduler detected
    /// ([`Scheduler::races_detected`](crate::scheduler::Scheduler::races_detected));
    /// zero for strategies without vector-clock tracking.
    pub races: u64,
    /// Scheduling points the iteration's scheduler resolved from a DPOR
    /// backtrack
    /// ([`Scheduler::backtracks_scheduled`](crate::scheduler::Scheduler::backtracks_scheduled)).
    pub backtracks: u64,
    /// How the execution ended.
    pub status: IterationStatus,
}

/// The first property violation found by a testing run, together with
/// everything needed to reproduce it.
#[derive(Debug, Clone)]
pub struct BugReport {
    /// The violation.
    pub bug: Bug,
    /// The (0-based) iteration at which it was found.
    pub iteration: u64,
    /// Number of nondeterministic choices made in the buggy execution
    /// (the paper's `#NDC`).
    pub ndc: usize,
    /// The replayable trace of the buggy execution, as originally recorded
    /// (see [`BugReport::original`]).
    pub trace: Trace,
    /// Time elapsed from the start of the run until the bug was found.
    pub time_to_bug: Duration,
    /// The schedule-shrinking result, when the run was configured with
    /// [`TestConfig::with_shrink`]: reduction statistics plus the minimized,
    /// replay-verified counterexample.
    pub shrink: Option<ShrinkReport>,
}

impl BugReport {
    /// The originally recorded trace of the buggy execution.
    pub fn original(&self) -> &Trace {
        &self.trace
    }

    /// The minimized counterexample, when a shrink pass ran.
    pub fn minimized(&self) -> Option<&Trace> {
        self.shrink.as_ref().map(|s| &s.minimized)
    }

    /// The best trace to hand a human: the minimized counterexample when
    /// shrinking ran, the original recording otherwise.
    pub fn best_trace(&self) -> &Trace {
        self.minimized().unwrap_or(&self.trace)
    }
}

/// Outcome of a systematic testing run.
#[derive(Debug, Clone)]
pub struct TestReport {
    /// The first violation found, if any.
    pub bug: Option<BugReport>,
    /// Number of executions explored to completion (including the buggy
    /// one); executions cancelled mid-flight by the parallel engine are not
    /// counted.
    pub iterations_run: u64,
    /// Total machine steps executed, including the partial work of
    /// executions the parallel engine cancelled mid-flight.
    pub total_steps: u64,
    /// Wall-clock time of the whole run.
    pub elapsed: Duration,
    /// Label of the scheduler that drove the run. For a portfolio run this is
    /// the strategy that found the bug, or `"portfolio"` when no bug was
    /// found.
    pub scheduler: &'static str,
    /// Number of worker threads that explored the iteration space.
    pub workers: usize,
    /// Exploration statistics per scheduling strategy (a single row for a
    /// serial run, one row per distinct portfolio strategy otherwise).
    pub per_strategy: Vec<StrategyStats>,
}

impl TestReport {
    /// Returns `true` when a property violation was found.
    pub fn found_bug(&self) -> bool {
        self.bug.is_some()
    }

    /// Executions explored per second of wall-clock time.
    pub fn executions_per_second(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs == 0.0 {
            0.0
        } else {
            self.iterations_run as f64 / secs
        }
    }

    /// Renders the per-strategy attribution as an aligned table, one line per
    /// strategy.
    pub fn strategy_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&StrategyStats::table_header());
        out.push('\n');
        for row in &self.per_strategy {
            out.push_str(&row.to_string());
            out.push('\n');
        }
        out
    }

    /// Renders a short human-readable summary.
    pub fn summary(&self) -> String {
        match &self.bug {
            Some(report) => format!(
                "BUG FOUND ({}) after {} executions in {:.2}s with {} nondeterministic choices: {}",
                self.scheduler,
                report.iteration + 1,
                report.time_to_bug.as_secs_f64(),
                report.ndc,
                report.bug
            ),
            None => format!(
                "no bug found ({}) in {} executions ({:.2}s, {:.0} exec/s)",
                self.scheduler,
                self.iterations_run,
                self.elapsed.as_secs_f64(),
                self.executions_per_second()
            ),
        }
    }
}

/// Systematically tests a harness by exploring many executions.
///
/// # Examples
///
/// ```
/// use psharp::prelude::*;
///
/// #[derive(Debug)]
/// struct Go;
///
/// struct Flaky;
/// impl Machine for Flaky {
///     fn on_start(&mut self, ctx: &mut Context<'_>) {
///         // A bug that manifests only under one of the controlled choices.
///         let unlucky = ctx.random_bool();
///         ctx.assert(!unlucky, "the unlucky path was taken");
///     }
///     fn handle(&mut self, _ctx: &mut Context<'_>, _event: Event) {}
/// }
///
/// let engine = TestEngine::new(TestConfig::new().with_iterations(100));
/// let report = engine.run(|rt| {
///     rt.create_machine(Flaky);
/// });
/// assert!(report.found_bug());
/// ```
#[derive(Debug, Clone)]
pub struct TestEngine {
    config: TestConfig,
}

impl TestEngine {
    /// Creates an engine with the given configuration.
    pub fn new(config: TestConfig) -> Self {
        TestEngine { config }
    }

    /// The engine's configuration.
    pub fn config(&self) -> &TestConfig {
        &self.config
    }

    /// Runs up to `iterations` executions of the harness built by `setup`,
    /// stopping at the first property violation.
    ///
    /// The `setup` closure is invoked once per execution with a fresh
    /// [`Runtime`]; it must create the machines and monitors of the test and
    /// may send initial events.
    pub fn run<F>(&self, setup: F) -> TestReport
    where
        F: Fn(&mut Runtime),
    {
        let start = Instant::now();
        let config = &self.config;
        let mut tally = StrategyTally::new(config);
        let mut total_steps: u64 = 0;
        // The runtime (and, under prefix sharing, the post-setup snapshot)
        // pooled from one iteration to the next ([`Runtime::reset`] /
        // [`Runtime::restore_from`]): machines, mailboxes, name table and
        // trace keep their grown storage across the whole run.
        let mut pool = IterationPool::new();
        for iteration in 0..config.iterations {
            let outcome = config.run_iteration_seeded(
                iteration,
                config.seed_for_iteration(iteration),
                None,
                &setup,
                &mut pool,
            );
            total_steps += outcome.steps;
            let row = tally.row_mut(outcome.portfolio_entry);
            row.total_steps += outcome.steps;
            row.pruned_schedules += outcome.pruned;
            row.races_detected += outcome.races;
            row.backtracks_scheduled += outcome.backtracks;
            row.iterations_run += 1;
            if let IterationStatus::BugFound { bug, ndc, trace } = outcome.status {
                row.bugs_found += 1;
                let elapsed = start.elapsed();
                let mut report = BugReport {
                    bug,
                    iteration,
                    ndc,
                    trace: *trace,
                    time_to_bug: elapsed,
                    shrink: None,
                };
                config.rehydrate_report(&mut report, &setup);
                config.attach_shrink(&mut report, &setup);
                return TestReport {
                    bug: Some(report),
                    iterations_run: iteration + 1,
                    total_steps,
                    elapsed,
                    scheduler: outcome.strategy.label(),
                    workers: 1,
                    per_strategy: tally.rows,
                };
            }
        }
        TestReport {
            bug: None,
            iterations_run: config.iterations,
            total_steps,
            elapsed: start.elapsed(),
            scheduler: no_bug_label(config),
            workers: 1,
            per_strategy: tally.rows,
        }
    }

    /// Replays a previously recorded trace against the harness built by
    /// `setup` and returns the violation it reproduces, if any.
    ///
    /// Returns `None` when the replayed execution finds no bug (for example
    /// because the system has been fixed since the trace was recorded).
    pub fn replay<F>(&self, trace: &Trace, setup: F) -> Option<Bug>
    where
        F: Fn(&mut Runtime),
    {
        let scheduler = Box::new(ReplayScheduler::from_trace(trace));
        let mut runtime = Runtime::new(scheduler, self.config.runtime_config(), trace.seed);
        setup(&mut runtime);
        match runtime.run() {
            ExecutionOutcome::BugFound(bug) => Some(bug),
            _ => None,
        }
    }
}

/// Per-strategy attribution rows in *canonical order* — one row per distinct
/// portfolio strategy in portfolio order ([`SchedulerKind::describe`] keys
/// the rows, so differently-parameterized PCT entries stay separate), or a
/// single row for the base scheduler. Both engines and every worker build
/// the same skeleton, so rows merge index-wise and
/// [`TestReport::per_strategy`] comes out identical at any worker count.
struct StrategyTally {
    rows: Vec<StrategyStats>,
    /// Portfolio index -> row index (entries with equal descriptions share a
    /// row).
    row_of_entry: Vec<usize>,
}

impl StrategyTally {
    fn new(config: &TestConfig) -> Self {
        let mut rows: Vec<StrategyStats> = Vec::new();
        let mut row_of_entry = Vec::new();
        match &config.portfolio {
            Some(portfolio) if !portfolio.is_empty() => {
                for kind in portfolio {
                    let description = kind.describe();
                    let row = match rows.iter().position(|r| r.scheduler == description) {
                        Some(existing) => existing,
                        None => {
                            rows.push(StrategyStats::new(description));
                            rows.len() - 1
                        }
                    };
                    row_of_entry.push(row);
                }
            }
            _ => rows.push(StrategyStats::new(config.scheduler.describe())),
        }
        StrategyTally { rows, row_of_entry }
    }

    /// The attribution row of the portfolio entry an iteration ran
    /// ([`IterationOutcome::portfolio_entry`]).
    fn row_mut(&mut self, portfolio_entry: Option<usize>) -> &mut StrategyStats {
        let row = match portfolio_entry {
            Some(entry) => self.row_of_entry[entry],
            None => 0,
        };
        &mut self.rows[row]
    }

    /// Folds another tally with the identical skeleton into this one.
    fn merge(&mut self, other: StrategyTally) {
        debug_assert_eq!(self.rows.len(), other.rows.len());
        for (mine, theirs) in self.rows.iter_mut().zip(&other.rows) {
            mine.absorb(theirs);
        }
    }
}

/// The report label of a run that found no bug: the portfolio as a whole, or
/// the single configured strategy.
fn no_bug_label(config: &TestConfig) -> &'static str {
    if config.portfolio.is_some() {
        "portfolio"
    } else {
        config.scheduler.label()
    }
}

/// The lowest-iteration bug found so far, with the strategy that found it.
struct FirstBug {
    report: BugReport,
    scheduler: &'static str,
}

/// Adaptive chunk sizing for the work-stealing iteration queue: claim big
/// chunks while plenty of work remains (amortizing the shared-counter
/// traffic), shrink toward single iterations near the end so the tail
/// balances across workers instead of sitting in one worker's last chunk.
///
/// The divisor keeps ~8 future claims per worker outstanding — with pooled
/// runtimes a chunk claim costs one atomic RMW plus a batched seed
/// derivation, so smaller chunks (better tail balance, tighter reaction to a
/// published bug bound) are cheap — and the cap bounds how much work the
/// last pre-tail claim can hoard.
fn chunk_size(remaining: u64, workers: u64) -> u64 {
    (remaining / (workers * 8)).clamp(1, 32)
}

/// Parallel portfolio testing engine with a work-stealing iteration queue.
///
/// Workers claim adaptively sized chunks of the iteration space of a
/// [`TestConfig`] from a shared atomic counter: a fast worker that drains a
/// cheap stretch of the space simply claims the next chunk, so skewed
/// harnesses (where some seeds run 100× longer than others) no longer starve
/// `W - 1` workers the way fixed striping did. Every iteration keeps the seed
/// [`TestConfig::seed_for_iteration`] assigns it — a single-worker parallel
/// run explores the identical sequence of executions as the serial
/// [`TestEngine`], and an `N`-worker run explores the identical *set* of
/// (iteration, seed) pairs, just faster.
///
/// Each worker pools one [`Runtime`] across its iterations
/// ([`Runtime::reset`]) and tallies statistics into worker-local
/// [`StrategyStats`] rows merged once at the end, so the per-iteration hot
/// path touches exactly two shared atomics (the work counter, amortized over
/// a chunk, and the bug bound) and allocates nothing in the steady state.
/// Because results are worker-count-independent by construction, the engine
/// also caps the spawned OS threads at the host's available parallelism —
/// requesting more workers than cores changes nothing about the report and
/// no longer pays for time-sliced thread churn.
///
/// With [`TestConfig::with_portfolio`] the run additionally mixes scheduling
/// strategies (portfolio testing): random, PCT with several priority-change
/// budgets, delay-bounding, a probabilistic random walk and round-robin
/// attack the same harness from different angles, and the per-strategy
/// attribution in [`TestReport::per_strategy`] shows which strategy earned
/// the bug. Which strategy drives an iteration is decided by the *iteration
/// index* ([`TestConfig::strategy_for_iteration`]), never by which worker
/// stole the chunk, so the strategy mix — and therefore every execution — is
/// identical at any worker count.
///
/// # Deterministic first-bug selection
///
/// The reported bug is the one at the **lowest iteration index**, not the one
/// whose worker happened to finish first: a found bug publishes its iteration
/// as a shared bound, iterations above the bound are skipped or cancelled
/// *step-by-step* (the runtime polls a [`CancelToken`] inside its step loop,
/// so a doomed execution stops within one machine step instead of running to
/// its `max_steps` bound), and iterations below it always run to completion.
/// The winning (iteration, seed, strategy, trace) tuple is therefore the same
/// at any worker count — identical to what the serial engine reports — in
/// portfolio mode exactly as in single-strategy mode.
///
/// One caveat: determinism covers the *winning (iteration, seed, strategy,
/// trace) tuple only*. In runs that find a bug, aggregate counters
/// ([`TestReport::iterations_run`], [`TestReport::total_steps`],
/// [`BugReport::time_to_bug`]) still depend on how far other workers got
/// before cancellation. Bug-free runs exhaust every iteration, so their
/// counters — including the per-strategy attribution rows — are
/// deterministic too.
///
/// # Examples
///
/// ```
/// use psharp::prelude::*;
///
/// struct Flaky;
/// impl Machine for Flaky {
///     fn on_start(&mut self, ctx: &mut Context<'_>) {
///         let unlucky = ctx.random_bool();
///         ctx.assert(!unlucky, "the unlucky path was taken");
///     }
///     fn handle(&mut self, _ctx: &mut Context<'_>, _event: Event) {}
/// }
///
/// let config = TestConfig::new()
///     .with_iterations(100)
///     .with_workers(4)
///     .with_default_portfolio();
/// let report = ParallelTestEngine::new(config).run(|rt| {
///     rt.create_machine(Flaky);
/// });
/// assert!(report.found_bug());
/// ```
#[derive(Debug, Clone)]
pub struct ParallelTestEngine {
    config: TestConfig,
}

impl ParallelTestEngine {
    /// Creates a parallel engine with the given configuration.
    pub fn new(config: TestConfig) -> Self {
        ParallelTestEngine { config }
    }

    /// An engine that uses every available core and the default portfolio.
    pub fn portfolio(config: TestConfig) -> Self {
        let workers = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        ParallelTestEngine::new(config.with_workers(workers).with_default_portfolio())
    }

    /// The engine's configuration.
    pub fn config(&self) -> &TestConfig {
        &self.config
    }

    /// Runs up to `iterations` executions of the harness built by `setup`
    /// across the configured workers, stopping all workers at the first
    /// property violation.
    ///
    /// Unlike [`TestEngine::run`], `setup` must be `Send + Sync`: each worker
    /// invokes it (one invocation per execution) from its own thread. Each
    /// individual execution still runs serialized on exactly one thread —
    /// machines never observe intra-execution parallelism.
    pub fn run<F>(&self, setup: F) -> TestReport
    where
        F: Fn(&mut Runtime) + Send + Sync,
    {
        let workers = self.config.workers.max(1);
        // Results are worker-count-independent by construction, so the
        // engine is free to run `workers` logical workers on fewer OS
        // threads: spawning more threads than the host has cores only adds
        // time-slicing churn (the PR 5 dashboard measured an 8-worker run
        // *below* serial on a small host for exactly this reason). The
        // report still says `workers`.
        let threads = workers.min(
            std::thread::available_parallelism()
                .map(|cores| cores.get())
                .unwrap_or(workers),
        );
        let start = Instant::now();
        // Work-stealing queue: the next unclaimed iteration index.
        let next = AtomicU64::new(0);
        // Lowest iteration index known to contain a bug. Doubles as the
        // step-level cancellation bound polled inside every runtime's step
        // loop via a [`CancelToken`].
        let bug_bound = Arc::new(AtomicU64::new(u64::MAX));
        let first_bug: Mutex<Option<FirstBug>> = Mutex::new(None);
        let config = &self.config;
        let total = config.iterations;

        let tallies: Vec<StrategyTally> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|_| {
                    let setup = &setup;
                    let next = &next;
                    let first_bug = &first_bug;
                    let bug_bound = Arc::clone(&bug_bound);
                    scope.spawn(move || {
                        let mut tally = StrategyTally::new(config);
                        // Reused per-chunk seed buffer (batch derivation).
                        let mut seeds: Vec<u64> = Vec::new();
                        // The runtime (and post-setup snapshot, under prefix
                        // sharing) pooled across this worker's iterations.
                        let mut pool = IterationPool::new();
                        loop {
                            // Work remains only below the bug bound: once a
                            // bug at iteration `k` is published, iterations
                            // `>= k` can no longer win.
                            let bound = bug_bound.load(Ordering::Relaxed).min(total);
                            let claimed = next.load(Ordering::Relaxed);
                            if claimed >= bound {
                                break;
                            }
                            let chunk = chunk_size(bound - claimed, threads as u64);
                            let chunk_start = next.fetch_add(chunk, Ordering::Relaxed);
                            if chunk_start >= total {
                                break;
                            }
                            let chunk_end = (chunk_start + chunk).min(total);
                            config.seeds_for_chunk(chunk_start..chunk_end, &mut seeds);
                            for (offset, iteration) in (chunk_start..chunk_end).enumerate() {
                                if iteration >= bug_bound.load(Ordering::Relaxed) {
                                    // Doomed: a lower iteration already has a
                                    // bug. Skip without executing.
                                    continue;
                                }
                                let outcome = config.run_iteration_seeded(
                                    iteration,
                                    seeds[offset],
                                    Some(CancelToken::new(Arc::clone(&bug_bound), iteration)),
                                    setup,
                                    &mut pool,
                                );
                                let row = tally.row_mut(outcome.portfolio_entry);
                                row.total_steps += outcome.steps;
                                row.pruned_schedules += outcome.pruned;
                                row.races_detected += outcome.races;
                                row.backtracks_scheduled += outcome.backtracks;
                                match outcome.status {
                                    IterationStatus::Cancelled => {
                                        // Keep the partial work in the step
                                        // total, but the iteration did not
                                        // complete.
                                    }
                                    IterationStatus::BugFound { bug, ndc, trace } => {
                                        row.iterations_run += 1;
                                        row.bugs_found += 1;
                                        // Publish the bound first so other
                                        // workers stop wasting steps on
                                        // higher iterations immediately. The
                                        // previous bound decides whether the
                                        // mutex is worth touching at all: a
                                        // bound already at (or below) this
                                        // iteration means a lower iteration
                                        // owns — or will own — the slot, so
                                        // the candidate is dropped without
                                        // ever taking the lock.
                                        let previous =
                                            bug_bound.fetch_min(iteration, Ordering::Relaxed);
                                        if previous > iteration {
                                            let mut slot =
                                                first_bug.lock().expect("bug slot lock poisoned");
                                            // Re-checked under the lock: two
                                            // workers can both improve the
                                            // bound before either installs.
                                            let lower = slot
                                                .as_ref()
                                                .is_none_or(|f| iteration < f.report.iteration);
                                            if lower {
                                                *slot = Some(FirstBug {
                                                    report: BugReport {
                                                        bug,
                                                        iteration,
                                                        ndc,
                                                        trace: *trace,
                                                        time_to_bug: start.elapsed(),
                                                        shrink: None,
                                                    },
                                                    scheduler: outcome.strategy.label(),
                                                });
                                            }
                                        }
                                    }
                                    IterationStatus::Completed => {
                                        row.iterations_run += 1;
                                    }
                                }
                            }
                        }
                        tally
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|handle| handle.join().expect("worker thread panicked"))
                .collect()
        });

        let mut merged = StrategyTally::new(config);
        for tally in tallies {
            merged.merge(tally);
        }
        let iterations_run = merged.rows.iter().map(|row| row.iterations_run).sum();
        let total_steps = merged.rows.iter().map(|row| row.total_steps).sum();

        let winner = first_bug.into_inner().expect("bug slot lock poisoned");
        let scheduler = match &winner {
            Some(first) => first.scheduler,
            None => no_bug_label(config),
        };
        // Rehydration and shrinking run serially over the deterministic
        // winner, so the reported trace and minimized counterexample are
        // identical at any worker count.
        let winner = winner.map(|mut first| {
            config.rehydrate_report(&mut first.report, &setup);
            config.attach_shrink(&mut first.report, &setup);
            first
        });
        TestReport {
            bug: winner.map(|first| first.report),
            iterations_run,
            total_steps,
            elapsed: start.elapsed(),
            scheduler,
            workers,
            per_strategy: merged.rows,
        }
    }
}

/// One node awaiting expansion in the [`PrefixForkEngine`]'s prefix tree:
/// the snapshot at the node, the path of forced decisions that reached it
/// (the node's canonical identity, independent of which worker expands it),
/// the sleep set inherited on the path (machines whose next step is already
/// covered by an equivalent sibling ordering, each with the footprint
/// observed when it executed), and the remaining expansion depth.
struct PrefixNode {
    snapshot: Arc<RuntimeSnapshot>,
    path: Vec<u64>,
    sleep: Vec<(MachineId, StepFootprint)>,
    depth: usize,
}

/// The shared work queue of the parallel tree expansion: pending nodes plus
/// the number of nodes currently being expanded by some worker. Expansion
/// terminates when both hit zero — a worker holding a node may still push
/// children, so an empty `nodes` list alone does not mean the tree is done.
struct ExpandQueue {
    nodes: Vec<PrefixNode>,
    in_flight: usize,
}

/// A bug hit by a *forced prefix step* during tree expansion. Candidates
/// race across workers; the lexicographically smallest path wins, so the
/// reported bug is worker-count-independent.
struct PrefixBug {
    path: Vec<u64>,
    bug: Bug,
    ndc: usize,
    trace: Trace,
}

/// One expansion worker's private results, merged after the phase barrier.
struct ExpandOut {
    leaves: Vec<(Vec<u64>, Arc<RuntimeSnapshot>)>,
    tree_pruned: u64,
    steps: u64,
    bug: Option<PrefixBug>,
}

/// Parallel engine that organizes the iteration space as a **bounded-depth
/// prefix tree** over snapshots, instead of running every execution from
/// scratch.
///
/// The harness `setup` executes once; the resulting state is snapshotted as
/// the tree's root. The engine then expands the tree `depth` levels deep
/// across [`TestConfig::workers`] threads: pending nodes sit in a shared
/// work-stealing queue, and each worker forks a claimed node's
/// copy-on-write snapshot into its pooled runtime, executes one step of one
/// enabled machine per branch (a forced, recorded schedule decision) and
/// snapshots the result.
///
/// Which siblings become branches is decided **DPOR-style** from the step
/// footprints, not by blind enumeration of the enabled set. The first
/// eligible sibling always expands; a later sibling expands only when its
/// step is *dependent* with at least one already-expanded sibling's step
/// (a race — the two orderings genuinely commit to different partial
/// orders, so the sibling is a backtrack point worth its own subtree). A
/// sibling whose step commutes with every expanded sibling is pruned and
/// counted in [`StrategyStats::pruned_schedules`]: executions starting with
/// it reach, state for state, configurations some expanded sibling's
/// subtree also reaches (suffix executions drain every enabled machine's
/// pending work on the way to quiescence). **Sleep sets** additionally
/// carry the commutation argument down the tree: once the branch stepping
/// `a` has been expanded, a dependent sibling branch stepping `b` keeps `a`
/// in its child's sleep set whenever `a`'s step is
/// [independent](StepFootprint::independent) of `b`'s — the ordering `b·a`
/// reaches a state equivalent to the already-explored `a·b`.
///
/// The configured iterations are then distributed round-robin over the
/// leaves (claimed chunk-wise from a second work-stealing queue); each
/// iteration restores its leaf's snapshot, installs its own scheduler and
/// seed ([`TestConfig::strategy_for_iteration`] /
/// [`TestConfig::seed_for_iteration`]) and runs only the suffix.
///
/// Every recorded trace contains the forced prefix decisions, so bug traces
/// replay (and shrink) from scratch exactly like straight-line recordings.
/// The tree is a pure function of the [`TestConfig`] — node expansion
/// depends only on the node — and leaves are sorted by their decision-path
/// key at the phase barrier, so the leaf order, the iteration→leaf
/// assignment and the whole report of a bug-free run are byte-identical at
/// any worker count; runs that find a bug deterministically report the bug
/// at the lowest iteration index (prefix bugs: the smallest decision path),
/// exactly like [`ParallelTestEngine`]. When the harness state is not
/// snapshotable the engine transparently falls back to the straight-line
/// [`TestEngine`].
pub struct PrefixForkEngine {
    config: TestConfig,
    depth: usize,
}

impl PrefixForkEngine {
    /// Bound on the expansion depth: leaves multiply with the enabled-set
    /// branching factor per level, so deep trees explode; the depth is
    /// clamped to this.
    pub const MAX_DEPTH: usize = 6;

    /// Creates a prefix-fork engine expanding `depth` tree levels (clamped
    /// to [`PrefixForkEngine::MAX_DEPTH`]; `0` means pure root sharing — the
    /// setup runs once and every iteration forks from the same snapshot).
    pub fn new(config: TestConfig, depth: usize) -> Self {
        PrefixForkEngine {
            config,
            depth: depth.min(Self::MAX_DEPTH),
        }
    }

    /// The engine's configuration.
    pub fn config(&self) -> &TestConfig {
        &self.config
    }

    /// Runs up to `iterations` suffix executions distributed over the
    /// prefix tree's leaves, stopping at the first property violation.
    ///
    /// Like [`ParallelTestEngine::run`], `setup` must be `Send + Sync`: the
    /// tree is expanded and its leaves are suffixed by worker threads. Each
    /// individual execution still runs serialized on exactly one thread.
    pub fn run<F>(&self, setup: F) -> TestReport
    where
        F: Fn(&mut Runtime) + Send + Sync,
    {
        let start = Instant::now();
        let config = &self.config;
        let workers = config.workers.max(1);
        // As in [`ParallelTestEngine`]: results are worker-count-independent
        // by construction, so logical workers beyond the host's cores would
        // only add time-slicing churn.
        let threads = workers.min(
            std::thread::available_parallelism()
                .map(|cores| cores.get())
                .unwrap_or(workers),
        );
        let mut runtime = Runtime::new(
            config.scheduler.build(config.seed, config.max_steps),
            config.runtime_config(),
            config.seed,
        );
        setup(&mut runtime);
        let Some(root) = runtime.snapshot() else {
            // Not snapshotable: identical semantics, straight-line execution.
            return TestEngine::new(config.clone()).run(setup);
        };
        drop(runtime);
        let root = Arc::new(root);

        // Phase 1: expand the tree across workers. The queue hands out
        // pending nodes; a worker forks each claimed node's copy-on-write
        // snapshot into its own pooled runtime, so expansion parallelizes
        // without any shared mutable machine state.
        let queue = Mutex::new(ExpandQueue {
            nodes: vec![PrefixNode {
                snapshot: Arc::clone(&root),
                path: Vec::new(),
                sleep: Vec::new(),
                depth: self.depth,
            }],
            in_flight: 0,
        });
        let idle = Condvar::new();
        let outs: Vec<ExpandOut> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|_| {
                    let queue = &queue;
                    let idle = &idle;
                    scope.spawn(move || {
                        let mut out = ExpandOut {
                            leaves: Vec::new(),
                            tree_pruned: 0,
                            steps: 0,
                            bug: None,
                        };
                        let mut pooled: Option<Runtime> = None;
                        loop {
                            let node = {
                                let mut q = queue.lock().expect("expansion queue poisoned");
                                loop {
                                    if let Some(node) = q.nodes.pop() {
                                        q.in_flight += 1;
                                        break node;
                                    }
                                    if q.in_flight == 0 {
                                        // Nothing pending and nobody who
                                        // could still push children.
                                        return out;
                                    }
                                    q = idle.wait(q).expect("expansion queue poisoned");
                                }
                            };
                            let runtime = pooled.get_or_insert_with(|| {
                                Runtime::new(
                                    config.scheduler.build(config.seed, config.max_steps),
                                    config.runtime_config(),
                                    config.seed,
                                )
                            });
                            let children = Self::expand_node(runtime, node, &mut out);
                            let mut q = queue.lock().expect("expansion queue poisoned");
                            q.nodes.extend(children);
                            q.in_flight -= 1;
                            drop(q);
                            // Wake everyone: pushed children mean work, and
                            // the last decrement with an empty queue means
                            // every waiter must exit.
                            idle.notify_all();
                        }
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|handle| handle.join().expect("expansion worker panicked"))
                .collect()
        });

        let mut leaves: Vec<(Vec<u64>, Arc<RuntimeSnapshot>)> = Vec::new();
        let mut tree_pruned: u64 = 0;
        let mut expansion_steps: u64 = 0;
        let mut prefix_bug: Option<PrefixBug> = None;
        for out in outs {
            leaves.extend(out.leaves);
            tree_pruned += out.tree_pruned;
            expansion_steps += out.steps;
            if let Some(candidate) = out.bug {
                if prefix_bug.as_ref().is_none_or(|b| candidate.path < b.path) {
                    prefix_bug = Some(candidate);
                }
            }
        }

        let mut tally = StrategyTally::new(config);
        if let Some(found) = prefix_bug {
            // A shared prefix itself violates a property: every iteration
            // assigned below the buggy branch would hit it, so report it as
            // iteration 0.
            let row = tally.row_mut(config.portfolio_index_for_iteration(0));
            row.iterations_run += 1;
            row.bugs_found += 1;
            tally.rows[0].pruned_schedules += tree_pruned;
            let mut report = BugReport {
                bug: found.bug,
                iteration: 0,
                ndc: found.ndc,
                trace: found.trace,
                time_to_bug: start.elapsed(),
                shrink: None,
            };
            config.rehydrate_report(&mut report, &setup);
            config.attach_shrink(&mut report, &setup);
            return TestReport {
                bug: Some(report),
                iterations_run: 1,
                total_steps: expansion_steps,
                elapsed: start.elapsed(),
                scheduler: config.strategy_for_iteration(0).label(),
                workers,
                per_strategy: tally.rows,
            };
        }
        // Canonical leaf order: the tree is a pure function of the config,
        // but discovery order depends on which worker expanded what.
        // Sorting by decision-path key makes the iteration→leaf assignment
        // identical at any worker count.
        leaves.sort_by(|a, b| a.0.cmp(&b.0));
        if leaves.is_empty() {
            // Degenerate: every branch vanished into a sleep set. Suffix the
            // root itself.
            leaves.push((Vec::new(), Arc::clone(&root)));
        }

        // Phase 2: distribute the iterations round-robin over the leaves,
        // claimed chunk-wise from a work-stealing counter exactly like
        // [`ParallelTestEngine::run`], with the same deterministic
        // lowest-iteration first-bug selection and step-level cancellation.
        let total = config.iterations;
        let next = AtomicU64::new(0);
        let bug_bound = Arc::new(AtomicU64::new(u64::MAX));
        let first_bug: Mutex<Option<FirstBug>> = Mutex::new(None);
        let leaves = &leaves;
        let tallies: Vec<StrategyTally> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|_| {
                    let next = &next;
                    let first_bug = &first_bug;
                    let bug_bound = Arc::clone(&bug_bound);
                    scope.spawn(move || {
                        let mut tally = StrategyTally::new(config);
                        let mut pooled: Option<Runtime> = None;
                        loop {
                            let bound = bug_bound.load(Ordering::Relaxed).min(total);
                            let claimed = next.load(Ordering::Relaxed);
                            if claimed >= bound {
                                break;
                            }
                            let chunk = chunk_size(bound - claimed, threads as u64);
                            let chunk_start = next.fetch_add(chunk, Ordering::Relaxed);
                            if chunk_start >= total {
                                break;
                            }
                            let chunk_end = (chunk_start + chunk).min(total);
                            for iteration in chunk_start..chunk_end {
                                if iteration >= bug_bound.load(Ordering::Relaxed) {
                                    continue;
                                }
                                let seed = config.seed_for_iteration(iteration);
                                let portfolio_entry =
                                    config.portfolio_index_for_iteration(iteration);
                                let strategy = config.strategy_for_iteration(iteration);
                                let leaf = &leaves[(iteration % leaves.len() as u64) as usize].1;
                                let runtime = pooled.get_or_insert_with(|| {
                                    Runtime::new(
                                        strategy.build(seed, config.max_steps),
                                        config.runtime_config(),
                                        seed,
                                    )
                                });
                                runtime.restore_from(leaf);
                                runtime.set_scheduler(strategy.build(seed, config.max_steps));
                                runtime.reseed(seed);
                                runtime.set_cancel_token(CancelToken::new(
                                    Arc::clone(&bug_bound),
                                    iteration,
                                ));
                                let prefix_steps = runtime.steps() as u64;
                                let outcome = runtime.run();
                                let suffix_steps = runtime.steps() as u64 - prefix_steps;
                                let row = tally.row_mut(portfolio_entry);
                                row.total_steps += suffix_steps;
                                row.pruned_schedules += runtime.pruned_equivalents();
                                row.races_detected += runtime.races_detected();
                                row.backtracks_scheduled += runtime.backtracks_scheduled();
                                match outcome {
                                    ExecutionOutcome::Cancelled => {}
                                    ExecutionOutcome::BugFound(bug) => {
                                        row.iterations_run += 1;
                                        row.bugs_found += 1;
                                        let ndc = runtime.trace().decision_count();
                                        let trace = runtime.take_trace();
                                        let previous =
                                            bug_bound.fetch_min(iteration, Ordering::Relaxed);
                                        if previous > iteration {
                                            let mut slot =
                                                first_bug.lock().expect("bug slot lock poisoned");
                                            let lower = slot
                                                .as_ref()
                                                .is_none_or(|f| iteration < f.report.iteration);
                                            if lower {
                                                *slot = Some(FirstBug {
                                                    report: BugReport {
                                                        bug,
                                                        iteration,
                                                        ndc,
                                                        trace,
                                                        time_to_bug: start.elapsed(),
                                                        shrink: None,
                                                    },
                                                    scheduler: strategy.label(),
                                                });
                                            }
                                        }
                                    }
                                    ExecutionOutcome::Quiescent
                                    | ExecutionOutcome::MaxStepsReached => {
                                        row.iterations_run += 1;
                                    }
                                }
                            }
                        }
                        tally
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|handle| handle.join().expect("suffix worker panicked"))
                .collect()
        });
        for worker_tally in tallies {
            tally.merge(worker_tally);
        }
        tally.rows[0].pruned_schedules += tree_pruned;
        let iterations_run = tally.rows.iter().map(|row| row.iterations_run).sum();
        let total_steps =
            expansion_steps + tally.rows.iter().map(|row| row.total_steps).sum::<u64>();

        let winner = first_bug.into_inner().expect("bug slot lock poisoned");
        let scheduler = match &winner {
            Some(first) => first.scheduler,
            None => no_bug_label(config),
        };
        let winner = winner.map(|mut first| {
            config.rehydrate_report(&mut first.report, &setup);
            config.attach_shrink(&mut first.report, &setup);
            first
        });
        TestReport {
            bug: winner.map(|first| first.report),
            iterations_run,
            total_steps,
            elapsed: start.elapsed(),
            scheduler,
            workers,
            per_strategy: tally.rows,
        }
    }

    /// Expands one node in a worker's pooled runtime: forces one step per
    /// eligible enabled machine, returns children for branches that commit
    /// to a genuinely different partial order, and turns the node into a
    /// leaf at depth 0 (or when a branch's state can no longer be captured).
    ///
    /// Sibling selection is DPOR-style. The first non-sleeping branch always
    /// expands; a later sibling expands only when its first step is
    /// *dependent* with at least one already-expanded sibling's step — a
    /// race, so the sibling is a backtrack point whose subtree reaches
    /// states no explored ordering covers. A sibling whose step commutes
    /// with every expanded sibling is pruned: executions starting with it
    /// reach, state for state, configurations some expanded sibling's
    /// subtree also reaches. Sleep sets carry the same commutation argument
    /// down the tree exactly as before.
    fn expand_node(
        runtime: &mut Runtime,
        node: PrefixNode,
        out: &mut ExpandOut,
    ) -> Vec<PrefixNode> {
        runtime.restore_from(&node.snapshot);
        let enabled: Vec<MachineId> = runtime.enabled_machines().to_vec();
        if node.depth == 0 || enabled.is_empty() {
            out.leaves.push((node.path, node.snapshot));
            return Vec::new();
        }
        let mut children = Vec::new();
        let mut explored: Vec<(MachineId, StepFootprint)> = Vec::new();
        for &machine in &enabled {
            if node.sleep.iter().any(|&(asleep, _)| asleep == machine) {
                // An equivalent sibling ordering already covers this
                // branch's entire subtree.
                out.tree_pruned += 1;
                continue;
            }
            runtime.restore_from(&node.snapshot);
            if !runtime.force_step(machine) {
                continue;
            }
            out.steps += 1;
            if let Some(bug) = runtime.bug().cloned() {
                // The forced prefix itself violates a property; the
                // smallest decision path across all workers wins.
                let mut path = node.path.clone();
                path.push(machine.raw());
                if out.bug.as_ref().is_none_or(|b| path < b.path) {
                    out.bug = Some(PrefixBug {
                        path,
                        bug,
                        ndc: runtime.trace().decision_count(),
                        trace: runtime.take_trace(),
                    });
                }
                continue;
            }
            let footprint = runtime.last_footprint().clone();
            let backtrack_worthy = explored.is_empty()
                || explored
                    .iter()
                    .any(|(_, other)| !other.independent(&footprint));
            if !backtrack_worthy {
                // Commutes with every expanded sibling: orderings starting
                // here are explored inside their subtrees.
                out.tree_pruned += 1;
                continue;
            }
            let Some(child) = runtime.snapshot() else {
                // The step enqueued a non-replicable event, so states below
                // this branch cannot be captured. Keep the node itself as a
                // leaf instead: its suffix executions still reach every
                // child ordering through their schedulers.
                out.leaves
                    .push((node.path.clone(), Arc::clone(&node.snapshot)));
                break;
            };
            // Sleep-set propagation: the child keeps every sleeping (or
            // earlier-explored) machine whose step commutes with this
            // branch's step; dependent ones wake.
            let sleep = node
                .sleep
                .iter()
                .chain(explored.iter())
                .filter(|(_, other)| other.independent(&footprint))
                .cloned()
                .collect();
            let mut path = node.path.clone();
            path.push(machine.raw());
            children.push(PrefixNode {
                snapshot: Arc::new(child),
                path,
                sleep,
                depth: node.depth - 1,
            });
            explored.push((machine, footprint));
        }
        children
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::BugKind;
    use crate::event::Event;
    use crate::machine::Machine;
    use crate::runtime::Context;

    /// Two writer machines race to update a shared flag machine. The flag
    /// starts `false` and asserts that it never observes a `SetFlag(false)`
    /// while already `false`, so the bug manifests only in the interleaving
    /// where the `false` writer is scheduled before the `true` writer —
    /// schedule exploration is required to find it.
    struct Flag {
        value: bool,
    }
    impl Machine for Flag {
        fn handle(&mut self, ctx: &mut Context<'_>, event: Event) {
            if let Some(set) = event.downcast_ref::<SetFlag>() {
                if !set.0 && !self.value {
                    ctx.assert(false, "cleared a flag that was never set");
                }
                self.value = set.0;
            }
        }
    }

    #[derive(Debug)]
    struct SetFlag(bool);

    struct Writer {
        flag: crate::machine::MachineId,
        value: bool,
    }
    impl Machine for Writer {
        fn on_start(&mut self, ctx: &mut Context<'_>) {
            ctx.send(self.flag, Event::new(SetFlag(self.value)));
        }
        fn handle(&mut self, _ctx: &mut Context<'_>, _event: Event) {}
    }

    fn racey_setup(rt: &mut Runtime) {
        let flag = rt.create_machine(Flag { value: false });
        rt.create_machine(Writer { flag, value: true });
        rt.create_machine(Writer { flag, value: false });
    }

    #[test]
    fn engine_finds_order_dependent_bug() {
        let engine = TestEngine::new(TestConfig::new().with_iterations(200).with_seed(1));
        let report = engine.run(racey_setup);
        assert!(report.found_bug());
        let bug = report.bug.as_ref().unwrap();
        assert_eq!(bug.bug.kind, BugKind::SafetyViolation);
        assert!(bug.ndc > 0);
        assert!(report.iterations_run <= 200);
    }

    #[test]
    fn engine_reports_no_bug_for_correct_system() {
        struct Quiet;
        impl Machine for Quiet {
            fn handle(&mut self, _ctx: &mut Context<'_>, _event: Event) {}
        }
        let engine = TestEngine::new(TestConfig::new().with_iterations(50));
        let report = engine.run(|rt| {
            rt.create_machine(Quiet);
        });
        assert!(!report.found_bug());
        assert_eq!(report.iterations_run, 50);
    }

    #[test]
    fn replay_reproduces_the_same_bug() {
        let engine = TestEngine::new(TestConfig::new().with_iterations(500).with_seed(3));
        let report = engine.run(racey_setup);
        let bug_report = report.bug.expect("bug should be found");
        let replayed = engine
            .replay(&bug_report.trace, racey_setup)
            .expect("replay should reproduce the bug");
        assert_eq!(replayed.kind, bug_report.bug.kind);
        assert_eq!(replayed.message, bug_report.bug.message);
    }

    #[test]
    fn pct_scheduler_also_finds_the_bug() {
        let engine = TestEngine::new(
            TestConfig::new()
                .with_iterations(500)
                .with_seed(5)
                .with_scheduler(SchedulerKind::Pct { change_points: 2 }),
        );
        let report = engine.run(racey_setup);
        assert!(report.found_bug());
        assert_eq!(report.scheduler, "pct");
    }

    #[test]
    fn iteration_seeds_are_distinct() {
        let config = TestConfig::new().with_seed(42);
        let a = config.seed_for_iteration(0);
        let b = config.seed_for_iteration(1);
        assert_ne!(a, b);
    }

    #[test]
    fn nearby_base_seeds_produce_disjoint_seed_streams() {
        // Regression test for the pre-finalizer derivation: base seeds
        // related by the golden-ratio gamma (or simply adjacent) produced
        // heavily overlapping iteration-seed streams, so "independent" runs
        // explored mostly the same executions. 10k-iteration streams of
        // closely related base seeds must not share a single seed.
        const N: u64 = 10_000;
        let base = 2016u64;
        let gamma = 0x9E37_79B9_7F4A_7C15u64;
        let related = [
            base.wrapping_add(1),
            base ^ 1,
            base.wrapping_add(gamma),
            base.wrapping_sub(gamma),
            base ^ gamma,
        ];
        let reference: std::collections::HashSet<u64> = {
            let config = TestConfig::new().with_seed(base);
            (0..N).map(|i| config.seed_for_iteration(i)).collect()
        };
        for other in related {
            let config = TestConfig::new().with_seed(other);
            let collisions = (0..N)
                .filter(|&i| reference.contains(&config.seed_for_iteration(i)))
                .count();
            assert_eq!(
                collisions, 0,
                "base seeds {base} and {other} share {collisions} iteration seeds"
            );
        }
    }

    #[test]
    fn chunk_seed_derivation_matches_per_iteration_derivation() {
        let config = TestConfig::new().with_seed(77);
        let mut seeds = Vec::new();
        config.seeds_for_chunk(13..57, &mut seeds);
        assert_eq!(seeds.len(), 44);
        for (offset, &seed) in seeds.iter().enumerate() {
            assert_eq!(seed, config.seed_for_iteration(13 + offset as u64));
        }
        // The buffer is reusable: a second fill replaces the first.
        config.seeds_for_chunk(0..3, &mut seeds);
        assert_eq!(seeds.len(), 3);
        assert_eq!(seeds[0], config.seed_for_iteration(0));
    }

    #[test]
    fn strategy_for_iteration_is_stable_and_covers_the_portfolio() {
        let config = TestConfig::new()
            .with_seed(5)
            .with_iterations(1_000)
            .with_default_portfolio();
        let portfolio = SchedulerKind::default_portfolio();
        let mut counts = vec![0u64; portfolio.len()];
        for iteration in 0..1_000 {
            let index = config
                .portfolio_index_for_iteration(iteration)
                .expect("portfolio configured");
            assert_eq!(portfolio[index], config.strategy_for_iteration(iteration));
            // Stable: asking again gives the same answer.
            assert_eq!(
                config.strategy_for_iteration(iteration),
                config.strategy_for_iteration(iteration)
            );
            counts[index] += 1;
        }
        // Unbiased: every strategy gets a substantial share of the space
        // (an exact split of 1000/7 would be ~143 each).
        for (index, &count) in counts.iter().enumerate() {
            assert!(
                count > 70,
                "strategy {index} drives only {count} of 1000 iterations"
            );
        }
        // Different base seeds produce a different mix.
        let other = TestConfig::new().with_seed(6).with_default_portfolio();
        assert!(
            (0..1_000).any(|i| {
                config.portfolio_index_for_iteration(i) != other.portfolio_index_for_iteration(i)
            }),
            "the strategy mix must depend on the base seed"
        );
    }

    #[test]
    fn without_portfolio_the_base_scheduler_drives_every_iteration() {
        let config = TestConfig::new().with_scheduler(SchedulerKind::RoundRobin);
        for iteration in 0..50 {
            assert_eq!(
                config.strategy_for_iteration(iteration),
                SchedulerKind::RoundRobin
            );
            assert_eq!(config.portfolio_index_for_iteration(iteration), None);
        }
    }

    #[test]
    fn serial_portfolio_run_attributes_iterations_per_strategy() {
        struct Quiet;
        impl Machine for Quiet {
            fn handle(&mut self, _ctx: &mut Context<'_>, _event: Event) {}
        }
        let config = TestConfig::new()
            .with_iterations(200)
            .with_seed(3)
            .with_default_portfolio();
        let report = TestEngine::new(config.clone()).run(|rt| {
            rt.create_machine(Quiet);
        });
        assert!(!report.found_bug());
        assert_eq!(report.scheduler, "portfolio");
        // Rows come out in portfolio order and account for every iteration.
        let portfolio = SchedulerKind::default_portfolio();
        assert_eq!(report.per_strategy.len(), portfolio.len());
        for (row, kind) in report.per_strategy.iter().zip(&portfolio) {
            assert_eq!(row.scheduler, kind.describe());
        }
        let attributed: u64 = report.per_strategy.iter().map(|s| s.iterations_run).sum();
        assert_eq!(attributed, 200);
        // And the attribution matches the per-iteration assignment exactly.
        for (index, row) in report.per_strategy.iter().enumerate() {
            let expected = (0..200)
                .filter(|&i| config.portfolio_index_for_iteration(i) == Some(index))
                .count() as u64;
            assert_eq!(row.iterations_run, expected, "row {index}");
        }
    }

    #[test]
    fn run_iteration_classifies_completed_and_buggy_executions() {
        let config = TestConfig::new().with_seed(1);
        struct Quiet;
        impl Machine for Quiet {
            fn handle(&mut self, _ctx: &mut Context<'_>, _event: Event) {}
        }
        let outcome = config.run_iteration(7, None, &|rt: &mut Runtime| {
            rt.create_machine(Quiet);
        });
        assert_eq!(outcome.iteration, 7);
        assert_eq!(outcome.seed, config.seed_for_iteration(7));
        assert!(matches!(outcome.status, IterationStatus::Completed));

        // Find a buggy iteration of the racey harness and check the payload.
        let mut bug_outcome = None;
        for iteration in 0..500 {
            let outcome = config.run_iteration(iteration, None, &racey_setup);
            if matches!(outcome.status, IterationStatus::BugFound { .. }) {
                bug_outcome = Some(outcome);
                break;
            }
        }
        let outcome = bug_outcome.expect("some iteration is buggy");
        let IterationStatus::BugFound { bug, ndc, trace } = outcome.status else {
            unreachable!()
        };
        assert_eq!(bug.kind, BugKind::SafetyViolation);
        assert!(ndc > 0);
        assert_eq!(trace.seed, outcome.seed);
    }

    /// Clonable twin of the racey harness, used by the prefix-sharing tests
    /// (snapshots require `clone_state` on every machine).
    #[derive(Clone)]
    struct CloneFlag {
        value: bool,
    }
    impl Machine for CloneFlag {
        fn handle(&mut self, ctx: &mut Context<'_>, event: Event) {
            if let Some(set) = event.downcast_ref::<SetFlag>() {
                if !set.0 && !self.value {
                    ctx.assert(false, "cleared a flag that was never set");
                }
                self.value = set.0;
            }
        }
        fn clone_state(&self) -> Option<Box<dyn Machine>> {
            Some(Box::new(self.clone()))
        }
    }

    #[derive(Clone)]
    struct CloneWriter {
        flag: crate::machine::MachineId,
        value: bool,
    }
    impl Machine for CloneWriter {
        fn on_start(&mut self, ctx: &mut Context<'_>) {
            ctx.send(self.flag, Event::new(SetFlag(self.value)));
        }
        fn handle(&mut self, _ctx: &mut Context<'_>, _event: Event) {}
        fn clone_state(&self) -> Option<Box<dyn Machine>> {
            Some(Box::new(self.clone()))
        }
    }

    fn clone_racey_setup(rt: &mut Runtime) {
        let flag = rt.create_machine(CloneFlag { value: false });
        rt.create_machine(CloneWriter { flag, value: true });
        rt.create_machine(CloneWriter { flag, value: false });
    }

    #[test]
    fn prefix_sharing_reports_identical_results() {
        let base = TestConfig::new().with_iterations(300).with_seed(7);
        let straight = TestEngine::new(base.clone()).run(clone_racey_setup);
        let shared = TestEngine::new(base.clone().with_prefix_sharing(true)).run(clone_racey_setup);
        let a = straight.bug.as_ref().expect("racey bug is reachable");
        let b = shared.bug.as_ref().expect("racey bug is reachable");
        assert_eq!(a.iteration, b.iteration);
        assert_eq!(a.trace.decisions, b.trace.decisions);
        assert_eq!(straight.iterations_run, shared.iterations_run);
        assert_eq!(straight.total_steps, shared.total_steps);

        // And byte-identical across worker counts under prefix sharing.
        let parallel = |workers: usize| {
            ParallelTestEngine::new(base.clone().with_prefix_sharing(true).with_workers(workers))
                .run(clone_racey_setup)
        };
        let one = parallel(1);
        let four = parallel(4);
        let a = one.bug.as_ref().expect("bug");
        let b = four.bug.as_ref().expect("bug");
        assert_eq!(a.iteration, b.iteration);
        assert_eq!(a.trace.decisions, b.trace.decisions);
    }

    #[test]
    fn prefix_sharing_falls_back_for_non_snapshotable_harnesses() {
        // `racey_setup` machines keep the default `clone_state` (None).
        let base = TestConfig::new().with_iterations(300).with_seed(7);
        let straight = TestEngine::new(base.clone()).run(racey_setup);
        let shared = TestEngine::new(base.with_prefix_sharing(true)).run(racey_setup);
        let a = straight.bug.as_ref().expect("bug");
        let b = shared.bug.as_ref().expect("bug");
        assert_eq!(a.iteration, b.iteration);
        assert_eq!(a.trace.decisions, b.trace.decisions);
    }

    #[test]
    fn prefix_fork_at_depth_zero_matches_straight_line_execution() {
        let base = TestConfig::new().with_iterations(300).with_seed(9);
        let straight = TestEngine::new(base.clone()).run(clone_racey_setup);
        let forked = PrefixForkEngine::new(base, 0).run(clone_racey_setup);
        let a = straight.bug.as_ref().expect("bug");
        let b = forked.bug.as_ref().expect("bug");
        assert_eq!(a.iteration, b.iteration);
        assert_eq!(a.trace.decisions, b.trace.decisions);
    }

    #[test]
    fn prefix_fork_traces_replay_from_scratch() {
        let base = TestConfig::new().with_iterations(500).with_seed(11);
        let report = PrefixForkEngine::new(base.clone(), 2).run(clone_racey_setup);
        let bug = report.bug.expect("forked exploration still finds the bug");
        // The trace carries the forced prefix decisions, so an ordinary
        // from-scratch replay reproduces the violation.
        let replayed = TestEngine::new(base)
            .replay(&bug.trace, clone_racey_setup)
            .expect("replay reproduces");
        assert_eq!(replayed.kind, bug.bug.kind);
        assert_eq!(replayed.message, bug.bug.message);
    }

    #[test]
    fn prefix_fork_prunes_equivalent_sibling_orderings() {
        // Three machines whose start steps are local (no sends, no monitor):
        // all 3! orderings of the first two tree levels are equivalent, so
        // sleep sets must prune the redundant sibling subtrees.
        #[derive(Clone)]
        struct Loner;
        impl Machine for Loner {
            fn handle(&mut self, _ctx: &mut Context<'_>, _event: Event) {}
            fn clone_state(&self) -> Option<Box<dyn Machine>> {
                Some(Box::new(self.clone()))
            }
        }
        let report = PrefixForkEngine::new(TestConfig::new().with_iterations(10), 2).run(|rt| {
            rt.create_machine(Loner);
            rt.create_machine(Loner);
            rt.create_machine(Loner);
        });
        assert!(!report.found_bug());
        assert_eq!(report.iterations_run, 10);
        let pruned: u64 = report.per_strategy.iter().map(|r| r.pruned_schedules).sum();
        assert!(
            pruned >= 3,
            "independent sibling orderings must be pruned, got {pruned}"
        );
    }

    #[test]
    fn prefix_fork_falls_back_when_not_snapshotable() {
        let base = TestConfig::new().with_iterations(300).with_seed(7);
        let straight = TestEngine::new(base.clone()).run(racey_setup);
        let forked = PrefixForkEngine::new(base, 3).run(racey_setup);
        let a = straight.bug.as_ref().expect("bug");
        let b = forked.bug.as_ref().expect("bug");
        assert_eq!(a.iteration, b.iteration);
        assert_eq!(a.trace.decisions, b.trace.decisions);
    }

    #[test]
    fn summary_mentions_result() {
        let engine = TestEngine::new(TestConfig::new().with_iterations(10));
        let report = engine.run(|rt| {
            let _ = rt;
        });
        assert!(report.summary().contains("no bug found"));
        let engine = TestEngine::new(TestConfig::new().with_iterations(200).with_seed(1));
        let report = engine.run(racey_setup);
        assert!(report.summary().contains("BUG FOUND"));
    }

    #[test]
    fn executions_per_second_is_positive_after_run() {
        let engine = TestEngine::new(TestConfig::new().with_iterations(20));
        let report = engine.run(|rt| {
            let _ = rt;
        });
        assert!(report.executions_per_second() >= 0.0);
    }
}
