//! The systematic testing engine.
//!
//! A [`TestEngine`] repeatedly executes a test harness from start to
//! completion, each time exploring a potentially different set of
//! nondeterministic choices, until it either reaches a user-supplied bound
//! (number of executions) or it hits a safety or liveness property violation.
//! On a violation it returns a [`BugReport`] containing the replayable
//! [`Trace`] of the buggy execution.
//!
//! A [`ParallelTestEngine`] multiplies throughput by the host's core count:
//! worker threads pull adaptive chunks of the iteration space from a shared
//! work-stealing queue (each execution keeps the exact seed it would have had
//! serially, so results are reproducible at any worker count) and can run a
//! *portfolio* of scheduling strategies side by side, the parallel testing
//! mode popularized by P#/Coyote. First-bug selection is deterministic: the
//! bug at the lowest iteration index wins, regardless of which worker's
//! execution finished first, and doomed executions above that index are
//! cancelled step-by-step instead of running to their bound.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use crate::error::Bug;
use crate::runtime::{CancelToken, ExecutionOutcome, Runtime, RuntimeConfig};
use crate::scheduler::{ReplayScheduler, SchedulerKind};
use crate::stats::StrategyStats;
use crate::trace::Trace;

/// Configuration of a systematic testing run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TestConfig {
    /// Maximum number of executions to explore.
    pub iterations: u64,
    /// Step bound per execution (the "infinite execution" approximation for
    /// liveness checking).
    pub max_steps: usize,
    /// Base random seed; each iteration derives its own seed from it.
    pub seed: u64,
    /// Scheduling strategy.
    pub scheduler: SchedulerKind,
    /// Whether liveness monitors are also checked when the system quiesces.
    pub check_liveness_at_quiescence: bool,
    /// Whether machine panics are caught and reported as bugs.
    pub catch_panics: bool,
    /// Number of worker threads a [`ParallelTestEngine`] lets steal from the
    /// shared iteration queue. `1` (the default) reproduces the serial
    /// [`TestEngine`] bit for bit.
    pub workers: usize,
    /// Optional scheduler portfolio: worker `w` runs strategy
    /// `portfolio[w % portfolio.len()]` instead of [`TestConfig::scheduler`].
    pub portfolio: Option<Vec<SchedulerKind>>,
}

impl Default for TestConfig {
    fn default() -> Self {
        TestConfig {
            iterations: 1_000,
            max_steps: 5_000,
            seed: 0,
            scheduler: SchedulerKind::Random,
            check_liveness_at_quiescence: true,
            catch_panics: true,
            workers: 1,
            portfolio: None,
        }
    }
}

impl TestConfig {
    /// Creates a configuration with the default exploration bounds.
    pub fn new() -> Self {
        TestConfig::default()
    }

    /// Sets the number of executions to explore.
    pub fn with_iterations(mut self, iterations: u64) -> Self {
        self.iterations = iterations;
        self
    }

    /// Sets the per-execution step bound.
    pub fn with_max_steps(mut self, max_steps: usize) -> Self {
        self.max_steps = max_steps;
        self
    }

    /// Sets the base random seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the scheduling strategy.
    pub fn with_scheduler(mut self, scheduler: SchedulerKind) -> Self {
        self.scheduler = scheduler;
        self
    }

    /// Sets the number of worker threads used by [`ParallelTestEngine`].
    ///
    /// Zero is treated as one.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Assigns a scheduler portfolio: worker `w` runs
    /// `portfolio[w % portfolio.len()]`. An empty portfolio is ignored.
    pub fn with_portfolio(mut self, portfolio: Vec<SchedulerKind>) -> Self {
        self.portfolio = if portfolio.is_empty() {
            None
        } else {
            Some(portfolio)
        };
        self
    }

    /// Assigns the default portfolio
    /// ([`SchedulerKind::default_portfolio`]): random, PCT with several
    /// change-point budgets, and round-robin.
    pub fn with_default_portfolio(self) -> Self {
        self.with_portfolio(SchedulerKind::default_portfolio())
    }

    /// The scheduling strategy worker `worker` runs (the portfolio entry
    /// when a portfolio is configured, the base scheduler otherwise).
    pub fn scheduler_for_worker(&self, worker: usize) -> SchedulerKind {
        match &self.portfolio {
            Some(portfolio) if !portfolio.is_empty() => portfolio[worker % portfolio.len()],
            _ => self.scheduler,
        }
    }

    fn runtime_config(&self) -> RuntimeConfig {
        RuntimeConfig {
            max_steps: self.max_steps,
            check_liveness_at_quiescence: self.check_liveness_at_quiescence,
            catch_panics: self.catch_panics,
        }
    }

    /// The seed that drives iteration `iteration` of a run with this
    /// configuration.
    pub fn seed_for_iteration(&self, iteration: u64) -> u64 {
        self.seed ^ (iteration.wrapping_add(1)).wrapping_mul(0x9E37_79B9_7F4A_7C15)
    }
}

/// The first property violation found by a testing run, together with
/// everything needed to reproduce it.
#[derive(Debug, Clone)]
pub struct BugReport {
    /// The violation.
    pub bug: Bug,
    /// The (0-based) iteration at which it was found.
    pub iteration: u64,
    /// Number of nondeterministic choices made in the buggy execution
    /// (the paper's `#NDC`).
    pub ndc: usize,
    /// The replayable trace of the buggy execution.
    pub trace: Trace,
    /// Time elapsed from the start of the run until the bug was found.
    pub time_to_bug: Duration,
}

/// Outcome of a systematic testing run.
#[derive(Debug, Clone)]
pub struct TestReport {
    /// The first violation found, if any.
    pub bug: Option<BugReport>,
    /// Number of executions explored to completion (including the buggy
    /// one); executions cancelled mid-flight by the parallel engine are not
    /// counted.
    pub iterations_run: u64,
    /// Total machine steps executed, including the partial work of
    /// executions the parallel engine cancelled mid-flight.
    pub total_steps: u64,
    /// Wall-clock time of the whole run.
    pub elapsed: Duration,
    /// Label of the scheduler that drove the run. For a portfolio run this is
    /// the strategy that found the bug, or `"portfolio"` when no bug was
    /// found.
    pub scheduler: &'static str,
    /// Number of worker threads that explored the iteration space.
    pub workers: usize,
    /// Exploration statistics per scheduling strategy (a single row for a
    /// serial run, one row per distinct portfolio strategy otherwise).
    pub per_strategy: Vec<StrategyStats>,
}

impl TestReport {
    /// Returns `true` when a property violation was found.
    pub fn found_bug(&self) -> bool {
        self.bug.is_some()
    }

    /// Executions explored per second of wall-clock time.
    pub fn executions_per_second(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs == 0.0 {
            0.0
        } else {
            self.iterations_run as f64 / secs
        }
    }

    /// Renders the per-strategy attribution as an aligned table, one line per
    /// strategy.
    pub fn strategy_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&StrategyStats::table_header());
        out.push('\n');
        for row in &self.per_strategy {
            out.push_str(&row.to_string());
            out.push('\n');
        }
        out
    }

    /// Renders a short human-readable summary.
    pub fn summary(&self) -> String {
        match &self.bug {
            Some(report) => format!(
                "BUG FOUND ({}) after {} executions in {:.2}s with {} nondeterministic choices: {}",
                self.scheduler,
                report.iteration + 1,
                report.time_to_bug.as_secs_f64(),
                report.ndc,
                report.bug
            ),
            None => format!(
                "no bug found ({}) in {} executions ({:.2}s, {:.0} exec/s)",
                self.scheduler,
                self.iterations_run,
                self.elapsed.as_secs_f64(),
                self.executions_per_second()
            ),
        }
    }
}

/// Systematically tests a harness by exploring many executions.
///
/// # Examples
///
/// ```
/// use psharp::prelude::*;
///
/// #[derive(Debug)]
/// struct Go;
///
/// struct Flaky;
/// impl Machine for Flaky {
///     fn on_start(&mut self, ctx: &mut Context<'_>) {
///         // A bug that manifests only under one of the controlled choices.
///         let unlucky = ctx.random_bool();
///         ctx.assert(!unlucky, "the unlucky path was taken");
///     }
///     fn handle(&mut self, _ctx: &mut Context<'_>, _event: Event) {}
/// }
///
/// let engine = TestEngine::new(TestConfig::new().with_iterations(100));
/// let report = engine.run(|rt| {
///     rt.create_machine(Flaky);
/// });
/// assert!(report.found_bug());
/// ```
#[derive(Debug, Clone)]
pub struct TestEngine {
    config: TestConfig,
}

impl TestEngine {
    /// Creates an engine with the given configuration.
    pub fn new(config: TestConfig) -> Self {
        TestEngine { config }
    }

    /// The engine's configuration.
    pub fn config(&self) -> &TestConfig {
        &self.config
    }

    /// Runs up to `iterations` executions of the harness built by `setup`,
    /// stopping at the first property violation.
    ///
    /// The `setup` closure is invoked once per execution with a fresh
    /// [`Runtime`]; it must create the machines and monitors of the test and
    /// may send initial events.
    pub fn run<F>(&self, setup: F) -> TestReport
    where
        F: Fn(&mut Runtime),
    {
        let start = Instant::now();
        let label = self.config.scheduler.label();
        let mut total_steps: u64 = 0;
        for iteration in 0..self.config.iterations {
            let seed = self.config.seed_for_iteration(iteration);
            let scheduler = self.config.scheduler.build(seed, self.config.max_steps);
            let mut runtime = Runtime::new(scheduler, self.config.runtime_config(), seed);
            setup(&mut runtime);
            let outcome = runtime.run();
            total_steps += runtime.steps() as u64;
            if let ExecutionOutcome::BugFound(bug) = outcome {
                let elapsed = start.elapsed();
                return TestReport {
                    bug: Some(BugReport {
                        bug,
                        iteration,
                        ndc: runtime.trace().decision_count(),
                        trace: runtime.take_trace(),
                        time_to_bug: elapsed,
                    }),
                    iterations_run: iteration + 1,
                    total_steps,
                    elapsed,
                    scheduler: label,
                    workers: 1,
                    per_strategy: vec![StrategyStats {
                        scheduler: self.config.scheduler.describe(),
                        workers: 1,
                        iterations_run: iteration + 1,
                        total_steps,
                        bugs_found: 1,
                    }],
                };
            }
        }
        TestReport {
            bug: None,
            iterations_run: self.config.iterations,
            total_steps,
            elapsed: start.elapsed(),
            scheduler: label,
            workers: 1,
            per_strategy: vec![StrategyStats {
                scheduler: self.config.scheduler.describe(),
                workers: 1,
                iterations_run: self.config.iterations,
                total_steps,
                bugs_found: 0,
            }],
        }
    }

    /// Replays a previously recorded trace against the harness built by
    /// `setup` and returns the violation it reproduces, if any.
    ///
    /// Returns `None` when the replayed execution finds no bug (for example
    /// because the system has been fixed since the trace was recorded).
    pub fn replay<F>(&self, trace: &Trace, setup: F) -> Option<Bug>
    where
        F: Fn(&mut Runtime),
    {
        let scheduler = Box::new(ReplayScheduler::from_trace(trace));
        let mut runtime = Runtime::new(scheduler, self.config.runtime_config(), trace.seed);
        setup(&mut runtime);
        match runtime.run() {
            ExecutionOutcome::BugFound(bug) => Some(bug),
            _ => None,
        }
    }
}

/// One worker's private tally, merged into the final [`TestReport`] after all
/// workers join. `scheduler` is the strategy's full description
/// ([`SchedulerKind::describe`]), so differently-parameterized PCT workers
/// keep separate attribution rows.
struct WorkerTally {
    scheduler: String,
    iterations_run: u64,
    total_steps: u64,
    bugs_found: u64,
}

/// The lowest-iteration bug found so far, with the strategy that found it.
struct FirstBug {
    report: BugReport,
    scheduler: &'static str,
}

/// Adaptive chunk sizing for the work-stealing iteration queue: claim big
/// chunks while plenty of work remains (amortizing the shared-counter
/// traffic), shrink toward single iterations near the end so the tail
/// balances across workers instead of sitting in one worker's last chunk.
fn chunk_size(remaining: u64, workers: u64) -> u64 {
    (remaining / (workers * 4)).clamp(1, 64)
}

/// Parallel portfolio testing engine with a work-stealing iteration queue.
///
/// Workers claim adaptively sized chunks of the iteration space of a
/// [`TestConfig`] from a shared atomic counter: a fast worker that drains a
/// cheap stretch of the space simply claims the next chunk, so skewed
/// harnesses (where some seeds run 100× longer than others) no longer starve
/// `W - 1` workers the way fixed striping did. Every iteration keeps the seed
/// [`TestConfig::seed_for_iteration`] assigns it — a single-worker parallel
/// run explores the identical sequence of executions as the serial
/// [`TestEngine`], and an `N`-worker run explores the identical *set* of
/// (iteration, seed) pairs, just faster.
///
/// With [`TestConfig::with_portfolio`] each worker additionally runs its own
/// scheduling strategy (portfolio testing): a mix of random, PCT with several
/// priority-change budgets, and round-robin attacks the same harness from
/// different angles, and the per-strategy attribution in
/// [`TestReport::per_strategy`] shows which strategy earned the bug.
///
/// # Deterministic first-bug selection
///
/// The reported bug is the one at the **lowest iteration index**, not the one
/// whose worker happened to finish first: a found bug publishes its iteration
/// as a shared bound, iterations above the bound are skipped or cancelled
/// *step-by-step* (the runtime polls a [`CancelToken`] inside its step loop,
/// so a doomed execution stops within one machine step instead of running to
/// its `max_steps` bound), and iterations below it always run to completion.
/// The winning (iteration, seed, trace) triple is therefore the same at any
/// worker count — identical to what the serial engine would report.
///
/// Two caveats. With a *portfolio*, which strategy drives a given iteration
/// depends on which worker stole its chunk, so the set of discovered bugs can
/// vary across portfolio runs (a deliberate trade of per-iteration strategy
/// determinism for load balance); single-strategy runs — the default —
/// always report the same winning bug. And determinism covers the *winning
/// (iteration, seed, trace) triple only*: aggregate counters
/// ([`TestReport::iterations_run`], [`TestReport::total_steps`],
/// [`BugReport::time_to_bug`]) still depend on how far other workers got
/// before cancellation, exactly as with bug-free early stops before. Bug-free
/// runs exhaust every iteration, so their counters are deterministic too.
///
/// # Examples
///
/// ```
/// use psharp::prelude::*;
///
/// struct Flaky;
/// impl Machine for Flaky {
///     fn on_start(&mut self, ctx: &mut Context<'_>) {
///         let unlucky = ctx.random_bool();
///         ctx.assert(!unlucky, "the unlucky path was taken");
///     }
///     fn handle(&mut self, _ctx: &mut Context<'_>, _event: Event) {}
/// }
///
/// let config = TestConfig::new()
///     .with_iterations(100)
///     .with_workers(4)
///     .with_default_portfolio();
/// let report = ParallelTestEngine::new(config).run(|rt| {
///     rt.create_machine(Flaky);
/// });
/// assert!(report.found_bug());
/// ```
#[derive(Debug, Clone)]
pub struct ParallelTestEngine {
    config: TestConfig,
}

impl ParallelTestEngine {
    /// Creates a parallel engine with the given configuration.
    pub fn new(config: TestConfig) -> Self {
        ParallelTestEngine { config }
    }

    /// An engine that uses every available core and the default portfolio.
    pub fn portfolio(config: TestConfig) -> Self {
        let workers = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        ParallelTestEngine::new(config.with_workers(workers).with_default_portfolio())
    }

    /// The engine's configuration.
    pub fn config(&self) -> &TestConfig {
        &self.config
    }

    /// Runs up to `iterations` executions of the harness built by `setup`
    /// across the configured workers, stopping all workers at the first
    /// property violation.
    ///
    /// Unlike [`TestEngine::run`], `setup` must be `Send + Sync`: each worker
    /// invokes it (one invocation per execution) from its own thread. Each
    /// individual execution still runs serialized on exactly one thread —
    /// machines never observe intra-execution parallelism.
    pub fn run<F>(&self, setup: F) -> TestReport
    where
        F: Fn(&mut Runtime) + Send + Sync,
    {
        let workers = self.config.workers.max(1);
        let start = Instant::now();
        // Work-stealing queue: the next unclaimed iteration index.
        let next = AtomicU64::new(0);
        // Lowest iteration index known to contain a bug. Doubles as the
        // step-level cancellation bound polled inside every runtime's step
        // loop via a [`CancelToken`].
        let bug_bound = Arc::new(AtomicU64::new(u64::MAX));
        let first_bug: Mutex<Option<FirstBug>> = Mutex::new(None);
        let config = &self.config;
        let total = config.iterations;

        let tallies: Vec<WorkerTally> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|worker| {
                    let setup = &setup;
                    let next = &next;
                    let first_bug = &first_bug;
                    let bug_bound = Arc::clone(&bug_bound);
                    scope.spawn(move || {
                        let kind = config.scheduler_for_worker(worker);
                        let mut tally = WorkerTally {
                            scheduler: kind.describe(),
                            iterations_run: 0,
                            total_steps: 0,
                            bugs_found: 0,
                        };
                        loop {
                            // Work remains only below the bug bound: once a
                            // bug at iteration `k` is published, iterations
                            // `>= k` can no longer win.
                            let bound = bug_bound.load(Ordering::Relaxed).min(total);
                            let claimed = next.load(Ordering::Relaxed);
                            if claimed >= bound {
                                break;
                            }
                            let chunk = chunk_size(bound - claimed, workers as u64);
                            let chunk_start = next.fetch_add(chunk, Ordering::Relaxed);
                            if chunk_start >= total {
                                break;
                            }
                            let chunk_end = (chunk_start + chunk).min(total);
                            for iteration in chunk_start..chunk_end {
                                if iteration >= bug_bound.load(Ordering::Relaxed) {
                                    // Doomed: a lower iteration already has a
                                    // bug. Skip without executing.
                                    continue;
                                }
                                let seed = config.seed_for_iteration(iteration);
                                let scheduler = kind.build(seed, config.max_steps);
                                let mut runtime =
                                    Runtime::new(scheduler, config.runtime_config(), seed);
                                runtime.set_cancel_token(CancelToken::new(
                                    Arc::clone(&bug_bound),
                                    iteration,
                                ));
                                setup(&mut runtime);
                                match runtime.run() {
                                    ExecutionOutcome::Cancelled => {
                                        // Keep the partial work in the step
                                        // total, but the iteration did not
                                        // complete.
                                        tally.total_steps += runtime.steps() as u64;
                                    }
                                    ExecutionOutcome::BugFound(bug) => {
                                        tally.iterations_run += 1;
                                        tally.total_steps += runtime.steps() as u64;
                                        tally.bugs_found += 1;
                                        // Publish the bound first so other
                                        // workers stop wasting steps on
                                        // higher iterations immediately.
                                        bug_bound.fetch_min(iteration, Ordering::Relaxed);
                                        let mut slot =
                                            first_bug.lock().expect("bug slot lock poisoned");
                                        let lower = slot
                                            .as_ref()
                                            .is_none_or(|f| iteration < f.report.iteration);
                                        if lower {
                                            *slot = Some(FirstBug {
                                                report: BugReport {
                                                    bug,
                                                    iteration,
                                                    ndc: runtime.trace().decision_count(),
                                                    trace: runtime.take_trace(),
                                                    time_to_bug: start.elapsed(),
                                                },
                                                scheduler: kind.label(),
                                            });
                                        }
                                    }
                                    _ => {
                                        tally.iterations_run += 1;
                                        tally.total_steps += runtime.steps() as u64;
                                    }
                                }
                            }
                        }
                        tally
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|handle| handle.join().expect("worker thread panicked"))
                .collect()
        });

        let mut per_strategy: Vec<StrategyStats> = Vec::new();
        let mut iterations_run = 0;
        let mut total_steps = 0;
        for tally in &tallies {
            iterations_run += tally.iterations_run;
            total_steps += tally.total_steps;
            let row = match per_strategy
                .iter_mut()
                .find(|row| row.scheduler == tally.scheduler)
            {
                Some(row) => row,
                None => {
                    per_strategy.push(StrategyStats::new(tally.scheduler.clone()));
                    per_strategy.last_mut().expect("just pushed")
                }
            };
            row.absorb(&StrategyStats {
                scheduler: tally.scheduler.clone(),
                workers: 1,
                iterations_run: tally.iterations_run,
                total_steps: tally.total_steps,
                bugs_found: tally.bugs_found,
            });
        }

        let winner = first_bug.into_inner().expect("bug slot lock poisoned");
        let scheduler = match &winner {
            Some(first) => first.scheduler,
            None if self.config.portfolio.is_some() => "portfolio",
            None => self.config.scheduler.label(),
        };
        TestReport {
            bug: winner.map(|first| first.report),
            iterations_run,
            total_steps,
            elapsed: start.elapsed(),
            scheduler,
            workers,
            per_strategy,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::BugKind;
    use crate::event::Event;
    use crate::machine::Machine;
    use crate::runtime::Context;

    /// Two writer machines race to update a shared flag machine. The flag
    /// starts `false` and asserts that it never observes a `SetFlag(false)`
    /// while already `false`, so the bug manifests only in the interleaving
    /// where the `false` writer is scheduled before the `true` writer —
    /// schedule exploration is required to find it.
    struct Flag {
        value: bool,
    }
    impl Machine for Flag {
        fn handle(&mut self, ctx: &mut Context<'_>, event: Event) {
            if let Some(set) = event.downcast_ref::<SetFlag>() {
                if !set.0 && !self.value {
                    ctx.assert(false, "cleared a flag that was never set");
                }
                self.value = set.0;
            }
        }
    }

    #[derive(Debug)]
    struct SetFlag(bool);

    struct Writer {
        flag: crate::machine::MachineId,
        value: bool,
    }
    impl Machine for Writer {
        fn on_start(&mut self, ctx: &mut Context<'_>) {
            ctx.send(self.flag, Event::new(SetFlag(self.value)));
        }
        fn handle(&mut self, _ctx: &mut Context<'_>, _event: Event) {}
    }

    fn racey_setup(rt: &mut Runtime) {
        let flag = rt.create_machine(Flag { value: false });
        rt.create_machine(Writer { flag, value: true });
        rt.create_machine(Writer { flag, value: false });
    }

    #[test]
    fn engine_finds_order_dependent_bug() {
        let engine = TestEngine::new(TestConfig::new().with_iterations(200).with_seed(1));
        let report = engine.run(racey_setup);
        assert!(report.found_bug());
        let bug = report.bug.as_ref().unwrap();
        assert_eq!(bug.bug.kind, BugKind::SafetyViolation);
        assert!(bug.ndc > 0);
        assert!(report.iterations_run <= 200);
    }

    #[test]
    fn engine_reports_no_bug_for_correct_system() {
        struct Quiet;
        impl Machine for Quiet {
            fn handle(&mut self, _ctx: &mut Context<'_>, _event: Event) {}
        }
        let engine = TestEngine::new(TestConfig::new().with_iterations(50));
        let report = engine.run(|rt| {
            rt.create_machine(Quiet);
        });
        assert!(!report.found_bug());
        assert_eq!(report.iterations_run, 50);
    }

    #[test]
    fn replay_reproduces_the_same_bug() {
        let engine = TestEngine::new(TestConfig::new().with_iterations(500).with_seed(3));
        let report = engine.run(racey_setup);
        let bug_report = report.bug.expect("bug should be found");
        let replayed = engine
            .replay(&bug_report.trace, racey_setup)
            .expect("replay should reproduce the bug");
        assert_eq!(replayed.kind, bug_report.bug.kind);
        assert_eq!(replayed.message, bug_report.bug.message);
    }

    #[test]
    fn pct_scheduler_also_finds_the_bug() {
        let engine = TestEngine::new(
            TestConfig::new()
                .with_iterations(500)
                .with_seed(5)
                .with_scheduler(SchedulerKind::Pct { change_points: 2 }),
        );
        let report = engine.run(racey_setup);
        assert!(report.found_bug());
        assert_eq!(report.scheduler, "pct");
    }

    #[test]
    fn iteration_seeds_are_distinct() {
        let config = TestConfig::new().with_seed(42);
        let a = config.seed_for_iteration(0);
        let b = config.seed_for_iteration(1);
        assert_ne!(a, b);
    }

    #[test]
    fn summary_mentions_result() {
        let engine = TestEngine::new(TestConfig::new().with_iterations(10));
        let report = engine.run(|rt| {
            let _ = rt;
        });
        assert!(report.summary().contains("no bug found"));
        let engine = TestEngine::new(TestConfig::new().with_iterations(200).with_seed(1));
        let report = engine.run(racey_setup);
        assert!(report.summary().contains("BUG FOUND"));
    }

    #[test]
    fn executions_per_second_is_positive_after_run() {
        let engine = TestEngine::new(TestConfig::new().with_iterations(20));
        let report = engine.run(|rt| {
            let _ = rt;
        });
        assert!(report.executions_per_second() >= 0.0);
    }
}
