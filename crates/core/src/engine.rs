//! The systematic testing engine.
//!
//! A [`TestEngine`] repeatedly executes a test harness from start to
//! completion, each time exploring a potentially different set of
//! nondeterministic choices, until it either reaches a user-supplied bound
//! (number of executions) or it hits a safety or liveness property violation.
//! On a violation it returns a [`BugReport`] containing the replayable
//! [`Trace`] of the buggy execution.

use std::time::{Duration, Instant};

use crate::error::Bug;
use crate::runtime::{ExecutionOutcome, Runtime, RuntimeConfig};
use crate::scheduler::{ReplayScheduler, SchedulerKind};
use crate::trace::Trace;

/// Configuration of a systematic testing run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TestConfig {
    /// Maximum number of executions to explore.
    pub iterations: u64,
    /// Step bound per execution (the "infinite execution" approximation for
    /// liveness checking).
    pub max_steps: usize,
    /// Base random seed; each iteration derives its own seed from it.
    pub seed: u64,
    /// Scheduling strategy.
    pub scheduler: SchedulerKind,
    /// Whether liveness monitors are also checked when the system quiesces.
    pub check_liveness_at_quiescence: bool,
    /// Whether machine panics are caught and reported as bugs.
    pub catch_panics: bool,
}

impl Default for TestConfig {
    fn default() -> Self {
        TestConfig {
            iterations: 1_000,
            max_steps: 5_000,
            seed: 0,
            scheduler: SchedulerKind::Random,
            check_liveness_at_quiescence: true,
            catch_panics: true,
        }
    }
}

impl TestConfig {
    /// Creates a configuration with the default exploration bounds.
    pub fn new() -> Self {
        TestConfig::default()
    }

    /// Sets the number of executions to explore.
    pub fn with_iterations(mut self, iterations: u64) -> Self {
        self.iterations = iterations;
        self
    }

    /// Sets the per-execution step bound.
    pub fn with_max_steps(mut self, max_steps: usize) -> Self {
        self.max_steps = max_steps;
        self
    }

    /// Sets the base random seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the scheduling strategy.
    pub fn with_scheduler(mut self, scheduler: SchedulerKind) -> Self {
        self.scheduler = scheduler;
        self
    }

    fn runtime_config(&self) -> RuntimeConfig {
        RuntimeConfig {
            max_steps: self.max_steps,
            check_liveness_at_quiescence: self.check_liveness_at_quiescence,
            catch_panics: self.catch_panics,
        }
    }

    /// The seed that drives iteration `iteration` of a run with this
    /// configuration.
    pub fn seed_for_iteration(&self, iteration: u64) -> u64 {
        self.seed ^ (iteration.wrapping_add(1)).wrapping_mul(0x9E37_79B9_7F4A_7C15)
    }
}

/// The first property violation found by a testing run, together with
/// everything needed to reproduce it.
#[derive(Debug, Clone)]
pub struct BugReport {
    /// The violation.
    pub bug: Bug,
    /// The (0-based) iteration at which it was found.
    pub iteration: u64,
    /// Number of nondeterministic choices made in the buggy execution
    /// (the paper's `#NDC`).
    pub ndc: usize,
    /// The replayable trace of the buggy execution.
    pub trace: Trace,
    /// Time elapsed from the start of the run until the bug was found.
    pub time_to_bug: Duration,
}

/// Outcome of a systematic testing run.
#[derive(Debug, Clone)]
pub struct TestReport {
    /// The first violation found, if any.
    pub bug: Option<BugReport>,
    /// Number of executions explored (including the buggy one).
    pub iterations_run: u64,
    /// Total machine steps executed across all iterations.
    pub total_steps: u64,
    /// Wall-clock time of the whole run.
    pub elapsed: Duration,
    /// Label of the scheduler that drove the run.
    pub scheduler: &'static str,
}

impl TestReport {
    /// Returns `true` when a property violation was found.
    pub fn found_bug(&self) -> bool {
        self.bug.is_some()
    }

    /// Executions explored per second of wall-clock time.
    pub fn executions_per_second(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs == 0.0 {
            0.0
        } else {
            self.iterations_run as f64 / secs
        }
    }

    /// Renders a short human-readable summary.
    pub fn summary(&self) -> String {
        match &self.bug {
            Some(report) => format!(
                "BUG FOUND ({}) after {} executions in {:.2}s with {} nondeterministic choices: {}",
                self.scheduler,
                report.iteration + 1,
                report.time_to_bug.as_secs_f64(),
                report.ndc,
                report.bug
            ),
            None => format!(
                "no bug found ({}) in {} executions ({:.2}s, {:.0} exec/s)",
                self.scheduler,
                self.iterations_run,
                self.elapsed.as_secs_f64(),
                self.executions_per_second()
            ),
        }
    }
}

/// Systematically tests a harness by exploring many executions.
///
/// # Examples
///
/// ```
/// use psharp::prelude::*;
///
/// #[derive(Debug)]
/// struct Go;
///
/// struct Flaky;
/// impl Machine for Flaky {
///     fn on_start(&mut self, ctx: &mut Context<'_>) {
///         // A bug that manifests only under one of the controlled choices.
///         let unlucky = ctx.random_bool();
///         ctx.assert(!unlucky, "the unlucky path was taken");
///     }
///     fn handle(&mut self, _ctx: &mut Context<'_>, _event: Event) {}
/// }
///
/// let engine = TestEngine::new(TestConfig::new().with_iterations(100));
/// let report = engine.run(|rt| {
///     rt.create_machine(Flaky);
/// });
/// assert!(report.found_bug());
/// ```
#[derive(Debug, Clone)]
pub struct TestEngine {
    config: TestConfig,
}

impl TestEngine {
    /// Creates an engine with the given configuration.
    pub fn new(config: TestConfig) -> Self {
        TestEngine { config }
    }

    /// The engine's configuration.
    pub fn config(&self) -> &TestConfig {
        &self.config
    }

    /// Runs up to `iterations` executions of the harness built by `setup`,
    /// stopping at the first property violation.
    ///
    /// The `setup` closure is invoked once per execution with a fresh
    /// [`Runtime`]; it must create the machines and monitors of the test and
    /// may send initial events.
    pub fn run<F>(&self, setup: F) -> TestReport
    where
        F: Fn(&mut Runtime),
    {
        let start = Instant::now();
        let mut total_steps: u64 = 0;
        for iteration in 0..self.config.iterations {
            let seed = self.config.seed_for_iteration(iteration);
            let scheduler = self.config.scheduler.build(seed, self.config.max_steps);
            let mut runtime = Runtime::new(scheduler, self.config.runtime_config(), seed);
            setup(&mut runtime);
            let outcome = runtime.run();
            total_steps += runtime.steps() as u64;
            if let ExecutionOutcome::BugFound(bug) = outcome {
                let elapsed = start.elapsed();
                return TestReport {
                    bug: Some(BugReport {
                        bug,
                        iteration,
                        ndc: runtime.trace().decision_count(),
                        trace: runtime.trace().clone(),
                        time_to_bug: elapsed,
                    }),
                    iterations_run: iteration + 1,
                    total_steps,
                    elapsed,
                    scheduler: self.config.scheduler.label(),
                };
            }
        }
        TestReport {
            bug: None,
            iterations_run: self.config.iterations,
            total_steps,
            elapsed: start.elapsed(),
            scheduler: self.config.scheduler.label(),
        }
    }

    /// Replays a previously recorded trace against the harness built by
    /// `setup` and returns the violation it reproduces, if any.
    ///
    /// Returns `None` when the replayed execution finds no bug (for example
    /// because the system has been fixed since the trace was recorded).
    pub fn replay<F>(&self, trace: &Trace, setup: F) -> Option<Bug>
    where
        F: Fn(&mut Runtime),
    {
        let scheduler = Box::new(ReplayScheduler::from_trace(trace));
        let mut runtime = Runtime::new(scheduler, self.config.runtime_config(), trace.seed);
        setup(&mut runtime);
        match runtime.run() {
            ExecutionOutcome::BugFound(bug) => Some(bug),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::BugKind;
    use crate::event::Event;
    use crate::machine::Machine;
    use crate::runtime::Context;

    /// Two writer machines race to update a shared flag machine. The flag
    /// starts `false` and asserts that it never observes a `SetFlag(false)`
    /// while already `false`, so the bug manifests only in the interleaving
    /// where the `false` writer is scheduled before the `true` writer —
    /// schedule exploration is required to find it.
    struct Flag {
        value: bool,
    }
    impl Machine for Flag {
        fn handle(&mut self, ctx: &mut Context<'_>, event: Event) {
            if let Some(set) = event.downcast_ref::<SetFlag>() {
                if !set.0 && !self.value {
                    ctx.assert(false, "cleared a flag that was never set");
                }
                self.value = set.0;
            }
        }
    }

    #[derive(Debug)]
    struct SetFlag(bool);

    struct Writer {
        flag: crate::machine::MachineId,
        value: bool,
    }
    impl Machine for Writer {
        fn on_start(&mut self, ctx: &mut Context<'_>) {
            ctx.send(self.flag, Event::new(SetFlag(self.value)));
        }
        fn handle(&mut self, _ctx: &mut Context<'_>, _event: Event) {}
    }

    fn racey_setup(rt: &mut Runtime) {
        let flag = rt.create_machine(Flag { value: false });
        rt.create_machine(Writer { flag, value: true });
        rt.create_machine(Writer { flag, value: false });
    }

    #[test]
    fn engine_finds_order_dependent_bug() {
        let engine = TestEngine::new(TestConfig::new().with_iterations(200).with_seed(1));
        let report = engine.run(racey_setup);
        assert!(report.found_bug());
        let bug = report.bug.as_ref().unwrap();
        assert_eq!(bug.bug.kind, BugKind::SafetyViolation);
        assert!(bug.ndc > 0);
        assert!(report.iterations_run <= 200);
    }

    #[test]
    fn engine_reports_no_bug_for_correct_system() {
        struct Quiet;
        impl Machine for Quiet {
            fn handle(&mut self, _ctx: &mut Context<'_>, _event: Event) {}
        }
        let engine = TestEngine::new(TestConfig::new().with_iterations(50));
        let report = engine.run(|rt| {
            rt.create_machine(Quiet);
        });
        assert!(!report.found_bug());
        assert_eq!(report.iterations_run, 50);
    }

    #[test]
    fn replay_reproduces_the_same_bug() {
        let engine = TestEngine::new(TestConfig::new().with_iterations(500).with_seed(3));
        let report = engine.run(racey_setup);
        let bug_report = report.bug.expect("bug should be found");
        let replayed = engine
            .replay(&bug_report.trace, racey_setup)
            .expect("replay should reproduce the bug");
        assert_eq!(replayed.kind, bug_report.bug.kind);
        assert_eq!(replayed.message, bug_report.bug.message);
    }

    #[test]
    fn pct_scheduler_also_finds_the_bug() {
        let engine = TestEngine::new(
            TestConfig::new()
                .with_iterations(500)
                .with_seed(5)
                .with_scheduler(SchedulerKind::Pct { change_points: 2 }),
        );
        let report = engine.run(racey_setup);
        assert!(report.found_bug());
        assert_eq!(report.scheduler, "pct");
    }

    #[test]
    fn iteration_seeds_are_distinct() {
        let config = TestConfig::new().with_seed(42);
        let a = config.seed_for_iteration(0);
        let b = config.seed_for_iteration(1);
        assert_ne!(a, b);
    }

    #[test]
    fn summary_mentions_result() {
        let engine = TestEngine::new(TestConfig::new().with_iterations(10));
        let report = engine.run(|rt| {
            let _ = rt;
        });
        assert!(report.summary().contains("no bug found"));
        let engine = TestEngine::new(TestConfig::new().with_iterations(200).with_seed(1));
        let report = engine.run(racey_setup);
        assert!(report.summary().contains("BUG FOUND"));
    }

    #[test]
    fn executions_per_second_is_positive_after_run() {
        let engine = TestEngine::new(TestConfig::new().with_iterations(20));
        let report = engine.run(|rt| {
            let _ = rt;
        });
        assert!(report.executions_per_second() >= 0.0);
    }
}
