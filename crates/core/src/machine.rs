//! Machines: the concurrently executing actors of the programming model.
//!
//! A machine owns private state and a FIFO mailbox of [`Event`]s. Machines run
//! "concurrently" with each other: under the systematic testing runtime the
//! execution is serialized and the scheduler decides which enabled machine
//! handles its next event, but machine code is written exactly as if it were
//! running concurrently in production.
//!
//! Two styles are supported:
//!
//! * implement [`Machine`] directly — an `handle` method that dispatches on
//!   the received event; or
//! * implement [`StateMachine`] — a declarative style with named states and
//!   per-state handling, closer to P#'s `state`/`OnEvent` syntax. A
//!   `StateMachine` is adapted into a `Machine` by [`StateMachineRunner`].

use std::fmt;

use crate::event::{short_type_name, Event};
use crate::json::{FromJson, Json, JsonError, ToJson};
use crate::monitor::AsAny;
use crate::runtime::Context;

/// Identifier of a machine instance within one execution.
///
/// Ids are assigned sequentially in creation order, which makes them
/// deterministic across replays of the same schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MachineId(u64);

impl ToJson for MachineId {
    fn to_json_value(&self) -> Json {
        Json::UInt(self.0)
    }
}

impl FromJson for MachineId {
    fn from_json_value(value: &Json) -> Result<Self, JsonError> {
        Ok(MachineId(value.as_u64()?))
    }
}

impl MachineId {
    /// Creates an id from its raw index. Exposed for trace (de)serialization
    /// and for tests; ordinarily ids are produced by the runtime.
    pub fn from_raw(raw: u64) -> Self {
        MachineId(raw)
    }

    /// The raw index of this id.
    pub fn raw(self) -> u64 {
        self.0
    }

    /// The id as a dense `usize` index into per-machine tables (machine
    /// slots, the enabled-set position map, lazy mailbox slots). Ids are
    /// assigned sequentially, so this is always in-bounds for tables sized
    /// by the creation count.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for MachineId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// An actor with private state that handles one event at a time.
///
/// # Examples
///
/// ```
/// use psharp::prelude::*;
///
/// #[derive(Debug)]
/// struct Ping;
///
/// struct Counter {
///     count: u32,
/// }
///
/// impl Machine for Counter {
///     fn handle(&mut self, ctx: &mut Context<'_>, event: Event) {
///         if event.is::<Ping>() {
///             self.count += 1;
///             ctx.assert(self.count < 3, "too many pings");
///         }
///     }
/// }
/// ```
/// Machines are `Send + Sync` so that runtime snapshots (which share machine
/// state copy-on-write via `Arc<dyn Machine>`) can cross the worker threads
/// of the parallel engines. Machine state holding `Rc`/`RefCell` should use
/// `Arc`/`Mutex` instead.
pub trait Machine: AsAny + Send + Sync + 'static {
    /// Invoked once, before the machine handles its first event.
    ///
    /// The default implementation does nothing.
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        let _ = ctx;
    }

    /// Handles one event dequeued from the machine's mailbox.
    fn handle(&mut self, ctx: &mut Context<'_>, event: Event);

    /// Invoked when the scheduler injects a crash fault into this machine
    /// (the machine must have been marked
    /// [`crashable`](crate::runtime::Runtime::mark_crashable)). The hook
    /// models the environment *noticing* the failure — a failure detector, a
    /// supervision signal — so it typically notifies a manager or a monitor.
    /// The machine itself is already down: its mailbox has been discarded
    /// and it will not be scheduled again unless restarted.
    ///
    /// The default implementation does nothing (a silent crash).
    fn on_crash(&mut self, ctx: &mut Context<'_>) {
        let _ = ctx;
    }

    /// Invoked when the scheduler restarts this (previously crashed)
    /// machine (the machine must have been marked
    /// [`restartable`](crate::runtime::Runtime::mark_restartable)). The
    /// machine's struct — its "persistent state" — survives the crash; the
    /// hook is where volatile state is reset and recovery messages are sent.
    ///
    /// The default implementation does nothing (recover in place).
    fn on_restart(&mut self, ctx: &mut Context<'_>) {
        let _ = ctx;
    }

    /// The machine's display name, used in traces and bug reports.
    ///
    /// Defaults to the implementing type's short name.
    fn name(&self) -> &str {
        short_type_name::<Self>()
    }

    /// Produces an independent copy of this machine's current state for
    /// [`Runtime::snapshot`](crate::runtime::Runtime::snapshot).
    ///
    /// The default returns `None`, which marks the machine as
    /// non-snapshotable: a runtime containing it cannot be forked and the
    /// engine falls back to straight-line execution. Machines whose state is
    /// `Clone` opt in with a one-liner:
    ///
    /// ```ignore
    /// fn clone_state(&self) -> Option<Box<dyn Machine>> {
    ///     Some(Box::new(self.clone()))
    /// }
    /// ```
    fn clone_state(&self) -> Option<Box<dyn Machine>> {
        None
    }

    /// Copies this machine's current state *into* an existing box, reusing
    /// its allocation when `target` holds the same concrete type. Returns
    /// `false` when the machine is non-snapshotable (`clone_state` would
    /// return `None`), leaving `target` untouched.
    ///
    /// This is the allocation-recycling twin of [`clone_state`]: the
    /// runtime's machine pool hands back retired boxes so copy-on-write
    /// break-offs and pooled restores do not pay a fresh box per clone. The
    /// default forwards to `clone_state` (correct but allocating);
    /// [`impl_machine_snapshot!`](crate::impl_machine_snapshot) generates the
    /// in-place version for `Clone` machines.
    ///
    /// [`clone_state`]: Machine::clone_state
    fn clone_state_into(&self, target: &mut Box<dyn Machine>) -> bool {
        match self.clone_state() {
            Some(fresh) => {
                *target = fresh;
                true
            }
            None => false,
        }
    }
}

/// Implements [`Machine::clone_state`] and [`Machine::clone_state_into`] for
/// a `Clone` machine type. Expands *inside* an `impl Machine for T` block:
///
/// ```ignore
/// impl Machine for Worker {
///     fn handle(&mut self, ctx: &mut Context<'_>, event: Event) { /* … */ }
///     psharp::impl_machine_snapshot!();
/// }
/// ```
///
/// The generated `clone_state_into` downcasts the recycled box and
/// `clone_from`s into it, so a copy-on-write break-off reuses the retired
/// box of the same concrete type instead of allocating a fresh one.
#[macro_export]
macro_rules! impl_machine_snapshot {
    () => {
        fn clone_state(&self) -> Option<Box<dyn $crate::machine::Machine>> {
            Some(Box::new(self.clone()))
        }

        fn clone_state_into(&self, target: &mut Box<dyn $crate::machine::Machine>) -> bool {
            match $crate::monitor::AsAny::as_any_mut(&mut **target).downcast_mut::<Self>() {
                Some(recycled) => {
                    recycled.clone_from(self);
                    true
                }
                None => {
                    *target = Box::new(self.clone());
                    true
                }
            }
        }
    };
}

/// The outcome of handling an event in a [`StateMachine`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Transition<S> {
    /// Remain in the current state.
    Stay,
    /// Move to a new state. The runner records the transition so harness
    /// statistics (the paper's `#ST`) can be derived.
    Goto(S),
    /// Halt this machine; it will not handle further events.
    Halt,
}

/// A declarative machine with named states.
///
/// This mirrors P# machine declarations, where each state registers actions
/// for the events it handles. The current state is tracked by the
/// [`StateMachineRunner`] adapter; handlers receive it explicitly and return a
/// [`Transition`].
pub trait StateMachine: Send + Sync + 'static {
    /// The state space of this machine.
    type State: Copy + Eq + fmt::Debug + Send + Sync + 'static;

    /// The state the machine starts in.
    fn initial_state(&self) -> Self::State;

    /// Invoked once before the first event is handled.
    fn on_start(&mut self, ctx: &mut Context<'_>) -> Transition<Self::State> {
        let _ = ctx;
        Transition::Stay
    }

    /// Handles `event` while in `state`, returning the state transition.
    fn handle_in(
        &mut self,
        state: Self::State,
        ctx: &mut Context<'_>,
        event: Event,
    ) -> Transition<Self::State>;

    /// Invoked when a crash fault is injected (see [`Machine::on_crash`]).
    fn on_crash_in(
        &mut self,
        state: Self::State,
        ctx: &mut Context<'_>,
    ) -> Transition<Self::State> {
        let _ = (state, ctx);
        Transition::Stay
    }

    /// Invoked when the machine is restarted (see [`Machine::on_restart`]).
    fn on_restart_in(
        &mut self,
        state: Self::State,
        ctx: &mut Context<'_>,
    ) -> Transition<Self::State> {
        let _ = (state, ctx);
        Transition::Stay
    }

    /// The machine's display name.
    fn name(&self) -> &str {
        short_type_name::<Self>()
    }

    /// Produces an independent copy of this state machine for
    /// [`Runtime::snapshot`](crate::runtime::Runtime::snapshot); the
    /// [`StateMachineRunner`] adapter forwards its own `clone_state` here,
    /// preserving the current state and transition count.
    ///
    /// The default returns `None` (non-snapshotable). `Clone` state machines
    /// opt in with `Some(self.clone())`.
    fn clone_state(&self) -> Option<Self>
    where
        Self: Sized,
    {
        None
    }
}

/// Adapter that runs a [`StateMachine`] as a [`Machine`], tracking its current
/// state and counting state transitions.
pub struct StateMachineRunner<M: StateMachine> {
    inner: M,
    state: M::State,
    transitions: usize,
}

impl<M: StateMachine> StateMachineRunner<M> {
    /// Wraps a state machine, placing it in its initial state.
    pub fn new(inner: M) -> Self {
        let state = inner.initial_state();
        StateMachineRunner {
            inner,
            state,
            transitions: 0,
        }
    }

    /// The current state.
    pub fn state(&self) -> M::State {
        self.state
    }

    /// The number of state transitions taken so far.
    pub fn transitions(&self) -> usize {
        self.transitions
    }

    /// Borrows the wrapped state machine.
    pub fn inner(&self) -> &M {
        &self.inner
    }

    fn apply(&mut self, ctx: &mut Context<'_>, transition: Transition<M::State>) {
        match transition {
            Transition::Stay => {}
            Transition::Goto(next) => {
                if next != self.state {
                    self.transitions += 1;
                }
                self.state = next;
            }
            Transition::Halt => ctx.halt(),
        }
    }
}

impl<M: StateMachine> Machine for StateMachineRunner<M> {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        let t = self.inner.on_start(ctx);
        self.apply(ctx, t);
    }

    fn handle(&mut self, ctx: &mut Context<'_>, event: Event) {
        let t = self.inner.handle_in(self.state, ctx, event);
        self.apply(ctx, t);
    }

    fn on_crash(&mut self, ctx: &mut Context<'_>) {
        let t = self.inner.on_crash_in(self.state, ctx);
        self.apply(ctx, t);
    }

    fn on_restart(&mut self, ctx: &mut Context<'_>) {
        let t = self.inner.on_restart_in(self.state, ctx);
        self.apply(ctx, t);
    }

    fn name(&self) -> &str {
        self.inner.name()
    }

    fn clone_state(&self) -> Option<Box<dyn Machine>> {
        let inner = self.inner.clone_state()?;
        Some(Box::new(StateMachineRunner {
            inner,
            state: self.state,
            transitions: self.transitions,
        }))
    }

    fn clone_state_into(&self, target: &mut Box<dyn Machine>) -> bool {
        let Some(inner) = self.inner.clone_state() else {
            return false;
        };
        match AsAny::as_any_mut(&mut **target).downcast_mut::<Self>() {
            Some(recycled) => {
                recycled.inner = inner;
                recycled.state = self.state;
                recycled.transitions = self.transitions;
            }
            None => {
                *target = Box::new(StateMachineRunner {
                    inner,
                    state: self.state,
                    transitions: self.transitions,
                });
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn machine_id_display_and_raw() {
        let id = MachineId::from_raw(4);
        assert_eq!(id.to_string(), "#4");
        assert_eq!(id.raw(), 4);
    }

    #[test]
    fn machine_id_ordering_follows_creation_order() {
        assert!(MachineId::from_raw(1) < MachineId::from_raw(2));
    }

    #[test]
    fn machine_id_json_round_trip() {
        let id = MachineId::from_raw(9);
        let json = id.to_json_value().to_string_compact();
        let back =
            MachineId::from_json_value(&Json::parse(&json).expect("parse")).expect("deserialize");
        assert_eq!(id, back);
    }

    // The StateMachineRunner transition accounting is exercised without a full
    // runtime in the runtime module's tests (a Context is required to call
    // handlers), so here we only check construction invariants.
    struct Trivial;

    impl StateMachine for Trivial {
        type State = u8;
        fn initial_state(&self) -> u8 {
            0
        }
        fn handle_in(&mut self, _s: u8, _ctx: &mut Context<'_>, _e: Event) -> Transition<u8> {
            Transition::Goto(1)
        }
    }

    #[test]
    fn runner_starts_in_initial_state() {
        let runner = StateMachineRunner::new(Trivial);
        assert_eq!(runner.state(), 0);
        assert_eq!(runner.transitions(), 0);
        assert_eq!(Machine::name(&runner), "Trivial");
    }
}
