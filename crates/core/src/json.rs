//! A minimal, dependency-free JSON representation used for trace and report
//! (de)serialization.
//!
//! The testing runtime must be buildable in hermetic environments with no
//! access to a crates.io mirror, so instead of depending on `serde` the crate
//! carries this small JSON module: a [`Json`] value type, a recursive-descent
//! parser, and pretty/compact writers. It supports the full JSON grammar with
//! one deliberate refinement: integers that fit `u64`/`i64` are kept exact
//! rather than routed through `f64`, because traces store 64-bit seeds whose
//! round trip must be lossless.

use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer that fits in 64 bits, kept exact.
    UInt(u64),
    /// A negative integer that fits in 64 bits, kept exact.
    Int(i64),
    /// Any other number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Json>),
    /// An object. Keys are kept sorted for deterministic output.
    Object(BTreeMap<String, Json>),
}

/// Error produced when parsing malformed JSON or when a value does not have
/// the shape a deserializer expects.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Description of what went wrong.
    pub message: String,
}

impl JsonError {
    /// Creates an error with the given message.
    pub fn new(message: impl Into<String>) -> Self {
        JsonError {
            message: message.into(),
        }
    }
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error: {}", self.message)
    }
}

impl Error for JsonError {}

impl Json {
    /// Builds an object from key/value pairs.
    pub fn object(pairs: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Object(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Looks up a key of an object.
    pub fn get(&self, key: &str) -> Result<&Json, JsonError> {
        match self {
            Json::Object(map) => map
                .get(key)
                .ok_or_else(|| JsonError::new(format!("missing key '{key}'"))),
            other => Err(JsonError::new(format!(
                "expected object with key '{key}', found {}",
                other.kind_name()
            ))),
        }
    }

    /// The value as a `u64`, accepting any exactly-representable number.
    pub fn as_u64(&self) -> Result<u64, JsonError> {
        match self {
            Json::UInt(v) => Ok(*v),
            Json::Int(v) if *v >= 0 => Ok(*v as u64),
            other => Err(JsonError::new(format!(
                "expected unsigned integer, found {}",
                other.kind_name()
            ))),
        }
    }

    /// The value as a `usize`.
    pub fn as_usize(&self) -> Result<usize, JsonError> {
        Ok(self.as_u64()? as usize)
    }

    /// The value as an `f64`, accepting any JSON number.
    pub fn as_f64(&self) -> Result<f64, JsonError> {
        match self {
            Json::Float(v) => Ok(*v),
            Json::UInt(v) => Ok(*v as f64),
            Json::Int(v) => Ok(*v as f64),
            other => Err(JsonError::new(format!(
                "expected number, found {}",
                other.kind_name()
            ))),
        }
    }

    /// Looks up a key of an object, returning `None` when the key is absent
    /// (used for schema fields added after the format was first shipped).
    pub fn opt(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(map) => map.get(key),
            _ => None,
        }
    }

    /// The value as a `bool`.
    pub fn as_bool(&self) -> Result<bool, JsonError> {
        match self {
            Json::Bool(b) => Ok(*b),
            other => Err(JsonError::new(format!(
                "expected bool, found {}",
                other.kind_name()
            ))),
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Result<&str, JsonError> {
        match self {
            Json::Str(s) => Ok(s),
            other => Err(JsonError::new(format!(
                "expected string, found {}",
                other.kind_name()
            ))),
        }
    }

    /// The value as an array slice.
    pub fn as_array(&self) -> Result<&[Json], JsonError> {
        match self {
            Json::Array(items) => Ok(items),
            other => Err(JsonError::new(format!(
                "expected array, found {}",
                other.kind_name()
            ))),
        }
    }

    fn kind_name(&self) -> &'static str {
        match self {
            Json::Null => "null",
            Json::Bool(_) => "bool",
            Json::UInt(_) | Json::Int(_) | Json::Float(_) => "number",
            Json::Str(_) => "string",
            Json::Array(_) => "array",
            Json::Object(_) => "object",
        }
    }

    /// Parses a JSON document.
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] describing the first syntax error.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut parser = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        parser.skip_whitespace();
        let value = parser.parse_value()?;
        parser.skip_whitespace();
        if parser.pos != parser.bytes.len() {
            return Err(JsonError::new(format!(
                "trailing characters at byte {}",
                parser.pos
            )));
        }
        Ok(value)
    }

    /// Renders the value as compact JSON.
    pub fn to_string_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Renders the value as pretty-printed JSON with two-space indentation.
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::UInt(v) => out.push_str(&v.to_string()),
            Json::Int(v) => out.push_str(&v.to_string()),
            Json::Float(v) => {
                if v.is_finite() {
                    out.push_str(&format!("{v}"));
                } else {
                    // JSON has no NaN/Infinity; mirror serde_json's `null`.
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    item.write(out, indent, depth + 1);
                }
                newline_indent(out, indent, depth);
                out.push(']');
            }
            Json::Object(map) => {
                if map.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    write_escaped(out, key);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    value.write(out, indent, depth + 1);
                }
                newline_indent(out, indent, depth);
                out.push('}');
            }
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..depth * width {
            out.push(' ');
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_whitespace(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), JsonError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(JsonError::new(format!(
                "expected '{}' at byte {}",
                byte as char, self.pos
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Json, JsonError> {
        self.skip_whitespace();
        match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => Ok(Json::Str(self.parse_string()?)),
            Some(b't') => self.parse_literal("true", Json::Bool(true)),
            Some(b'f') => self.parse_literal("false", Json::Bool(false)),
            Some(b'n') => self.parse_literal("null", Json::Null),
            Some(b'-') | Some(b'0'..=b'9') => self.parse_number(),
            _ => Err(JsonError::new(format!(
                "unexpected character at byte {}",
                self.pos
            ))),
        }
    }

    fn parse_literal(&mut self, literal: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(literal.as_bytes()) {
            self.pos += literal.len();
            Ok(value)
        } else {
            Err(JsonError::new(format!(
                "invalid literal at byte {}",
                self.pos
            )))
        }
    }

    fn parse_number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| JsonError::new("invalid utf-8 in number"))?;
        if !is_float {
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Json::UInt(v));
            }
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Json::Int(v));
            }
        }
        text.parse::<f64>()
            .map(Json::Float)
            .map_err(|_| JsonError::new(format!("invalid number '{text}'")))
    }

    fn parse_string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(JsonError::new("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(JsonError::new("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let code = self.parse_hex4()?;
                            // Surrogate pairs: JSON escapes astral-plane chars
                            // as two \uXXXX units. The second unit must be a
                            // low surrogate, or the document is malformed.
                            let c = if (0xD800..0xDC00).contains(&code) {
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.expect(b'u')?;
                                    let low = self.parse_hex4()?;
                                    if (0xDC00..0xE000).contains(&low) {
                                        char::from_u32(
                                            0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00),
                                        )
                                    } else {
                                        None
                                    }
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(code)
                            };
                            out.push(c.ok_or_else(|| JsonError::new("invalid \\u escape"))?);
                        }
                        other => {
                            return Err(JsonError::new(format!(
                                "invalid escape '\\{}'",
                                other as char
                            )))
                        }
                    }
                }
                b if b < 0x80 => out.push(b as char),
                lead => {
                    // Re-decode only this one multi-byte UTF-8 sequence (the
                    // input came from a &str, so it is valid UTF-8; the
                    // length check still guards slicing).
                    let len = match lead {
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        _ => 4,
                    };
                    let start = self.pos - 1;
                    let sequence = self
                        .bytes
                        .get(start..start + len)
                        .ok_or_else(|| JsonError::new("truncated utf-8 sequence"))?;
                    let text = std::str::from_utf8(sequence)
                        .map_err(|_| JsonError::new("invalid utf-8 in string"))?;
                    out.push_str(text);
                    self.pos = start + len;
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, JsonError> {
        if self.pos + 4 > self.bytes.len() {
            return Err(JsonError::new("truncated \\u escape"));
        }
        let text = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| JsonError::new("invalid \\u escape"))?;
        self.pos += 4;
        u32::from_str_radix(text, 16).map_err(|_| JsonError::new("invalid \\u escape"))
    }

    fn parse_array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => {
                    return Err(JsonError::new(format!(
                        "expected ',' or ']' at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_whitespace();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(map));
        }
        loop {
            self.skip_whitespace();
            let key = self.parse_string()?;
            self.skip_whitespace();
            self.expect(b':')?;
            let value = self.parse_value()?;
            map.insert(key, value);
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(map));
                }
                _ => {
                    return Err(JsonError::new(format!(
                        "expected ',' or '}}' at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }
}

/// Types that can render themselves as a [`Json`] value.
pub trait ToJson {
    /// Converts the value into its JSON representation.
    fn to_json_value(&self) -> Json;
}

/// Types that can be reconstructed from a [`Json`] value.
pub trait FromJson: Sized {
    /// Reconstructs the value, reporting shape mismatches as [`JsonError`]s.
    fn from_json_value(value: &Json) -> Result<Self, JsonError>;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse("true").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse(" 42 ").unwrap(), Json::UInt(42));
        assert_eq!(Json::parse("-7").unwrap(), Json::Int(-7));
        assert_eq!(Json::parse("1.5").unwrap(), Json::Float(1.5));
        assert_eq!(
            Json::parse("\"hi\\nthere\"").unwrap(),
            Json::Str("hi\nthere".to_string())
        );
    }

    #[test]
    fn u64_round_trip_is_exact() {
        let original = Json::UInt(u64::MAX);
        let text = original.to_string_compact();
        assert_eq!(Json::parse(&text).unwrap(), original);
    }

    #[test]
    fn arrays_and_objects_round_trip() {
        let value = Json::object([
            ("items", Json::Array(vec![Json::UInt(1), Json::Bool(false)])),
            ("name", Json::Str("trace".to_string())),
            ("empty", Json::Array(vec![])),
        ]);
        for text in [value.to_string_compact(), value.to_string_pretty()] {
            assert_eq!(Json::parse(&text).unwrap(), value);
        }
    }

    #[test]
    fn escapes_round_trip() {
        let value = Json::Str("quote\" backslash\\ tab\t newline\n unicode\u{1F600}".to_string());
        let text = value.to_string_compact();
        assert_eq!(Json::parse(&text).unwrap(), value);
    }

    #[test]
    fn surrogate_pair_escapes_parse() {
        assert_eq!(
            Json::parse("\"\\ud83d\\ude00\"").unwrap(),
            Json::Str("\u{1F600}".to_string())
        );
    }

    #[test]
    fn malformed_surrogate_escapes_are_rejected() {
        // High surrogate followed by a non-surrogate unit, a lone high
        // surrogate, a lone low surrogate, and a bare high surrogate at the
        // end of input: all must report an error, never panic or mis-decode.
        for bad in [
            "\"\\ud800\\u0041\"",
            "\"\\ud800x\"",
            "\"\\udc00\"",
            "\"\\ud800",
        ] {
            assert!(Json::parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["", "{", "[1,", "\"unterminated", "nul", "1 2", "{\"a\" 1}"] {
            assert!(Json::parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn accessors_check_shapes() {
        let obj = Json::object([("n", Json::UInt(3))]);
        assert_eq!(obj.get("n").unwrap().as_u64().unwrap(), 3);
        assert!(obj.get("missing").is_err());
        assert!(obj.get("n").unwrap().as_str().is_err());
        assert!(Json::Null.get("x").is_err());
    }
}
