//! Controlled schedulers that decide every nondeterministic choice.
//!
//! During testing the runtime creates a *scheduling point* each time a
//! nondeterministic choice has to be taken: which enabled machine executes
//! next, and the value of every `random_bool` / `random_index` call. A
//! [`Scheduler`] resolves those choices. Four strategies are provided:
//!
//! * [`RandomScheduler`] — uniformly random choices (the paper's "random
//!   scheduler"), effective for most concurrency bugs.
//! * [`PctScheduler`] — randomized priority-based scheduling after
//!   Burckhardt et al. (ASPLOS'10), the paper's "priority-based scheduler";
//!   it maintains machine priorities, always runs the highest-priority
//!   enabled machine and changes priorities at a small number of random
//!   steps per execution.
//! * [`RoundRobinScheduler`] — deterministic round-robin, useful as a
//!   baseline ablation and for smoke tests.
//! * [`ReplayScheduler`] — replays a recorded [`Trace`] decision-for-decision
//!   so a bug can be reproduced deterministically.

use std::collections::HashMap;

use crate::error::ReplayError;
use crate::machine::MachineId;
use crate::rng::SplitMix64;
use crate::trace::{Decision, Trace};

/// Resolves every nondeterministic choice of an execution.
///
/// Implementations must be deterministic functions of their seed and the
/// sequence of queries made so far, so that recorded traces replay exactly.
pub trait Scheduler {
    /// Short human-readable name ("random", "pct", ...).
    fn name(&self) -> &'static str;

    /// Picks which of the `enabled` machines executes the next step.
    ///
    /// `enabled` is never empty and is sorted by machine id.
    fn next_machine(&mut self, enabled: &[MachineId], step: usize) -> MachineId;

    /// Resolves a nondeterministic boolean choice.
    fn next_bool(&mut self) -> bool;

    /// Resolves a nondeterministic integer choice in `[0, bound)`.
    ///
    /// `bound` is always at least 1.
    fn next_int(&mut self, bound: usize) -> usize;

    /// The replay divergence error, when this scheduler replays a recording
    /// and the execution did not follow it. `None` for all other schedulers.
    fn replay_error(&self) -> Option<&ReplayError> {
        None
    }
}

/// Identifies which scheduling strategy a [`TestEngine`](crate::engine::TestEngine)
/// should use, together with its parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedulerKind {
    /// Uniformly random scheduling.
    Random,
    /// Priority-based (PCT) scheduling with the given number of priority
    /// change points per execution (the paper uses 2).
    Pct {
        /// Number of random priority change switches per execution.
        change_points: usize,
    },
    /// Deterministic round-robin over enabled machines.
    RoundRobin,
}

impl SchedulerKind {
    /// Builds a scheduler of this kind for one execution.
    ///
    /// `seed` parameterizes the random choices; `max_steps` is used by PCT to
    /// place its priority change points.
    pub fn build(self, seed: u64, max_steps: usize) -> Box<dyn Scheduler> {
        match self {
            SchedulerKind::Random => Box::new(RandomScheduler::new(seed)),
            SchedulerKind::Pct { change_points } => {
                Box::new(PctScheduler::new(seed, change_points, max_steps))
            }
            SchedulerKind::RoundRobin => Box::new(RoundRobinScheduler::new()),
        }
    }

    /// The default strategy portfolio for parallel portfolio testing: random
    /// scheduling, PCT with several priority-change budgets, and round-robin.
    ///
    /// Workers are assigned strategies round-robin over this list, so the
    /// cheap-but-effective random scheduler gets the first slot.
    pub fn default_portfolio() -> Vec<SchedulerKind> {
        vec![
            SchedulerKind::Random,
            SchedulerKind::Pct { change_points: 2 },
            SchedulerKind::Pct { change_points: 5 },
            SchedulerKind::Pct { change_points: 10 },
            SchedulerKind::RoundRobin,
        ]
    }

    /// The short name of the scheduler this kind builds.
    pub fn label(self) -> &'static str {
        match self {
            SchedulerKind::Random => "random",
            SchedulerKind::Pct { .. } => "pct",
            SchedulerKind::RoundRobin => "round-robin",
        }
    }

    /// A description that also distinguishes parameterizations of the same
    /// strategy ("pct(cp=2)" vs "pct(cp=5)"), used to key per-strategy
    /// attribution in portfolio runs.
    pub fn describe(self) -> String {
        match self {
            SchedulerKind::Pct { change_points } => format!("pct(cp={change_points})"),
            other => other.label().to_string(),
        }
    }
}

/// Uniformly random scheduler.
#[derive(Debug, Clone)]
pub struct RandomScheduler {
    rng: SplitMix64,
}

impl RandomScheduler {
    /// Creates a random scheduler driven by `seed`.
    pub fn new(seed: u64) -> Self {
        RandomScheduler {
            rng: SplitMix64::new(seed),
        }
    }
}

impl Scheduler for RandomScheduler {
    fn name(&self) -> &'static str {
        "random"
    }

    fn next_machine(&mut self, enabled: &[MachineId], _step: usize) -> MachineId {
        enabled[self.rng.next_below(enabled.len())]
    }

    fn next_bool(&mut self) -> bool {
        self.rng.next_bool()
    }

    fn next_int(&mut self, bound: usize) -> usize {
        self.rng.next_below(bound)
    }
}

/// Randomized priority-based scheduler (PCT).
///
/// Every machine receives a random priority when first seen. The scheduler
/// always runs the highest-priority enabled machine. At `change_points`
/// randomly chosen steps of the execution, the priority of the currently
/// highest-priority enabled machine is dropped below all others, forcing a
/// context switch at an adversarial moment.
///
/// Strict priority scheduling is unfair: one machine can monopolise the whole
/// bounded execution, which would make every liveness property look violated.
/// Like P#'s liveness checking, the scheduler therefore switches to a *fair*
/// (uniformly random) tail for the second half of the step bound, so that a
/// hot liveness monitor at the bound reflects a genuine lack of progress
/// rather than scheduler starvation.
#[derive(Debug, Clone)]
pub struct PctScheduler {
    rng: SplitMix64,
    priorities: HashMap<MachineId, u64>,
    change_steps: Vec<usize>,
    next_change: usize,
    next_low_priority: u64,
    fair_after: usize,
}

impl PctScheduler {
    /// Creates a PCT scheduler with `change_points` priority change switches
    /// placed uniformly over an execution of at most `max_steps` steps.
    pub fn new(seed: u64, change_points: usize, max_steps: usize) -> Self {
        let mut rng = SplitMix64::new(seed);
        let horizon = max_steps.max(1);
        let mut change_steps: Vec<usize> = (0..change_points)
            .map(|_| rng.next_below(horizon))
            .collect();
        change_steps.sort_unstable();
        PctScheduler {
            rng,
            priorities: HashMap::new(),
            change_steps,
            next_change: 0,
            next_low_priority: 0,
            fair_after: horizon / 2,
        }
    }

    fn priority_of(&mut self, id: MachineId) -> u64 {
        if let Some(&p) = self.priorities.get(&id) {
            return p;
        }
        // New machines receive a random high priority band so they can
        // preempt or be preempted; the low band is reserved for change points.
        let p = 1_000_000 + self.rng.next_below(1_000_000) as u64;
        self.priorities.insert(id, p);
        p
    }
}

impl Scheduler for PctScheduler {
    fn name(&self) -> &'static str {
        "pct"
    }

    fn next_machine(&mut self, enabled: &[MachineId], step: usize) -> MachineId {
        if step >= self.fair_after {
            // Fair tail: see the type-level documentation.
            return enabled[self.rng.next_below(enabled.len())];
        }
        // Make sure all enabled machines have priorities assigned.
        for &id in enabled {
            self.priority_of(id);
        }
        // At a change point, deprioritize the currently highest enabled
        // machine. Each change point is consumed exactly once.
        if self.next_change < self.change_steps.len() && step >= self.change_steps[self.next_change]
        {
            self.next_change += 1;
            if let Some(&top) = enabled
                .iter()
                .max_by_key(|&&id| self.priorities.get(&id).copied().unwrap_or(0))
            {
                let low = self.next_low_priority;
                self.next_low_priority += 1;
                self.priorities.insert(top, low);
            }
        }
        *enabled
            .iter()
            .max_by_key(|&&id| self.priorities.get(&id).copied().unwrap_or(0))
            .expect("enabled set is never empty")
    }

    fn next_bool(&mut self) -> bool {
        self.rng.next_bool()
    }

    fn next_int(&mut self, bound: usize) -> usize {
        self.rng.next_below(bound)
    }
}

/// Deterministic round-robin scheduler.
///
/// Used as an ablation baseline; it explores only one schedule per
/// configuration so it rarely exposes ordering bugs, but its nondeterministic
/// value choices still vary via the cursor-free deterministic pattern
/// (alternating booleans, zero integers).
#[derive(Debug, Clone, Default)]
pub struct RoundRobinScheduler {
    cursor: u64,
    flip: bool,
}

impl RoundRobinScheduler {
    /// Creates a round-robin scheduler.
    pub fn new() -> Self {
        RoundRobinScheduler::default()
    }
}

impl Scheduler for RoundRobinScheduler {
    fn name(&self) -> &'static str {
        "round-robin"
    }

    fn next_machine(&mut self, enabled: &[MachineId], _step: usize) -> MachineId {
        // Pick the first enabled machine with id >= cursor, wrapping around.
        let chosen = enabled
            .iter()
            .copied()
            .find(|id| id.raw() >= self.cursor)
            .unwrap_or(enabled[0]);
        self.cursor = chosen.raw() + 1;
        chosen
    }

    fn next_bool(&mut self) -> bool {
        self.flip = !self.flip;
        self.flip
    }

    fn next_int(&mut self, _bound: usize) -> usize {
        0
    }
}

/// Scheduler that replays a previously recorded [`Trace`].
///
/// If the program diverges from the recording (for example because the
/// system-under-test changed since the trace was captured), the divergence is
/// recorded and the scheduler falls back to deterministic defaults so the
/// execution can still terminate; callers should check [`ReplayScheduler::error`]
/// via [`Runtime::replay_error`](crate::runtime::Runtime::replay_error).
#[derive(Debug, Clone)]
pub struct ReplayScheduler {
    decisions: Vec<Decision>,
    position: usize,
    error: Option<ReplayError>,
}

impl ReplayScheduler {
    /// Creates a replay scheduler from a recorded trace.
    pub fn from_trace(trace: &Trace) -> Self {
        ReplayScheduler {
            decisions: trace.decisions.clone(),
            position: 0,
            error: None,
        }
    }

    /// The divergence error, if replay did not follow the recording.
    pub fn error(&self) -> Option<&ReplayError> {
        self.error.as_ref()
    }

    fn record_divergence(&mut self, message: String) {
        if self.error.is_none() {
            self.error = Some(ReplayError {
                message,
                decision_index: self.position,
            });
        }
    }

    fn next_decision(&mut self) -> Option<Decision> {
        let d = self.decisions.get(self.position).copied();
        self.position += 1;
        d
    }
}

impl Scheduler for ReplayScheduler {
    fn name(&self) -> &'static str {
        "replay"
    }

    fn next_machine(&mut self, enabled: &[MachineId], _step: usize) -> MachineId {
        match self.next_decision() {
            Some(Decision::Schedule(id)) if enabled.contains(&id) => id,
            Some(Decision::Schedule(id)) => {
                self.record_divergence(format!(
                    "recorded machine {id} is not enabled during replay"
                ));
                enabled[0]
            }
            other => {
                self.record_divergence(format!(
                    "expected a Schedule decision, recording has {other:?}"
                ));
                enabled[0]
            }
        }
    }

    fn next_bool(&mut self) -> bool {
        match self.next_decision() {
            Some(Decision::Bool(b)) => b,
            other => {
                self.record_divergence(format!(
                    "expected a Bool decision, recording has {other:?}"
                ));
                false
            }
        }
    }

    fn replay_error(&self) -> Option<&ReplayError> {
        self.error.as_ref()
    }

    fn next_int(&mut self, bound: usize) -> usize {
        match self.next_decision() {
            Some(Decision::Int(v)) if v < bound => v,
            Some(Decision::Int(v)) => {
                self.record_divergence(format!(
                    "recorded int {v} is out of bounds (bound {bound})"
                ));
                0
            }
            other => {
                self.record_divergence(format!(
                    "expected an Int decision, recording has {other:?}"
                ));
                0
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(raw: &[u64]) -> Vec<MachineId> {
        raw.iter().copied().map(MachineId::from_raw).collect()
    }

    #[test]
    fn random_scheduler_is_deterministic_per_seed() {
        let enabled = ids(&[0, 1, 2, 3]);
        let mut a = RandomScheduler::new(12);
        let mut b = RandomScheduler::new(12);
        for step in 0..50 {
            assert_eq!(
                a.next_machine(&enabled, step),
                b.next_machine(&enabled, step)
            );
            assert_eq!(a.next_bool(), b.next_bool());
            assert_eq!(a.next_int(10), b.next_int(10));
        }
    }

    #[test]
    fn random_scheduler_only_picks_enabled() {
        let enabled = ids(&[2, 5, 9]);
        let mut s = RandomScheduler::new(3);
        for step in 0..100 {
            assert!(enabled.contains(&s.next_machine(&enabled, step)));
        }
    }

    #[test]
    fn random_scheduler_eventually_picks_every_machine() {
        let enabled = ids(&[0, 1, 2]);
        let mut s = RandomScheduler::new(1);
        let mut seen = [false; 3];
        for step in 0..200 {
            seen[s.next_machine(&enabled, step).raw() as usize] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn pct_scheduler_prefers_one_machine_between_change_points() {
        let enabled = ids(&[0, 1, 2]);
        let mut s = PctScheduler::new(7, 0, 1_000);
        let first = s.next_machine(&enabled, 0);
        for step in 1..20 {
            assert_eq!(s.next_machine(&enabled, step), first);
        }
    }

    #[test]
    fn pct_switches_at_most_once_per_change_point_in_the_priority_prefix() {
        let enabled = ids(&[0, 1, 2]);
        // Steps 0..100 lie within the priority-driven prefix of a 1000-step
        // execution (the fair tail only starts at step 500).
        let count_switches = |change_points: usize| {
            let mut s = PctScheduler::new(7, change_points, 1_000);
            let picks: Vec<MachineId> = (0..100)
                .map(|step| s.next_machine(&enabled, step))
                .collect();
            picks.windows(2).filter(|w| w[0] != w[1]).count()
        };
        assert_eq!(count_switches(0), 0, "no change points means no switches");
        assert!(count_switches(1) <= 1);
        assert!(count_switches(3) <= 3);
    }

    #[test]
    fn pct_fair_tail_eventually_schedules_every_machine() {
        let enabled = ids(&[0, 1, 2]);
        let mut s = PctScheduler::new(7, 0, 100);
        let mut seen = [false; 3];
        // Steps beyond max_steps / 2 use the fair tail.
        for step in 50..300 {
            seen[s.next_machine(&enabled, step).raw() as usize] = true;
        }
        assert!(
            seen.iter().all(|&b| b),
            "the fair tail must not starve machines"
        );
    }

    #[test]
    fn pct_runs_highest_priority_even_when_others_enabled() {
        let enabled_all = ids(&[0, 1, 2]);
        let mut s = PctScheduler::new(11, 0, 1_000);
        let preferred = s.next_machine(&enabled_all, 0);
        // When the preferred machine is disabled the next one is chosen, and
        // when it is re-enabled it is preferred again.
        let without: Vec<MachineId> = enabled_all
            .iter()
            .copied()
            .filter(|&m| m != preferred)
            .collect();
        let fallback = s.next_machine(&without, 1);
        assert_ne!(fallback, preferred);
        assert_eq!(s.next_machine(&enabled_all, 2), preferred);
    }

    #[test]
    fn round_robin_cycles_through_machines() {
        let enabled = ids(&[0, 1, 2]);
        let mut s = RoundRobinScheduler::new();
        let picks: Vec<u64> = (0..6).map(|i| s.next_machine(&enabled, i).raw()).collect();
        assert_eq!(picks, vec![0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn replay_returns_recorded_decisions() {
        let mut trace = Trace::new(0);
        trace.push_decision(Decision::Schedule(MachineId::from_raw(1)));
        trace.push_decision(Decision::Bool(true));
        trace.push_decision(Decision::Int(4));
        let mut s = ReplayScheduler::from_trace(&trace);
        let enabled = ids(&[0, 1]);
        assert_eq!(s.next_machine(&enabled, 0), MachineId::from_raw(1));
        assert!(s.next_bool());
        assert_eq!(s.next_int(10), 4);
        assert!(s.error().is_none());
    }

    #[test]
    fn replay_records_divergence_on_mismatch() {
        let mut trace = Trace::new(0);
        trace.push_decision(Decision::Bool(true));
        let mut s = ReplayScheduler::from_trace(&trace);
        let enabled = ids(&[0]);
        // Asking for a machine when a Bool was recorded diverges.
        let picked = s.next_machine(&enabled, 0);
        assert_eq!(picked, MachineId::from_raw(0));
        assert!(s.error().is_some());
    }

    #[test]
    fn replay_records_divergence_when_machine_not_enabled() {
        let mut trace = Trace::new(0);
        trace.push_decision(Decision::Schedule(MachineId::from_raw(9)));
        let mut s = ReplayScheduler::from_trace(&trace);
        let enabled = ids(&[0, 1]);
        s.next_machine(&enabled, 0);
        assert!(s.error().is_some());
    }

    #[test]
    fn scheduler_kind_builds_expected_names() {
        assert_eq!(SchedulerKind::Random.build(0, 10).name(), "random");
        assert_eq!(
            SchedulerKind::Pct { change_points: 2 }.build(0, 10).name(),
            "pct"
        );
        assert_eq!(SchedulerKind::RoundRobin.build(0, 10).name(), "round-robin");
        assert_eq!(SchedulerKind::Pct { change_points: 2 }.label(), "pct");
    }
}
